//! A distributed Jacobi iteration for the 2-D Laplace equation, with the
//! halo exchange done by neighborhood allgather over a von Neumann
//! stencil — the archetypal "fixed neighborhood" HPC application the
//! paper's introduction motivates (46 % of ECP applications).
//!
//! Each rank owns a `TILE × TILE` block of a periodic grid and needs the
//! boundary rows/columns of its four neighbors every iteration. The
//! example runs the solve twice — once exchanging halos with the naïve
//! algorithm, once with Distance Halving — and asserts bit-identical
//! fields, then reports the per-iteration exchange latency on a modelled
//! cluster.
//!
//! ```text
//! cargo run --release -p nhood-integration --example jacobi_solver
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm, SimCost};
use nhood_topology::stencil::von_neumann_on_grid;

const GRID: usize = 12; // 12x12 ranks
const TILE: usize = 8; // each owns an 8x8 block
const ITERS: usize = 20;

/// Pack the four boundary strips (N, S, W, E) of a tile.
fn pack_halo(tile: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 * TILE * 8);
    let row = |r: usize| (0..TILE).map(move |c| tile[r * TILE + c]);
    let col = |c: usize| (0..TILE).map(move |r| tile[r * TILE + c]);
    for v in row(0).chain(row(TILE - 1)).chain(col(0)).chain(col(TILE - 1)) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn unpack(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8B"))).collect()
}

/// One Jacobi sweep given the four neighbor halos (keyed by neighbor
/// rank, in `in_neighbors` order — the allgather receive-buffer layout).
fn sweep(tile: &[f64], halos: &[(usize, Vec<f64>)], me: usize) -> Vec<f64> {
    // halo layout per neighbor: [north row][south row][west col][east col]
    let (gy, gx) = (me / GRID, me % GRID);
    let north = (gy + GRID - 1) % GRID * GRID + gx;
    let south = (gy + 1) % GRID * GRID + gx;
    let west = gy * GRID + (gx + GRID - 1) % GRID;
    let east = gy * GRID + (gx + 1) % GRID;
    let strip = |owner: usize, idx: usize| -> &[f64] {
        let h = &halos.iter().find(|(r, _)| *r == owner).expect("neighbor halo").1;
        &h[idx * TILE..(idx + 1) * TILE]
    };
    // the row my north neighbor shares with me is *its south* row, etc.
    let up = strip(north, 1);
    let down = strip(south, 0);
    let left = strip(west, 3);
    let right = strip(east, 2);

    let at = |r: isize, c: isize| -> f64 {
        if r < 0 {
            up[c as usize]
        } else if r >= TILE as isize {
            down[c as usize]
        } else if c < 0 {
            left[r as usize]
        } else if c >= TILE as isize {
            right[r as usize]
        } else {
            tile[r as usize * TILE + c as usize]
        }
    };
    let mut next = vec![0.0; TILE * TILE];
    for r in 0..TILE as isize {
        for c in 0..TILE as isize {
            next[(r * TILE as isize + c) as usize] =
                0.25 * (at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1));
        }
    }
    next
}

fn solve(comm: &DistGraphComm, algo: Algorithm) -> Vec<Vec<f64>> {
    let n = GRID * GRID;
    let mut tiles: Vec<Vec<f64>> = (0..n)
        .map(|r| (0..TILE * TILE).map(|i| ((r * 7919 + i * 104729) % 1000) as f64).collect())
        .collect();
    for _ in 0..ITERS {
        let payloads: Vec<Vec<u8>> = tiles.iter().map(|t| pack_halo(t)).collect();
        let req = CollectiveRequest::allgather(&payloads).algorithm(algo);
        let rbufs = comm.collective(&req).expect("halo exchange").rbufs;
        let halo_len = 4 * TILE * 8;
        tiles = (0..n)
            .map(|me| {
                let ins = comm.graph().in_neighbors(me);
                let halos: Vec<(usize, Vec<f64>)> = ins
                    .iter()
                    .enumerate()
                    .map(|(i, &src)| (src, unpack(&rbufs[me][i * halo_len..(i + 1) * halo_len])))
                    .collect();
                sweep(&tiles[me], &halos, me)
            })
            .collect();
    }
    tiles
}

fn main() {
    let n = GRID * GRID;
    let graph = von_neumann_on_grid(&[GRID, GRID], 1);
    let layout = ClusterLayout::new(6, 2, 12);
    let comm = DistGraphComm::create_adjacent(graph, layout).expect("fits");
    println!("Jacobi on a {GRID}x{GRID} rank grid, {TILE}x{TILE} tile each, {ITERS} iterations");

    let a = solve(&comm, Algorithm::Naive);
    let b = solve(&comm, Algorithm::DistanceHalving);
    assert_eq!(a, b, "halo exchange algorithm must not change the physics");
    let mean: f64 = a.iter().flat_map(|t| t.iter()).sum::<f64>() / (n * TILE * TILE) as f64;
    println!("fields identical under both algorithms; final mean = {mean:.3}");

    let cost = SimCost::niagara();
    let m = 4 * TILE * 8;
    let tn = comm.latency(Algorithm::Naive, m, &cost).expect("sim").makespan;
    let td = comm.latency(Algorithm::DistanceHalving, m, &cost).expect("sim").makespan;
    println!(
        "per-iteration halo exchange ({m} B/rank): naive {:.1} us, distance-halving {:.1} us ({:.2}x)",
        tn * 1e6,
        td * 1e6,
        tn / td
    );
}
