//! Quickstart: create a virtual topology, run a neighborhood allgather
//! with each algorithm, and compare latencies on a modelled cluster.
//!
//! ```text
//! cargo run --release -p nhood-integration --example quickstart
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm, SimCost};
use nhood_topology::random::erdos_renyi;

fn main() {
    // 1. A communicator: 256 ranks on 8 nodes × 2 sockets × 16 cores,
    //    with a random sparse communication graph (δ = 0.2).
    let n = 256;
    let graph = erdos_renyi(n, 0.2, 42);
    let layout = ClusterLayout::new(8, 2, 16);
    println!("topology: {n} ranks, {} edges (density {:.3})", graph.edge_count(), graph.density());
    let comm = DistGraphComm::create_adjacent(graph, layout).expect("layout fits");

    // 2. Every rank contributes an 8-byte payload; run the collective
    //    for real (virtual executor) with each algorithm and check that
    //    all three deliver identical receive buffers.
    let payloads: Vec<Vec<u8>> = (0..n).map(|r| (r as u64).to_le_bytes().to_vec()).collect();
    let reference = comm
        .collective(&CollectiveRequest::allgather(&payloads).algorithm(Algorithm::Naive))
        .expect("naive allgather")
        .rbufs;
    for algo in [Algorithm::CommonNeighbor { k: 8 }, Algorithm::DistanceHalving] {
        let req = CollectiveRequest::allgather(&payloads).algorithm(algo);
        let got = comm.collective(&req).expect("allgather").rbufs;
        assert_eq!(got, reference, "{algo} must deliver the same data");
        println!("{algo}: receive buffers identical to naive");
    }

    // 3. Compare simulated latencies across message sizes.
    let cost = SimCost::niagara();
    println!(
        "\n{:>10} {:>12} {:>12} {:>12} {:>8}",
        "msg size", "naive", "common-nbr", "dist-halv", "speedup"
    );
    for m in [32usize, 1024, 32768, 1 << 20] {
        let tn = comm.latency(Algorithm::Naive, m, &cost).expect("sim").makespan;
        let tc = comm.latency(Algorithm::CommonNeighbor { k: 8 }, m, &cost).expect("sim").makespan;
        let td = comm.latency(Algorithm::DistanceHalving, m, &cost).expect("sim").makespan;
        println!(
            "{:>10} {:>10.1}us {:>10.1}us {:>10.1}us {:>7.2}x",
            m,
            tn * 1e6,
            tc * 1e6,
            td * 1e6,
            tn / td
        );
    }

    // 4. Distance Halving also exposes its one-time setup statistics.
    let plan = comm.plan(Algorithm::DistanceHalving).expect("plan");
    let stats = plan.selection.expect("DH plans carry selection stats");
    println!(
        "\nsetup: {} negotiation signals, agent-success rate {:.0}%",
        stats.total_signals(),
        stats.success_rate() * 100.0
    );
}
