//! A tour of every collective variant in the library on one topology:
//! the four allgather algorithms (naïve, Common Neighbor, hierarchical
//! leader, Distance Halving), the `allgatherv` ragged variant, and the
//! message-combining alltoallv — each verified against the MPI-semantics
//! reference, then ranked by simulated latency. Everything goes through
//! the collective-agnostic request API: build a [`CollectiveRequest`],
//! hand it to [`DistGraphComm::collective`].
//!
//! ```text
//! cargo run --release -p nhood-integration --example algorithm_tour
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, BlockSizes, CollectiveRequest, DistGraphComm, SimCost};
use nhood_topology::random::erdos_renyi;

fn main() {
    let n = 192;
    let graph = erdos_renyi(n, 0.25, 7);
    let layout = ClusterLayout::new(6, 2, 16);
    let comm = DistGraphComm::create_adjacent(graph.clone(), layout).expect("fits");
    let cost = SimCost::niagara();

    println!(
        "topology: {n} ranks on 6 nodes, {} edges (density {:.3})\n",
        graph.edge_count(),
        graph.density()
    );

    // --- allgather, four algorithms -------------------------------------
    let algos = [
        Algorithm::Naive,
        Algorithm::CommonNeighbor { k: 8 },
        Algorithm::HierarchicalLeader { leaders_per_node: 4 },
        Algorithm::DistanceHalving,
    ];
    let payloads: Vec<Vec<u8>> = (0..n).map(|r| vec![r as u8; 64]).collect();
    let reference = comm
        .collective(&CollectiveRequest::allgather(&payloads).algorithm(Algorithm::Naive))
        .expect("reference")
        .rbufs;

    println!("allgather (64 B payloads):");
    println!("{:>28} {:>10} {:>12} {:>12}", "algorithm", "messages", "latency", "speedup");
    let tn = comm.latency(Algorithm::Naive, 64, &cost).expect("sim").makespan;
    for algo in algos {
        let req = CollectiveRequest::allgather(&payloads).algorithm(algo);
        let out = comm.collective(&req).expect("allgather").rbufs;
        assert_eq!(out, reference, "{algo} must match the reference");
        let plan = comm.plan(algo).expect("plan");
        let t = comm.latency(algo, 64, &cost).expect("sim").makespan;
        println!(
            "{:>28} {:>10} {:>10.1}us {:>11.2}x",
            algo.to_string(),
            plan.message_count(),
            t * 1e6,
            tn / t
        );
    }

    // --- allgatherv: ragged payloads ------------------------------------
    let ragged: Vec<Vec<u8>> = (0..n).map(|r| vec![r as u8; 16 + (r % 5) * 24]).collect();
    let v_naive = comm
        .collective(&CollectiveRequest::allgatherv(&ragged).algorithm(Algorithm::Naive))
        .expect("allgatherv")
        .rbufs;
    let v_dh = comm
        .collective(&CollectiveRequest::allgatherv(&ragged).algorithm(Algorithm::DistanceHalving))
        .expect("allgatherv")
        .rbufs;
    assert_eq!(v_naive, v_dh);
    println!("\nallgatherv: ragged payloads (16..112 B) agree across algorithms");

    // --- alltoallv: distinct payload per neighbor ------------------------
    let m = 32;
    let sbufs: Vec<Vec<u8>> = (0..n)
        .map(|p| {
            let mut b = Vec::new();
            for &d in graph.out_neighbors(p) {
                b.extend((0..m).map(|i| (p * 17 + d * 3 + i) as u8));
            }
            b
        })
        .collect();
    let a_naive = comm
        .collective(
            &CollectiveRequest::alltoallv(&sbufs)
                .algorithm(Algorithm::Naive)
                .sizes(BlockSizes::uniform(m)),
        )
        .expect("alltoallv")
        .rbufs;
    let a_dh = comm
        .collective(
            &CollectiveRequest::alltoallv(&sbufs)
                .algorithm(Algorithm::DistanceHalving)
                .sizes(BlockSizes::uniform(m)),
        )
        .expect("alltoallv")
        .rbufs;
    assert_eq!(a_naive, a_dh);
    let naive_plan = comm.alltoall_plan(Algorithm::Naive).expect("plan");
    let dh_plan = comm.alltoall_plan(Algorithm::DistanceHalving).expect("plan");
    println!(
        "alltoallv: {} direct messages vs {} with distance-halving routing ({} item-hops)",
        naive_plan.message_count(),
        dh_plan.message_count(),
        dh_plan.total_items_sent()
    );
}
