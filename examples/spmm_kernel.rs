//! The SpMM application kernel (paper §VII-C): distributed `Z = X × X`
//! over block-row stripes, with the `Y` stripes moved by a neighborhood
//! allgather. Runs on a synthetic replica of a Table II matrix, verifies
//! the product against a serial multiply, and compares the collective's
//! simulated latency across algorithms.
//!
//! ```text
//! cargo run --release -p nhood-integration --example spmm_kernel [matrix]
//! ```
//!
//! `matrix` is a Table II name (default `bcsstk13`): dwt_193, Journals,
//! Heart1, ash292, bcsstk13, cegb2802, comsol.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::sim_exec::simulate;
use nhood_core::{Algorithm, DistGraphComm, SimCost};
use nhood_spmm::distributed_spmm;
use nhood_topology::matrix::generators::table2_matrix;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bcsstk13".to_string());
    let x = table2_matrix(&name, 42).unwrap_or_else(|| {
        eprintln!("unknown Table II matrix: {name}");
        std::process::exit(2);
    });
    println!("matrix {name}: {}x{}, {} nonzeros (synthetic replica)", x.rows(), x.cols(), x.nnz());

    let parts = 64;
    let layout = ClusterLayout::niagara(2, 32);
    println!("distributing over {parts} processes on 2 nodes");

    // Run the kernel end-to-end with Distance Halving and verify.
    let result =
        distributed_spmm(&x, &x, parts, &layout, Algorithm::DistanceHalving).expect("kernel runs");
    let serial = x.multiply(&x);
    let err = result.z.max_abs_diff(&serial);
    println!("Z = X*X: {} nonzeros, max |distributed - serial| = {err:.2e}", result.z.nnz());
    assert!(err < 1e-9, "distributed product must match the serial one");

    let stats = result.topology.degree_stats();
    println!(
        "derived neighborhood: {} edges, out-degree min/mean/max = {}/{:.1}/{}",
        result.topology.edge_count(),
        stats.min,
        stats.mean,
        stats.max
    );

    // Collective-latency comparison at the kernel's payload size.
    let comm =
        DistGraphComm::create_adjacent(result.topology.clone(), layout.clone()).expect("fits");
    let cost = SimCost::niagara();
    let m = result.payload_bytes;
    println!("\nY-stripe payload: {m} bytes per rank");
    let tn = simulate(&comm.plan(Algorithm::Naive).expect("plan"), &layout, m, &cost)
        .expect("sim")
        .makespan;
    for algo in [Algorithm::CommonNeighbor { k: 8 }, Algorithm::DistanceHalving] {
        let t = simulate(&comm.plan(algo).expect("plan"), &layout, m, &cost).expect("sim").makespan;
        println!("{algo}: {:.1} us ({:.2}x over naive's {:.1} us)", t * 1e6, tn / t, tn * 1e6);
    }
}
