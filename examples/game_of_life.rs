//! Conway's Game of Life on a rank grid with Moore-neighborhood tile
//! exchange — the canonical Moore workload of the paper's Fig. 6, run as
//! an actual cellular automaton.
//!
//! Each rank owns a `TILE × TILE` block of a periodic universe. A step
//! needs the full tiles of all 8 Moore neighbors (corner cells need
//! diagonal neighbors), exchanged with a neighborhood allgather. A
//! glider is launched and the example checks the classic property that
//! after 4 generations the glider has translated by (1, 1) — under both
//! the naïve and the Distance Halving exchange.
//!
//! ```text
//! cargo run --release -p nhood-integration --example game_of_life
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm};
use nhood_topology::moore::moore_on_grid;

const GRID: usize = 8; // 8x8 ranks
const TILE: usize = 6; // 6x6 cells per rank
const SIDE: usize = GRID * TILE;

type Universe = Vec<Vec<u8>>; // per-rank flattened tiles

fn cell(u: &Universe, r: usize, c: usize) -> u8 {
    let (r, c) = (r % SIDE, c % SIDE);
    let rank = (r / TILE) * GRID + c / TILE;
    u[rank][(r % TILE) * TILE + c % TILE]
}

/// One generation computed from a rank's own tile plus its 8 neighbor
/// tiles (as delivered by the allgather).
fn step(comm: &DistGraphComm, u: &Universe, algo: Algorithm) -> Universe {
    let payloads: Vec<Vec<u8>> = u.clone();
    let req = CollectiveRequest::allgather(&payloads).algorithm(algo);
    let rbufs = comm.collective(&req).expect("tile exchange").rbufs;
    let g = comm.graph();
    let tile_bytes = TILE * TILE;
    (0..GRID * GRID)
        .map(|me| {
            // assemble a lookup over the 3x3 tile neighborhood
            let mut tiles: std::collections::HashMap<usize, &[u8]> =
                std::collections::HashMap::new();
            tiles.insert(me, &u[me][..]);
            for (i, &src) in g.in_neighbors(me).iter().enumerate() {
                tiles.insert(src, &rbufs[me][i * tile_bytes..(i + 1) * tile_bytes]);
            }
            let (gy, gx) = (me / GRID, me % GRID);
            let global = |r: isize, c: isize| -> u8 {
                let gr = (gy * TILE) as isize + r;
                let gc = (gx * TILE) as isize + c;
                let gr = gr.rem_euclid(SIDE as isize) as usize;
                let gc = gc.rem_euclid(SIDE as isize) as usize;
                let owner = (gr / TILE) * GRID + gc / TILE;
                tiles.get(&owner).map_or(0, |t| t[(gr % TILE) * TILE + gc % TILE])
            };
            let mut next = vec![0u8; tile_bytes];
            for r in 0..TILE as isize {
                for c in 0..TILE as isize {
                    let mut live = 0u8;
                    for dr in -1..=1isize {
                        for dc in -1..=1isize {
                            if (dr, dc) != (0, 0) {
                                live += global(r + dr, c + dc);
                            }
                        }
                    }
                    let me_cell = global(r, c);
                    next[(r * TILE as isize + c) as usize] =
                        u8::from(live == 3 || (me_cell == 1 && live == 2));
                }
            }
            next
        })
        .collect()
}

fn glider_universe() -> Universe {
    let mut u: Universe = vec![vec![0u8; TILE * TILE]; GRID * GRID];
    // glider at global (10, 10): cells (0,1),(1,2),(2,0),(2,1),(2,2)
    for (dr, dc) in [(0usize, 1usize), (1, 2), (2, 0), (2, 1), (2, 2)] {
        let (r, c) = (10 + dr, 10 + dc);
        let rank = (r / TILE) * GRID + c / TILE;
        u[rank][(r % TILE) * TILE + c % TILE] = 1;
    }
    u
}

fn live_cells(u: &Universe) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for r in 0..SIDE {
        for c in 0..SIDE {
            if cell(u, r, c) == 1 {
                out.push((r, c));
            }
        }
    }
    out
}

fn main() {
    let graph = moore_on_grid(&[GRID, GRID], 1);
    let layout = ClusterLayout::new(4, 2, 8);
    let comm = DistGraphComm::create_adjacent(graph, layout).expect("fits");
    println!(
        "Game of Life: {SIDE}x{SIDE} universe over {} ranks (Moore r=1 exchange)",
        GRID * GRID
    );

    for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
        let mut u = glider_universe();
        let start = live_cells(&u);
        for _ in 0..4 {
            u = step(&comm, &u, algo);
        }
        let end = live_cells(&u);
        // after 4 generations a glider translates by (+1, +1)
        let shifted: Vec<(usize, usize)> =
            start.iter().map(|&(r, c)| ((r + 1) % SIDE, (c + 1) % SIDE)).collect();
        assert_eq!(end, shifted, "{algo}: glider did not translate correctly");
        println!("{algo}: glider translated by (1,1) after 4 generations");
    }

    // and 16 more generations across tile boundaries for good measure
    let mut a = glider_universe();
    let mut b = glider_universe();
    for _ in 0..16 {
        a = step(&comm, &a, Algorithm::Naive);
        b = step(&comm, &b, Algorithm::DistanceHalving);
    }
    assert_eq!(a, b, "universes diverged between algorithms");
    println!("16 further generations: universes identical under both algorithms");
}
