//! Distributed breadth-first search with frontier exchange over
//! neighborhood **alltoall** — the irregular-application use case of
//! Kandalla et al. (the paper's reference [13], "2D BFS with
//! neighborhood collectives").
//!
//! A large graph is partitioned over ranks by vertex blocks; the rank
//! communication topology is derived from which partitions share edges
//! (exactly like the SpMM derivation). Each BFS level, every rank sends
//! each neighbor the frontier vertices that have edges into that
//! neighbor's partition — distinct data per neighbor, i.e. alltoall.
//! The example runs the same BFS with naïve and Distance Halving routing
//! and asserts identical distance vectors.
//!
//! ```text
//! cargo run --release -p nhood-integration --example bfs_frontier
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, BlockSizes, CollectiveRequest, DistGraphComm};
use nhood_topology::spmm_graph::BlockPartition;
use nhood_topology::{matrix::generators, CsrMatrix};

const VERTICES: usize = 1200;
const RANKS: usize = 48;

/// Fixed-size frontier payload: u32 count + vertex ids (padded).
const MAX_FRONTIER: usize = 64;

fn pack_frontier(vs: &[u32]) -> Vec<u8> {
    assert!(vs.len() <= MAX_FRONTIER, "frontier chunk overflow");
    let mut out = Vec::with_capacity(4 + MAX_FRONTIER * 4);
    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.resize(4 + MAX_FRONTIER * 4, 0);
    out
}

fn unpack_frontier(bytes: &[u8]) -> Vec<u32> {
    let k = u32::from_le_bytes(bytes[..4].try_into().expect("4B")) as usize;
    (0..k)
        .map(|i| u32::from_le_bytes(bytes[4 + i * 4..8 + i * 4].try_into().expect("4B")))
        .collect()
}

/// Serial reference BFS.
fn serial_bfs(adj: &CsrMatrix, source: usize) -> Vec<i64> {
    let mut dist = vec![-1i64; adj.rows()];
    dist[source] = 0;
    let mut frontier = vec![source];
    let mut level = 0i64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in adj.row_cols(v) {
                if dist[u] < 0 {
                    dist[u] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Distributed BFS: frontier chunks move by neighborhood alltoall.
fn distributed_bfs(
    adj: &CsrMatrix,
    part: &BlockPartition,
    comm: &DistGraphComm,
    algo: Algorithm,
    source: usize,
) -> Vec<i64> {
    let n = adj.rows();
    let graph = comm.graph();
    let mut dist = vec![-1i64; n];
    dist[source] = 0;
    // per-rank local frontier
    let mut frontiers: Vec<Vec<u32>> = vec![Vec::new(); RANKS];
    frontiers[part.owner(source)].push(source as u32);
    let m = 4 + MAX_FRONTIER * 4;
    let mut level = 0i64;

    loop {
        level += 1;
        // Each rank expands its frontier locally and buckets the
        // discovered remote edges per destination partition.
        let mut outgoing: Vec<std::collections::BTreeMap<usize, Vec<u32>>> =
            vec![Default::default(); RANKS];
        let mut local_next: Vec<Vec<u32>> = vec![Vec::new(); RANKS];
        for (r, frontier) in frontiers.iter().enumerate() {
            for &v in frontier {
                for &u in adj.row_cols(v as usize) {
                    let owner = part.owner(u);
                    if owner == r {
                        if dist[u] < 0 {
                            dist[u] = level;
                            local_next[r].push(u as u32);
                        }
                    } else {
                        outgoing[r].entry(owner).or_default().push(u as u32);
                    }
                }
            }
        }
        // Exchange: one fixed-size chunk per topology edge via alltoall.
        let sbufs: Vec<Vec<u8>> = (0..RANKS)
            .map(|r| {
                let mut buf = Vec::new();
                for &d in graph.out_neighbors(r) {
                    let mut vs = outgoing[r].get(&d).cloned().unwrap_or_default();
                    vs.sort_unstable();
                    vs.dedup();
                    vs.truncate(MAX_FRONTIER);
                    buf.extend(pack_frontier(&vs));
                }
                buf
            })
            .collect();
        let req =
            CollectiveRequest::alltoallv(&sbufs).algorithm(algo).sizes(BlockSizes::uniform(m));
        let rbufs = comm.collective(&req).expect("frontier exchange").rbufs;
        // Integrate remote discoveries.
        let mut next: Vec<Vec<u32>> = local_next;
        for r in 0..RANKS {
            for (i, _) in graph.in_neighbors(r).iter().enumerate() {
                for u in unpack_frontier(&rbufs[r][i * m..(i + 1) * m]) {
                    if dist[u as usize] < 0 {
                        dist[u as usize] = level;
                        next[r].push(u);
                    }
                }
            }
        }
        if next.iter().all(Vec::is_empty) {
            return dist;
        }
        frontiers = next;
    }
}

fn main() {
    // A banded graph keeps per-level frontiers under MAX_FRONTIER.
    let adj = generators::synth_symmetric(
        VERTICES,
        9000,
        generators::StructureClass::Banded { half_bandwidth: 40 },
        11,
    );
    let part = BlockPartition::new(VERTICES, RANKS);
    let topology = nhood_topology::spmm_graph::spmm_topology_with(&adj, &part);
    println!(
        "BFS over {VERTICES} vertices on {RANKS} ranks; rank topology has {} edges",
        topology.edge_count()
    );
    let layout = ClusterLayout::new(3, 2, 8);
    let comm = DistGraphComm::create_adjacent(topology, layout).expect("fits");

    let want = serial_bfs(&adj, 0);
    for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
        let got = distributed_bfs(&adj, &part, &comm, algo, 0);
        assert_eq!(got, want, "{algo}: distances diverge from serial BFS");
        println!("{algo}: distances match serial BFS");
    }
    let reached = want.iter().filter(|&&d| d >= 0).count();
    let diameter = want.iter().copied().max().unwrap_or(0);
    println!("reached {reached}/{VERTICES} vertices, eccentricity from source = {diameter}");
}
