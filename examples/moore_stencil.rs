//! A Moore-neighborhood stencil computation — the structured workload of
//! the paper's Fig. 6, run as an actual iterative halo exchange.
//!
//! Each rank owns one cell of a 2-D periodic grid holding a vector of
//! values; every iteration it averages its own state with all
//! `(2r+1)² − 1` Moore neighbors' states, exchanged with a neighborhood
//! allgather. The example verifies Distance Halving against the naïve
//! exchange every iteration, then reports simulated cluster latencies.
//!
//! ```text
//! cargo run --release -p nhood-integration --example moore_stencil
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm, SimCost};
use nhood_topology::moore::{moore_on_grid, MooreSpec};

const GRID: [usize; 2] = [16, 16];
const RADIUS: usize = 2;
const VALUES_PER_RANK: usize = 32;
const ITERATIONS: usize = 5;

fn pack(state: &[f64]) -> Vec<u8> {
    state.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn unpack(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

fn main() {
    let n: usize = GRID.iter().product();
    let spec = MooreSpec { r: RADIUS, d: GRID.len() };
    let graph = moore_on_grid(&GRID, RADIUS);
    println!(
        "{}x{} periodic grid, Moore r={RADIUS}: {} neighbors per rank",
        GRID[0],
        GRID[1],
        spec.neighbor_count()
    );
    let layout = ClusterLayout::new(8, 2, 16);
    let comm = DistGraphComm::create_adjacent(graph.clone(), layout).expect("fits");

    // Initial state: rank r's vector is seeded from its rank id.
    let mut state: Vec<Vec<f64>> =
        (0..n).map(|r| (0..VALUES_PER_RANK).map(|i| (r * 31 + i) as f64).collect()).collect();

    for it in 0..ITERATIONS {
        let payloads: Vec<Vec<u8>> = state.iter().map(|s| pack(s)).collect();
        let dh = comm
            .collective(
                &CollectiveRequest::allgather(&payloads).algorithm(Algorithm::DistanceHalving),
            )
            .expect("allgather")
            .rbufs;
        let naive = comm
            .collective(&CollectiveRequest::allgather(&payloads).algorithm(Algorithm::Naive))
            .expect("allgather")
            .rbufs;
        assert_eq!(dh, naive, "iteration {it}: algorithms disagree");

        // Relaxation: new state = mean of self + neighbors.
        let deg = spec.neighbor_count() as f64;
        for (r, rbuf) in dh.iter().enumerate() {
            let mut acc = state[r].clone();
            for chunk in rbuf.chunks_exact(VALUES_PER_RANK * 8) {
                for (a, v) in acc.iter_mut().zip(unpack(chunk)) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= deg + 1.0;
            }
            state[r] = acc;
        }
        let mean: f64 =
            state.iter().flat_map(|s| s.iter()).sum::<f64>() / (n * VALUES_PER_RANK) as f64;
        println!("iteration {it}: grid mean {mean:.3}");
    }

    // Periodic averaging conserves the mean; spread shrinks every step.
    let cost = SimCost::niagara();
    let m = VALUES_PER_RANK * 8;
    let tn = comm.latency(Algorithm::Naive, m, &cost).expect("sim").makespan;
    let td = comm.latency(Algorithm::DistanceHalving, m, &cost).expect("sim").makespan;
    println!(
        "\nper-exchange latency at {m} B payloads: naive {:.1} us, distance-halving {:.1} us ({:.2}x)",
        tn * 1e6,
        td * 1e6,
        tn / td
    );
}
