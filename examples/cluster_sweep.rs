//! Capacity-planning sweep: how does each algorithm's latency scale with
//! cluster size, density and message size? A small self-serve version of
//! the paper's Fig. 5 for users sizing their own deployments.
//!
//! ```text
//! cargo run --release -p nhood-integration --example cluster_sweep [delta]
//! ```

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, DistGraphComm, SimCost};
use nhood_topology::random::erdos_renyi;

fn main() {
    let delta: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.3);
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0, 1]");
    let cost = SimCost::niagara();

    println!("Random sparse graph, delta = {delta}; latencies in microseconds\n");
    println!(
        "{:>6} {:>6} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "ranks", "nodes", "msg", "naive", "common-nbr", "dist-halv", "DH gain"
    );
    for (nodes, rpn) in [(4usize, 32usize), (8, 32), (16, 32)] {
        let ranks = nodes * rpn;
        let graph = erdos_renyi(ranks, delta, 42);
        let layout = ClusterLayout::niagara(nodes, rpn);
        let comm = DistGraphComm::create_adjacent(graph, layout).expect("fits");
        let naive = comm.plan(Algorithm::Naive).expect("plan");
        let dh = comm.plan(Algorithm::DistanceHalving).expect("plan");
        // the paper sweeps K and keeps the best; do the same at 1 KB
        let (best_k, _) = comm.best_common_neighbor(&[2, 4, 8, 16], 1024, &cost).expect("sweep");
        let cn = comm.plan(Algorithm::CommonNeighbor { k: best_k }).expect("plan");
        for m in [64usize, 4096, 262_144] {
            let tn = nhood_core::exec::sim_exec::simulate(&naive, comm.layout(), m, &cost)
                .expect("sim")
                .makespan;
            let tc = nhood_core::exec::sim_exec::simulate(&cn, comm.layout(), m, &cost)
                .expect("sim")
                .makespan;
            let td = nhood_core::exec::sim_exec::simulate(&dh, comm.layout(), m, &cost)
                .expect("sim")
                .makespan;
            println!(
                "{:>6} {:>6} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
                ranks,
                nodes,
                m,
                tn * 1e6,
                tc * 1e6,
                td * 1e6,
                tn / td
            );
        }
    }
    println!("\n(CN column uses the best K per scale, as in the paper)");
}
