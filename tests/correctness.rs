//! Cross-crate correctness: every algorithm × topology family × layout
//! must produce exactly the receive buffers the MPI specification
//! defines, through both real executors.

use nhood_cluster::{ClusterLayout, Placement};
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm, Executor, Threaded, Virtual};
use nhood_topology::moore::moore_on_grid;
use nhood_topology::random::{erdos_renyi, erdos_renyi_symmetric};
use nhood_topology::spmm_graph::spmm_topology;
use nhood_topology::Topology;

const ALGOS: [Algorithm; 6] = [
    Algorithm::Naive,
    Algorithm::CommonNeighbor { k: 4 },
    Algorithm::CommonNeighbor { k: 16 },
    Algorithm::DistanceHalving,
    Algorithm::HierarchicalLeader { leaders_per_node: 1 },
    Algorithm::HierarchicalLeader { leaders_per_node: 3 },
];

fn check_all(graph: &Topology, layout: &ClusterLayout, m: usize, label: &str) {
    let comm = DistGraphComm::create_adjacent(graph.clone(), layout.clone())
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let payloads = test_payloads(graph.n(), m, 1234);
    let want = reference_allgather(graph, &payloads);
    for algo in ALGOS {
        let plan = comm.plan(algo).unwrap_or_else(|e| panic!("{label} {algo}: {e}"));
        plan.validate(graph).unwrap_or_else(|e| panic!("{label} {algo}: {e}"));
        let got = Virtual
            .run_simple(&plan, graph, &payloads)
            .unwrap_or_else(|e| panic!("{label} {algo} virtual: {e}"));
        assert_eq!(got, want, "{label} {algo} virtual output");
        if graph.n() <= 128 {
            let got = Threaded
                .run_simple(&plan, graph, &payloads)
                .unwrap_or_else(|e| panic!("{label} {algo} threaded: {e}"));
            assert_eq!(got, want, "{label} {algo} threaded output");
        }
    }
}

#[test]
fn random_sparse_graphs_all_densities() {
    let layout = ClusterLayout::new(4, 2, 8); // 64 ranks
    for delta in [0.02, 0.1, 0.35, 0.8] {
        let g = erdos_renyi(64, delta, 7);
        check_all(&g, &layout, 16, &format!("rsg delta={delta}"));
    }
}

#[test]
fn symmetric_random_graphs() {
    let layout = ClusterLayout::new(3, 2, 8); // 48 ranks
    let g = erdos_renyi_symmetric(48, 0.2, 3);
    check_all(&g, &layout, 8, "symmetric rsg");
}

#[test]
fn moore_neighborhoods() {
    let layout = ClusterLayout::new(4, 2, 8);
    for (dims, r) in [(vec![8usize, 8], 1), (vec![8, 8], 2), (vec![4, 4, 4], 1)] {
        let g = moore_on_grid(&dims, r);
        check_all(&g, &layout, 24, &format!("moore {dims:?} r={r}"));
    }
}

#[test]
fn spmm_derived_topologies() {
    use nhood_topology::matrix::generators::{synth_symmetric, StructureClass};
    let layout = ClusterLayout::new(4, 2, 8);
    for class in [
        StructureClass::Banded { half_bandwidth: 20 },
        StructureClass::Uniform,
        StructureClass::BlockDense { block: 32 },
    ] {
        let x = synth_symmetric(256, 4000, class, 5);
        let g = spmm_topology(&x, 64);
        check_all(&g, &layout, 32, &format!("spmm {class:?}"));
    }
}

#[test]
fn degenerate_topologies() {
    let layout = ClusterLayout::new(2, 2, 4);
    // empty graph: nobody sends anything
    check_all(&Topology::from_edges(16, []), &layout, 8, "empty");
    // one directed edge crossing the whole machine
    check_all(&Topology::from_edges(16, [(0, 15)]), &layout, 8, "single edge");
    // a star: rank 0 broadcasts to everyone, receives from everyone
    let star: Vec<(usize, usize)> = (1..16).flat_map(|i| [(0usize, i), (i, 0usize)]).collect();
    check_all(&Topology::from_edges(16, star), &layout, 8, "star");
    // a directed ring
    let ring: Vec<(usize, usize)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
    check_all(&Topology::from_edges(16, ring), &layout, 8, "ring");
}

#[test]
fn complete_graph() {
    let layout = ClusterLayout::new(2, 2, 6); // 24 ranks
    let edges =
        (0..24usize).flat_map(|i| (0..24usize).filter(move |&j| j != i).map(move |j| (i, j)));
    check_all(&Topology::from_edges(24, edges.collect::<Vec<_>>()), &layout, 8, "complete");
}

#[test]
fn odd_sized_communicators() {
    // non-power-of-two rank counts with spare capacity on the last node
    for n in [13usize, 21, 37, 51] {
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let g = erdos_renyi(n, 0.3, n as u64);
        check_all(&g, &layout, 8, &format!("odd n={n}"));
    }
}

#[test]
fn various_socket_sizes() {
    // L = 1 (every rank its own socket) up to everything on one socket
    let g = erdos_renyi(32, 0.3, 9);
    for (nodes, sockets, cores) in [(16, 2, 1), (8, 2, 2), (2, 2, 8), (1, 2, 16), (1, 1, 32)] {
        let layout = ClusterLayout::new(nodes, sockets, cores);
        check_all(&g, &layout, 8, &format!("layout {nodes}x{sockets}x{cores}"));
    }
}

#[test]
fn zero_and_large_payloads() {
    let layout = ClusterLayout::new(2, 2, 4);
    let g = erdos_renyi(16, 0.4, 2);
    check_all(&g, &layout, 0, "zero payload");
    check_all(&g, &layout, 65536, "64KB payload");
}

#[test]
fn dh_requires_block_placement_but_others_do_not() {
    let g = erdos_renyi(16, 0.3, 1);
    let rr = ClusterLayout::new(4, 2, 2).with_placement(Placement::RoundRobinNodes);
    let comm = DistGraphComm::create_adjacent(g.clone(), rr).unwrap();
    assert!(comm.plan(Algorithm::DistanceHalving).is_err());
    // naive and CN are placement-agnostic
    let payloads = test_payloads(16, 8, 1);
    let want = reference_allgather(&g, &payloads);
    for algo in [Algorithm::Naive, Algorithm::CommonNeighbor { k: 4 }] {
        let req = CollectiveRequest::allgather(&payloads).algorithm(algo);
        assert_eq!(comm.collective(&req).unwrap().rbufs, want);
    }
}
