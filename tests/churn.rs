//! Churn suite: topology mutation via `DistGraphComm::mutate` and
//! mid-collective link-down recovery.
//!
//! The invariant under test: **a repaired plan is indistinguishable, by
//! its outputs, from a from-scratch build on the mutated topology** —
//! property-tested across sizes, densities and add/remove/add-back
//! churn sequences on all three executor backends — and a `LinkDown`
//! mid-run heals by repair, not by falling back to naive, whenever the
//! damage is under threshold.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::exec::{ExecOptions, Executor, Sim, Threaded, Virtual};
use nhood_core::fault::FaultPlan;
use nhood_core::BlockArena;
use nhood_core::{
    Algorithm, CollectivePlan, CollectiveRequest, DistGraphComm, ExecBackend, RobustPolicy,
};
use nhood_topology::{Rank, Topology};
use std::time::Duration;

fn layout_for(n: usize) -> ClusterLayout {
    ClusterLayout::new(n.div_ceil(8), 2, 4)
}

/// Picks a deterministic churn set against `g`: `k` existing edges to
/// remove and `k` non-edges to add.
type EdgeSet = Vec<(Rank, Rank)>;

fn churn_set(g: &Topology, k: usize, seed: u64) -> (EdgeSet, EdgeSet) {
    let edges: Vec<_> = g.edges().collect();
    let n = g.n();
    let mut removed: Vec<_> =
        (0..k).map(|i| edges[(seed as usize + i * 37) % edges.len()]).collect();
    removed.sort_unstable();
    removed.dedup();
    let mut added = Vec::new();
    let mut x = seed;
    while added.len() < k {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (x >> 16) as usize % n;
        let v = (x >> 40) as usize % n;
        if u != v && !g.has_edge(u, v) && !added.contains(&(u, v)) {
            added.push((u, v));
        }
    }
    (added, removed)
}

/// The repaired live plan must reproduce the reference on every backend,
/// and agree with a from-scratch build over the same mutated topology.
fn assert_plan_matches_scratch(comm: &DistGraphComm, step: usize) {
    let g = comm.graph();
    let plan: &CollectivePlan = comm.churn_plan().expect("mutate leaves a live plan");
    let payloads = test_payloads(g.n(), 8, 0xC0 + step as u64);
    let want = reference_allgather(g, &payloads);

    // Backend 1 — virtual.
    assert_eq!(
        Virtual.run_simple(plan, g, &payloads).unwrap(),
        want,
        "step {step}: repaired plan diverges from reference (virtual)"
    );

    // Backend 2 — threaded.
    let opts = ExecOptions::new().recv_timeout(Duration::from_secs(5));
    let out = Threaded.run(plan, g, &payloads, &mut BlockArena::new(), &opts).unwrap();
    assert_eq!(out.rbufs, want, "step {step}: repaired plan diverges from reference (threaded)");

    // Backend 3 — the simulator: the repaired schedule must run to
    // completion in virtual time (no real bytes to compare).
    let sim = Sim::new(comm.layout().clone())
        .run(plan, g, &payloads, &mut BlockArena::new(), &ExecOptions::new())
        .unwrap()
        .sim
        .expect("sim backend returns a report");
    assert!(
        sim.makespan.is_finite() && sim.makespan > 0.0,
        "step {step}: repaired schedule failed to simulate (makespan {})",
        sim.makespan
    );

    // From-scratch equivalence: a fresh communicator over the mutated
    // topology must produce the same outputs.
    let fresh = DistGraphComm::create_adjacent(g.clone(), comm.layout().clone()).unwrap();
    let scratch = fresh.plan(Algorithm::DistanceHalving).unwrap();
    assert_eq!(
        Virtual.run_simple(&scratch, g, &payloads).unwrap(),
        want,
        "step {step}: from-scratch build disagrees with reference"
    );
}

/// One add → remove (restore) → add-back churn sequence; returns how
/// many of the three mutations were surgical repairs.
fn churn_roundtrip(n: usize, delta: f64, seed: u64, k: usize) -> usize {
    let g = nhood_topology::random::erdos_renyi(n, delta, seed);
    let layout = layout_for(n);
    let mut comm = DistGraphComm::create_adjacent(g, layout).unwrap();
    comm.mutate(&[], &[]).unwrap(); // warm-up: cold build into the slot
    let (added, removed) = churn_set(comm.graph(), k, seed ^ 0x5EED);

    let steps = [
        (added.clone(), removed.clone()), // churn forward
        (removed.clone(), added.clone()), // restore the original neighborhood
        (added, removed),                 // add back
    ];
    let mut surgical = 0;
    for (i, (add, rm)) in steps.iter().enumerate() {
        let rep = comm.mutate(add, rm).unwrap();
        assert_eq!(rep.edges_added, add.len(), "step {i}: add count");
        assert_eq!(rep.edges_removed, rm.len(), "step {i}: remove count");
        if !rep.full_rebuild {
            surgical += 1;
            assert!(
                rep.damage_frac <= RobustPolicy::default().repair.max_damage_frac,
                "step {i}: surgical repair above the damage threshold ({})",
                rep.damage_frac
            );
        }
        assert_plan_matches_scratch(&comm, i);
    }
    surgical
}

#[test]
fn churn_roundtrips_match_scratch_builds_sparse() {
    // δ = 0.1: sparse graphs, where a removed edge is proportionally a
    // bigger hit to the neighborhood.
    let s = churn_roundtrip(32, 0.1, 11, 2);
    assert!(s >= 1, "no churn step repaired surgically at n=32 δ=0.1");
}

#[test]
fn churn_roundtrips_match_scratch_builds_medium() {
    let s = churn_roundtrip(48, 0.3, 13, 2) + churn_roundtrip(64, 0.3, 17, 3);
    assert!(s >= 2, "medium-density churn should mostly repair surgically");
}

#[test]
fn churn_roundtrips_match_scratch_builds_dense() {
    let s = churn_roundtrip(64, 0.6, 19, 3);
    assert!(s >= 1, "no churn step repaired surgically at n=64 δ=0.6");
}

#[test]
fn churn_roundtrips_match_scratch_builds_at_128() {
    // The acceptance ceiling: n = 128 with the paper's mid density.
    let s = churn_roundtrip(128, 0.3, 23, 4);
    assert!(s >= 1, "no churn step repaired surgically at n=128 δ=0.3");
}

/// Finds a (src, dst, phase) the DH plan sends over that is NOT a graph
/// edge in either direction — killing it cannot change the reference
/// output, only the relay routing.
fn dh_only_link(plan: &CollectivePlan, g: &Topology) -> Option<(usize, usize, usize)> {
    for (r, prog) in plan.per_rank.iter().enumerate() {
        for (k, ph) in prog.iter().enumerate() {
            for m in &ph.sends {
                if !g.has_edge(r, m.peer) && !g.has_edge(m.peer, r) {
                    return Some((r, m.peer, k));
                }
            }
        }
    }
    None
}

/// The acceptance bar from the issue: a `LinkDown` surfacing mid-run at
/// 64 ranks recovers **via repair** — same algorithm, no naive fallback
/// — and the report records the repair truthfully.
#[test]
fn acceptance_64_rank_link_down_recovers_by_repair() {
    let g = nhood_topology::random::erdos_renyi(64, 0.4, 2024);
    let layout = ClusterLayout::new(8, 2, 4);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
    let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
    let (src, dst, phase) = dh_only_link(&plan, &g).expect("DH at δ=0.4 uses relay links");

    let payloads = test_payloads(64, 16, 5);
    let want = reference_allgather(&g, &payloads);

    let comm = comm.with_fault_plan(FaultPlan::seeded(7).with_link_down(src, dst, phase));
    let req = CollectiveRequest::allgather(&payloads)
        .algorithm(Algorithm::DistanceHalving)
        .robust(true)
        .backend(ExecBackend::Threaded);
    let out = comm.collective(&req).unwrap();
    let report = out.report.expect("robust runs carry an execution report");
    assert_eq!(out.rbufs, want, "repaired run corrupted buffers ({report})");
    assert_eq!(report.used, Algorithm::DistanceHalving, "must not fall back to naive");
    assert!(report.fallback.is_none(), "healed runs report no fallback: {report}");
    assert!(report.repairs >= 1, "the link-down must surface as a repair: {report}");
    assert!(report.faults.link_downs >= 1, "fault tally must record the dead link");
    assert!(!report.clean(), "a repaired run is not a clean run");
    assert!(report.completeness.is_full(), "rerouting must preserve completeness here");
}

/// The same dead link with repair disabled: the run must degrade to
/// naive and say so — `ExecReport` is truthful in both outcomes.
#[test]
fn link_down_without_repair_reports_fallback_truthfully() {
    let g = nhood_topology::random::erdos_renyi(64, 0.4, 2024);
    let layout = ClusterLayout::new(8, 2, 4);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
    let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
    let (src, dst, phase) = dh_only_link(&plan, &g).expect("DH at δ=0.4 uses relay links");

    let payloads = test_payloads(64, 16, 5);
    let want = reference_allgather(&g, &payloads);

    let comm = comm
        .with_policy(RobustPolicy { repair_link_down: false, ..RobustPolicy::default() })
        .with_fault_plan(FaultPlan::seeded(7).with_link_down(src, dst, phase));
    let req = CollectiveRequest::allgather(&payloads)
        .algorithm(Algorithm::DistanceHalving)
        .robust(true)
        .backend(ExecBackend::Threaded);
    let out = comm.collective(&req).unwrap();
    let report = out.report.expect("robust runs carry an execution report");
    assert_eq!(out.rbufs, want, "naive fallback corrupted buffers ({report})");
    assert_eq!(report.used, Algorithm::Naive, "repair disabled: must fall back");
    assert!(report.fallback.is_some(), "fallback must be reported: {report}");
    assert_eq!(report.repairs, 0, "no repair happened, none may be reported");
    assert!(report.faults.link_downs >= 1, "the failed primary's faults must survive");
}
