//! Chaos suite: seeded fault schedules against the threaded executor,
//! the distributed negotiation, and the robust communicator API.
//!
//! The invariant under test everywhere: **a faulted run either returns
//! buffers exactly equal to `reference_allgather`, or a typed
//! error/fallback — never silently corrupted data, never a hang.**
//! Every schedule is seeded, so failures reproduce exactly.

use nhood_cluster::ClusterLayout;
use nhood_core::builder::BuildError;
use nhood_core::distributed_builder::build_pattern_distributed_faulty;
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::exec::{ExecOptions, Executor, Threaded, Virtual};
use nhood_core::fault::FaultPlan;
use nhood_core::lower::lower;
use nhood_core::BlockArena;
use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm, ExecBackend, RobustPolicy};
use nhood_topology::{MooreSpec, Topology};
use std::time::{Duration, Instant};

/// Runs `plan`-style chaos on the robust communicator: every outcome
/// must be exact-or-typed. Returns (ok, fallback, error) tallies.
fn robust_sweep(
    graph: &Topology,
    layout: ClusterLayout,
    algo: Algorithm,
    schedules: &[FaultPlan],
    deadline: Duration,
) -> (usize, usize, usize) {
    let payloads = test_payloads(graph.n(), 16, 0xBEEF);
    let want = reference_allgather(graph, &payloads);
    let (mut ok, mut fell, mut err) = (0, 0, 0);
    for fp in schedules {
        let comm = DistGraphComm::create_adjacent(graph.clone(), layout.clone())
            .unwrap()
            .with_policy(RobustPolicy {
                recv_timeout: deadline,
                negotiation_timeout: deadline,
                ..RobustPolicy::default()
            })
            .with_fault_plan(fp.clone());
        let t0 = Instant::now();
        let req = CollectiveRequest::allgather(&payloads)
            .algorithm(algo)
            .robust(true)
            .backend(ExecBackend::Threaded);
        match comm.collective(&req) {
            Ok(out) => {
                let report = out.report.expect("robust runs carry an execution report");
                assert_eq!(
                    out.rbufs,
                    want,
                    "seed {}: corrupted buffers ({report}) — the one forbidden outcome",
                    fp.seed()
                );
                if report.clean() {
                    ok += 1;
                } else {
                    fell += 1;
                }
            }
            Err(_) => err += 1, // typed by construction
        }
        assert!(
            t0.elapsed() < deadline * 4 + Duration::from_secs(5),
            "seed {}: run exceeded its termination bound",
            fp.seed()
        );
    }
    (ok, fell, err)
}

#[test]
fn erdos_renyi_drop_delay_reorder_sweep() {
    let g = nhood_topology::random::erdos_renyi(32, 0.3, 17);
    let layout = ClusterLayout::new(4, 2, 4);
    for &p in &[0.02, 0.1, 0.3] {
        let schedules: Vec<FaultPlan> = (0..4)
            .map(|s| {
                FaultPlan::seeded(s * 1009 + 1)
                    .with_message_drop(p)
                    .with_message_delay(p, Duration::from_micros(300))
                    .with_message_reorder(p)
            })
            .collect();
        let (ok, fell, err) = robust_sweep(
            &g,
            layout.clone(),
            Algorithm::DistanceHalving,
            &schedules,
            Duration::from_millis(1500),
        );
        // every run classified; moderate rates should mostly complete
        assert_eq!(ok + fell + err, 4);
        if p <= 0.1 {
            assert!(ok + fell >= 3, "drop {p}: only {ok}+{fell} of 4 runs produced buffers");
        }
    }
}

#[test]
fn moore_topology_survives_chaos() {
    // 8×8 Moore neighborhood graph (radius 1): the paper's structured
    // stencil case, denser per-rank than ER at the same n
    let g = nhood_topology::moore::moore(64, MooreSpec { r: 1, d: 2 });
    let layout = ClusterLayout::new(8, 2, 4);
    let schedules: Vec<FaultPlan> = (0..3)
        .map(|s| FaultPlan::seeded(0xA0 ^ s).with_message_drop(0.05).with_message_reorder(0.1))
        .collect();
    let (ok, fell, err) =
        robust_sweep(&g, layout, Algorithm::DistanceHalving, &schedules, Duration::from_secs(5));
    assert_eq!(ok + fell + err, 3);
    assert!(
        ok + fell == 3,
        "5% drops must be survivable on Moore(64): ok={ok} fell={fell} err={err}"
    );
}

#[test]
fn naive_plan_is_chaos_tolerant_too() {
    let g = nhood_topology::random::erdos_renyi(24, 0.4, 23);
    let layout = ClusterLayout::new(3, 2, 4);
    let schedules: Vec<FaultPlan> = (0..3)
        .map(|s| FaultPlan::seeded(100 + s).with_message_drop(0.08).with_message_duplication(0.1))
        .collect();
    let (ok, _, err) =
        robust_sweep(&g, layout, Algorithm::Naive, &schedules, Duration::from_secs(5));
    assert_eq!(ok, 3, "err={err}");
}

#[test]
fn crashed_rank_is_timeout_class_never_a_hang() {
    // regression: a crashed rank used to leave peers blocked on recv
    // forever; it must now surface as a timeout-class typed error within
    // the configured budget on every executor path
    let g = nhood_topology::random::erdos_renyi(16, 0.4, 31);
    let layout = ClusterLayout::new(2, 2, 4);
    let plan = {
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        comm.plan(Algorithm::DistanceHalving).unwrap()
    };
    let payloads = test_payloads(16, 8, 4);
    for crash_phase in 0..plan.phase_count().min(3) {
        let fp = FaultPlan::seeded(7).with_crashed_rank(5, crash_phase);
        let opts = ExecOptions::new().recv_timeout(Duration::from_millis(200)).fault(&fp);
        let t0 = Instant::now();
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        assert!(err.is_timeout_class(), "crash at phase {crash_phase}: got {err:?}");
        assert!(t0.elapsed() < Duration::from_secs(10), "crash at phase {crash_phase} hung");
    }
}

#[test]
fn negotiation_chaos_yields_valid_pattern_or_typed_timeout() {
    let g = nhood_topology::random::erdos_renyi(24, 0.4, 11);
    let layout = ClusterLayout::new(3, 2, 4);
    for seed in 0..6u64 {
        // rates from survivable to hostile
        let p = [0.02, 0.05, 0.1, 0.3, 0.6, 0.95][seed as usize % 6];
        let fp = FaultPlan::seeded(seed).with_message_drop(p);
        let t0 = Instant::now();
        match build_pattern_distributed_faulty(&g, &layout, Some(&fp), Duration::from_millis(400)) {
            Ok(pat) => {
                // a pattern that builds must be fully correct
                let plan = lower(&pat, &g);
                plan.validate(&g).expect("exactly-once delivery");
                let payloads = test_payloads(24, 8, 9);
                assert_eq!(
                    Virtual.run_simple(&plan, &g, &payloads).unwrap(),
                    reference_allgather(&g, &payloads)
                );
            }
            Err(e) => {
                assert!(
                    matches!(e, BuildError::NegotiationTimeout { .. }),
                    "seed {seed}: non-timeout error {e:?}"
                );
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "seed {seed} hung");
    }
}

/// The acceptance bar from the issue: 64-rank Erdős–Rényi graph, 5%
/// message drop, threaded execution — every seeded run terminates within
/// its deadline and returns buffers identical to the reference, or a
/// typed fallback/error.
#[test]
fn acceptance_64_rank_5pct_drop() {
    let g = nhood_topology::random::erdos_renyi(64, 0.3, 2024);
    let layout = ClusterLayout::new(8, 2, 4);
    let schedules: Vec<FaultPlan> =
        (0..5).map(|s| FaultPlan::seeded(0xACCE97 + s).with_message_drop(0.05)).collect();
    let t0 = Instant::now();
    let (ok, fell, err) =
        robust_sweep(&g, layout, Algorithm::DistanceHalving, &schedules, Duration::from_secs(10));
    assert_eq!(ok + fell + err, 5);
    // 5% drop against a 4-retry budget: loss odds ≈ 3e-7 per message, so
    // clean completion is the overwhelmingly expected outcome
    assert!(ok >= 4, "ok={ok} fell={fell} err={err}");
    assert!(t0.elapsed() < Duration::from_secs(120), "acceptance sweep exceeded its budget");
}

/// Seeded ragged size table with deliberate zero-length blocks — the
/// chaos suite predates variable-size payloads and only covered uniform
/// blocks until this test.
fn seeded_ragged_sizes(n: usize, seed: u64) -> Vec<usize> {
    (0..n)
        .map(|r| {
            let x = (r as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            let x = x ^ (x >> 31);
            if r % 7 == 3 {
                0 // silent ranks: zero-length blocks must survive chaos too
            } else {
                1 + (x % 48) as usize
            }
        })
        .collect()
}

fn ragged_payloads(sizes: &[usize], seed: u64) -> Vec<Vec<u8>> {
    sizes
        .iter()
        .enumerate()
        .map(|(r, &m)| {
            (0..m)
                .map(|i| {
                    let x = (r as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed)
                        .wrapping_add(i as u64);
                    (x ^ (x >> 32)) as u8
                })
                .collect()
        })
        .collect()
}

/// The 64-rank 5%-drop acceptance bar, ragged edition: seeded per-rank
/// block sizes (including zero-length blocks) through `allgatherv`
/// semantics on all three backends — virtual, threaded-under-chaos, and
/// the discrete-event simulator.
#[test]
fn acceptance_64_rank_5pct_drop_ragged() {
    use nhood_core::exec::{ExecEngine, Sim};
    use nhood_core::BlockSizes;

    let g = nhood_topology::random::erdos_renyi(64, 0.3, 2024);
    let layout = ClusterLayout::new(8, 2, 4);
    let sizes = seeded_ragged_sizes(64, 0xC0FFEE);
    assert!(sizes.contains(&0), "the seeded table must exercise zero-length blocks");
    let payloads = ragged_payloads(&sizes, 0xACCE97);
    let want = reference_allgather(&g, &payloads);

    // Planning is pinned to the seeded size table, so byte-weighted
    // selection sees the same raggedness the execution does.
    let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone())
        .unwrap()
        .with_block_sizes(BlockSizes::per_rank(sizes.clone()));

    // Backend 1 — virtual, through the public ragged request surface.
    let req = CollectiveRequest::allgatherv(&payloads).algorithm(Algorithm::DistanceHalving);
    assert_eq!(comm.collective(&req).unwrap().rbufs, want);

    // Backend 2 — threaded under seeded 5% drops, both engines, with the
    // same retry budget as the uniform acceptance test.
    let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
    for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
        for s in 0..3 {
            let fp = FaultPlan::seeded(0xACCE97 + s).with_message_drop(0.05);
            let opts = ExecOptions::new()
                .ragged(true)
                .engine(engine)
                .recv_timeout(Duration::from_secs(5))
                .retries(4, Duration::from_micros(50))
                .fault(&fp);
            let out = Threaded
                .run(&plan, &g, &payloads, &mut BlockArena::new(), &opts)
                .unwrap_or_else(|e| panic!("{engine:?} seed {s}: {e}"));
            assert_eq!(out.rbufs, want, "{engine:?} seed {s}: ragged buffers corrupted");
        }
    }

    // The robust wrapper accepts ragged payloads too: every seeded run
    // is exact-or-typed, exactly like the uniform sweep.
    for s in 0..3u64 {
        let fp = FaultPlan::seeded(0xACCE97 + s).with_message_drop(0.05);
        let robust = DistGraphComm::create_adjacent(g.clone(), layout.clone())
            .unwrap()
            .with_block_sizes(BlockSizes::per_rank(sizes.clone()))
            .with_fault_plan(fp);
        // errors are typed by construction; a success must be exact
        let req = CollectiveRequest::allgatherv(&payloads)
            .algorithm(Algorithm::DistanceHalving)
            .robust(true)
            .backend(ExecBackend::Threaded);
        if let Ok(out) = robust.collective(&req) {
            let report = out.report.expect("robust runs carry an execution report");
            assert_eq!(out.rbufs, want, "seed {s}: corrupted ragged buffers ({report})");
        }
    }

    // Backend 3 — the simulator consumes the ragged schedule: no real
    // bytes move, so acceptance is a finite positive makespan.
    let out = Sim::new(layout)
        .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::new().ragged(true))
        .unwrap();
    let report = out.sim.expect("sim backend returns a report");
    assert!(
        report.makespan.is_finite() && report.makespan > 0.0,
        "ragged schedule must simulate to completion, got makespan {}",
        report.makespan
    );
}

#[test]
fn direct_threaded_exact_under_retry_budget() {
    // bypass the robust wrapper: the raw executor itself must deliver
    // exact buffers when the retry budget covers the drop rate
    let g = nhood_topology::random::erdos_renyi(20, 0.5, 3);
    let layout = ClusterLayout::new(3, 2, 4);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
    let payloads = test_payloads(20, 32, 1);
    let want = reference_allgather(&g, &payloads);
    for algo in [Algorithm::Naive, Algorithm::DistanceHalving, Algorithm::CommonNeighbor { k: 4 }] {
        let plan = comm.plan(algo).unwrap();
        for seed in 0..3 {
            let fp = FaultPlan::seeded(seed)
                .with_message_drop(0.1)
                .with_message_duplication(0.1)
                .with_message_reorder(0.2)
                .with_message_delay(0.1, Duration::from_micros(200));
            let opts = ExecOptions::new()
                .recv_timeout(Duration::from_secs(5))
                .retries(4, Duration::from_micros(50))
                .fault(&fp);
            let out = Threaded
                .run(&plan, &g, &payloads, &mut BlockArena::new(), &opts)
                .unwrap_or_else(|e| panic!("{algo} seed {seed}: {e}"));
            assert_eq!(out.rbufs, want, "{algo} seed {seed}");
        }
    }
}
