//! Tenant isolation under the multi-tenant service: a fault-armed,
//! churning tenant sharing the reactor (and the plan cache) must not
//! change a single byte of a clean tenant's results. Property-tested
//! across seeds on the byte backends, plus a makespan-equality check on
//! the simulation backend.

use std::time::Duration;

use nhood_cluster::ClusterLayout;
use nhood_core::{Algorithm, DistGraphComm, FaultPlan};
use nhood_service::traffic::{gen_payloads, ZipfSizes};
use nhood_service::{Backend, Completion, Outcome, Service, ServiceConfig, TenantId, Verify};
use nhood_topology::random::erdos_renyi;
use nhood_topology::rng::{hash_mix, DetRng};
use nhood_topology::Topology;

const N: usize = 14;
const REQUESTS: usize = 12;

fn layout() -> ClusterLayout {
    ClusterLayout::new(2, 2, 4)
}

fn clean_graph(seed: u64) -> Topology {
    erdos_renyi(N, 0.35, hash_mix(&[seed, 1]))
}

/// The clean tenant's request stream, deterministic in `seed` and
/// independent of anything the faulty tenant does (each stream draws
/// from its own rng).
fn clean_stream(seed: u64) -> Vec<Vec<Vec<u8>>> {
    let sizes = ZipfSizes::new(16, 512, 1.1);
    let mut rng = DetRng::seed_from_u64(hash_mix(&[seed, 2]));
    (0..REQUESTS).map(|i| gen_payloads(N, &sizes, i % 3 == 0, &mut rng)).collect()
}

fn service(backend: Backend) -> Service {
    Service::new(ServiceConfig {
        backend,
        verify: Verify::All,
        keep_outputs: true,
        ..ServiceConfig::default()
    })
}

fn add_faulty_tenant(svc: &mut Service, seed: u64) -> TenantId {
    let g = erdos_renyi(N, 0.35, hash_mix(&[seed, 3]));
    let comm = DistGraphComm::create_adjacent(g, layout())
        .expect("layout fits")
        .with_fault_plan(FaultPlan::seeded(hash_mix(&[seed, 4])).with_message_drop(0.08));
    svc.add_tenant_comm(comm, Algorithm::DistanceHalving).expect("faulty tenant")
}

/// One churn event on the faulty tenant: drop its lowest edge, add a
/// fresh one (deterministic, so both property arms could replay it).
fn churn_faulty(svc: &mut Service, t: TenantId, step: usize) {
    let g = svc.tenant_graph(t);
    let removed: Vec<_> = g.edges().take(1).collect();
    let mut added = Vec::new();
    'outer: for u in 0..N {
        for v in (u + 1)..N {
            let uv = (u + v + step).is_multiple_of(2);
            if uv && !g.has_edge(u, v) {
                added.push((u, v));
                break 'outer;
            }
        }
    }
    let _ = svc.churn(t, &added, &removed);
}

/// Runs the clean stream and returns the clean tenant's completions in
/// submission order (request ids are monotone, so sorting by id
/// restores it).
fn run_clean(
    svc: &mut Service,
    clean: TenantId,
    stream: &[Vec<Vec<u8>>],
    mut interleave: impl FnMut(&mut Service, usize),
) -> Vec<Completion> {
    for (i, payloads) in stream.iter().enumerate() {
        interleave(svc, i);
        svc.submit(clean, payloads.clone()).expect("clean submit admitted");
    }
    svc.drain();
    let mut done: Vec<Completion> =
        svc.take_completions().into_iter().filter(|c| c.tenant == clean).collect();
    done.sort_by_key(|c| c.id);
    done
}

fn assert_all_clean(done: &[Completion], arm: &str) {
    assert_eq!(done.len(), REQUESTS, "{arm}: every clean request completes");
    for c in done {
        assert!(
            matches!(c.outcome, Outcome::Completed { degraded: false, .. }),
            "{arm}: clean tenant must never degrade: {:?}",
            c.outcome
        );
        assert_eq!(c.verified, Some(true), "{arm}: byte verification against the reference");
    }
}

/// A clean tenant's bytes are identical whether it runs alone or shares
/// the service with a fault-armed tenant that takes traffic and churns
/// its topology mid-stream.
#[test]
fn faulty_neighbor_tenant_never_alters_clean_bytes() {
    for backend in [Backend::Virtual, Backend::Threaded] {
        for seed in [3u64, 17, 101] {
            let stream = clean_stream(seed);

            let mut solo = service(backend);
            let clean =
                solo.add_tenant(clean_graph(seed), layout(), Algorithm::DistanceHalving).unwrap();
            let baseline = run_clean(&mut solo, clean, &stream, |_, _| {});
            assert_all_clean(&baseline, "solo");

            let mut shared = service(backend);
            let clean =
                shared.add_tenant(clean_graph(seed), layout(), Algorithm::DistanceHalving).unwrap();
            let faulty = add_faulty_tenant(&mut shared, seed);
            let sizes = ZipfSizes::new(16, 256, 1.2);
            let mut noise = DetRng::seed_from_u64(hash_mix(&[seed, 5]));
            let perturbed = run_clean(&mut shared, clean, &stream, |svc, i| {
                // The hostile neighbor: traffic on every step, churn on
                // every third.
                let payloads = gen_payloads(N, &sizes, i % 2 == 0, &mut noise);
                let _ = svc.submit(faulty, payloads);
                if i % 3 == 0 {
                    churn_faulty(svc, faulty, i);
                }
            });
            assert_all_clean(&perturbed, "shared");

            for (a, b) in baseline.iter().zip(&perturbed) {
                assert_eq!(
                    a.output, b.output,
                    "seed {seed} {backend:?}: clean tenant bytes diverged under a faulty neighbor"
                );
            }

            let report = shared.report();
            assert_eq!(report.stats.corrupt, 0, "no verified completion may be corrupt");
            assert!(report.stats.churn_events >= 1, "churn actually happened");
        }
    }
}

/// Same isolation property on the simulation backend: the clean
/// tenant's predicted makespans are unchanged by a co-resident faulty
/// tenant.
#[test]
fn sim_backend_makespans_are_isolated_too() {
    let seed = 29u64;
    let stream = clean_stream(seed);

    let mut solo = service(Backend::Sim);
    let clean = solo.add_tenant(clean_graph(seed), layout(), Algorithm::DistanceHalving).unwrap();
    let baseline = run_clean(&mut solo, clean, &stream, |_, _| {});

    let mut shared = service(Backend::Sim);
    let clean = shared.add_tenant(clean_graph(seed), layout(), Algorithm::DistanceHalving).unwrap();
    let faulty = add_faulty_tenant(&mut shared, seed);
    let sizes = ZipfSizes::new(16, 256, 1.2);
    let mut noise = DetRng::seed_from_u64(hash_mix(&[seed, 6]));
    let perturbed = run_clean(&mut shared, clean, &stream, |svc, i| {
        let payloads = gen_payloads(N, &sizes, false, &mut noise);
        let _ = svc.submit(faulty, payloads);
        if i == REQUESTS / 2 {
            churn_faulty(svc, faulty, i);
        }
    });

    assert_eq!(baseline.len(), REQUESTS);
    assert_eq!(perturbed.len(), REQUESTS);
    for (a, b) in baseline.iter().zip(&perturbed) {
        let (ma, mb) = (a.sim_makespan, b.sim_makespan);
        assert!(ma.is_some(), "sim backend reports a makespan");
        assert_eq!(ma, mb, "clean tenant's predicted makespan diverged");
    }
}

/// The service keeps admitting and completing the clean tenant even
/// while the faulty tenant's requests run the degraded path — admission
/// quotas are per tenant, not global starvation.
#[test]
fn clean_tenant_is_not_starved_by_a_faulty_one() {
    let seed = 7u64;
    let mut svc = service(Backend::Virtual);
    let clean = svc.add_tenant(clean_graph(seed), layout(), Algorithm::DistanceHalving).unwrap();
    let faulty = add_faulty_tenant(&mut svc, seed);
    let sizes = ZipfSizes::new(16, 128, 1.2);
    let mut rng = DetRng::seed_from_u64(seed);
    for _ in 0..20 {
        let _ = svc.submit(faulty, gen_payloads(N, &sizes, false, &mut rng));
        svc.submit(clean, gen_payloads(N, &sizes, false, &mut rng))
            .expect("clean submissions stay admitted");
    }
    svc.drain();
    svc.churn(faulty, &[], &[]).expect("warm churn");
    let report = svc.report();
    let clean_stats = report.per_tenant[clean];
    assert_eq!(clean_stats.completed, 20, "all clean requests completed");
    assert_eq!(clean_stats.corrupt, 0);
    assert!(Duration::from_secs(0) < report.wall);
}
