//! Cross-backend property suite for the collective-agnostic request
//! API: every op in [`CollectiveOp`]'s family — the gather pair plus
//! the message-combining trio — must agree byte-for-byte with its
//! naive MPI-semantics reference on **all three backends**, ragged
//! shapes (zero-length blocks included) and every supported
//! algorithm. Unsupported (op, algorithm, robustness, backend)
//! combinations must fail *typed*, before any work happens, and f32
//! folds must be bit-deterministic across backends and repeat runs.

use nhood_cluster::ClusterLayout;
use nhood_core::collective::{
    derive_sizes, reference_allreduce, reference_alltoallv, reference_reduce_scatter,
};
use nhood_core::exec::virtual_exec::reference_allgather;
use nhood_core::{
    Algorithm, BlockSizes, CollectiveOp, CollectiveRequest, CommError, DType, DistGraphComm,
    ExecBackend, LoadMetric, PlanFingerprint, ReduceOp, Reduction,
};
use nhood_topology::rng::DetRng;
use nhood_topology::Topology;

const BACKENDS: [ExecBackend; 3] = [ExecBackend::Virtual, ExecBackend::Threaded, ExecBackend::Sim];
const ALGOS: [Algorithm; 2] = [Algorithm::Naive, Algorithm::DistanceHalving];

fn layout_for(n: usize) -> ClusterLayout {
    ClusterLayout::new(n.div_ceil(8), 2, 4)
}

/// Uniform per-rank payloads, `m` bytes each, seeded.
fn uniform_payloads(n: usize, m: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n).map(|_| (0..m).map(|_| rng.next_u64() as u8).collect()).collect()
}

/// Ragged per-rank payloads with deliberate zero-length blocks.
fn ragged_payloads(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|r| {
            let len = if r % 5 == 0 { 0 } else { 1 + rng.gen_below(24) };
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect()
}

/// Per-source alltoallv send buffers: rank `p` holds `outdeg(p)` blocks
/// of `sizes[p]` bytes; ragged across sources, zeros included.
fn alltoallv_payloads(g: &Topology, seed: u64) -> (Vec<Vec<u8>>, BlockSizes) {
    let mut rng = DetRng::seed_from_u64(seed);
    let per_source: Vec<usize> =
        (0..g.n()).map(|r| if r % 7 == 0 { 0 } else { 1 + rng.gen_below(16) }).collect();
    let sbufs = (0..g.n())
        .map(|p| {
            let len = g.outdegree(p) * per_source[p];
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect();
    (sbufs, BlockSizes::per_rank(per_source))
}

/// Reduce-scatter send buffers at a uniform per-destination block size:
/// rank `p` contributes one `m`-byte block per out-neighbor.
fn reduce_scatter_payloads(g: &Topology, m: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..g.n()).map(|p| (0..g.outdegree(p) * m).map(|_| rng.next_u64() as u8).collect()).collect()
}

fn run(comm: &DistGraphComm, req: CollectiveRequest, label: &std::fmt::Arguments) -> Vec<Vec<u8>> {
    comm.collective(&req).unwrap_or_else(|e| panic!("{label}: {e}")).rbufs
}

/// The headline property: `collective(op) ≡ naive reference` for all
/// four op families, across sizes, densities, algorithms and backends.
/// Sim is included because it moves real bytes alongside the latency
/// model.
#[test]
fn every_op_matches_its_reference_on_every_backend() {
    for &(n, delta) in &[(24usize, 0.1f64), (32, 0.3), (48, 0.6)] {
        let g = nhood_topology::random::erdos_renyi(n, delta, 0xC011EC7);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout_for(n)).unwrap();
        let seed = (n as u64) << 8 | (delta * 10.0) as u64;

        let uniform = uniform_payloads(n, 16, seed);
        let ragged = ragged_payloads(n, seed ^ 1);
        let (a2a, a2a_sizes) = alltoallv_payloads(&g, seed ^ 2);
        let rs = reduce_scatter_payloads(&g, 8, seed ^ 3);
        let red = Reduction::SUM_U8;

        let want_ag = reference_allgather(&g, &uniform);
        let want_agv = reference_allgather(&g, &ragged);
        let want_a2a = reference_alltoallv(&g, &a2a, &a2a_sizes);
        let want_rs = reference_reduce_scatter(&g, &rs, &BlockSizes::uniform(8), red);
        let want_ar = reference_allreduce(&g, &uniform, red);

        for algo in ALGOS {
            for backend in BACKENDS {
                let ctx = format_args!("n={n} δ={delta} {algo} {backend:?}");
                let got = run(
                    &comm,
                    CollectiveRequest::allgather(&uniform).algorithm(algo).backend(backend),
                    &ctx,
                );
                assert_eq!(got, want_ag, "allgather {ctx}");
                let got = run(
                    &comm,
                    CollectiveRequest::allgatherv(&ragged).algorithm(algo).backend(backend),
                    &ctx,
                );
                assert_eq!(got, want_agv, "allgatherv {ctx}");
                let got = run(
                    &comm,
                    CollectiveRequest::alltoallv(&a2a)
                        .algorithm(algo)
                        .sizes(a2a_sizes.clone())
                        .backend(backend),
                    &ctx,
                );
                assert_eq!(got, want_a2a, "alltoallv {ctx}");
                let got = run(
                    &comm,
                    CollectiveRequest::reduce_scatter(&rs, red).algorithm(algo).backend(backend),
                    &ctx,
                );
                assert_eq!(got, want_rs, "reduce_scatter {ctx}");
                let got = run(
                    &comm,
                    CollectiveRequest::allreduce(&uniform, red).algorithm(algo).backend(backend),
                    &ctx,
                );
                assert_eq!(got, want_ar, "allreduce {ctx}");
            }
        }
    }
}

/// Lane-typed reductions (Max/U32) agree with the reference too — the
/// lane decode/encode path, not just byte-wise wrapping sums.
#[test]
fn typed_lanes_match_the_reference() {
    let n = 32;
    let g = nhood_topology::random::erdos_renyi(n, 0.3, 99);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout_for(n)).unwrap();
    let red = Reduction::new(ReduceOp::Max, DType::U32);
    let payloads = uniform_payloads(n, 16, 0xAB); // 16 % 4 == 0: whole u32 lanes
    let want = reference_allreduce(&g, &payloads, red);
    for algo in ALGOS {
        for backend in BACKENDS {
            let req = CollectiveRequest::allreduce(&payloads, red).algorithm(algo).backend(backend);
            let got = comm.collective(&req).unwrap().rbufs;
            assert_eq!(got, want, "max/u32 allreduce {algo} {backend:?}");
        }
    }
}

/// F32 summation is not associative, so the contract is *bit
/// determinism*, not reference equality: the engine's fixed combine
/// order must deliver bit-identical buffers on every backend and on
/// repeat runs.
#[test]
fn f32_allreduce_is_bit_deterministic_across_backends() {
    let n = 32;
    let g = nhood_topology::random::erdos_renyi(n, 0.3, 7);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout_for(n)).unwrap();
    let red = Reduction::new(ReduceOp::Sum, DType::F32);
    let mut rng = DetRng::seed_from_u64(0xF32F32);
    let payloads: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            (0..4).flat_map(|_| ((rng.gen_f64() as f32) * 1e3).to_le_bytes()).collect::<Vec<u8>>()
        })
        .collect();
    let mut golden: Option<Vec<Vec<u8>>> = None;
    for backend in BACKENDS {
        for repeat in 0..2 {
            let req = CollectiveRequest::allreduce(&payloads, red)
                .algorithm(Algorithm::DistanceHalving)
                .backend(backend);
            let got = comm.collective(&req).unwrap().rbufs;
            match &golden {
                None => golden = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "f32 fold diverged: {backend:?} repeat {repeat}");
                }
            }
        }
    }
}

/// The support matrix rejects out-of-matrix combinations *typed* and
/// before any execution: robust reductions (idempotent retry cannot
/// replay hop-applied reductions), robust off-threaded, combining under
/// algorithms with no item-routing formulation, and undefined
/// operator/lane pairs. Robust alltoallv — items, no reductions — is
/// IN the matrix and must run.
#[test]
fn unsupported_combinations_fail_typed() {
    let n = 16;
    let g = nhood_topology::random::erdos_renyi(n, 0.4, 3);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout_for(n)).unwrap();
    let (a2a, sizes) = alltoallv_payloads(&g, 5);
    let uniform = uniform_payloads(n, 8, 5);

    // robust covers the gather family and alltoallv, not reductions
    let req = CollectiveRequest::reduce_scatter(&uniform, Reduction::SUM_U8)
        .robust(true)
        .backend(ExecBackend::Threaded);
    assert!(matches!(comm.collective(&req), Err(CommError::UnsupportedCollective { .. })));

    // robust alltoallv runs and reports clean
    let req = CollectiveRequest::alltoallv(&a2a)
        .sizes(sizes.clone())
        .robust(true)
        .backend(ExecBackend::Threaded);
    let out = comm.collective(&req).expect("robust alltoallv is supported");
    assert_eq!(out.rbufs, reference_alltoallv(&g, &a2a, &sizes));
    assert!(out.report.expect("robust run carries a report").clean());

    // robust runs on the threaded transport only
    let req = CollectiveRequest::allgather(&uniform).robust(true).backend(ExecBackend::Virtual);
    assert!(matches!(comm.collective(&req), Err(CommError::UnsupportedCollective { .. })));

    // combining ops have no CommonNeighbor/HierarchicalLeader formulation
    for algo in
        [Algorithm::CommonNeighbor { k: 4 }, Algorithm::HierarchicalLeader { leaders_per_node: 1 }]
    {
        let req = CollectiveRequest::alltoallv(&a2a).sizes(sizes.clone()).algorithm(algo);
        assert!(
            matches!(comm.collective(&req), Err(CommError::UnsupportedCollective { .. })),
            "{algo} must be rejected for alltoallv"
        );
    }

    // bitor has no defined semantics on f32 lanes
    let bad = Reduction::new(ReduceOp::BitOr, DType::F32);
    let req = CollectiveRequest::allreduce(&uniform, bad);
    assert!(matches!(comm.collective(&req), Err(CommError::InvalidReduction { .. })));
}

/// Plan reuse across ops is keyed honestly: ops that build the same
/// plan share a fingerprint slot (the gather pair; the combining trio),
/// while the two plan families can never collide.
#[test]
fn fingerprints_separate_the_two_plan_families() {
    let n = 24;
    let g = nhood_topology::random::erdos_renyi(n, 0.3, 11);
    let layout = layout_for(n);
    let sizes = BlockSizes::uniform(8);
    let red = Reduction::SUM_U8;
    let fp = |op: &CollectiveOp| {
        PlanFingerprint::of_collective(
            &g,
            &layout,
            Algorithm::DistanceHalving,
            &sizes,
            LoadMetric::Neighbors,
            op,
        )
    };
    let gather = [CollectiveOp::Allgather, CollectiveOp::Allgatherv];
    let combining =
        [CollectiveOp::Alltoallv, CollectiveOp::ReduceScatter(red), CollectiveOp::Allreduce(red)];
    assert_eq!(fp(&gather[0]), fp(&gather[1]), "the gather pair shares one plan");
    for op in &combining {
        assert_eq!(fp(op), fp(&combining[0]), "the combining trio shares one item-routed plan");
        for gop in &gather {
            assert_ne!(fp(gop), fp(op), "{gop} and {op} must never share a cache slot");
        }
    }
}

/// `derive_sizes` is the single shape oracle: inferred tables match
/// what explicit tables validate, and shape violations are typed.
#[test]
fn derive_sizes_infers_and_validates_shapes() {
    let n = 20;
    let g = nhood_topology::random::erdos_renyi(n, 0.4, 13);
    let (a2a, sizes) = alltoallv_payloads(&g, 21);

    let inferred = derive_sizes(&g, CollectiveOp::Alltoallv, &a2a, None).unwrap();
    for p in 0..n {
        assert_eq!(inferred.size(p), sizes.size(p), "rank {p}: inferred per-source size");
    }
    derive_sizes(&g, CollectiveOp::Alltoallv, &a2a, Some(&sizes)).unwrap();

    // a wrong explicit table is a typed shape error
    let wrong = BlockSizes::uniform(1 << 20);
    assert!(derive_sizes(&g, CollectiveOp::Alltoallv, &a2a, Some(&wrong)).is_err());

    // allreduce payloads must be uniform
    let mut ragged = uniform_payloads(n, 8, 1);
    ragged[3].push(0);
    assert!(derive_sizes(&g, CollectiveOp::Allreduce(Reduction::SUM_U8), &ragged, None).is_err());
}
