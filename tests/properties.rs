//! Randomized property tests (seeded, deterministic) over the core
//! invariants:
//!
//! * plans of all three algorithms validate (exactly-once delivery) and
//!   execute to the reference receive buffers on arbitrary graphs and
//!   layouts;
//! * the simulator respects causality and its makespan is bounded below
//!   by the critical path and above by full serialization;
//! * the §V model is monotone in message size and density;
//! * the bitset matches a `BTreeSet` reference model.
//!
//! Each test draws `CASES` random instances from a fixed-seed
//! [`DetRng`], so failures reproduce exactly; on failure the offending
//! case is identified by its index in the panic message.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::sim_exec::{simulate, SimCost};
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::model::ModelParams;
use nhood_core::{Algorithm, BlockArena, DistGraphComm, ExecOptions, Executor, Threaded, Virtual};
use nhood_topology::rng::DetRng;
use nhood_topology::{Bitset, Topology};

/// Cases per property; each case is an independent random instance.
const CASES: usize = 48;

/// Runs `body` against `CASES` seeded RNGs, labelling failures with the
/// case index.
fn for_cases(test_seed: u64, mut body: impl FnMut(&mut DetRng)) {
    for case in 0..CASES {
        let mut rng =
            DetRng::seed_from_u64(test_seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = r {
            panic!("case {case} (test_seed {test_seed:#x}) failed: {e:?}");
        }
    }
}

/// A random directed graph over 2..`max_n` ranks with uniform edge
/// probability.
fn arb_graph(rng: &mut DetRng, max_n: usize) -> Topology {
    let n = rng.gen_range(2..max_n);
    let pct = rng.gen_range(0..100usize);
    let seed = rng.next_u64();
    nhood_topology::random::erdos_renyi(n, pct as f64 / 100.0, seed)
}

#[test]
fn all_algorithms_correct_on_arbitrary_graphs() {
    for_cases(0xA1, |rng| {
        let g = arb_graph(rng, 40);
        let (sockets, cores) = (rng.gen_range(1..=4usize), rng.gen_range(1..=8usize));
        let k = rng.gen_range(1..12usize);
        let n = g.n();
        let per_node = sockets * cores;
        let layout = ClusterLayout::new(n.div_ceil(per_node), sockets, cores);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads = test_payloads(n, 4, 99);
        let want = reference_allgather(&g, &payloads);
        for algo in [Algorithm::Naive, Algorithm::CommonNeighbor { k }, Algorithm::DistanceHalving]
        {
            let plan = comm.plan(algo).unwrap();
            plan.validate(&g).unwrap();
            assert_eq!(&Virtual.run_simple(&plan, &g, &payloads).unwrap(), &want, "{algo}");
        }
    });
}

#[test]
fn dh_plan_structure_invariants() {
    for_cases(0xA2, |rng| {
        let g = arb_graph(rng, 48);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
        for (p, rp) in pattern.ranks.iter().enumerate() {
            // buffer always starts with the rank's own block
            assert_eq!(rp.held_final.first(), Some(&p));
            // held blocks are unique (a block never arrives twice)
            let mut seen = std::collections::HashSet::new();
            for &b in &rp.held_final {
                assert!(seen.insert(b), "rank {p} holds block {b} twice");
            }
            // h2 ranges of successive steps are disjoint
            for (i, a) in rp.steps.iter().enumerate() {
                for b in rp.steps.iter().skip(i + 1) {
                    assert!(
                        a.h2.1 < b.h2.0 || b.h2.1 < a.h2.0,
                        "overlapping h2 ranges {:?} and {:?}",
                        a.h2,
                        b.h2
                    );
                }
            }
            // agents/origins always live in that step's h2
            for s in &rp.steps {
                if let Some(a) = s.agent {
                    assert!(a >= s.h2.0 && a <= s.h2.1);
                }
                if let Some(o) = s.origin {
                    assert!(o >= s.h2.0 && o <= s.h2.1);
                }
            }
        }
    });
}

#[test]
fn simulator_causality_and_bounds() {
    for_cases(0xA3, |rng| {
        let g = arb_graph(rng, 32);
        let m = rng.gen_range(0..65536usize);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let cost = SimCost::niagara();
        let plan = comm.plan(Algorithm::Naive).unwrap();
        let rep = simulate(&plan, comm.layout(), m, &cost).unwrap();
        assert!(rep.makespan >= 0.0);
        assert!(rep.makespan.is_finite());
        // lower bound: any single message's wire time
        if g.edge_count() > 0 {
            let min_wire =
                cost.net.hockney.same_socket.time(m).min(cost.net.hockney.remote_group.alpha);
            assert!(rep.makespan >= min_wire * 0.99);
        }
        // per-rank finishes never exceed the makespan
        for &f in &rep.per_rank_finish {
            assert!(f <= rep.makespan + 1e-15);
        }
        // message tallies are conserved
        assert_eq!(rep.stats.total_msgs(), g.edge_count());
    });
}

#[test]
fn sim_latency_monotone_in_message_size() {
    for_cases(0xA4, |rng| {
        let g = arb_graph(rng, 24);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let cost = SimCost::niagara();
        for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
            let plan = comm.plan(algo).unwrap();
            let t1 = simulate(&plan, comm.layout(), 64, &cost).unwrap().makespan;
            let t2 = simulate(&plan, comm.layout(), 4096, &cost).unwrap().makespan;
            let t3 = simulate(&plan, comm.layout(), 262_144, &cost).unwrap().makespan;
            assert!(t1 <= t2 + 1e-12, "{algo}: {t1} > {t2}");
            assert!(t2 <= t3 + 1e-12, "{algo}: {t2} > {t3}");
        }
    });
}

#[test]
fn model_monotonicity() {
    for_cases(0xA5, |rng| {
        let n = rng.gen_range(64..4096usize);
        let delta = 0.01 + rng.gen_f64() * 0.99;
        let m = rng.gen_range(1..(1usize << 22));
        let p = ModelParams::niagara(n, delta);
        // time strictly grows with message size
        assert!(p.naive_time(m) < p.naive_time(m * 2));
        assert!(p.dh_time(m) < p.dh_time(m * 2));
        // naive time grows with density; message counts stay in range
        let denser = ModelParams::niagara(n, (delta + 0.1).min(1.0));
        assert!(denser.naive_time(m) >= p.naive_time(m));
        assert!(p.expected_intra_socket_msgs() <= p.l as f64 + 1e-9);
        assert!(p.expected_off_socket_msgs() <= p.halving_steps() as f64 + 1e-9);
    });
}

#[test]
fn bitset_matches_btreeset_model() {
    for_cases(0xA6, |rng| {
        let count = rng.gen_range(0..64usize);
        let bits: std::collections::BTreeSet<usize> =
            (0..count).map(|_| rng.gen_range(0..256usize)).collect();
        let lo = rng.gen_range(0..256usize);
        let hi = rng.gen_range(0..256usize);
        let bs = Bitset::from_bits(256, bits.iter().copied());
        assert_eq!(bs.count_ones(), bits.len());
        assert_eq!(bs.to_vec(), bits.iter().copied().collect::<Vec<_>>());
        let want = bits.iter().filter(|&&b| b >= lo && b <= hi).count();
        assert_eq!(bs.count_in_range(lo, hi), want);
        // intersection against a shifted copy
        let shifted = Bitset::from_bits(256, bits.iter().map(|&b| (b + 1) % 256));
        let want_inter = bits.iter().filter(|&&b| bits.contains(&((b + 255) % 256))).count();
        assert_eq!(bs.intersection_count(&shifted), want_inter);
    });
}

#[test]
fn alltoall_correct_on_arbitrary_graphs() {
    for_cases(0xA7, |rng| {
        use nhood_core::alltoall::{
            plan_dh_alltoall, plan_naive_alltoall, reference_alltoall, run_alltoall_virtual,
        };
        let g = arb_graph(rng, 32);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let m = 4;
        let sbufs: Vec<Vec<u8>> = (0..n)
            .map(|p| {
                let mut buf = Vec::new();
                for &d in g.out_neighbors(p) {
                    buf.extend((0..m).map(|i| (p * 31 + d * 7 + i) as u8));
                }
                buf
            })
            .collect();
        let want = reference_alltoall(&g, &sbufs, m);
        let naive = plan_naive_alltoall(&g);
        naive.validate(&g).unwrap();
        assert_eq!(&run_alltoall_virtual(&naive, &g, &sbufs, m).unwrap(), &want);
        let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
        let dh = plan_dh_alltoall(&pattern, &g);
        dh.validate(&g).unwrap();
        assert_eq!(&run_alltoall_virtual(&dh, &g, &sbufs, m).unwrap(), &want);
    });
}

#[test]
fn reordered_planner_correct_under_any_placement() {
    for_cases(0xA8, |rng| {
        use nhood_core::remap::plan_distance_halving_reordered;
        let g = arb_graph(rng, 32);
        let round_robin = rng.gen_bool(0.5);
        let n = g.n();
        let mut layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        if round_robin {
            layout = layout.with_placement(nhood_cluster::Placement::RoundRobinNodes);
        }
        let plan = plan_distance_halving_reordered(&g, &layout).unwrap();
        plan.validate(&g).unwrap();
        let payloads = test_payloads(n, 4, 13);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &payloads).unwrap(),
            reference_allgather(&g, &payloads)
        );
    });
}

#[test]
fn allgatherv_ragged_correct() {
    for_cases(0xA9, |rng| {
        let g = arb_graph(rng, 24);
        let lens: Vec<usize> = (0..24).map(|_| rng.gen_range(0..16usize)).collect();
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads: Vec<Vec<u8>> = (0..n).map(|r| vec![r as u8; lens[r % lens.len()]]).collect();
        let want = reference_allgather(&g, &payloads);
        let opts = ExecOptions::new().ragged(true);
        for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
            let plan = comm.plan(algo).unwrap();
            let out = Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert_eq!(&out.rbufs, &want, "{algo}");
        }
    });
}

#[test]
fn leader_hierarchy_correct_for_any_leader_count() {
    for_cases(0xAA, |rng| {
        let g = arb_graph(rng, 40);
        let leaders = rng.gen_range(1..9usize);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let plan = nhood_core::leader::plan_hierarchical_leader(&g, &layout, leaders);
        plan.validate(&g).unwrap();
        let payloads = test_payloads(n, 4, 31);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &payloads).unwrap(),
            reference_allgather(&g, &payloads)
        );
    });
}

#[test]
fn plan_io_round_trips_arbitrary_plans() {
    for_cases(0xAB, |rng| {
        use nhood_core::plan_io::{read_plan, write_plan};
        let g = arb_graph(rng, 32);
        let k = rng.gen_range(1..10usize);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        for algo in [Algorithm::Naive, Algorithm::CommonNeighbor { k }, Algorithm::DistanceHalving]
        {
            let plan = comm.plan(algo).unwrap();
            let mut buf = Vec::new();
            write_plan(&plan, &mut buf).unwrap();
            let back = read_plan(&buf[..]).unwrap();
            assert_eq!(&back.per_rank, &plan.per_rank);
            assert_eq!(back.algorithm, plan.algorithm);
            // truncation at any point must error, never mis-parse
            if buf.len() > 16 {
                let cut = buf.len() / 2;
                assert!(read_plan(&buf[..cut]).is_err());
            }
        }
    });
}

#[test]
fn threaded_matches_virtual_on_small_graphs() {
    for_cases(0xAC, |rng| {
        let g = arb_graph(rng, 20);
        let m = rng.gen_range(0..64usize);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(4), 2, 2);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads = test_payloads(n, m, 5);
        let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
        let v = Virtual.run_simple(&plan, &g, &payloads).unwrap();
        let t = Threaded.run_simple(&plan, &g, &payloads).unwrap();
        assert_eq!(v, t);
    });
}

#[test]
fn telemetry_counters_agree_across_all_backends() {
    // The tentpole invariant of the telemetry subsystem: the same plan
    // produces the same per-rank message/byte/copy counters on the
    // virtual and threaded executors (exactly), and the simulator — which
    // sees uniform `blocks.len() × m`-byte messages — matches both on
    // message and byte totals.
    for_cases(0xAD, |rng| {
        use nhood_core::exec::sim_exec::to_schedule;
        use nhood_telemetry::CountingRecorder;

        let g = arb_graph(rng, 20);
        let m = rng.gen_range(1..64usize);
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(4), 2, 2);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
        let payloads = test_payloads(n, m, 5);
        let algo = if rng.gen_bool(0.5) { Algorithm::DistanceHalving } else { Algorithm::Naive };
        let plan = comm.plan(algo).unwrap();

        let vrec = CountingRecorder::new(n);
        Virtual
            .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::new().recorder(&vrec))
            .unwrap();
        let trec = CountingRecorder::new(n);
        Threaded
            .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::new().recorder(&trec))
            .unwrap();
        for r in 0..n {
            assert_eq!(vrec.per_rank(r), trec.per_rank(r), "{algo}: rank {r} counters diverge");
        }

        let cost = SimCost::niagara();
        let srec = CountingRecorder::new(n);
        nhood_simnet::Engine::new(&layout, cost.net)
            .run_recorded(&to_schedule(&plan, m, &cost), &srec)
            .unwrap();
        let (v, s) = (vrec.totals(), srec.totals());
        assert_eq!(v.msgs_sent, s.msgs_sent, "{algo}: sim message totals diverge");
        assert_eq!(v.msgs_recvd, s.msgs_recvd, "{algo}");
        assert_eq!(v.bytes_sent, s.bytes_sent, "{algo}: sim byte totals diverge");
        assert_eq!(v.bytes_recvd, s.bytes_recvd, "{algo}");
    });
}

#[test]
fn arena_path_byte_identical_to_reference_on_all_backends() {
    // Satellite invariant of the zero-copy arena: on random graphs
    // (n ≤ 64, δ ∈ {0.1, 0.3, 0.6}) the arena engine produces receive
    // buffers byte-identical to `reference_allgather` on both
    // byte-moving backends, and the `Sim` backend — run through the same
    // `Executor` trait — agrees with them on message and byte totals.
    use nhood_core::exec::sim_exec::SimCost;
    use nhood_core::{ExecEngine, Sim};
    use nhood_telemetry::CountingRecorder;

    for_cases(0xAE, |rng| {
        let n = rng.gen_range(2..=64usize);
        let delta = [0.1, 0.3, 0.6][rng.gen_range(0..3usize)];
        let seed = rng.next_u64();
        let g = nhood_topology::random::erdos_renyi(n, delta, seed);
        let m = rng.gen_range(1..128usize);
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
        let payloads = test_payloads(n, m, seed);
        let want = reference_allgather(&g, &payloads);
        for algo in
            [Algorithm::Naive, Algorithm::DistanceHalving, Algorithm::CommonNeighbor { k: 4 }]
        {
            let plan = comm.plan(algo).unwrap();
            let opts = ExecOptions::new().engine(ExecEngine::Arena);
            let vrec = CountingRecorder::new(n);
            let v = Virtual
                .run(&plan, &g, &payloads, &mut BlockArena::new(), &opts.recorder(&vrec))
                .unwrap();
            assert_eq!(&v.rbufs, &want, "{algo}: virtual arena diverges from reference");
            let t = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert_eq!(&t.rbufs, &want, "{algo}: threaded arena diverges from reference");
            let srec = CountingRecorder::new(n);
            let sim = Sim::new(layout.clone()).cost(SimCost::niagara()).message_size(m);
            sim.run(&plan, &g, &[], &mut BlockArena::new(), &ExecOptions::new().recorder(&srec))
                .unwrap();
            let (vt, st) = (vrec.totals(), srec.totals());
            assert_eq!(vt.msgs_sent, st.msgs_sent, "{algo}: sim message totals diverge");
            assert_eq!(vt.bytes_sent, st.bytes_sent, "{algo}: sim byte totals diverge");
        }
    });
}

#[test]
fn chrome_trace_json_is_stable_and_well_formed() {
    // Golden-style test: a tiny fixed plan on a deterministic (simulated
    // clock, classic cost) backend must render the same Chrome-tracing
    // JSON every run, and that JSON must be structurally sound.
    use nhood_core::exec::sim_exec::{to_schedule, SimCost};
    use nhood_simnet::{Engine, NicMode, SimConfig};
    use nhood_telemetry::{chrome_trace_json, SpanRecorder};

    let g = nhood_topology::random::erdos_renyi(6, 0.5, 1);
    let layout = ClusterLayout::new(2, 1, 3);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
    let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
    let cost = SimCost {
        net: SimConfig::classic(nhood_cluster::HockneyParams::flat(1e-6, 1e9), NicMode::Off),
        memcpy_bytes_per_sec: f64::INFINITY,
    };
    let schedule = to_schedule(&plan, 8, &cost);
    let render = || {
        let spans = SpanRecorder::new();
        Engine::new(&layout, cost.net).run_recorded(&schedule, &spans).unwrap();
        chrome_trace_json(&spans.events())
    };
    let json = render();
    // deterministic: same plan + simulated clock → byte-identical output
    assert_eq!(json, render());
    // structurally a JSON array of objects with the fields Chrome needs
    let body = json.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "{json}");
    assert_eq!(body.matches('{').count(), body.matches('}').count(), "{json}");
    assert!(json.contains("\"thread_name\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    let complete_events = json.matches("\"ph\":\"X\"").count();
    assert_eq!(complete_events, plan.message_count(), "one span per planned message");
    for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
        assert!(line.contains("\"pid\":0"), "{line}");
        assert!(line.contains("\"ts\":"), "{line}");
        assert!(line.contains("\"dur\":"), "{line}");
    }
}
