//! Property-based tests (proptest) over the core invariants:
//!
//! * plans of all three algorithms validate (exactly-once delivery) and
//!   execute to the reference receive buffers on arbitrary graphs and
//!   layouts;
//! * the simulator respects causality and its makespan is bounded below
//!   by the critical path and above by full serialization;
//! * the §V model is monotone in message size and density;
//! * the bitset matches a `BTreeSet` reference model.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::sim_exec::{simulate, SimCost};
use nhood_core::exec::virtual_exec::{reference_allgather, run_virtual, test_payloads};
use nhood_core::model::ModelParams;
use nhood_core::{Algorithm, DistGraphComm};
use nhood_topology::{Bitset, Topology};
use proptest::prelude::*;

/// Strategy: a random directed graph over `n` ranks with edge probability
/// controlled by the fraction numerator.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Topology> {
    (2..max_n, 0u32..100, any::<u64>()).prop_map(|(n, pct, seed)| {
        nhood_topology::random::erdos_renyi(n, pct as f64 / 100.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_correct_on_arbitrary_graphs(
        g in arb_graph(40),
        (sockets, cores) in (1usize..=4, 1usize..=8),
        k in 1usize..12,
    ) {
        let n = g.n();
        let per_node = sockets * cores;
        let layout = ClusterLayout::new(n.div_ceil(per_node), sockets, cores);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads = test_payloads(n, 4, 99);
        let want = reference_allgather(&g, &payloads);
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k },
            Algorithm::DistanceHalving,
        ] {
            let plan = comm.plan(algo).unwrap();
            plan.validate(&g).unwrap();
            prop_assert_eq!(&run_virtual(&plan, &g, &payloads).unwrap(), &want);
        }
    }

    #[test]
    fn dh_plan_structure_invariants(g in arb_graph(48)) {
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
        for (p, rp) in pattern.ranks.iter().enumerate() {
            // buffer always starts with the rank's own block
            prop_assert_eq!(rp.held_final.first(), Some(&p));
            // held blocks are unique (a block never arrives twice)
            let mut seen = std::collections::HashSet::new();
            for &b in &rp.held_final {
                prop_assert!(seen.insert(b), "rank {} holds block {} twice", p, b);
            }
            // h2 ranges of successive steps are disjoint
            for (i, a) in rp.steps.iter().enumerate() {
                for b in rp.steps.iter().skip(i + 1) {
                    prop_assert!(a.h2.1 < b.h2.0 || b.h2.1 < a.h2.0,
                        "overlapping h2 ranges {:?} and {:?}", a.h2, b.h2);
                }
            }
            // agents/origins always live in that step's h2
            for s in &rp.steps {
                if let Some(a) = s.agent {
                    prop_assert!(a >= s.h2.0 && a <= s.h2.1);
                }
                if let Some(o) = s.origin {
                    prop_assert!(o >= s.h2.0 && o <= s.h2.1);
                }
            }
        }
    }

    #[test]
    fn simulator_causality_and_bounds(
        g in arb_graph(32),
        m in 0usize..65536,
    ) {
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let cost = SimCost::niagara();
        let plan = comm.plan(Algorithm::Naive).unwrap();
        let rep = simulate(&plan, comm.layout(), m, &cost).unwrap();
        prop_assert!(rep.makespan >= 0.0);
        prop_assert!(rep.makespan.is_finite());
        // lower bound: any single message's wire time
        if g.edge_count() > 0 {
            let min_wire = cost.net.hockney.same_socket.time(m).min(
                cost.net.hockney.remote_group.alpha);
            prop_assert!(rep.makespan >= min_wire * 0.99);
        }
        // per-rank finishes never exceed the makespan
        for &f in &rep.per_rank_finish {
            prop_assert!(f <= rep.makespan + 1e-15);
        }
        // message tallies are conserved
        prop_assert_eq!(rep.stats.total_msgs(), g.edge_count());
    }

    #[test]
    fn sim_latency_monotone_in_message_size(g in arb_graph(24)) {
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let cost = SimCost::niagara();
        for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
            let plan = comm.plan(algo).unwrap();
            let t1 = simulate(&plan, comm.layout(), 64, &cost).unwrap().makespan;
            let t2 = simulate(&plan, comm.layout(), 4096, &cost).unwrap().makespan;
            let t3 = simulate(&plan, comm.layout(), 262_144, &cost).unwrap().makespan;
            prop_assert!(t1 <= t2 + 1e-12, "{}: {} > {}", algo, t1, t2);
            prop_assert!(t2 <= t3 + 1e-12, "{}: {} > {}", algo, t2, t3);
        }
    }

    #[test]
    fn model_monotonicity(
        n in 64usize..4096,
        delta in 0.01f64..1.0,
        m in 1usize..(1 << 22),
    ) {
        let p = ModelParams::niagara(n, delta);
        // time strictly grows with message size
        prop_assert!(p.naive_time(m) < p.naive_time(m * 2));
        prop_assert!(p.dh_time(m) < p.dh_time(m * 2));
        // naive time grows with density; message counts stay in range
        let denser = ModelParams::niagara(n, (delta + 0.1).min(1.0));
        prop_assert!(denser.naive_time(m) >= p.naive_time(m));
        prop_assert!(p.expected_intra_socket_msgs() <= p.l as f64 + 1e-9);
        prop_assert!(p.expected_off_socket_msgs() <= p.halving_steps() as f64 + 1e-9);
    }

    #[test]
    fn bitset_matches_btreeset_model(
        bits in proptest::collection::btree_set(0usize..256, 0..64),
        lo in 0usize..256,
        hi in 0usize..256,
    ) {
        let bs = Bitset::from_bits(256, bits.iter().copied());
        prop_assert_eq!(bs.count_ones(), bits.len());
        prop_assert_eq!(bs.to_vec(), bits.iter().copied().collect::<Vec<_>>());
        let want = bits.iter().filter(|&&b| b >= lo && b <= hi).count();
        prop_assert_eq!(bs.count_in_range(lo, hi), want);
        // intersection against a shifted copy
        let shifted = Bitset::from_bits(256, bits.iter().map(|&b| (b + 1) % 256));
        let want_inter = bits
            .iter()
            .filter(|&&b| bits.contains(&((b + 255) % 256)))
            .count();
        prop_assert_eq!(bs.intersection_count(&shifted), want_inter);
    }

    #[test]
    fn alltoall_correct_on_arbitrary_graphs(g in arb_graph(32)) {
        use nhood_core::alltoall::{
            plan_dh_alltoall, plan_naive_alltoall, reference_alltoall, run_alltoall_virtual,
        };
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let m = 4;
        let sbufs: Vec<Vec<u8>> = (0..n)
            .map(|p| {
                let mut buf = Vec::new();
                for &d in g.out_neighbors(p) {
                    buf.extend((0..m).map(|i| (p * 31 + d * 7 + i) as u8));
                }
                buf
            })
            .collect();
        let want = reference_alltoall(&g, &sbufs, m);
        let naive = plan_naive_alltoall(&g);
        naive.validate(&g).unwrap();
        prop_assert_eq!(&run_alltoall_virtual(&naive, &g, &sbufs, m).unwrap(), &want);
        let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
        let dh = plan_dh_alltoall(&pattern, &g);
        dh.validate(&g).unwrap();
        prop_assert_eq!(&run_alltoall_virtual(&dh, &g, &sbufs, m).unwrap(), &want);
    }

    #[test]
    fn reordered_planner_correct_under_any_placement(
        g in arb_graph(32),
        round_robin in any::<bool>(),
    ) {
        use nhood_core::remap::plan_distance_halving_reordered;
        let n = g.n();
        let mut layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        if round_robin {
            layout = layout.with_placement(nhood_cluster::Placement::RoundRobinNodes);
        }
        let plan = plan_distance_halving_reordered(&g, &layout).unwrap();
        plan.validate(&g).unwrap();
        let payloads = test_payloads(n, 4, 13);
        prop_assert_eq!(
            run_virtual(&plan, &g, &payloads).unwrap(),
            reference_allgather(&g, &payloads)
        );
    }

    #[test]
    fn allgatherv_ragged_correct(
        g in arb_graph(24),
        lens in proptest::collection::vec(0usize..16, 24),
    ) {
        use nhood_core::exec::virtual_exec::run_virtual_v;
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads: Vec<Vec<u8>> =
            (0..n).map(|r| vec![r as u8; lens[r % lens.len()]]).collect();
        let want = reference_allgather(&g, &payloads);
        for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
            let plan = comm.plan(algo).unwrap();
            prop_assert_eq!(&run_virtual_v(&plan, &g, &payloads).unwrap(), &want);
        }
    }

    #[test]
    fn leader_hierarchy_correct_for_any_leader_count(
        g in arb_graph(40),
        leaders in 1usize..9,
    ) {
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let plan = nhood_core::leader::plan_hierarchical_leader(&g, &layout, leaders);
        plan.validate(&g).unwrap();
        let payloads = test_payloads(n, 4, 31);
        prop_assert_eq!(
            run_virtual(&plan, &g, &payloads).unwrap(),
            reference_allgather(&g, &payloads)
        );
    }

    #[test]
    fn plan_io_round_trips_arbitrary_plans(g in arb_graph(32), k in 1usize..10) {
        use nhood_core::plan_io::{read_plan, write_plan};
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k },
            Algorithm::DistanceHalving,
        ] {
            let plan = comm.plan(algo).unwrap();
            let mut buf = Vec::new();
            write_plan(&plan, &mut buf).unwrap();
            let back = read_plan(&buf[..]).unwrap();
            prop_assert_eq!(&back.per_rank, &plan.per_rank);
            prop_assert_eq!(back.algorithm, plan.algorithm);
            // truncation at any point must error, never mis-parse
            if buf.len() > 16 {
                let cut = buf.len() / 2;
                prop_assert!(read_plan(&buf[..cut]).is_err());
            }
        }
    }

    #[test]
    fn threaded_matches_virtual_on_small_graphs(
        g in arb_graph(20),
        m in 0usize..64,
    ) {
        let n = g.n();
        let layout = ClusterLayout::new(n.div_ceil(4), 2, 2);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        let payloads = test_payloads(n, m, 5);
        let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
        let v = run_virtual(&plan, &g, &payloads).unwrap();
        let t = nhood_core::exec::threaded::run_threaded(&plan, &g, &payloads).unwrap();
        prop_assert_eq!(v, t);
    }
}
