//! End-to-end SpMM kernel tests across the Table II replica set: the
//! distributed product must equal the serial product bit-for-bit for
//! every algorithm and process count.

use nhood_cluster::ClusterLayout;
use nhood_core::Algorithm;
use nhood_spmm::distributed_spmm;
use nhood_topology::matrix::generators::{synth_symmetric, table2_matrix, TABLE2};

#[test]
fn small_table2_matrices_all_algorithms() {
    // the small matrices run quickly enough to test all algorithms
    let layout = ClusterLayout::new(4, 2, 8);
    for name in ["dwt_193", "Journals", "ash292"] {
        let x = table2_matrix(name, 7).expect("known matrix");
        let want = x.multiply(&x);
        for algo in
            [Algorithm::Naive, Algorithm::CommonNeighbor { k: 8 }, Algorithm::DistanceHalving]
        {
            let got = distributed_spmm(&x, &x, 64, &layout, algo)
                .unwrap_or_else(|e| panic!("{name} {algo}: {e}"));
            assert_eq!(got.z.max_abs_diff(&want), 0.0, "{name} {algo}");
        }
    }
}

#[test]
fn medium_table2_matrices_dh() {
    let layout = ClusterLayout::new(4, 2, 8);
    for name in ["comsol", "bcsstk13"] {
        let x = table2_matrix(name, 7).expect("known matrix");
        let want = x.multiply(&x);
        let got = distributed_spmm(&x, &x, 64, &layout, Algorithm::DistanceHalving)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got.z.max_abs_diff(&want), 0.0, "{name}");
    }
}

#[test]
fn rectangular_product() {
    // Z = X (n×n) × Y (n×k as a sparse matrix with k < n columns)
    let x =
        synth_symmetric(96, 900, nhood_topology::matrix::generators::StructureClass::Uniform, 1);
    let y = nhood_topology::CsrMatrix::from_coo(
        96,
        16,
        (0..96).map(|r| (r, r % 16, 1.0 + r as f64)).collect(),
    );
    let want = x.multiply(&y);
    let layout = ClusterLayout::new(2, 2, 8);
    let got = distributed_spmm(&x, &y, 24, &layout, Algorithm::DistanceHalving).unwrap();
    assert_eq!(got.z.max_abs_diff(&want), 0.0);
}

#[test]
fn process_count_sweep() {
    let x = table2_matrix("dwt_193", 3).expect("known matrix");
    let want = x.multiply(&x);
    let layout = ClusterLayout::new(8, 2, 8);
    for parts in [1usize, 2, 7, 16, 64, 128] {
        let got = distributed_spmm(&x, &x, parts, &layout, Algorithm::DistanceHalving)
            .unwrap_or_else(|e| panic!("parts={parts}: {e}"));
        assert_eq!(got.z.max_abs_diff(&want), 0.0, "parts={parts}");
    }
}

#[test]
fn replica_structure_classes_are_distinct() {
    // the banded replicas must produce sparser topologies than the
    // uniform/dense ones at the same process count — the property Fig. 7
    // leans on to explain which matrices benefit
    let parts = 64;
    let banded = table2_matrix("bcsstk13", 1).expect("known");
    let dense = table2_matrix("Journals", 1).expect("known");
    let t_banded = nhood_topology::spmm_graph::spmm_topology(&banded, parts);
    let t_dense = nhood_topology::spmm_graph::spmm_topology(&dense, parts);
    let d_banded = t_banded.density();
    let d_dense = t_dense.density();
    assert!(
        d_dense > 2.0 * d_banded,
        "Journals topology density {d_dense:.3} vs bcsstk13 {d_banded:.3}"
    );
}

#[test]
fn all_table2_names_resolve() {
    for e in &TABLE2 {
        assert!(table2_matrix(e.name, 1).is_some(), "{}", e.name);
    }
}
