//! Paper-scale smoke tests and headline-claim checks at reduced scale.
//! These are the slowest tests in the suite (hundreds of ranks); they
//! guard the behaviours the evaluation section depends on.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::sim_exec::simulate;
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::{Algorithm, DistGraphComm, Executor, SimCost, Virtual};
use nhood_topology::moore::{moore, MooreSpec};
use nhood_topology::random::erdos_renyi;

#[test]
fn paper_smallest_scale_end_to_end() {
    // 540 ranks / 15 nodes — the smallest configuration of Fig. 5 — runs
    // end-to-end with correct data movement.
    let g = erdos_renyi(540, 0.1, 42);
    let layout = ClusterLayout::niagara(15, 36);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
    let payloads = test_payloads(540, 8, 11);
    let want = reference_allgather(&g, &payloads);
    for algo in [Algorithm::Naive, Algorithm::DistanceHalving] {
        let plan = comm.plan(algo).unwrap();
        assert_eq!(Virtual.run_simple(&plan, &g, &payloads).unwrap(), want, "{algo}");
    }
}

#[test]
fn dh_beats_naive_on_dense_small_messages_multinode() {
    // The headline claim at reduced scale: dense RSG, small messages,
    // multi-node cluster → DH wins comfortably.
    let g = erdos_renyi(216, 0.5, 42);
    let layout = ClusterLayout::niagara(6, 36);
    let comm = DistGraphComm::create_adjacent(g, layout).unwrap();
    let cost = SimCost::niagara();
    let tn = comm.latency(Algorithm::Naive, 64, &cost).unwrap().makespan;
    let td = comm.latency(Algorithm::DistanceHalving, 64, &cost).unwrap().makespan;
    assert!(tn / td > 3.0, "expected >3x, got {:.2}x", tn / td);
}

#[test]
fn dh_speedup_grows_with_density() {
    let layout = ClusterLayout::niagara(6, 36);
    let cost = SimCost::niagara();
    let speedup = |delta: f64| {
        let g = erdos_renyi(216, delta, 42);
        let comm = DistGraphComm::create_adjacent(g, layout.clone()).unwrap();
        let tn = comm.latency(Algorithm::Naive, 64, &cost).unwrap().makespan;
        let td = comm.latency(Algorithm::DistanceHalving, 64, &cost).unwrap().makespan;
        tn / td
    };
    let sparse = speedup(0.05);
    let dense = speedup(0.5);
    assert!(dense > sparse, "dense {dense:.2} must exceed sparse {sparse:.2}");
}

#[test]
fn dh_speedup_declines_with_message_size() {
    // Fig. 5's other shape: the advantage erodes as messages grow
    // (buffer doubling + copies).
    let g = erdos_renyi(216, 0.5, 42);
    let layout = ClusterLayout::niagara(6, 36);
    let comm = DistGraphComm::create_adjacent(g, layout).unwrap();
    let cost = SimCost::niagara();
    let sp = |m: usize| {
        let tn = comm.latency(Algorithm::Naive, m, &cost).unwrap().makespan;
        let td = comm.latency(Algorithm::DistanceHalving, m, &cost).unwrap().makespan;
        tn / td
    };
    let small = sp(32);
    let large = sp(1 << 20);
    assert!(small > large, "small-message speedup {small:.2} must exceed large-message {large:.2}");
}

#[test]
fn moore_dense_neighborhoods_favor_dh() {
    // Fig. 6's shape at reduced scale: denser Moore neighborhoods leave
    // more room for improvement.
    let layout = ClusterLayout::niagara(8, 32);
    let cost = SimCost::niagara();
    let sp = |spec: MooreSpec| {
        let g = moore(256, spec);
        let comm = DistGraphComm::create_adjacent(g, layout.clone()).unwrap();
        let tn = comm.latency(Algorithm::Naive, 4096, &cost).unwrap().makespan;
        let td = comm.latency(Algorithm::DistanceHalving, 4096, &cost).unwrap().makespan;
        tn / td
    };
    let sparse = sp(MooreSpec { r: 1, d: 2 }); // 8 neighbors
    let dense = sp(MooreSpec { r: 3, d: 2 }); // 48 neighbors
    assert!(dense > sparse, "r=3 speedup {dense:.2} must exceed r=1 speedup {sparse:.2}");
}

#[test]
fn agent_success_rate_tracks_paper_claim() {
    // §VII-A: ~80% average success at δ = 0.05 with 2160 ranks. At 540
    // ranks the same ballpark (0.6–0.95) should hold; the full-scale
    // repro run confirms 0.81 (see EXPERIMENTS.md).
    let g = erdos_renyi(540, 0.05, 42);
    let layout = ClusterLayout::niagara(15, 36);
    let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
    let rate = pattern.stats.success_rate();
    assert!((0.5..1.0).contains(&rate), "success rate {rate}");
}

#[test]
fn dh_reduces_internode_traffic() {
    // The mechanism behind every figure: DH sends far fewer inter-node
    // messages than naive on a dense graph.
    let g = erdos_renyi(216, 0.5, 42);
    let layout = ClusterLayout::niagara(6, 36);
    let comm = DistGraphComm::create_adjacent(g, layout.clone()).unwrap();
    let cost = SimCost::niagara();
    let naive = simulate(&comm.plan(Algorithm::Naive).unwrap(), &layout, 64, &cost).unwrap();
    let dh = simulate(&comm.plan(Algorithm::DistanceHalving).unwrap(), &layout, 64, &cost).unwrap();
    assert!(
        dh.stats.internode_msgs() * 5 < naive.stats.internode_msgs(),
        "DH {} vs naive {} inter-node messages",
        dh.stats.internode_msgs(),
        naive.stats.internode_msgs()
    );
}

#[test]
fn load_is_more_balanced_than_naive() {
    // §IV claims DH balances load: the max/mean sends-per-rank ratio of
    // DH should not exceed naive's on a skewed (star-heavy) graph.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // a few hubs with huge out-degree + background sparse traffic
    for hub in 0..4usize {
        for t in 0..216usize {
            if t != hub {
                edges.push((hub, t));
            }
        }
    }
    let g_bg = erdos_renyi(216, 0.05, 9);
    edges.extend(g_bg.edges());
    let g = nhood_topology::Topology::from_edges(216, edges);
    let layout = ClusterLayout::niagara(6, 36);
    let comm = DistGraphComm::create_adjacent(g, layout).unwrap();
    let imbalance = |algo| {
        let loads = comm.plan(algo).unwrap().sends_per_rank();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        max / mean
    };
    let naive = imbalance(Algorithm::Naive);
    let dh = imbalance(Algorithm::DistanceHalving);
    assert!(dh < naive, "DH imbalance {dh:.2} must beat naive {naive:.2}");
}

#[test]
fn distributed_builder_matches_at_scale() {
    // 216 ranks = 216 OS threads running the real negotiation protocol.
    let g = erdos_renyi(216, 0.2, 42);
    let layout = ClusterLayout::niagara(6, 36);
    let pattern = nhood_core::distributed_builder::build_pattern_distributed(&g, &layout).unwrap();
    let plan = nhood_core::lower::lower(&pattern, &g);
    plan.validate(&g).unwrap();
    let payloads = test_payloads(216, 8, 17);
    assert_eq!(
        Virtual.run_simple(&plan, &g, &payloads).unwrap(),
        reference_allgather(&g, &payloads)
    );
    // structure agrees with the sequential emulation where it must
    let seq = nhood_core::builder::build_pattern(&g, &layout).unwrap();
    assert_eq!(pattern.max_steps(), seq.max_steps());
    let rate = pattern.stats.success_rate();
    let seq_rate = seq.stats.success_rate();
    assert!(
        (rate - seq_rate).abs() < 0.1,
        "success rates diverge: threads {rate:.2} vs emulation {seq_rate:.2}"
    );
}

#[test]
fn paper_fig1_narrative_holds() {
    // The walkthrough of Fig. 1: across three halving steps a rank's
    // buffer accumulates its origins' buffers, each agent/origin lies in
    // the step's opposite half, and the halves nest strictly.
    let g = erdos_renyi(64, 0.5, 1);
    let layout = ClusterLayout::new(4, 2, 8); // L = 8 -> 3 halving steps
    let pattern = nhood_core::builder::build_pattern(&g, &layout).unwrap();
    assert_eq!(pattern.max_steps(), 3);
    for (p, rp) in pattern.ranks.iter().enumerate() {
        let mut buf_len = 1usize;
        let mut prev_h1: Option<(usize, usize)> = None;
        for step in &rp.steps {
            // halves nest: this step's h1 ∪ h2 is the previous h1
            if let Some((lo, hi)) = prev_h1 {
                let (a, b) = (step.h1.0.min(step.h2.0), step.h1.1.max(step.h2.1));
                assert_eq!((a, b), (lo, hi), "rank {p}: halves do not nest");
            }
            prev_h1 = Some(step.h1);
            assert!(p >= step.h1.0 && p <= step.h1.1, "rank outside its own h1");
            assert_eq!(step.held_len, buf_len);
            buf_len += step.arr_len;
        }
        // the final half fits on one socket
        if let Some(last) = rp.steps.last() {
            assert!(last.h1.1 - last.h1.0 < 8);
        }
    }
}
