//! Cross-backend properties of the PR-10 portfolio additions.
//!
//! 1. **Correctness everywhere** — Bruck and PAT plans are byte
//!    identical to `reference_allgather` on the Virtual, Threaded, and
//!    Sim backends, for ragged payloads with zero-length blocks in the
//!    mix, across n ≤ 64 and three densities.
//! 2. **Tuner determinism** — the `Algorithm::Auto` winner is a pure
//!    function of the tuner fingerprint: repeats, worker-pool sizes,
//!    and freshly constructed communicators all agree, and the full
//!    score table is reproduced exactly.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::virtual_exec::reference_allgather;
use nhood_core::{
    Algorithm, BlockSizes, CollectiveRequest, DistGraphComm, ExecBackend, LoadMetric,
};
use nhood_topology::random::erdos_renyi;
use nhood_topology::rng::DetRng;

fn comm_for(n: usize, delta: f64, seed: u64) -> DistGraphComm {
    let g = erdos_renyi(n, delta, seed);
    let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
    DistGraphComm::create_adjacent(g, layout).unwrap()
}

/// Per-rank payload lengths from `DetRng`, with zero-length blocks
/// guaranteed to occur (every 7th rank contributes nothing).
fn ragged_payloads(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|r| {
            let len = if r % 7 == 0 { 0 } else { 1 + rng.gen_below(24) };
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect()
}

/// Ragged allgatherv through Bruck and PAT matches the naive reference
/// on every backend — n ≤ 64 at low, medium, and high density, both
/// load metrics, zero-length blocks included. The Sim backend's output
/// carries real bytes (via Virtual) *and* a simulated report; both are
/// checked.
#[test]
fn bruck_and_pat_match_reference_on_every_backend() {
    for n in [17usize, 32, 64] {
        for delta in [0.1f64, 0.3, 0.6] {
            let comm = comm_for(n, delta, 0xB10 + n as u64);
            let g = comm.graph().clone();
            let payloads = ragged_payloads(n, 0x9A7 ^ ((n as u64) << 8) ^ (delta * 10.0) as u64);
            assert!(payloads.iter().any(Vec::is_empty), "want zero-length blocks in the mix");
            let want = reference_allgather(&g, &payloads);

            for metric in [LoadMetric::Neighbors, LoadMetric::Bytes] {
                let comm = comm.clone().with_load_metric(metric);
                for algo in
                    [Algorithm::Bruck, Algorithm::Pat { radix: 2 }, Algorithm::Pat { radix: 4 }]
                {
                    for backend in [ExecBackend::Virtual, ExecBackend::Threaded, ExecBackend::Sim] {
                        let req = CollectiveRequest::allgatherv(&payloads)
                            .algorithm(algo)
                            .backend(backend);
                        let out = comm.collective(&req).unwrap();
                        assert_eq!(
                            out.rbufs, want,
                            "n={n} delta={delta} {metric:?} {algo} {backend}"
                        );
                        if backend == ExecBackend::Sim {
                            let sim = out.sim.expect("sim backend carries a report");
                            assert!(sim.makespan > 0.0, "n={n} delta={delta} {algo}");
                        }
                    }
                }
            }
        }
    }
}

/// The `Auto` winner is a pure function of the tuner fingerprint: fresh
/// communicators over the same (topology, layout, sizes, cost model)
/// agree on the winner *and the whole score table*, no matter how many
/// build threads they use or how often they are asked.
#[test]
fn tuner_winner_is_a_pure_function_of_the_fingerprint() {
    for (n, delta, m) in [(32usize, 0.4f64, 64usize), (48, 0.25, 4096)] {
        let fresh = || {
            comm_for(n, delta, 0x7E5 + n as u64)
                .with_block_sizes(BlockSizes::uniform(m))
                .with_load_metric(LoadMetric::Bytes)
        };
        let base = fresh();
        let want = base.tune().unwrap();
        assert_ne!(want.winner, Algorithm::Auto, "the tuner must pick a concrete algorithm");
        assert!(want.simulations > 0);
        for threads in [1usize, 2, 4] {
            for rep in 0..2 {
                let c = fresh().with_build_threads(threads);
                assert_eq!(
                    c.tuner_fingerprint(),
                    base.tuner_fingerprint(),
                    "same inputs must key identically"
                );
                let got = c.tune().unwrap();
                assert_eq!(got.winner, want.winner, "threads={threads} rep={rep}");
                assert_eq!(got.scores, want.scores, "threads={threads} rep={rep}");
            }
        }
        // a different size table moves the fingerprint — the tuner key
        // always covers the byte totals, whatever the load metric
        let other = fresh().with_block_sizes(BlockSizes::uniform(m * 2));
        assert_ne!(other.tuner_fingerprint(), base.tuner_fingerprint());
    }
}
