//! End-to-end properties of the plan-construction fast path.
//!
//! Two guarantees the fast path must never trade away:
//!
//! 1. **Determinism** — a plan built on the worker pool is *byte
//!    identical* (through the `plan_io` wire format) to one built
//!    serially. The pool's index-ordered merge makes parallelism an
//!    implementation detail, not an observable one.
//! 2. **Transparency** — a plan served from the fingerprint cache
//!    executes exactly like a freshly built one on every backend.

use nhood_cluster::ClusterLayout;
use nhood_core::exec::virtual_exec::{reference_allgather, test_payloads};
use nhood_core::{
    plan_io, Algorithm, BlockArena, BlockSizes, CollectiveRequest, DistGraphComm, ExecOptions,
    Executor, LoadMetric, PlanCache, Sim, Threaded, Virtual,
};
use nhood_topology::random::erdos_renyi;
use nhood_topology::rng::DetRng;
use std::sync::Arc;

fn comm_for(n: usize, delta: f64, seed: u64) -> DistGraphComm {
    let g = erdos_renyi(n, delta, seed);
    let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
    DistGraphComm::create_adjacent(g, layout).unwrap()
}

fn plan_bytes(comm: &DistGraphComm) -> Vec<u8> {
    let plan = comm.plan(Algorithm::DistanceHalving).unwrap();
    let mut bytes = Vec::new();
    plan_io::write_plan(&plan, &mut bytes).unwrap();
    bytes
}

/// Pool-built DH plans round-trip to the same `plan_io` bytes as
/// serial ones, across random graphs up to n = 128 at low, medium, and
/// high density.
#[test]
fn parallel_built_plans_are_byte_identical_to_serial() {
    for n in [16usize, 48, 128] {
        for delta in [0.1f64, 0.3, 0.6] {
            let serial = comm_for(n, delta, 0xD5 + n as u64);
            let pooled = serial.clone().with_build_threads(4);
            assert_eq!(
                plan_bytes(&serial),
                plan_bytes(&pooled),
                "n={n} delta={delta}: pooled plan diverged from serial"
            );
        }
    }
}

/// A plan served from the cache (a genuine hit — the same `Arc`, no
/// rebuild) produces `reference_allgather`-identical output on the
/// Virtual and Threaded backends, and simulates to the plan's own
/// message statics on Sim (the simulator moves no real payload bytes,
/// so traffic counts are its observable output).
#[test]
fn all_backends_match_reference_from_cached_plans() {
    let n = 32;
    let g = erdos_renyi(n, 0.35, 11);
    let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
    let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone())
        .unwrap()
        .with_plan_cache(Arc::new(PlanCache::new(4)));

    let first = comm.plan_shared(Algorithm::DistanceHalving).unwrap();
    let plan = comm.plan_shared(Algorithm::DistanceHalving).unwrap();
    assert!(Arc::ptr_eq(&first, &plan), "second lookup must be a cache hit");
    let stats = comm.plan_cache().unwrap().stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    let m = 64;
    let payloads = test_payloads(n, m, 0xCA);
    let want = reference_allgather(&g, &payloads);
    let opts = ExecOptions::new();

    let out = Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
    assert_eq!(out.rbufs, want, "virtual backend diverged on a cached plan");

    let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
    assert_eq!(out.rbufs, want, "threaded backend diverged on a cached plan");

    let rec = nhood_telemetry::CountingRecorder::new(n);
    let sim = Sim::new(layout).message_size(m);
    let out = sim
        .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::new().recorder(&rec))
        .unwrap();
    assert!(out.rbufs.is_empty(), "sim moves no real bytes");
    assert!(out.sim.expect("sim report").makespan > 0.0);
    let totals = rec.totals();
    assert_eq!(totals.msgs_sent as usize, plan.message_count());
    assert_eq!(totals.bytes_sent as usize, plan.total_blocks_sent() * m);
}

/// Per-rank payload lengths from `DetRng`, with zero-length blocks
/// guaranteed to occur (every 7th rank contributes nothing).
fn ragged_payloads(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|r| {
            let len = if r % 7 == 0 { 0 } else { 1 + rng.gen_below(24) };
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect()
}

/// Ragged `neighbor_allgatherv` is byte-identical to the naive
/// reference across every algorithm, both load metrics, and all three
/// executor backends — n ≤ 64 at low, medium, and high density, with
/// per-rank sizes drawn from `DetRng` (zero-length blocks included).
#[test]
fn ragged_allgatherv_matches_reference_on_every_backend() {
    for n in [16usize, 33, 64] {
        for delta in [0.1f64, 0.3, 0.6] {
            let comm = comm_for(n, delta, 0xA11 + n as u64);
            let g = comm.graph().clone();
            let payloads = ragged_payloads(n, 0x5EED ^ (n as u64) << 8 ^ (delta * 10.0) as u64);
            assert!(payloads.iter().any(Vec::is_empty), "want zero-length blocks in the mix");
            let want = reference_allgather(&g, &payloads);

            // the communicator surface, both selection metrics, every algorithm
            for metric in [LoadMetric::Neighbors, LoadMetric::Bytes] {
                let comm = comm.clone().with_load_metric(metric);
                for algo in [
                    Algorithm::Naive,
                    Algorithm::CommonNeighbor { k: 4 },
                    Algorithm::DistanceHalving,
                ] {
                    let req = CollectiveRequest::allgatherv(&payloads).algorithm(algo);
                    let got = comm.collective(&req).unwrap().rbufs;
                    assert_eq!(got, want, "n={n} delta={delta} {metric:?} {algo:?}");
                }
            }

            // the raw executors on a byte-weighted DH plan
            let sized = comm
                .clone()
                .with_load_metric(LoadMetric::Bytes)
                .with_block_sizes(BlockSizes::from_payloads(&payloads));
            let plan = Arc::new(sized.plan(Algorithm::DistanceHalving).unwrap());
            let opts = ExecOptions::new().ragged(true);
            let out = Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert_eq!(out.rbufs, want, "virtual: n={n} delta={delta}");
            let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert_eq!(out.rbufs, want, "threaded: n={n} delta={delta}");
            // Sim moves no real bytes; its observable is per-size traffic
            let sim = Sim::new(ClusterLayout::new(n.div_ceil(8), 2, 4));
            let out = sim.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert!(out.rbufs.is_empty(), "sim moves no real bytes");
            assert!(out.sim.expect("sim report").makespan > 0.0, "sim: n={n} delta={delta}");
        }
    }
}

/// The plan cache keys uniform and ragged byte-weighted builds
/// distinctly end to end: same topology, same algorithm, but a
/// different size table must never be served the other's plan.
#[test]
fn plan_cache_keys_uniform_and_ragged_builds_distinctly() {
    let comm = comm_for(32, 0.3, 0xCAFE)
        .with_plan_cache(Arc::new(PlanCache::new(8)))
        .with_load_metric(LoadMetric::Bytes);
    let uniform = test_payloads(32, 8, 1);
    let ragged = ragged_payloads(32, 2);

    let gatherv = |payloads: &[Vec<u8>]| {
        comm.collective(&CollectiveRequest::allgatherv(payloads)).unwrap();
    };
    gatherv(&uniform);
    gatherv(&ragged);
    let stats = comm.plan_cache().unwrap().stats();
    assert_eq!((stats.hits, stats.misses), (0, 2), "distinct size tables must build separately");

    // same shapes again: both served from the cache
    gatherv(&uniform);
    gatherv(&ragged);
    let stats = comm.plan_cache().unwrap().stats();
    assert_eq!((stats.hits, stats.misses), (2, 2), "repeat shapes must hit");
}
