//! The naïve (default Open MPI) neighborhood allgather.
//!
//! Exactly what `MPI_Neighbor_allgather` does in stock Open MPI, MPICH
//! and MVAPICH: post one receive per incoming neighbor and one send per
//! outgoing neighbor, directly from the send buffer into the receive
//! buffer, and wait for all of them. One phase, no combining, no copies.

use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use nhood_topology::Topology;

/// Builds the naïve direct point-to-point plan.
pub fn plan_naive(graph: &Topology) -> CollectivePlan {
    let n = graph.n();
    let per_rank = (0..n)
        .map(|r| {
            let sends = graph
                .out_neighbors(r)
                .iter()
                .map(|&d| PlannedMsg { peer: d, blocks: vec![r], tag: 0 })
                .collect();
            let recvs = graph
                .in_neighbors(r)
                .iter()
                .map(|&s| PlannedMsg { peer: s, blocks: vec![s], tag: 0 })
                .collect();
            vec![PlanPhase { copy_blocks: 0, sends, recvs }]
        })
        .collect();
    CollectivePlan { algorithm: Algorithm::Naive, per_rank, selection: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn naive_is_one_message_per_edge() {
        let g = erdos_renyi(32, 0.3, 1);
        let plan = plan_naive(&g);
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), g.edge_count());
        assert_eq!(plan.total_blocks_sent(), g.edge_count());
        assert_eq!(plan.max_message_blocks(), 1.min(g.edge_count()));
        assert_eq!(plan.phase_count(), 1);
    }

    #[test]
    fn naive_load_equals_outdegree() {
        let g = erdos_renyi(20, 0.4, 2);
        let plan = plan_naive(&g);
        let loads = plan.sends_per_rank();
        for (r, &load) in loads.iter().enumerate() {
            assert_eq!(load, g.outdegree(r));
        }
    }

    #[test]
    fn naive_empty_graph() {
        let g = Topology::from_edges(4, []);
        let plan = plan_naive(&g);
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), 0);
    }

    #[test]
    fn naive_dense_graph() {
        let g = erdos_renyi(10, 1.0, 3);
        let plan = plan_naive(&g);
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), 90);
    }
}
