//! Zero-copy block arenas: flat per-rank buffers with a precomputed
//! offset table.
//!
//! The legacy executors model every payload block as an owned (or
//! `Arc`-shared) `Vec<u8>` inside a per-rank hash map, so each phase pays
//! per-block allocation, hashing and pointer-chasing costs that the
//! paper's Hockney model (§V) never charges. The arena path moves all of
//! that work to **plan time**:
//!
//! * [`ArenaLayout::for_plan`] walks the plan once and assigns every
//!   block a rank ever holds a fixed **slot** in that rank's flat arena
//!   (slot 0 is the rank's own block; arriving blocks are appended in
//!   arrival order). Because the Distance Halving builder also appends
//!   arrivals to `main_buf` (Algorithm 4 line 15), a halving-phase send
//!   of the whole buffer resolves to **one contiguous arena span** — the
//!   growing-message combine the paper's bandwidth term models.
//! * Every planned message is pre-resolved to source and destination
//!   **slot runs**, so at execution time a send is a handful of
//!   `copy_from_slice` calls (usually one) and a receive lands bytes at
//!   precomputed offsets — no hash lookups, no per-block `Vec`s.
//! * The receive buffer of each rank is pre-resolved to arena runs too,
//!   so final assembly is a few large copies in `in_neighbors` order.
//!
//! [`BlockArena`] owns the reusable storage. It caches the layout (keyed
//! by a fingerprint of the plan and topology) and the per-rank buffers,
//! so a persistent collective executing the same plan repeatedly never
//! reallocates — see [`BlockArena::reallocations`].

use crate::exec::ExecError;
use crate::plan::CollectivePlan;
use crate::plan_cache::PlanFingerprint;
use crate::sizes::BlockSizes;
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// A run of consecutive arena slots: `(first_slot, slot_count)`.
///
/// Slot runs are resolved to byte extents per execution via
/// [`SlotExtents`] — uniform block size `m` gives `offset = slot * m`,
/// ragged sizes use a per-rank prefix-sum table — so one layout serves
/// every message size *and* shape.
pub type SlotRun = (u32, u32);

/// Resolves one rank's slot indices to byte offsets in its arena buffer.
///
/// The layout stays size-agnostic (slots, not bytes); this is the
/// per-execution lens that turns a [`SlotRun`] into a byte span. The
/// uniform variant is a multiplication; the ragged variant is one
/// prefix-sum table lookup — both O(1), keeping `land_segs` and
/// `copy_runs` zero-copy.
#[derive(Clone, Debug)]
pub enum SlotExtents {
    /// Every block is `m` bytes: `offset(slot) = slot * m`.
    Uniform(usize),
    /// Prefix sums over the rank's slot sizes (`table.len() = slots + 1`,
    /// `table[0] = 0`): `offset(slot) = table[slot]`.
    Table(Arc<Vec<usize>>),
}

impl SlotExtents {
    /// Byte offset of `slot` in the rank's arena buffer. `slot` may be
    /// one past the last slot, yielding the buffer's total byte length.
    #[inline]
    pub fn offset(&self, slot: usize) -> usize {
        match self {
            SlotExtents::Uniform(m) => slot * m,
            SlotExtents::Table(t) => t[slot],
        }
    }

    /// Total bytes covered by a slot run.
    #[inline]
    pub fn run_bytes(&self, (s, l): SlotRun) -> usize {
        self.offset((s + l) as usize) - self.offset(s as usize)
    }
}

/// A planned message pre-resolved against the **sender's** arena.
#[derive(Clone, Debug)]
pub struct SendOp {
    /// Destination rank.
    pub peer: Rank,
    /// Matching tag (copied from the plan).
    pub tag: u64,
    /// Source slot runs in the sender's arena, in message block order.
    pub runs: Vec<SlotRun>,
    /// Total blocks in the message.
    pub blocks: u32,
}

/// A planned message pre-resolved against the **receiver's** arena.
#[derive(Clone, Debug)]
pub struct RecvOp {
    /// Source rank.
    pub peer: Rank,
    /// Matching tag (copied from the plan).
    pub tag: u64,
    /// Destination slot runs in the receiver's arena, in message block
    /// order.
    pub runs: Vec<SlotRun>,
    /// Total blocks in the message.
    pub blocks: u32,
}

/// One phase of one rank's program, pre-resolved to arena spans.
#[derive(Clone, Debug, Default)]
pub struct PhaseOps {
    /// Sends, aligned with the plan phase's `sends`.
    pub sends: Vec<SendOp>,
    /// Receives, aligned with the plan phase's `recvs`.
    pub recvs: Vec<RecvOp>,
}

/// One rank's complete arena layout.
#[derive(Clone, Debug)]
pub struct RankLayout {
    /// Block id held in each slot, in slot order (`slots[0]` is the rank
    /// itself).
    pub slots: Vec<Rank>,
    /// Per-phase pre-resolved operations (lock-step with the plan).
    pub phases: Vec<PhaseOps>,
    /// Destination runs for every expected incoming message, keyed by
    /// `(src, tag)` — the threaded backend matches out-of-order arrivals
    /// against this.
    pub recv_runs: HashMap<(Rank, u64), Vec<SlotRun>>,
    /// Arena runs that assemble the rank's receive buffer: its
    /// in-neighbors' blocks in `in_neighbors` order.
    pub out_runs: Vec<SlotRun>,
    /// Blocks in the receive buffer (= in-degree).
    pub out_blocks: u32,
}

/// The per-rank flat layout of a [`CollectivePlan`]: every block each
/// rank ever holds mapped to a fixed arena slot, and every planned
/// message pre-resolved to slot runs. Built once per plan (see
/// [`BlockArena`] for caching) and reused across executions and message
/// sizes.
#[derive(Clone, Debug)]
pub struct ArenaLayout {
    /// Per-rank layouts.
    pub ranks: Vec<RankLayout>,
    /// Lock-step phase count (copied from the plan).
    pub phase_count: usize,
}

/// Compresses a sequence of slot indices into maximal consecutive runs.
fn compress_runs(slots: impl IntoIterator<Item = u32>) -> Vec<SlotRun> {
    let mut runs: Vec<SlotRun> = Vec::new();
    for s in slots {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == s => *len += 1,
            _ => runs.push((s, 1)),
        }
    }
    runs
}

/// Merges adjacent runs in place (`(s, a)` followed by `(s + a, b)`
/// becomes `(s, a + b)`) and releases slack capacity. Returns how many
/// runs were merged away.
///
/// [`compress_runs`] already emits maximal runs, so on layouts it builds
/// this is a pure `shrink_to_fit`; the merge pass is the invariant
/// enforcement for run lists that arrive from elsewhere (mutated plans,
/// deserialized layouts, tests that fragment runs on purpose) — every
/// downstream copy loop does one `copy_from_slice` per run, so maximal
/// runs are what makes the copy-merge vectorize.
fn coalesce_runs(runs: &mut Vec<SlotRun>) -> usize {
    let before = runs.len();
    let mut w = 0usize;
    for i in 0..runs.len() {
        let (s, l) = runs[i];
        if w > 0 {
            let (ps, pl) = runs[w - 1];
            if ps + pl == s {
                runs[w - 1] = (ps, pl + l);
                continue;
            }
        }
        runs[w] = (s, l);
        w += 1;
    }
    runs.truncate(w);
    runs.shrink_to_fit();
    before - w
}

/// Builds one rank's complete layout row. A rank's slot assignment is a
/// pure function of its own program (sends resolve against its own slot
/// table, receives only grow it), so rows are independently computable —
/// which is what lets [`ArenaLayout::repair`] rebuild only the ranks a
/// plan mutation touched.
fn rank_layout(plan: &CollectivePlan, graph: &Topology, r: Rank) -> Result<RankLayout, ExecError> {
    let phase_count = plan.phase_count();
    let mut slot_of: HashMap<Rank, u32> = HashMap::from([(r, 0u32)]);
    let mut rl = RankLayout {
        slots: vec![r],
        phases: Vec::with_capacity(phase_count),
        recv_runs: HashMap::new(),
        out_runs: Vec::new(),
        out_blocks: 0,
    };

    for (k, phase) in plan.per_rank[r].iter().enumerate() {
        // Sends first, against the pre-phase slot table, so a block
        // arriving in phase k cannot be sourced in phase k.
        let mut ops = Vec::with_capacity(phase.sends.len());
        for msg in &phase.sends {
            let mut src_slots = Vec::with_capacity(msg.blocks.len());
            for &b in &msg.blocks {
                let &s = slot_of.get(&b).ok_or(ExecError::MissingBlock {
                    rank: r,
                    block: b,
                    phase: k,
                })?;
                src_slots.push(s);
            }
            ops.push(SendOp {
                peer: msg.peer,
                tag: msg.tag,
                runs: compress_runs(src_slots),
                blocks: msg.blocks.len() as u32,
            });
        }
        // Then receives: first arrival appends a slot at the arena tail
        // (re-deliveries reuse the existing slot — the bytes are
        // identical, so overwriting is idempotent).
        let mut recv_ops = Vec::with_capacity(phase.recvs.len());
        for msg in &phase.recvs {
            let mut dst_slots = Vec::with_capacity(msg.blocks.len());
            for &b in &msg.blocks {
                let next = rl.slots.len() as u32;
                let s = *slot_of.entry(b).or_insert(next);
                if s == next {
                    rl.slots.push(b);
                }
                dst_slots.push(s);
            }
            let runs = compress_runs(dst_slots);
            rl.recv_runs.insert((msg.peer, msg.tag), runs.clone());
            recv_ops.push(RecvOp {
                peer: msg.peer,
                tag: msg.tag,
                runs,
                blocks: msg.blocks.len() as u32,
            });
        }
        rl.phases.push(PhaseOps { sends: ops, recvs: recv_ops });
    }

    // Receive-buffer assembly runs, in in-neighbor order.
    let ins = graph.in_neighbors(r);
    let mut out_slots = Vec::with_capacity(ins.len());
    for &b in ins {
        let &s = slot_of.get(&b).ok_or(ExecError::Undelivered { rank: r, block: b })?;
        out_slots.push(s);
    }
    rl.out_blocks = out_slots.len() as u32;
    rl.out_runs = compress_runs(out_slots);
    rl.coalesce();
    rl.slots.shrink_to_fit();
    Ok(rl)
}

impl RankLayout {
    /// Coalesces every run list in this row to maximal adjacent runs and
    /// releases slack capacity (see `coalesce_runs`). Returns the
    /// number of runs merged away.
    pub fn coalesce(&mut self) -> usize {
        let mut merged = 0;
        for ph in &mut self.phases {
            for s in &mut ph.sends {
                merged += coalesce_runs(&mut s.runs);
            }
            for rv in &mut ph.recvs {
                merged += coalesce_runs(&mut rv.runs);
            }
        }
        for runs in self.recv_runs.values_mut() {
            merged += coalesce_runs(runs);
        }
        merged += coalesce_runs(&mut self.out_runs);
        merged
    }
}

impl ArenaLayout {
    /// Builds the layout for `plan` on `graph`.
    ///
    /// Walks each rank's phases in plan order, assigning fresh slots to
    /// blocks on first arrival. Returns the same typed errors the
    /// executors would hit at runtime: [`ExecError::MissingBlock`] for a
    /// send of a never-held block and [`ExecError::Undelivered`] for an
    /// in-neighbor whose block never arrives — so a corrupt plan fails
    /// at layout time, before any bytes move.
    pub fn for_plan(plan: &CollectivePlan, graph: &Topology) -> Result<Self, ExecError> {
        let ranks =
            (0..plan.n()).map(|r| rank_layout(plan, graph, r)).collect::<Result<Vec<_>, _>>()?;
        Ok(Self { ranks, phase_count: plan.phase_count() })
    }

    /// Rebuilds only the rows in `changed_ranks` against a mutated plan,
    /// leaving every other row untouched. Correct because a row is a
    /// pure function of its own rank's program (`rank_layout`) — the
    /// caller guarantees ranks outside the list have bitwise-equal
    /// programs and unchanged in-neighbor lists.
    pub fn repair(
        &self,
        plan: &CollectivePlan,
        graph: &Topology,
        changed_ranks: &[Rank],
    ) -> Result<Self, ExecError> {
        let mut out = self.clone();
        out.phase_count = plan.phase_count();
        for &r in changed_ranks {
            out.ranks[r] = rank_layout(plan, graph, r)?;
        }
        Ok(out)
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.ranks.len()
    }

    /// Coalesces every run list in the layout to maximal adjacent runs
    /// (the build path already produces maximal runs, so this is free on
    /// layouts from [`ArenaLayout::for_plan`]; it restores the invariant
    /// on layouts fragmented by external mutation). Returns the number
    /// of runs merged away.
    pub fn coalesce(&mut self) -> usize {
        self.ranks.iter_mut().map(RankLayout::coalesce).sum()
    }

    /// Fraction of send operations that resolved to a **single**
    /// contiguous arena span — the zero-copy hit rate. Distance Halving
    /// halving-phase sends are 100% contiguous by construction (the
    /// arena is laid out in `main_buf` order).
    pub fn contiguous_send_fraction(&self) -> f64 {
        let (mut total, mut one) = (0usize, 0usize);
        for rl in &self.ranks {
            for ph in &rl.phases {
                for s in &ph.sends {
                    total += 1;
                    one += usize::from(s.runs.len() == 1);
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            one as f64 / total as f64
        }
    }

    /// Total arena slots across all ranks (arena memory in block units).
    pub fn total_slots(&self) -> usize {
        self.ranks.iter().map(|rl| rl.slots.len()).sum()
    }

    /// Per-rank byte extents for one execution's size table.
    ///
    /// Uniform sizes cost nothing (one shared multiplier per rank);
    /// ragged sizes build one prefix-sum table per rank over that rank's
    /// slot order, so every later offset query is a single lookup.
    pub fn extents(&self, sizes: &BlockSizes) -> Vec<SlotExtents> {
        match sizes {
            BlockSizes::Uniform(m) => vec![SlotExtents::Uniform(*m); self.n()],
            BlockSizes::PerRank(_) => self
                .ranks
                .iter()
                .map(|rl| {
                    let mut pre = Vec::with_capacity(rl.slots.len() + 1);
                    let mut acc = 0usize;
                    pre.push(0);
                    for &b in &rl.slots {
                        acc += sizes.size(b);
                        pre.push(acc);
                    }
                    SlotExtents::Table(Arc::new(pre))
                })
                .collect(),
        }
    }
}

/// Reusable zero-copy execution workspace: one contiguous buffer per
/// rank plus the cached [`ArenaLayout`] that indexes it.
///
/// Pass the same arena to repeated [`crate::exec::Executor::run`] calls
/// to amortize both the layout computation and the buffer allocations;
/// [`reallocations`](Self::reallocations) counts how many times any
/// buffer actually had to grow, so tests (and the Fig. 8-style
/// persistent-collective argument) can assert steady-state runs are
/// allocation-free.
#[derive(Debug, Default)]
pub struct BlockArena {
    key: Option<PlanFingerprint>,
    layout: Option<Arc<ArenaLayout>>,
    bufs: Vec<Vec<u8>>,
    spare_rbufs: Vec<Vec<u8>>,
    reallocations: u64,
}

impl BlockArena {
    /// An empty arena; storage and layout are built on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many buffer growths (arena or receive buffers) all executions
    /// through this arena have paid so far. Stable across repeated runs
    /// of the same plan at the same message size.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// The cached layout, if one has been built.
    pub fn layout(&self) -> Option<&ArenaLayout> {
        self.layout.as_deref()
    }

    /// Returns the layout for `plan`, rebuilding it only when the
    /// (plan, topology) fingerprint changed since the last call.
    pub fn prepare(
        &mut self,
        plan: &CollectivePlan,
        graph: &Topology,
    ) -> Result<Arc<ArenaLayout>, ExecError> {
        let key = PlanFingerprint::of_plan(plan, graph);
        if self.key != Some(key) || self.layout.is_none() {
            self.layout = Some(Arc::new(ArenaLayout::for_plan(plan, graph)?));
            self.key = Some(key);
        }
        Ok(Arc::clone(self.layout.as_ref().expect("layout just set")))
    }

    /// Like [`prepare`](Self::prepare), but after a plan mutation whose
    /// blast radius is known: when a compatible layout is cached, only
    /// the rows in `changed_ranks` are rebuilt (O(changed) instead of
    /// O(n)). Falls back to a full build when nothing usable is cached
    /// or the plan changed shape. The caller guarantees ranks outside
    /// `changed_ranks` have bitwise-identical programs and in-neighbor
    /// lists — [`DistGraphComm::mutate`](crate::comm::DistGraphComm::mutate)
    /// gets this from the repair engine's changed-rank report.
    pub fn repair(
        &mut self,
        plan: &CollectivePlan,
        graph: &Topology,
        changed_ranks: &[Rank],
    ) -> Result<Arc<ArenaLayout>, ExecError> {
        let key = PlanFingerprint::of_plan(plan, graph);
        if self.key == Some(key) {
            if let Some(layout) = &self.layout {
                return Ok(Arc::clone(layout));
            }
        }
        let patchable = self
            .layout
            .as_ref()
            .is_some_and(|l| l.n() == plan.n() && l.phase_count == plan.phase_count());
        let layout = if patchable {
            let base = self.layout.as_ref().expect("patchable implies cached");
            Arc::new(base.repair(plan, graph, changed_ranks)?)
        } else {
            Arc::new(ArenaLayout::for_plan(plan, graph)?)
        };
        self.layout = Some(Arc::clone(&layout));
        self.key = Some(key);
        Ok(layout)
    }

    /// Sizes the per-rank arena buffers for this execution's byte
    /// extents and copies each rank's own payload into slot 0. Reuses
    /// capacity; growth bumps the reallocation counter.
    pub(crate) fn fill(
        &mut self,
        layout: &ArenaLayout,
        payloads: &[Vec<u8>],
        exts: &[SlotExtents],
    ) {
        let n = layout.n();
        if self.bufs.len() != n {
            self.bufs.resize_with(n, Vec::new);
        }
        for (r, buf) in self.bufs.iter_mut().enumerate() {
            let want = exts[r].offset(layout.ranks[r].slots.len());
            if want > buf.capacity() {
                self.reallocations += 1;
            }
            buf.resize(want, 0);
            let own = payloads[r].len();
            buf[..own].copy_from_slice(&payloads[r]);
        }
    }

    /// Moves the per-rank buffers out (the threaded backend hands each
    /// rank thread ownership of its own arena). Pair with
    /// [`restore_bufs`](Self::restore_bufs).
    pub(crate) fn take_bufs(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.bufs)
    }

    /// Returns buffers taken by [`take_bufs`](Self::take_bufs) so the
    /// next execution reuses their capacity.
    pub(crate) fn restore_bufs(&mut self, bufs: Vec<Vec<u8>>) {
        self.bufs = bufs;
    }

    /// Takes `n` receive buffers (reusing adopted capacity when
    /// available) for the executor to fill and hand to the caller.
    pub(crate) fn take_rbufs(&mut self, n: usize) -> Vec<Vec<u8>> {
        let mut rb = std::mem::take(&mut self.spare_rbufs);
        rb.resize_with(n, Vec::new);
        rb
    }

    /// Hands receive buffers back for capacity reuse — a persistent
    /// collective calls this with the previous execution's output before
    /// re-running, making steady-state executions allocation-free.
    pub fn adopt_rbufs(&mut self, rbufs: Vec<Vec<u8>>) {
        self.spare_rbufs = rbufs;
    }

    /// Notes an rbuf growth (called by executors while assembling output
    /// into reused buffers).
    pub(crate) fn note_realloc(&mut self, grew: bool) {
        self.reallocations += u64::from(grew);
    }
}

/// Borrows two distinct per-rank buffers mutably.
///
/// # Panics
/// Panics if `a == b`.
pub(crate) fn two_bufs(bufs: &mut [Vec<u8>], a: usize, b: usize) -> (&mut Vec<u8>, &mut Vec<u8>) {
    assert_ne!(a, b, "a rank cannot message itself");
    if a < b {
        let (lo, hi) = bufs.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn compress_runs_merges_consecutive() {
        assert_eq!(compress_runs([0, 1, 2, 4, 5, 9]), vec![(0, 3), (4, 2), (9, 1)]);
        assert!(compress_runs([]).is_empty());
    }

    #[test]
    fn dh_halving_sends_are_single_spans() {
        // The tentpole property: arena order == main_buf order, so every
        // halving-phase whole-buffer send is one contiguous span.
        let g = erdos_renyi(32, 0.4, 7);
        let layout = ClusterLayout::new(4, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let al = ArenaLayout::for_plan(&plan, &g).unwrap();
        let halving_phases = plan.phase_count() - 2;
        for (r, rl) in al.ranks.iter().enumerate() {
            for (k, ph) in rl.phases.iter().enumerate().take(halving_phases) {
                for s in &ph.sends {
                    assert_eq!(s.runs.len(), 1, "rank {r} phase {k} halving send fragmented");
                    assert_eq!(s.runs[0].0, 0, "halving send must start at the arena prefix");
                }
                for rv in &ph.recvs {
                    assert_eq!(rv.runs.len(), 1, "rank {r} phase {k} halving recv fragmented");
                }
            }
        }
        assert!(al.contiguous_send_fraction() > 0.5);
    }

    #[test]
    fn naive_layout_holds_own_plus_in_neighbors() {
        let g = erdos_renyi(16, 0.5, 3);
        let plan = plan_naive(&g);
        let al = ArenaLayout::for_plan(&plan, &g).unwrap();
        for (r, rl) in al.ranks.iter().enumerate() {
            assert_eq!(rl.slots.len(), 1 + g.indegree(r), "rank {r}");
            assert_eq!(rl.slots[0], r);
            assert_eq!(rl.out_blocks as usize, g.indegree(r));
        }
    }

    #[test]
    fn corrupt_plan_fails_at_layout_time() {
        let g = Topology::from_edges(3, [(0, 2)]);
        let mut plan = plan_naive(&g);
        plan.per_rank[1][0].sends.push(crate::plan::PlannedMsg {
            peer: 2,
            blocks: vec![0],
            tag: 5,
        });
        assert_eq!(
            ArenaLayout::for_plan(&plan, &g).unwrap_err(),
            ExecError::MissingBlock { rank: 1, block: 0, phase: 0 }
        );
        let g2 = Topology::from_edges(2, [(0, 1)]);
        let mut plan2 = plan_naive(&g2);
        plan2.per_rank[0][0].sends.clear();
        plan2.per_rank[1][0].recvs.clear();
        assert_eq!(
            ArenaLayout::for_plan(&plan2, &g2).unwrap_err(),
            ExecError::Undelivered { rank: 1, block: 0 }
        );
    }

    #[test]
    fn arena_caches_layout_by_fingerprint() {
        let g = erdos_renyi(12, 0.4, 1);
        let plan = plan_naive(&g);
        let mut arena = BlockArena::new();
        let l1 = arena.prepare(&plan, &g).unwrap();
        let l2 = arena.prepare(&plan, &g).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2), "same plan must reuse the cached layout");
        // a different plan rebuilds
        let plan2 = plan_naive(&erdos_renyi(12, 0.6, 2));
        let l3 = arena.prepare(&plan2, &erdos_renyi(12, 0.6, 2)).unwrap();
        assert!(!Arc::ptr_eq(&l1, &l3));
    }

    #[test]
    fn fill_reuses_capacity() {
        let g = erdos_renyi(10, 0.5, 9);
        let plan = plan_naive(&g);
        let mut arena = BlockArena::new();
        let layout = arena.prepare(&plan, &g).unwrap();
        let payloads: Vec<Vec<u8>> = (0..10).map(|r| vec![r as u8; 64]).collect();
        let exts = layout.extents(&BlockSizes::Uniform(64));
        arena.fill(&layout, &payloads, &exts);
        let after_first = arena.reallocations();
        assert!(after_first > 0);
        for _ in 0..10 {
            arena.fill(&layout, &payloads, &exts);
        }
        assert_eq!(arena.reallocations(), after_first, "refills must not grow buffers");
        // smaller m also fits in place
        let small: Vec<Vec<u8>> = (0..10).map(|r| vec![r as u8; 8]).collect();
        arena.fill(&layout, &small, &layout.extents(&BlockSizes::Uniform(8)));
        assert_eq!(arena.reallocations(), after_first);
    }

    #[test]
    fn ragged_extents_prefix_sums_follow_slot_order() {
        let g = erdos_renyi(10, 0.5, 9);
        let plan = plan_naive(&g);
        let al = ArenaLayout::for_plan(&plan, &g).unwrap();
        let sizes = BlockSizes::per_rank((0..10).map(|r| r * 3 % 7).collect());
        let exts = al.extents(&sizes);
        for (r, rl) in al.ranks.iter().enumerate() {
            let ext = &exts[r];
            assert_eq!(ext.offset(0), 0);
            let mut acc = 0;
            for (i, &b) in rl.slots.iter().enumerate() {
                assert_eq!(ext.offset(i), acc, "rank {r} slot {i}");
                assert_eq!(ext.run_bytes((i as u32, 1)), sizes.size(b));
                acc += sizes.size(b);
            }
            assert_eq!(ext.offset(rl.slots.len()), acc);
        }
        // uniform tables collapse to the multiplier
        let uni = al.extents(&BlockSizes::Uniform(16));
        assert!(matches!(uni[0], SlotExtents::Uniform(16)));
        assert_eq!(uni[0].run_bytes((2, 3)), 48);
    }

    /// Structural equality for layouts (the op types don't derive
    /// `PartialEq`, and `recv_runs` iteration order is unstable).
    fn assert_layout_eq(a: &ArenaLayout, b: &ArenaLayout) {
        assert_eq!(a.phase_count, b.phase_count);
        assert_eq!(a.n(), b.n());
        for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
            assert_eq!(x.slots, y.slots, "rank {r} slots");
            assert_eq!(x.out_runs, y.out_runs, "rank {r} out_runs");
            assert_eq!(x.out_blocks, y.out_blocks, "rank {r} out_blocks");
            assert_eq!(x.phases.len(), y.phases.len(), "rank {r} phases");
            for (k, (px, py)) in x.phases.iter().zip(&y.phases).enumerate() {
                let sx: Vec<_> =
                    px.sends.iter().map(|s| (s.peer, s.tag, &s.runs, s.blocks)).collect();
                let sy: Vec<_> =
                    py.sends.iter().map(|s| (s.peer, s.tag, &s.runs, s.blocks)).collect();
                assert_eq!(sx, sy, "rank {r} phase {k} sends");
                let rx: Vec<_> =
                    px.recvs.iter().map(|s| (s.peer, s.tag, &s.runs, s.blocks)).collect();
                let ry: Vec<_> =
                    py.recvs.iter().map(|s| (s.peer, s.tag, &s.runs, s.blocks)).collect();
                assert_eq!(rx, ry, "rank {r} phase {k} recvs");
            }
            let mut mx: Vec<_> = x.recv_runs.iter().collect();
            let mut my: Vec<_> = y.recv_runs.iter().collect();
            mx.sort_by_key(|(k, _)| **k);
            my.sort_by_key(|(k, _)| **k);
            assert_eq!(mx, my, "rank {r} recv_runs");
        }
    }

    #[test]
    fn repair_matches_full_rebuild_after_churn() {
        use crate::repair::repair_for_churn;
        let g = erdos_renyi(48, 0.3, 17);
        let layout = ClusterLayout::new(6, 2, 4);
        let pat = build_pattern(&g, &layout).unwrap();
        let plan = lower(&pat, &g);

        let mut arena = BlockArena::new();
        let before = arena.prepare(&plan, &g).unwrap();

        // churn: drop one edge, add one non-edge
        let gone = g.edges().next().unwrap();
        let grown = (0..48)
            .flat_map(|u| (0..48).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .unwrap();
        let g2 = Topology::from_edges(
            48,
            g.edges().filter(|&e| e != gone).chain(std::iter::once(grown)),
        );
        let rep = repair_for_churn(&pat, &plan, &g2, &[grown], &[gone]).unwrap();

        let patched = arena.repair(&rep.plan, &g2, &rep.changed_ranks).unwrap();
        assert!(!Arc::ptr_eq(&before, &patched), "churn must produce a new layout");
        assert_layout_eq(&patched, &ArenaLayout::for_plan(&rep.plan, &g2).unwrap());

        // same (plan, graph) again: the patched layout is now cached
        let again = arena.repair(&rep.plan, &g2, &[]).unwrap();
        assert!(Arc::ptr_eq(&patched, &again));
        // and prepare() agrees it is current
        let prep = arena.prepare(&rep.plan, &g2).unwrap();
        assert!(Arc::ptr_eq(&patched, &prep));
    }

    #[test]
    fn repair_without_cached_layout_falls_back_to_full_build() {
        let g = erdos_renyi(12, 0.4, 4);
        let plan = plan_naive(&g);
        let mut arena = BlockArena::new();
        let l = arena.repair(&plan, &g, &[0, 1]).unwrap();
        assert_layout_eq(&l, &ArenaLayout::for_plan(&plan, &g).unwrap());
    }

    /// Splits every run list into unit runs — the worst-case fragmented
    /// layout a buggy or external producer could hand us.
    fn fragment_layout(layout: &mut ArenaLayout) {
        fn shatter(runs: &mut Vec<SlotRun>) {
            *runs = runs.iter().flat_map(|&(s, l)| (0..l).map(move |i| (s + i, 1))).collect();
        }
        for rl in &mut layout.ranks {
            for ph in &mut rl.phases {
                for s in &mut ph.sends {
                    shatter(&mut s.runs);
                }
                for rv in &mut ph.recvs {
                    shatter(&mut rv.runs);
                }
            }
            for runs in rl.recv_runs.values_mut() {
                shatter(runs);
            }
            shatter(&mut rl.out_runs);
        }
    }

    /// A [`BlockArena`] pre-seeded with a specific layout for (plan,
    /// graph), so executors use it instead of rebuilding.
    fn arena_with_layout(
        plan: &CollectivePlan,
        graph: &Topology,
        layout: ArenaLayout,
    ) -> BlockArena {
        BlockArena {
            key: Some(PlanFingerprint::of_plan(plan, graph)),
            layout: Some(Arc::new(layout)),
            ..BlockArena::default()
        }
    }

    #[test]
    fn coalesce_restores_maximal_runs() {
        let g = erdos_renyi(24, 0.4, 21);
        let cl = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &cl).unwrap(), &g);
        let base = ArenaLayout::for_plan(&plan, &g).unwrap();

        // the build path already produces maximal runs: nothing to merge
        let mut b = base.clone();
        assert_eq!(b.coalesce(), 0, "for_plan runs must already be maximal");

        let mut frag = base.clone();
        fragment_layout(&mut frag);
        let merged = frag.coalesce();
        assert!(merged > 0, "fragmented layout must have mergeable runs");
        assert_layout_eq(&frag, &base);
    }

    #[test]
    fn fragmented_and_coalesced_layouts_move_identical_bytes() {
        // Property: run-list shape is an optimization detail — the bytes
        // every backend delivers are invariant under fragmentation.
        use crate::exec::virtual_exec::{reference_allgather, test_payloads};
        use crate::exec::{ExecOptions, Executor, Sim, Threaded, Virtual};
        let g = erdos_renyi(24, 0.4, 21);
        let cl = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &cl).unwrap(), &g);
        let mut frag = ArenaLayout::for_plan(&plan, &g).unwrap();
        fragment_layout(&mut frag);

        // uniform payloads, plus ragged ones with zero-size blocks so the
        // byte-adjacent chunk merging in `copy_runs` is exercised
        let uniform = test_payloads(24, 8, 3);
        let ragged: Vec<Vec<u8>> = (0..24).map(|r| vec![r as u8; r % 4]).collect();
        for (payloads, opts) in
            [(&uniform, ExecOptions::new()), (&ragged, ExecOptions::new().ragged(true))]
        {
            let want = reference_allgather(&g, payloads);
            let mut va = arena_with_layout(&plan, &g, frag.clone());
            let got = Virtual.run(&plan, &g, payloads, &mut va, &opts).unwrap().rbufs;
            assert_eq!(got, want, "virtual backend over fragmented layout");
            let mut ta = arena_with_layout(&plan, &g, frag.clone());
            let got = Threaded.run(&plan, &g, payloads, &mut ta, &opts).unwrap().rbufs;
            assert_eq!(got, want, "threaded backend over fragmented layout");
        }
        // the sim backend moves no bytes, so a fragmented layout cannot
        // perturb it — it must still run clean and return no rbufs
        let mut sa = arena_with_layout(&plan, &g, frag);
        let out = Sim::new(cl).run(&plan, &g, &uniform, &mut sa, &ExecOptions::new()).unwrap();
        assert!(out.rbufs.is_empty());
        assert!(out.sim.is_some());
    }

    #[test]
    fn two_bufs_borrows_disjoint() {
        let mut v = vec![vec![1u8], vec![2u8], vec![3u8]];
        let (a, b) = two_bufs(&mut v, 2, 0);
        a[0] = 9;
        b[0] = 8;
        assert_eq!(v, vec![vec![8], vec![2], vec![9]]);
    }
}
