//! The paper's §V performance model, implemented formula-for-formula.
//!
//! Hockney cost `α + m/β` per message; a communicator of `n` ranks on
//! nodes of `S` sockets × `L` ranks; Erdős–Rényi density `δ`. The model
//! predicts the expected collective time of the naïve algorithm (eqs. 4–5)
//! and of Distance Halving (eqs. 6–8), from the expected off-socket and
//! intra-socket message counts (eqs. 1–2) and the expected intra-socket
//! message size (eq. 3).
//!
//! All logarithms are base 2 (`log(n/L)` counts halving steps). The
//! paper's worked example ("23 vs 600 messages" for n = 2000, δ = 0.3,
//! L = 20) is itself slightly inconsistent with the formulas as printed —
//! the formulas below follow the *printed equations*; `EXPERIMENTS.md`
//! quantifies the worked-example discrepancy.

use crate::sizes::{BlockSizes, LoadMetric};

/// Expected size (bytes) of the block behind one delivered message under
/// a [`LoadMetric`]:
///
/// * [`LoadMetric::Neighbors`]: a uniformly random block — the plain
///   mean `Σs / n`;
/// * [`LoadMetric::Bytes`]: blocks travel inside buffers in proportion
///   to their own size, so a delivered byte belongs to block `r` with
///   probability `s_r / Σs` — the **size-biased mean** `Σs² / Σs`.
///
/// By Cauchy–Schwarz the size-biased mean is ≥ the plain mean, with
/// equality exactly on uniform tables; the gap is what byte-weighted
/// agent selection has to win back on ragged workloads.
pub fn mean_block_bytes(sizes: &BlockSizes, n: usize, metric: LoadMetric) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n).map(|r| sizes.size(r) as f64).sum();
    match metric {
        LoadMetric::Neighbors => total / n as f64,
        LoadMetric::Bytes => {
            if total == 0.0 {
                0.0
            } else {
                let sq: f64 = (0..n)
                    .map(|r| {
                        let s = sizes.size(r) as f64;
                        s * s
                    })
                    .sum();
                sq / total
            }
        }
    }
}

/// Model inputs.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Communicator size `n`.
    pub n: usize,
    /// Sockets per node `S`.
    pub s: usize,
    /// Ranks per socket `L`.
    pub l: usize,
    /// Erdős–Rényi density `δ ∈ [0, 1]`.
    pub delta: f64,
    /// Hockney latency `α` (seconds).
    pub alpha: f64,
    /// Hockney bandwidth `β` (bytes per second).
    pub beta: f64,
}

impl ModelParams {
    /// Niagara-flavoured defaults at a given scale and density (flat α–β,
    /// as the model assumes: "we do not distinguish the inter-node,
    /// intra-node, and intra-socket bandwidth").
    pub fn niagara(n: usize, delta: f64) -> Self {
        Self { n, s: 2, l: 18, delta, alpha: 1.3e-6, beta: 10.5e9 }
    }

    /// Number of halving steps as the model counts them:
    /// `⌈log2(n/L)⌉ + 1`.
    pub fn halving_steps(&self) -> usize {
        if self.n <= self.l {
            return 0;
        }
        (self.n as f64 / self.l as f64).log2().ceil() as usize + 1
    }

    /// Eq. (1): expected off-socket messages per rank,
    /// `min(⌈log2(n/L)⌉ + 1, δ(n − L))`.
    pub fn expected_off_socket_msgs(&self) -> f64 {
        let steps = self.halving_steps() as f64;
        steps.min(self.delta * (self.n as f64 - self.l as f64)).max(0.0)
    }

    /// Eq. (2): expected intra-socket messages per rank,
    /// `(1 − (1−δ)^(⌈log2(n/L)⌉ + 2)) · L`.
    pub fn expected_intra_socket_msgs(&self) -> f64 {
        let e = self.halving_steps() as f64 + 1.0;
        (1.0 - (1.0 - self.delta).powf(e)) * self.l as f64
    }

    /// Eq. (3): expected intra-socket message size (bytes), for per-rank
    /// payload `m`: `δ · E[n_in] · m`.
    pub fn expected_intra_socket_bytes(&self, m: usize) -> f64 {
        self.delta * self.expected_intra_socket_msgs() * m as f64
    }

    /// Eq. (3) generalised to variable block sizes:
    /// `δ · E[n_in] · E[m]`, where `E[m]` is the expected size of a
    /// block carried by an intra-socket message under the given
    /// [`LoadMetric`] — see [`mean_block_bytes`]. Degenerates to
    /// [`expected_intra_socket_bytes`](Self::expected_intra_socket_bytes)
    /// on a uniform table under either metric.
    pub fn expected_intra_socket_bytes_v(&self, sizes: &BlockSizes, metric: LoadMetric) -> f64 {
        self.delta * self.expected_intra_socket_msgs() * mean_block_bytes(sizes, self.n, metric)
    }

    /// Eq. (7) generalised to variable block sizes:
    /// `E[n_in] (α + E[m_in]/β)` with the byte term from
    /// [`expected_intra_socket_bytes_v`](Self::expected_intra_socket_bytes_v).
    pub fn dh_intra_socket_time_v(&self, sizes: &BlockSizes, metric: LoadMetric) -> f64 {
        let n_in = self.expected_intra_socket_msgs();
        n_in * self.t(self.expected_intra_socket_bytes_v(sizes, metric))
    }

    /// Hockney term `α + m/β`.
    fn t(&self, m: f64) -> f64 {
        self.alpha + m / self.beta
    }

    /// Eq. (4): expected per-rank communication time of the naïve
    /// algorithm, `2 δ n (α + m/β)`.
    pub fn naive_rank_time(&self, m: usize) -> f64 {
        2.0 * self.delta * self.n as f64 * self.t(m as f64)
    }

    /// Eq. (5): expected collective time of the naïve algorithm,
    /// `S · L · E[t_r(naïve)]`.
    pub fn naive_time(&self, m: usize) -> f64 {
        (self.s * self.l) as f64 * self.naive_rank_time(m)
    }

    /// Eq. (6): expected off-socket (halving-phase) time per rank. The
    /// buffer doubles every step (worst case), so
    /// `E[n_off]·α + (2^(E[n_off]+1) − 1)·m/β`.
    pub fn dh_off_socket_time(&self, m: usize) -> f64 {
        let n_off = self.expected_off_socket_msgs();
        n_off * self.alpha + ((2f64.powf(n_off + 1.0) - 1.0) * m as f64) / self.beta
    }

    /// Eq. (7): expected intra-socket time per rank,
    /// `E[n_in] (α + E[m_in]/β)`.
    pub fn dh_intra_socket_time(&self, m: usize) -> f64 {
        let n_in = self.expected_intra_socket_msgs();
        n_in * self.t(self.expected_intra_socket_bytes(m))
    }

    /// Eq. (8): expected collective time of Distance Halving,
    /// `2 S L (E[t_off] + E[t_in])`.
    pub fn dh_time(&self, m: usize) -> f64 {
        2.0 * (self.s * self.l) as f64 * (self.dh_off_socket_time(m) + self.dh_intra_socket_time(m))
    }

    /// Predicted speedup of Distance Halving over naïve at payload `m`.
    pub fn predicted_speedup(&self, m: usize) -> f64 {
        let dh = self.dh_time(m);
        if dh == 0.0 {
            return 1.0;
        }
        self.naive_time(m) / dh
    }
}

/// One row of the Fig. 2 model comparison.
#[derive(Clone, Copy, Debug)]
pub struct ModelPoint {
    /// Density δ.
    pub delta: f64,
    /// Message size (bytes).
    pub m: usize,
    /// Eq. (5) naïve prediction (seconds).
    pub naive: f64,
    /// Eq. (8) Distance Halving prediction (seconds).
    pub dh: f64,
}

/// Generates the Fig. 2 model sweep: naïve vs DH predictions over message
/// sizes × densities at a fixed scale.
pub fn fig2_sweep(n: usize, deltas: &[f64], msg_sizes: &[usize]) -> Vec<ModelPoint> {
    let mut out = Vec::with_capacity(deltas.len() * msg_sizes.len());
    for &delta in deltas {
        let p = ModelParams::niagara(n, delta);
        for &m in msg_sizes {
            out.push(ModelPoint { delta, m, naive: p.naive_time(m), dh: p.dh_time(m) });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize, delta: f64, l: usize) -> ModelParams {
        ModelParams { n, s: 2, l, delta, alpha: 1e-6, beta: 1e10 }
    }

    #[test]
    fn halving_step_count_formula() {
        assert_eq!(p(2000, 0.3, 20).halving_steps(), 8); // ⌈log2(100)⌉+1 = 7+1
        assert_eq!(p(2160, 0.3, 18).halving_steps(), 8); // ⌈log2(120)⌉+1
        assert_eq!(p(16, 0.3, 16).halving_steps(), 0); // fits one socket
        assert_eq!(p(32, 0.3, 16).halving_steps(), 2); // ⌈log2 2⌉+1
    }

    #[test]
    fn off_socket_msgs_clamped_by_sparsity() {
        // dense: limited by the number of steps
        assert!((p(2000, 0.3, 20).expected_off_socket_msgs() - 8.0).abs() < 1e-12);
        // ultra sparse: limited by δ(n−L)
        let sparse = p(2000, 0.001, 20);
        assert!((sparse.expected_off_socket_msgs() - 0.001 * 1980.0).abs() < 1e-12);
        // δ = 0: nothing to send
        assert_eq!(p(2000, 0.0, 20).expected_off_socket_msgs(), 0.0);
    }

    #[test]
    fn intra_socket_msgs_bounded_by_l() {
        for delta in [0.0, 0.05, 0.3, 0.7, 1.0] {
            let v = p(2000, delta, 20).expected_intra_socket_msgs();
            assert!((0.0..=20.0).contains(&v), "delta={delta} v={v}");
        }
        // worst case: δ = 1 → exactly L
        assert!((p(2000, 1.0, 20).expected_intra_socket_msgs() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn byte_weighted_mean_block_size() {
        // uniform table: both metrics agree with the scalar m
        let u = BlockSizes::uniform(64);
        assert_eq!(mean_block_bytes(&u, 10, LoadMetric::Neighbors), 64.0);
        assert_eq!(mean_block_bytes(&u, 10, LoadMetric::Bytes), 64.0);
        let params = p(10, 0.3, 2);
        for metric in [LoadMetric::Neighbors, LoadMetric::Bytes] {
            assert!(
                (params.expected_intra_socket_bytes_v(&u, metric)
                    - params.expected_intra_socket_bytes(64))
                .abs()
                    < 1e-9
            );
        }
        // ragged table: size-biased mean strictly exceeds the plain mean
        let r = BlockSizes::per_rank(vec![0, 8, 8, 8, 8, 8, 8, 8, 8, 1024]);
        let plain = mean_block_bytes(&r, 10, LoadMetric::Neighbors);
        let biased = mean_block_bytes(&r, 10, LoadMetric::Bytes);
        assert!((plain - 1088.0 / 10.0).abs() < 1e-9);
        assert!(biased > plain, "size-biased {biased} must exceed plain {plain}");
        assert!(
            params.dh_intra_socket_time_v(&r, LoadMetric::Bytes)
                >= params.dh_intra_socket_time_v(&r, LoadMetric::Neighbors)
        );
        // degenerate inputs
        assert_eq!(mean_block_bytes(&r, 0, LoadMetric::Bytes), 0.0);
        assert_eq!(mean_block_bytes(&BlockSizes::uniform(0), 4, LoadMetric::Bytes), 0.0);
    }

    #[test]
    fn model_is_monotone_in_message_size() {
        let params = p(2160, 0.3, 18);
        let mut last_naive = 0.0;
        let mut last_dh = 0.0;
        for m in [8usize, 64, 1024, 65536, 1 << 22] {
            let nv = params.naive_time(m);
            let dh = params.dh_time(m);
            assert!(nv > last_naive);
            assert!(dh > last_dh);
            last_naive = nv;
            last_dh = dh;
        }
    }

    #[test]
    fn dh_wins_small_messages_loses_huge_ones() {
        // The crossover the paper's Fig. 2 shows: DH is far ahead for
        // small m on dense graphs, and the doubling buffer erodes the
        // advantage as m grows.
        let params = ModelParams::niagara(2160, 0.5);
        assert!(
            params.predicted_speedup(32) > 5.0,
            "speedup at 32B: {}",
            params.predicted_speedup(32)
        );
        assert!(
            params.predicted_speedup(32) > params.predicted_speedup(1 << 22),
            "speedup must shrink with message size"
        );
    }

    #[test]
    fn speedup_grows_with_density_for_small_messages() {
        let m = 64;
        let s_sparse = ModelParams::niagara(2160, 0.05).predicted_speedup(m);
        let s_dense = ModelParams::niagara(2160, 0.7).predicted_speedup(m);
        assert!(s_dense > s_sparse, "dense {s_dense} should beat sparse {s_sparse}");
    }

    #[test]
    fn worked_example_message_counts() {
        // §V example: n = 2000, 50 nodes × 2 sockets × 20 cores, δ = 0.3.
        // The paper quotes "23 (7 off-socket + 16 intra-socket)" vs 600
        // for naive; the printed formulas give 8 off-socket and ~20
        // intra-socket — close, and the naive count matches exactly.
        let params = p(2000, 0.3, 20);
        let naive_msgs = params.delta * params.n as f64;
        assert!((naive_msgs - 600.0).abs() < 1e-9);
        let dh_msgs = params.expected_off_socket_msgs() + params.expected_intra_socket_msgs();
        assert!(dh_msgs < 30.0, "DH sends ~{dh_msgs} messages, naive 600");
    }

    #[test]
    fn fig2_sweep_shape() {
        let pts = fig2_sweep(2160, &[0.05, 0.3], &[8, 1024]);
        assert_eq!(pts.len(), 4);
        for pt in &pts {
            assert!(pt.naive > 0.0 && pt.dh > 0.0);
        }
        // dense small-message point favours DH
        let dense_small = pts.iter().find(|p| p.delta == 0.3 && p.m == 8).unwrap();
        assert!(dense_small.naive > dense_small.dh);
    }
}
