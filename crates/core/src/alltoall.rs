//! Neighborhood **alltoall** — the paper's stated future work (§VIII),
//! built on the same Distance Halving machinery.
//!
//! `MPI_Neighbor_alltoall` semantics: rank `p`'s send buffer holds one
//! *distinct* block per outgoing neighbor (in `O(p)` order); rank `r`'s
//! receive buffer holds, per incoming neighbor `i` (in `I(r)` order), the
//! block `i` addressed *to r*. The data unit is therefore an **item**
//! `(src, dst)` with exactly one consumer — which makes Distance Halving
//! *cleaner* than in the allgather case:
//!
//! * an item always has one holder (it starts at `src` and moves), so
//!   exactly-once delivery is structural;
//! * when a rank finds an agent it forwards **only the items addressed
//!   into the opposite half** — no wholesale buffer shipping, hence no
//!   buffer doubling and no dead weight: the halving phase moves each
//!   item at most once per level, always toward its destination;
//! * a failed agent search strands the h2-addressed items on their
//!   holder, which direct-sends them in the final phase (same fallback
//!   as allgather).
//!
//! The routing reuses the allgather pattern's agents and origins
//! ([`plan_dh_alltoall`] takes a built [`DhPattern`]), so one
//! `MPI_Dist_graph_create_adjacent`-time negotiation serves both
//! collectives.

use crate::exec::ExecError;
use crate::pattern::{in_range, DhPattern};
use crate::plan::Algorithm;
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;

/// One alltoall message: `(src, dst)` items moving between this rank and
/// `peer`, in item order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct A2aMsg {
    /// The other endpoint.
    pub peer: Rank,
    /// The items carried, each `m` bytes of payload.
    pub items: Vec<(Rank, Rank)>,
    /// Matching tag, unique per (src, dst) pair within the plan.
    pub tag: u64,
}

/// One post/wait block of a rank's alltoall program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct A2aPhase {
    /// Messages sent in this phase.
    pub sends: Vec<A2aMsg>,
    /// Messages received in this phase.
    pub recvs: Vec<A2aMsg>,
}

/// An executable neighborhood-alltoall plan.
#[derive(Clone, Debug)]
pub struct AlltoallPlan {
    /// Producing algorithm ([`Algorithm::CommonNeighbor`] is not
    /// implemented for alltoall).
    pub algorithm: Algorithm,
    /// Lock-step per-rank programs.
    pub per_rank: Vec<Vec<A2aPhase>>,
}

impl AlltoallPlan {
    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.per_rank.len()
    }

    /// Number of lock-step phases.
    pub fn phase_count(&self) -> usize {
        self.per_rank.first().map_or(0, Vec::len)
    }

    /// Total messages (send side).
    pub fn message_count(&self) -> usize {
        self.per_rank.iter().flat_map(|p| p.iter()).map(|ph| ph.sends.len()).sum()
    }

    /// Total items moved (multiply by `m` for bytes); an item relayed
    /// over `h` hops counts `h` times.
    pub fn total_items_sent(&self) -> usize {
        self.per_rank
            .iter()
            .flat_map(|p| p.iter())
            .flat_map(|ph| ph.sends.iter())
            .map(|m| m.items.len())
            .sum()
    }

    /// Structural validation: mirrored sends/recvs, possession (a rank
    /// only forwards items it currently holds), and exactly-once
    /// consumption of every topology edge's item at its destination.
    pub fn validate(&self, graph: &Topology) -> Result<(), String> {
        let n = self.n();
        if graph.n() != n {
            return Err(format!("plan has {n} ranks, topology has {}", graph.n()));
        }
        let phases = self.phase_count();
        for (r, prog) in self.per_rank.iter().enumerate() {
            if prog.len() != phases {
                return Err(format!("rank {r} has {} phases, want {phases}", prog.len()));
            }
        }
        // mirror check: (src, dst, tag) -> (phase, item list)
        type MsgIndex<'a> = HashMap<(Rank, Rank, u64), (usize, &'a [(Rank, Rank)])>;
        let mut sends: MsgIndex = HashMap::new();
        let mut recvs: MsgIndex = HashMap::new();
        for (r, prog) in self.per_rank.iter().enumerate() {
            for (k, ph) in prog.iter().enumerate() {
                for msg in &ph.sends {
                    if msg.peer >= n || msg.peer == r || msg.items.is_empty() {
                        return Err(format!("rank {r} phase {k}: bad send"));
                    }
                    if sends.insert((r, msg.peer, msg.tag), (k, &msg.items)).is_some() {
                        return Err(format!("duplicate send key ({r},{},{})", msg.peer, msg.tag));
                    }
                }
                for msg in &ph.recvs {
                    if recvs.insert((msg.peer, r, msg.tag), (k, &msg.items)).is_some() {
                        return Err(format!("duplicate recv key ({},{r},{})", msg.peer, msg.tag));
                    }
                }
            }
        }
        if sends.len() != recvs.len() {
            return Err(format!("{} sends vs {} recvs", sends.len(), recvs.len()));
        }
        for (key, (sk, sitems)) in &sends {
            match recvs.get(key) {
                None => return Err(format!("send {key:?} unmatched")),
                Some((rk, ritems)) if sk != rk || sitems != ritems => {
                    return Err(format!("send {key:?} mismatched with recv"))
                }
                _ => {}
            }
        }
        // possession + consumption
        let mut holds: Vec<std::collections::HashSet<(Rank, Rank)>> =
            (0..n).map(|p| graph.out_neighbors(p).iter().map(|&d| (p, d)).collect()).collect();
        let mut delivered: HashMap<(Rank, Rank), usize> = HashMap::new();
        for k in 0..phases {
            // sends leave against pre-phase possession, and *remove*
            // items (unlike allgather blocks, items move, not copy)
            let mut outgoing: Vec<(Rank, Vec<(Rank, Rank)>)> = Vec::new();
            for (r, prog) in self.per_rank.iter().enumerate() {
                for msg in &prog[k].sends {
                    for &it in &msg.items {
                        if !holds[r].remove(&it) {
                            return Err(format!(
                                "rank {r} phase {k} forwards item {it:?} it does not hold"
                            ));
                        }
                    }
                    outgoing.push((msg.peer, msg.items.clone()));
                }
            }
            for (dst, items) in outgoing {
                for it in items {
                    if it.1 == dst {
                        *delivered.entry(it).or_default() += 1;
                    } else {
                        holds[dst].insert(it);
                    }
                }
            }
        }
        // undelivered items must not remain anywhere except consumed
        for (s, d) in graph.edges() {
            match delivered.get(&(s, d)).copied().unwrap_or(0) {
                1 => {}
                0 => return Err(format!("item ({s} -> {d}) never delivered")),
                c => return Err(format!("item ({s} -> {d}) delivered {c} times")),
            }
        }
        Ok(())
    }
}

/// The naïve (default MPI) neighborhood alltoall: one direct message per
/// edge, single phase.
pub fn plan_naive_alltoall(graph: &Topology) -> AlltoallPlan {
    let n = graph.n();
    let per_rank = (0..n)
        .map(|r| {
            let sends = graph
                .out_neighbors(r)
                .iter()
                .map(|&d| A2aMsg { peer: d, items: vec![(r, d)], tag: 0 })
                .collect();
            let recvs = graph
                .in_neighbors(r)
                .iter()
                .map(|&s| A2aMsg { peer: s, items: vec![(s, r)], tag: 0 })
                .collect();
            vec![A2aPhase { sends, recvs }]
        })
        .collect();
    AlltoallPlan { algorithm: Algorithm::Naive, per_rank }
}

/// Tag for final-phase alltoall messages.
const A2A_FINAL_TAG: u64 = 1 << 33;

/// Distance Halving alltoall: reuses the agents/origins of a built
/// allgather [`DhPattern`], routing each item toward its destination's
/// half at every step it can.
pub fn plan_dh_alltoall(pattern: &DhPattern, graph: &Topology) -> AlltoallPlan {
    let n = graph.n();
    assert_eq!(pattern.n(), n, "pattern/topology rank mismatch");
    let steps = pattern.max_steps();
    // pending items per rank (destination-addressed)
    let mut pending: Vec<Vec<(Rank, Rank)>> =
        (0..n).map(|p| graph.out_neighbors(p).iter().map(|&d| (p, d)).collect()).collect();
    let mut per_rank: Vec<Vec<A2aPhase>> = vec![Vec::with_capacity(steps + 1); n];

    for t in 0..steps {
        // Which items leave each rank this step (to its agent)?
        let mut moved: Vec<Vec<(Rank, Rank)>> = vec![Vec::new(); n];
        for p in 0..n {
            let Some(step) = pattern.ranks[p].steps.get(t) else { continue };
            let Some(_agent) = step.agent else { continue };
            let h2 = step.h2;
            let (keep, go): (Vec<_>, Vec<_>) =
                pending[p].iter().partition(|&&(_, d)| !in_range(d, h2));
            if !go.is_empty() {
                pending[p] = keep;
                moved[p] = go;
            }
        }
        // Build the phase: send moved items to agents; receive from
        // origins; consume items addressed to self; keep the rest.
        let mut phases: Vec<A2aPhase> = vec![A2aPhase::default(); n];
        for p in 0..n {
            let Some(step) = pattern.ranks[p].steps.get(t) else { continue };
            if let Some(agent) = step.agent {
                if !moved[p].is_empty() {
                    phases[p].sends.push(A2aMsg {
                        peer: agent,
                        items: moved[p].clone(),
                        tag: t as u64,
                    });
                    phases[agent].recvs.push(A2aMsg {
                        peer: p,
                        items: moved[p].clone(),
                        tag: t as u64,
                    });
                }
            }
        }
        // merge arrivals after all sends are fixed
        for p in 0..n {
            let arrivals: Vec<(Rank, Rank)> =
                phases[p].recvs.iter().flat_map(|msg| msg.items.iter().copied()).collect();
            for it in arrivals {
                if it.1 != p {
                    pending[p].push(it);
                }
                // items with dst == p are consumed into the receive buffer
            }
        }
        for (p, ph) in phases.into_iter().enumerate() {
            per_rank[p].push(ph);
        }
    }

    // Final phase: one combined message per remaining destination.
    let mut final_phases: Vec<A2aPhase> = vec![A2aPhase::default(); n];
    for p in 0..n {
        let mut by_dst: std::collections::BTreeMap<Rank, Vec<(Rank, Rank)>> =
            std::collections::BTreeMap::new();
        for &it in &pending[p] {
            debug_assert_ne!(it.1, p, "self-addressed item should have been consumed");
            by_dst.entry(it.1).or_default().push(it);
        }
        for (dst, mut items) in by_dst {
            items.sort_unstable();
            final_phases[p].sends.push(A2aMsg {
                peer: dst,
                items: items.clone(),
                tag: A2A_FINAL_TAG,
            });
            final_phases[dst].recvs.push(A2aMsg { peer: p, items, tag: A2A_FINAL_TAG });
        }
    }
    for (p, mut ph) in final_phases.into_iter().enumerate() {
        ph.recvs.sort_by_key(|m| m.peer);
        per_rank[p].push(ph);
    }

    AlltoallPlan { algorithm: Algorithm::DistanceHalving, per_rank }
}

/// Executes an alltoall plan with real bytes: `sbufs[p]` holds
/// `outdegree(p)` blocks of `m` bytes, one per outgoing neighbor in
/// `O(p)` order; returns `rbufs[r]` with `indegree(r)` blocks in `I(r)`
/// order.
pub fn run_alltoall_virtual(
    plan: &AlltoallPlan,
    graph: &Topology,
    sbufs: &[Vec<u8>],
    m: usize,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let n = plan.n();
    if sbufs.len() != n {
        return Err(ExecError::PayloadCountMismatch { got: sbufs.len(), want: n });
    }
    // slice out each rank's per-destination blocks
    let mut store: Vec<HashMap<(Rank, Rank), Vec<u8>>> = Vec::with_capacity(n);
    for (p, sbuf) in sbufs.iter().enumerate() {
        let want = graph.outdegree(p) * m;
        if sbuf.len() != want {
            return Err(ExecError::PayloadSizeMismatch { rank: p, got: sbuf.len(), want });
        }
        let mut map = HashMap::with_capacity(graph.outdegree(p));
        for (i, &d) in graph.out_neighbors(p).iter().enumerate() {
            map.insert((p, d), sbuf[i * m..(i + 1) * m].to_vec());
        }
        store.push(map);
    }

    for k in 0..plan.phase_count() {
        // (dst, packed items) pairs staged against pre-phase stores
        type InFlight = Vec<(Rank, Vec<((Rank, Rank), Vec<u8>)>)>;
        let mut in_flight: InFlight = Vec::new();
        for (r, prog) in plan.per_rank.iter().enumerate() {
            for msg in &prog[k].sends {
                let mut packed = Vec::with_capacity(msg.items.len());
                for &it in &msg.items {
                    let data = store[r].remove(&it).ok_or(ExecError::MissingBlock {
                        rank: r,
                        block: it.0,
                        phase: k,
                    })?;
                    packed.push((it, data));
                }
                in_flight.push((msg.peer, packed));
            }
        }
        for (dst, packed) in in_flight {
            for (it, data) in packed {
                store[dst].insert(it, data);
            }
        }
    }

    let mut out = Vec::with_capacity(n);
    for (r, held) in store.iter().enumerate() {
        let ins = graph.in_neighbors(r);
        let mut rbuf = Vec::with_capacity(ins.len() * m);
        for &s in ins {
            let data = held.get(&(s, r)).ok_or(ExecError::Undelivered { rank: r, block: s })?;
            rbuf.extend_from_slice(data);
        }
        out.push(rbuf);
    }
    Ok(out)
}

/// Reference alltoall straight from the definition.
pub fn reference_alltoall(graph: &Topology, sbufs: &[Vec<u8>], m: usize) -> Vec<Vec<u8>> {
    (0..graph.n())
        .map(|r| {
            let mut rbuf = Vec::new();
            for &s in graph.in_neighbors(r) {
                let slot = graph.out_neighbors(s).binary_search(&r).expect("in/out consistency");
                rbuf.extend_from_slice(&sbufs[s][slot * m..(slot + 1) * m]);
            }
            rbuf
        })
        .collect()
}

/// Lowers an alltoall plan onto the simulator at item payload `m`.
pub fn simulate_alltoall(
    plan: &AlltoallPlan,
    layout: &nhood_cluster::ClusterLayout,
    m: usize,
    cost: &crate::exec::sim_exec::SimCost,
) -> Result<nhood_simnet::SimReport, nhood_simnet::SimError> {
    let mut s = nhood_simnet::Schedule::new(plan.n());
    for (r, prog) in plan.per_rank.iter().enumerate() {
        for phase in prog {
            let sends = phase
                .sends
                .iter()
                .map(|msg| nhood_simnet::Msg {
                    src: r,
                    dst: msg.peer,
                    bytes: msg.items.len() * m,
                    tag: msg.tag,
                })
                .collect();
            let recvs = phase
                .recvs
                .iter()
                .map(|msg| nhood_simnet::Msg {
                    src: msg.peer,
                    dst: r,
                    bytes: msg.items.len() * m,
                    tag: msg.tag,
                })
                .collect();
            s.push_phase(r, nhood_simnet::Phase { local_seconds: 0.0, sends, recvs });
        }
    }
    nhood_simnet::Engine::new(layout, cost.net).run(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn a2a_payloads(graph: &Topology, m: usize) -> Vec<Vec<u8>> {
        (0..graph.n())
            .map(|p| {
                let mut buf = Vec::with_capacity(graph.outdegree(p) * m);
                for &d in graph.out_neighbors(p) {
                    // distinct content per (src, dst)
                    buf.extend((0..m).map(|i| (p * 131 + d * 31 + i) as u8));
                }
                buf
            })
            .collect()
    }

    #[test]
    fn naive_alltoall_matches_reference() {
        let g = erdos_renyi(24, 0.3, 5);
        let plan = plan_naive_alltoall(&g);
        plan.validate(&g).unwrap();
        let sbufs = a2a_payloads(&g, 8);
        let got = run_alltoall_virtual(&plan, &g, &sbufs, 8).unwrap();
        assert_eq!(got, reference_alltoall(&g, &sbufs, 8));
        assert_eq!(plan.message_count(), g.edge_count());
    }

    #[test]
    fn dh_alltoall_matches_reference() {
        for (n, delta) in [(16usize, 0.3), (24, 0.5), (36, 0.1), (30, 0.7), (17, 0.4)] {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let pattern = build_pattern(&g, &layout).unwrap();
            let plan = plan_dh_alltoall(&pattern, &g);
            plan.validate(&g).unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
            let sbufs = a2a_payloads(&g, 4);
            let got = run_alltoall_virtual(&plan, &g, &sbufs, 4)
                .unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
            assert_eq!(got, reference_alltoall(&g, &sbufs, 4), "n={n} delta={delta}");
        }
    }

    #[test]
    fn dh_alltoall_moves_each_item_boundedly() {
        // no buffer doubling: total item-hops ≤ items × (steps + 1)
        let g = erdos_renyi(32, 0.4, 7);
        let layout = ClusterLayout::new(4, 2, 4);
        let pattern = build_pattern(&g, &layout).unwrap();
        let plan = plan_dh_alltoall(&pattern, &g);
        let hops = plan.total_items_sent();
        let bound = g.edge_count() * (pattern.max_steps() + 1);
        assert!(hops <= bound, "{hops} item-hops > bound {bound}");
        // and strictly more than one hop per item on multi-node halving
        assert!(hops >= g.edge_count());
    }

    #[test]
    fn dh_alltoall_cuts_messages_on_dense_graphs() {
        let g = erdos_renyi(64, 0.5, 3);
        let layout = ClusterLayout::new(4, 2, 8);
        let pattern = build_pattern(&g, &layout).unwrap();
        let dh = plan_dh_alltoall(&pattern, &g);
        let naive = plan_naive_alltoall(&g);
        assert!(
            dh.message_count() * 2 < naive.message_count(),
            "dh {} vs naive {}",
            dh.message_count(),
            naive.message_count()
        );
    }

    #[test]
    fn dh_alltoall_simulates_faster_on_dense_small() {
        let g = erdos_renyi(64, 0.5, 3);
        let layout = ClusterLayout::new(4, 2, 8);
        let pattern = build_pattern(&g, &layout).unwrap();
        let dh = plan_dh_alltoall(&pattern, &g);
        let naive = plan_naive_alltoall(&g);
        let cost = crate::exec::sim_exec::SimCost::niagara();
        let td = simulate_alltoall(&dh, &layout, 64, &cost).unwrap().makespan;
        let tn = simulate_alltoall(&naive, &layout, 64, &cost).unwrap().makespan;
        assert!(td < tn, "dh {td} vs naive {tn}");
    }

    #[test]
    fn validator_rejects_corruption() {
        let g = Topology::from_edges(3, [(0, 2), (1, 2)]);
        let mut plan = plan_naive_alltoall(&g);
        // drop a delivery
        plan.per_rank[0][0].sends.clear();
        plan.per_rank[2][0].recvs.retain(|m| m.peer != 0);
        assert!(plan.validate(&g).unwrap_err().contains("never delivered"));
        // duplicate a delivery
        let mut plan = plan_naive_alltoall(&g);
        plan.per_rank[1][0].sends.push(A2aMsg { peer: 2, items: vec![(1, 2)], tag: 9 });
        plan.per_rank[2][0].recvs.push(A2aMsg { peer: 1, items: vec![(1, 2)], tag: 9 });
        let e = plan.validate(&g).unwrap_err();
        assert!(e.contains("does not hold"), "{e}"); // item moved, so the dup send lacks it
    }

    #[test]
    fn payload_shape_checked() {
        let g = erdos_renyi(8, 0.5, 1);
        let plan = plan_naive_alltoall(&g);
        let mut sbufs = a2a_payloads(&g, 8);
        sbufs[3].pop();
        assert!(matches!(
            run_alltoall_virtual(&plan, &g, &sbufs, 8),
            Err(ExecError::PayloadSizeMismatch { rank: 3, .. })
        ));
    }

    #[test]
    fn empty_graph_alltoall() {
        let g = Topology::from_edges(4, []);
        let plan = plan_naive_alltoall(&g);
        plan.validate(&g).unwrap();
        let got = run_alltoall_virtual(&plan, &g, &vec![vec![]; 4], 16).unwrap();
        assert!(got.iter().all(Vec::is_empty));
    }
}
