//! # nhood-core
//!
//! A from-scratch implementation of the topology- and load-aware
//! **Distance Halving** neighborhood allgather (Sharifian, Sojoodi &
//! Afsahi, *A Topology- and Load-Aware Design for Neighborhood
//! Allgather*, IEEE CLUSTER 2024), together with the two baselines the
//! paper evaluates against: the naïve point-to-point algorithm (default
//! Open MPI behaviour) and the Common Neighbor message-combining
//! algorithm (IPDPS'19).
//!
//! ## Architecture
//!
//! * [`builder`] runs Algorithm 1 — recursive communicator halving with
//!   joint agent/origin [`selection`] (Algorithms 2–3, emulated
//!   faithfully with REQ/ACCEPT/DROP/EXIT state machines and full signal
//!   counting) — producing a [`pattern::DhPattern`].
//! * [`lower`] turns the pattern into an executable
//!   [`plan::CollectivePlan`] (the planning half of Algorithm 4);
//!   [`naive`] and [`common_neighbor`] produce plans of the same shape.
//! * [`exec`] runs plans behind one [`exec::Executor`] trait with three
//!   backends: sequentially with real bytes ([`exec::Virtual`]),
//!   concurrently with one thread per rank ([`exec::Threaded`]), and in
//!   simulated time on a modelled cluster ([`exec::Sim`]); [`arena`] is
//!   the zero-copy flat-buffer engine they share.
//! * [`model`] is the paper's §V closed-form performance model.
//! * [`fault`] is a deterministic fault-injection layer (message drops,
//!   delays, duplicates, reorders, stragglers, crashes) consulted by the
//!   threaded executor and the distributed builder; paired with
//!   [`comm::RobustPolicy`] it gives graceful degradation to the naive
//!   plan instead of hard failure.
//! * [`comm::DistGraphComm`] is the user-facing entry point.
//!
//! ## Quick start
//!
//! ```
//! use nhood_cluster::ClusterLayout;
//! use nhood_core::{Algorithm, CollectiveRequest, DistGraphComm};
//! use nhood_topology::random::erdos_renyi;
//!
//! let graph = erdos_renyi(32, 0.2, 7);
//! let comm = DistGraphComm::create_adjacent(graph, ClusterLayout::new(4, 2, 4)).unwrap();
//! let payloads: Vec<Vec<u8>> = (0..32).map(|r| vec![r as u8; 4]).collect();
//! let dh = comm.collective(&CollectiveRequest::allgather(&payloads)).unwrap();
//! let req = CollectiveRequest::allgather(&payloads).algorithm(Algorithm::Naive);
//! let naive = comm.collective(&req).unwrap();
//! assert_eq!(dh.rbufs, naive.rbufs); // same semantics, different message schedule
//! ```

#![warn(missing_docs)]
// Keep the CSR hot paths allocation-clean: no collect-then-iterate
// detours and no contains-then-insert double lookups.
#![deny(clippy::needless_collect, clippy::map_entry)]

pub mod alltoall;
pub mod arena;
pub mod autotune;
pub mod bruck;
pub mod builder;
pub mod collective;
pub mod comm;
pub mod common_neighbor;
pub mod csr;
pub mod distributed_builder;
pub mod exec;
pub mod fault;
pub mod leader;
pub mod lower;
pub mod model;
pub mod naive;
pub mod pat;
pub mod pattern;
pub mod persistent;
pub mod plan;
pub mod plan_cache;
pub mod plan_io;
pub mod pool;
pub mod remap;
pub mod repair;
pub mod select_algo;
pub mod selection;
pub mod sizes;

pub use arena::{ArenaLayout, BlockArena};
pub use autotune::TuneOutcome;
pub use collective::{
    CollectiveOp, CollectiveOutput, CollectiveRequest, DType, ExecBackend, ReduceOp, Reduction,
};
pub use comm::{
    CommError, DistGraphComm, ExecReport, FallbackReason, MutationReport, RobustPolicy,
};
pub use csr::RespMap;
pub use exec::sim_exec::SimCost;
pub use exec::{ExecEngine, ExecError, ExecOptions, ExecOutcome, Executor, Sim, Threaded, Virtual};
pub use fault::{FaultAction, FaultCounts, FaultPlan, FaultStats};
pub use pattern::{DhPattern, SelectionStats};
pub use plan::{Algorithm, CollectivePlan, PlanValidationError};
pub use plan_cache::{PlanCache, PlanCacheStats, PlanFingerprint};
pub use pool::WorkerPool;
pub use repair::{Completeness, RepairPolicy};
pub use select_algo::{recommend, recommend_sized, recommend_with, SelectionPolicy};
pub use sizes::{BlockSizes, LoadMetric};
