//! The collective-agnostic request surface and the message-combining
//! executors behind it.
//!
//! One entry point — [`crate::comm::DistGraphComm::collective`] — serves
//! every neighborhood collective through a typed [`CollectiveRequest`]:
//! allgather(v) on the lowered [`crate::plan::CollectivePlan`], and the
//! three *message-combining* collectives (alltoallv, sparse
//! reduce_scatter, sparse allreduce) on the item-routed
//! [`crate::alltoall::AlltoallPlan`]. The combining family follows Träff
//! et al.'s isomorphic sparse collectives and the Kolmakov–Zhang
//! allreduce generalization: forwarding agents *reduce* payloads at hops
//! instead of concatenating them.
//!
//! ## Why combining is sound on the alltoall routing
//!
//! [`crate::alltoall::plan_dh_alltoall`] routes an item `(src, dst)` by
//! looking only at `dst` (is it in the step's opposite half?), and
//! arrivals merge into a rank's pending set *after* the step's sends are
//! fixed. Consequence: **all items held at a rank with the same
//! destination co-route in every subsequent phase.** A rank may
//! therefore hold one *partial* per destination — `(source set, reduced
//! value)` — and forward the partial wherever the plan forwards that
//! destination's items; two partials for the same destination meeting at
//! a rank merge with one [`Reduction::combine`]. Exactly-once item
//! delivery (validated on the plan) becomes exactly-once inclusion of
//! every source's contribution.
//!
//! ## Determinism
//!
//! The combine *tree* is fully plan-determined: within a phase, arrivals
//! are integrated in ascending `(peer, tag)` order on every backend, and
//! IEEE-754 addition is commutative (though not associative), so f32
//! sums are **bit-identical** across the virtual and threaded backends
//! and across repeat runs. Exact lanes (wrapping integer sums, max,
//! bit-or) are associative and equal the naive reference exactly; f32
//! agrees with the reference up to reassociation error.
//!
//! ## Wire accounting
//!
//! A packed message is a list of groups `(dsts, srcs, value)`; groups
//! whose source set *and* value bytes coincide share one value block
//! (the allreduce first hop sends one copy of `x_src` no matter how many
//! destinations it serves). Telemetry counts the value bytes only —
//! consistent with the allgather executors, which count payload bytes
//! and not headers.

use crate::alltoall::{A2aMsg, AlltoallPlan};
use crate::comm::{CommError, ExecReport};
use crate::exec::ExecError;
use crate::plan::Algorithm;
use crate::sizes::BlockSizes;
use nhood_simnet::{Msg, Phase, Schedule, SimReport};
use nhood_telemetry::{Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::time::Duration;

/// Lane type of a [`Reduction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// One byte per lane.
    U8,
    /// Little-endian `u32` lanes; block lengths must be multiples of 4.
    U32,
    /// Little-endian IEEE-754 `f32` lanes; block lengths must be
    /// multiples of 4. `BitOr` is rejected for this type.
    F32,
}

impl DType {
    /// Bytes per lane.
    pub fn lane_bytes(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::U32 | DType::F32 => 4,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::U8 => write!(f, "u8"),
            DType::U32 => write!(f, "u32"),
            DType::F32 => write!(f, "f32"),
        }
    }
}

/// The operator a combining agent applies at each hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Lane-wise sum (wrapping for integer lanes).
    Sum,
    /// Lane-wise maximum.
    Max,
    /// Lane-wise bit-or (integer lanes only).
    BitOr,
}

impl std::fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceOp::Sum => write!(f, "sum"),
            ReduceOp::Max => write!(f, "max"),
            ReduceOp::BitOr => write!(f, "bitor"),
        }
    }
}

/// A reduction: operator × lane type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reduction {
    /// The operator.
    pub op: ReduceOp,
    /// The lane type.
    pub dtype: DType,
}

impl Reduction {
    /// Byte-wise wrapping sum — the cheapest exact reduction, and the
    /// one the service's mixed-op traffic verifies byte-for-byte.
    pub const SUM_U8: Reduction = Reduction { op: ReduceOp::Sum, dtype: DType::U8 };

    /// A reduction over `dtype` lanes.
    pub fn new(op: ReduceOp, dtype: DType) -> Self {
        Self { op, dtype }
    }

    /// Rejects operator/lane combinations with no defined semantics.
    pub fn validate(self) -> Result<(), &'static str> {
        match (self.op, self.dtype) {
            (ReduceOp::BitOr, DType::F32) => Err("bitor is undefined on f32 lanes"),
            _ => Ok(()),
        }
    }

    /// `true` when a block of `len` bytes splits into whole lanes.
    pub fn fits(self, len: usize) -> bool {
        len.is_multiple_of(self.dtype.lane_bytes())
    }

    /// The identity block of `len` bytes: combining it with any block
    /// yields that block.
    pub fn identity(self, len: usize) -> Vec<u8> {
        match (self.op, self.dtype) {
            (ReduceOp::Max, DType::F32) => {
                f32::NEG_INFINITY.to_le_bytes().iter().copied().cycle().take(len).collect()
            }
            // 0 is the identity for sum and bit-or, and for unsigned max
            _ => vec![0u8; len],
        }
    }

    /// Lane-wise `acc = acc ⊕ rhs`. Both slices must be the same length
    /// and a whole number of lanes.
    pub fn combine(self, acc: &mut [u8], rhs: &[u8]) {
        assert_eq!(acc.len(), rhs.len(), "combining blocks of unequal length");
        let lanes4 = |acc: &mut [u8], rhs: &[u8], f: fn([u8; 4], [u8; 4]) -> [u8; 4]| {
            for (a, b) in acc.chunks_exact_mut(4).zip(rhs.chunks_exact(4)) {
                let v = f(a.try_into().unwrap(), b.try_into().unwrap());
                a.copy_from_slice(&v);
            }
        };
        match (self.op, self.dtype) {
            (ReduceOp::Sum, DType::U8) => {
                for (a, &b) in acc.iter_mut().zip(rhs) {
                    *a = a.wrapping_add(b);
                }
            }
            (ReduceOp::Sum, DType::U32) => lanes4(acc, rhs, |a, b| {
                u32::from_le_bytes(a).wrapping_add(u32::from_le_bytes(b)).to_le_bytes()
            }),
            (ReduceOp::Sum, DType::F32) => lanes4(acc, rhs, |a, b| {
                (f32::from_le_bytes(a) + f32::from_le_bytes(b)).to_le_bytes()
            }),
            (ReduceOp::Max, DType::U8) => {
                for (a, &b) in acc.iter_mut().zip(rhs) {
                    *a = (*a).max(b);
                }
            }
            (ReduceOp::Max, DType::U32) => lanes4(acc, rhs, |a, b| {
                u32::from_le_bytes(a).max(u32::from_le_bytes(b)).to_le_bytes()
            }),
            (ReduceOp::Max, DType::F32) => lanes4(acc, rhs, |a, b| {
                f32::from_le_bytes(a).max(f32::from_le_bytes(b)).to_le_bytes()
            }),
            (ReduceOp::BitOr, DType::U8) | (ReduceOp::BitOr, DType::U32) => {
                // bit-or is lane-width agnostic: byte-wise or is exact
                for (a, &b) in acc.iter_mut().zip(rhs) {
                    *a |= b;
                }
            }
            (ReduceOp::BitOr, DType::F32) => unreachable!("rejected by Reduction::validate"),
        }
    }
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.op, self.dtype)
    }
}

/// The collective an execution request names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// Uniform-size neighborhood allgather.
    Allgather,
    /// Ragged (per-rank-sized) neighborhood allgather.
    Allgatherv,
    /// Per-destination distinct payloads; `sizes[p]` is the block size
    /// *source* `p` sends to each of its out-neighbors.
    Alltoallv,
    /// Sparse reduce_scatter: rank `t` receives the reduction of its
    /// in-neighbors' contributions addressed to it; `sizes[t]` is the
    /// block size of *destination* `t`.
    ReduceScatter(Reduction),
    /// Sparse allreduce (reduce_scatter ⊕ allgather fused on the item
    /// routing): rank `t` ends with `x_t ⊕ (⊕ x_s for s ∈ I(t))`.
    /// Uniform block size only.
    Allreduce(Reduction),
}

impl CollectiveOp {
    /// Short stable name for logs, CLI flags and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveOp::Allgather => "allgather",
            CollectiveOp::Allgatherv => "allgatherv",
            CollectiveOp::Alltoallv => "alltoallv",
            CollectiveOp::ReduceScatter(_) => "reduce_scatter",
            CollectiveOp::Allreduce(_) => "allreduce",
        }
    }

    /// The *plan-family* tag hashed into cache keys
    /// ([`crate::plan_cache::PlanFingerprint::of_collective`]): ops that
    /// provably execute the same plan share a tag — allgather and
    /// allgatherv both run the lowered `CollectivePlan` (tag 0); the
    /// combining family all routes over the identical item
    /// `AlltoallPlan` (tag 1), so mixed reduce/alltoallv traffic reuses
    /// one cached routing instead of thrashing per-op copies.
    pub fn plan_tag(&self) -> u64 {
        match self {
            CollectiveOp::Allgather | CollectiveOp::Allgatherv => 0,
            _ => 1,
        }
    }

    /// `true` for the allgather family (runs `CollectivePlan`; supports
    /// every algorithm, robustness and fault injection).
    pub fn is_gather(&self) -> bool {
        self.plan_tag() == 0
    }

    /// The reduction of a combining-reduce op, if any.
    pub fn reduction(&self) -> Option<Reduction> {
        match self {
            CollectiveOp::ReduceScatter(r) | CollectiveOp::Allreduce(r) => Some(*r),
            _ => None,
        }
    }
}

impl std::fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reduction() {
            Some(r) => write!(f, "{}({r})", self.name()),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// Which execution backend a request runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// Deterministic sequential execution with real bytes (the oracle).
    #[default]
    Virtual,
    /// One OS thread per rank, real channels, the communicator's
    /// timeouts; the only backend with fault injection and robustness.
    Threaded,
    /// Discrete-event simulated time. Unlike the legacy `Sim` executor,
    /// the unified API *also* returns oracle bytes (computed on the
    /// virtual data path) next to the makespan, so reference-equivalence
    /// holds on this backend too.
    Sim,
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Virtual => write!(f, "virtual"),
            ExecBackend::Threaded => write!(f, "threaded"),
            ExecBackend::Sim => write!(f, "sim"),
        }
    }
}

/// A collective execution request — the one argument of
/// [`crate::comm::DistGraphComm::collective`].
///
/// ```
/// use nhood_cluster::ClusterLayout;
/// use nhood_core::collective::{CollectiveRequest, Reduction};
/// use nhood_core::comm::DistGraphComm;
/// use nhood_topology::random::erdos_renyi;
///
/// let graph = erdos_renyi(16, 0.3, 42);
/// let comm = DistGraphComm::create_adjacent(graph, ClusterLayout::new(2, 2, 4)).unwrap();
/// let payloads: Vec<Vec<u8>> = (0..16).map(|r| vec![r as u8; 8]).collect();
/// let out = comm.collective(&CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8)).unwrap();
/// assert_eq!(out.rbufs.len(), 16);
/// ```
pub struct CollectiveRequest<'a> {
    /// The collective to run.
    pub op: CollectiveOp,
    /// The planning algorithm (default [`Algorithm::DistanceHalving`]).
    pub algorithm: Algorithm,
    /// Per-rank send buffers; the shape contract depends on `op` (see
    /// each [`CollectiveOp`] variant).
    pub payloads: &'a [Vec<u8>],
    /// Explicit size table; `None` derives it from the payloads (ragged
    /// reduce_scatter *requires* an explicit per-destination table — it
    /// cannot be inferred from concatenated send buffers).
    pub sizes: Option<BlockSizes>,
    /// The execution backend.
    pub backend: ExecBackend,
    /// Fault-tolerant execution (allgather family on the threaded
    /// transport only — see the support matrix in docs/EXECUTION_API.md).
    pub robust: bool,
    /// Telemetry sink.
    pub recorder: &'a dyn Recorder,
}

impl<'a> CollectiveRequest<'a> {
    /// A request for `op` over `payloads` with Distance Halving, the
    /// virtual backend, no robustness and a null recorder.
    pub fn new(op: CollectiveOp, payloads: &'a [Vec<u8>]) -> Self {
        Self {
            op,
            algorithm: Algorithm::DistanceHalving,
            payloads,
            sizes: None,
            backend: ExecBackend::Virtual,
            robust: false,
            recorder: &NULL,
        }
    }

    /// Uniform neighborhood allgather of one block per rank.
    pub fn allgather(payloads: &'a [Vec<u8>]) -> Self {
        Self::new(CollectiveOp::Allgather, payloads)
    }

    /// Ragged neighborhood allgather (per-rank block sizes, zeros legal).
    pub fn allgatherv(payloads: &'a [Vec<u8>]) -> Self {
        Self::new(CollectiveOp::Allgatherv, payloads)
    }

    /// Neighborhood alltoallv: `payloads[p]` concatenates one distinct
    /// block per out-neighbor (in `O(p)` order), each `sizes[p]` bytes.
    pub fn alltoallv(payloads: &'a [Vec<u8>]) -> Self {
        Self::new(CollectiveOp::Alltoallv, payloads)
    }

    /// Sparse reduce_scatter under `red`: `payloads[p]` concatenates
    /// p's contribution to each out-neighbor `d` (in `O(p)` order), each
    /// `sizes[d]` bytes.
    pub fn reduce_scatter(payloads: &'a [Vec<u8>], red: Reduction) -> Self {
        Self::new(CollectiveOp::ReduceScatter(red), payloads)
    }

    /// Sparse allreduce under `red`: `payloads[r]` is rank r's uniform
    /// `m`-byte contribution; every rank ends with its in-neighborhood's
    /// reduction folded over its own block.
    pub fn allreduce(payloads: &'a [Vec<u8>], red: Reduction) -> Self {
        Self::new(CollectiveOp::Allreduce(red), payloads)
    }

    /// Selects the planning algorithm.
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.algorithm = algo;
        self
    }

    /// Pins an explicit size table (per-source for alltoallv,
    /// per-destination for reduce_scatter, per-rank for allgatherv).
    pub fn sizes(mut self, sizes: BlockSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Requests fault-tolerant execution (threaded allgather family).
    pub fn robust(mut self, robust: bool) -> Self {
        self.robust = robust;
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, rec: &'a dyn Recorder) -> Self {
        self.recorder = rec;
        self
    }
}

impl std::fmt::Debug for CollectiveRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveRequest")
            .field("op", &self.op)
            .field("algorithm", &self.algorithm)
            .field("payloads", &self.payloads.len())
            .field("sizes", &self.sizes)
            .field("backend", &self.backend)
            .field("robust", &self.robust)
            .finish_non_exhaustive()
    }
}

/// What a [`crate::comm::DistGraphComm::collective`] call produced.
#[derive(Clone, Debug, Default)]
pub struct CollectiveOutput {
    /// Per-rank receive buffers (shape depends on the op; see
    /// [`CollectiveOp`]). Real bytes on **every** backend, including
    /// [`ExecBackend::Sim`].
    pub rbufs: Vec<Vec<u8>>,
    /// Faults injected and retries spent (threaded backend only).
    pub faults: crate::fault::FaultCounts,
    /// The robustness report, `Some` iff the request set
    /// [`CollectiveRequest::robust`].
    pub report: Option<ExecReport>,
    /// The simulator's report, `Some` iff the request ran on
    /// [`ExecBackend::Sim`].
    pub sim: Option<SimReport>,
}

/// Rejects (op, algorithm, robustness, backend) combinations outside the
/// support matrix — the typed error the old
/// `UnsupportedAlgorithm { operation: "neighbor_alltoall" }` branch grew
/// into. See docs/EXECUTION_API.md for the full table.
pub(crate) fn check_support(
    op: CollectiveOp,
    algorithm: Algorithm,
    robust: bool,
    backend: ExecBackend,
) -> Result<(), CommError> {
    if let Some(red) = op.reduction() {
        if let Err(reason) = red.validate() {
            return Err(CommError::InvalidReduction { reduction: red, reason });
        }
    }
    if robust && !op.is_gather() && op != CollectiveOp::Alltoallv {
        // The unsupported piece, by name: a retried reduce_scatter /
        // allreduce would re-apply its operator at every forwarding hop
        // it replays, corrupting the accumulation. Alltoallv items are
        // idempotent to resend, so it joins the robust matrix.
        return Err(CommError::UnsupportedCollective {
            op,
            algorithm,
            reason: "robust execution cannot replay hop-applied reductions \
                     (reduce_scatter/allreduce); it covers the allgather family and alltoallv",
        });
    }
    if robust && backend != ExecBackend::Threaded {
        return Err(CommError::UnsupportedCollective {
            op,
            algorithm,
            reason: "robust execution runs on the threaded transport",
        });
    }
    if !op.is_gather()
        && matches!(
            algorithm,
            Algorithm::CommonNeighbor { .. }
                | Algorithm::HierarchicalLeader { .. }
                | Algorithm::Bruck
                | Algorithm::Pat { .. }
        )
    {
        return Err(CommError::UnsupportedCollective {
            op,
            algorithm,
            reason: "no item-routing formulation (alltoall-family ops need Naive, \
                     DistanceHalving or Auto)",
        });
    }
    Ok(())
}

/// Derives (or validates) the size table of a combining-family request
/// and checks every payload against the op's shape contract: per-source
/// for alltoallv, per-destination for reduce_scatter (uniform unless
/// explicit — ragged destination tables cannot be recovered from
/// concatenated send buffers), uniform-only for allreduce.
pub fn derive_sizes(
    graph: &Topology,
    op: CollectiveOp,
    payloads: &[Vec<u8>],
    explicit: Option<&BlockSizes>,
) -> Result<BlockSizes, CommError> {
    let n = graph.n();
    if payloads.len() != n {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: n }.into());
    }
    let lane_err = |red: Reduction| CommError::InvalidReduction {
        reduction: red,
        reason: "block length is not a whole number of lanes",
    };
    match op {
        CollectiveOp::Alltoallv => {
            // per-SOURCE sizing: sbuf[p] = outdegree(p) × sizes[p]
            let sizes = match explicit {
                Some(s) => s.clone(),
                None => BlockSizes::per_rank(
                    (0..n)
                        .map(|p| payloads[p].len().checked_div(graph.outdegree(p)).unwrap_or(0))
                        .collect(),
                ),
            };
            for (p, payload) in payloads.iter().enumerate() {
                let want = graph.outdegree(p) * sizes.size(p);
                if payload.len() != want {
                    return Err(ExecError::PayloadSizeMismatch {
                        rank: p,
                        got: payload.len(),
                        want,
                    }
                    .into());
                }
            }
            Ok(sizes)
        }
        CollectiveOp::ReduceScatter(red) => {
            // per-DESTINATION sizing: sbuf[p] = Σ_{d ∈ O(p)} sizes[d]
            let sizes = match explicit {
                Some(s) => s.clone(),
                None => {
                    // infer a uniform size; ragged tables cannot be
                    // recovered from concatenated buffers
                    let m = (0..n)
                        .find(|&p| graph.outdegree(p) > 0)
                        .map_or(0, |p| payloads[p].len() / graph.outdegree(p));
                    BlockSizes::uniform(m)
                }
            };
            for t in 0..n {
                if !red.fits(sizes.size(t)) {
                    return Err(lane_err(red));
                }
            }
            for (p, payload) in payloads.iter().enumerate() {
                let want: usize = graph.out_neighbors(p).iter().map(|&d| sizes.size(d)).sum();
                if payload.len() != want {
                    return Err(ExecError::PayloadSizeMismatch {
                        rank: p,
                        got: payload.len(),
                        want,
                    }
                    .into());
                }
            }
            Ok(sizes)
        }
        CollectiveOp::Allreduce(red) => {
            let m = match explicit {
                Some(s) if s.is_uniform() => s.max_size(),
                Some(_) => {
                    return Err(CommError::UnsupportedCollective {
                        op,
                        algorithm: Algorithm::DistanceHalving,
                        reason: "allreduce is uniform-size only",
                    })
                }
                None => payloads.first().map_or(0, Vec::len),
            };
            if !red.fits(m) {
                return Err(lane_err(red));
            }
            for (rank, p) in payloads.iter().enumerate() {
                if p.len() != m {
                    return Err(
                        ExecError::PayloadSizeMismatch { rank, got: p.len(), want: m }.into()
                    );
                }
            }
            Ok(BlockSizes::uniform(m))
        }
        CollectiveOp::Allgather | CollectiveOp::Allgatherv => {
            unreachable!("gather family does not take the combining path")
        }
    }
}

// ---------------------------------------------------------------------
// Naive references (straight from the definitions)
// ---------------------------------------------------------------------

/// Reference alltoallv: `rbuf[r]` concatenates, per in-neighbor `s` in
/// `I(r)` order, the block `s` addressed to `r` (`sizes[s]` bytes).
pub fn reference_alltoallv(
    graph: &Topology,
    sbufs: &[Vec<u8>],
    sizes: &BlockSizes,
) -> Vec<Vec<u8>> {
    (0..graph.n())
        .map(|r| {
            let mut rbuf = Vec::new();
            for &s in graph.in_neighbors(r) {
                let m = sizes.size(s);
                let slot = graph.out_neighbors(s).binary_search(&r).expect("in/out consistency");
                rbuf.extend_from_slice(&sbufs[s][slot * m..(slot + 1) * m]);
            }
            rbuf
        })
        .collect()
}

/// Reference sparse reduce_scatter: `rbuf[t]` is the `red`-reduction of
/// every in-neighbor's contribution to `t` (each `sizes[t]` bytes),
/// folded over the identity in ascending source order.
pub fn reference_reduce_scatter(
    graph: &Topology,
    sbufs: &[Vec<u8>],
    sizes: &BlockSizes,
    red: Reduction,
) -> Vec<Vec<u8>> {
    (0..graph.n())
        .map(|t| {
            let m = sizes.size(t);
            let mut acc = red.identity(m);
            for &s in graph.in_neighbors(t) {
                let outs = graph.out_neighbors(s);
                let slot = outs.binary_search(&t).expect("in/out consistency");
                let off: usize = outs[..slot].iter().map(|&d| sizes.size(d)).sum();
                red.combine(&mut acc, &sbufs[s][off..off + m]);
            }
            acc
        })
        .collect()
}

/// Reference sparse allreduce: `rbuf[t] = x_t ⊕ (⊕ x_s for s ∈ I(t))`,
/// folded in ascending source order.
pub fn reference_allreduce(graph: &Topology, payloads: &[Vec<u8>], red: Reduction) -> Vec<Vec<u8>> {
    (0..graph.n())
        .map(|t| {
            let mut acc = payloads[t].clone();
            for &s in graph.in_neighbors(t) {
                red.combine(&mut acc, &payloads[s]);
            }
            acc
        })
        .collect()
}

// ---------------------------------------------------------------------
// The combining engine, shared verbatim by the virtual and threaded
// backends (which is what makes their outputs bit-identical)
// ---------------------------------------------------------------------

/// One wire group: destinations sharing one `value` block reduced over
/// `srcs`. Routing ops carry singleton groups; reduce ops coalesce
/// byte-identical values across destinations.
#[derive(Clone, Debug)]
struct WireGroup {
    dsts: Vec<Rank>,
    srcs: Vec<Rank>,
    value: Vec<u8>,
}

fn packet_bytes(packet: &[WireGroup]) -> usize {
    packet.iter().map(|g| g.value.len()).sum()
}

/// A held partial reduction for one destination.
#[derive(Clone, Debug)]
struct Partial {
    /// Sources already folded in, ascending (always disjoint across
    /// partials for the same destination — exactly-once item delivery).
    srcs: Vec<Rank>,
    value: Vec<u8>,
}

#[derive(Clone, Copy, Debug)]
enum OpKind {
    Route,
    Reduce(Reduction),
}

/// Per-rank execution state of the combining engine.
struct RankState {
    rank: Rank,
    kind: OpKind,
    /// Routed blocks held: `(src, dst) → bytes` (alltoallv).
    route: HashMap<(Rank, Rank), Vec<u8>>,
    /// Held partials: `dst → partial` (reduce ops).
    partials: HashMap<Rank, Partial>,
    /// The output accumulator of reduce ops (`Some` from the start for
    /// allreduce — it begins at the rank's own block).
    acc: Option<Vec<u8>>,
    /// Sources folded into `acc` (own rank excluded).
    acc_srcs: Vec<Rank>,
}

impl RankState {
    /// Packs one planned message from held state, *removing* what it
    /// ships (items move, they don't copy).
    fn pack(&mut self, msg: &A2aMsg, phase: usize) -> Result<Vec<WireGroup>, ExecError> {
        match self.kind {
            OpKind::Route => msg
                .items
                .iter()
                .map(|&(s, d)| {
                    self.route.remove(&(s, d)).map(|value| WireGroup {
                        dsts: vec![d],
                        srcs: vec![s],
                        value,
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or(ExecError::MissingBlock { rank: self.rank, block: msg.peer, phase }),
            OpKind::Reduce(_) => {
                // The plan forwards all of a rank's same-destination
                // items together (the co-routing invariant), so the held
                // partial must cover exactly the claimed sources.
                let mut by_dst: BTreeMap<Rank, Vec<Rank>> = BTreeMap::new();
                for &(s, d) in &msg.items {
                    by_dst.entry(d).or_default().push(s);
                }
                let mut groups: Vec<WireGroup> = Vec::new();
                for (d, mut srcs) in by_dst {
                    let partial = self.partials.remove(&d).ok_or(ExecError::MissingBlock {
                        rank: self.rank,
                        block: d,
                        phase,
                    })?;
                    srcs.sort_unstable();
                    if partial.srcs != srcs {
                        return Err(ExecError::MissingBlock { rank: self.rank, block: d, phase });
                    }
                    // share one value block across destinations whose
                    // (source set, bytes) coincide — the allreduce first
                    // hop carries x_src once, not once per destination
                    match groups
                        .iter_mut()
                        .find(|g| g.srcs == partial.srcs && g.value == partial.value)
                    {
                        Some(g) => g.dsts.push(d),
                        None => groups.push(WireGroup {
                            dsts: vec![d],
                            srcs: partial.srcs,
                            value: partial.value,
                        }),
                    }
                }
                Ok(groups)
            }
        }
    }

    /// Integrates one arrived packet. Callers must feed packets in
    /// ascending `(peer, tag)` order within a phase — that ordering is
    /// the determinism contract of the f32 combine tree.
    fn integrate(&mut self, packet: Vec<WireGroup>) {
        match self.kind {
            OpKind::Route => {
                for g in packet {
                    self.route.insert((g.srcs[0], g.dsts[0]), g.value);
                }
            }
            OpKind::Reduce(red) => {
                for g in packet {
                    for &d in &g.dsts {
                        if d == self.rank {
                            match &mut self.acc {
                                Some(a) => red.combine(a, &g.value),
                                None => self.acc = Some(g.value.clone()),
                            }
                            self.acc_srcs.extend_from_slice(&g.srcs);
                        } else {
                            match self.partials.entry(d) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    let p = e.get_mut();
                                    red.combine(&mut p.value, &g.value);
                                    p.srcs.extend_from_slice(&g.srcs);
                                    p.srcs.sort_unstable();
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    v.insert(Partial {
                                        srcs: g.srcs.clone(),
                                        value: g.value.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Assembles this rank's receive buffer, verifying (in release mode
    /// too) that every promised contribution arrived.
    fn finish(
        mut self,
        graph: &Topology,
        op: CollectiveOp,
        sizes: &BlockSizes,
    ) -> Result<Vec<u8>, ExecError> {
        let r = self.rank;
        match op {
            CollectiveOp::Alltoallv => {
                let ins = graph.in_neighbors(r);
                let mut rbuf = Vec::with_capacity(ins.iter().map(|&s| sizes.size(s)).sum());
                for &s in ins {
                    let data = self
                        .route
                        .get(&(s, r))
                        .ok_or(ExecError::Undelivered { rank: r, block: s })?;
                    rbuf.extend_from_slice(data);
                }
                Ok(rbuf)
            }
            CollectiveOp::ReduceScatter(red) | CollectiveOp::Allreduce(red) => {
                self.acc_srcs.sort_unstable();
                let want = graph.in_neighbors(r);
                if self.acc_srcs != want {
                    let missing =
                        want.iter().find(|s| !self.acc_srcs.contains(s)).copied().unwrap_or(0);
                    return Err(ExecError::Undelivered { rank: r, block: missing });
                }
                let out_len = match op {
                    CollectiveOp::ReduceScatter(_) => sizes.size(r),
                    _ => sizes.max_size(),
                };
                Ok(self.acc.unwrap_or_else(|| red.identity(out_len)))
            }
            CollectiveOp::Allgather | CollectiveOp::Allgatherv => {
                unreachable!("gather family does not take the combining path")
            }
        }
    }
}

/// Seeds per-rank state from the send buffers. Shapes are assumed
/// pre-validated by [`derive_sizes`]; slicing here would panic on a
/// violated contract rather than corrupt data.
fn seed_states(
    op: CollectiveOp,
    graph: &Topology,
    sbufs: &[Vec<u8>],
    sizes: &BlockSizes,
) -> Result<Vec<RankState>, ExecError> {
    let n = graph.n();
    if sbufs.len() != n {
        return Err(ExecError::PayloadCountMismatch { got: sbufs.len(), want: n });
    }
    let mut states = Vec::with_capacity(n);
    for (p, sbuf) in sbufs.iter().enumerate() {
        let mut st = RankState {
            rank: p,
            kind: match op.reduction() {
                Some(red) => OpKind::Reduce(red),
                None => OpKind::Route,
            },
            route: HashMap::new(),
            partials: HashMap::new(),
            acc: None,
            acc_srcs: Vec::new(),
        };
        match op {
            CollectiveOp::Alltoallv => {
                let m = sizes.size(p);
                for (i, &d) in graph.out_neighbors(p).iter().enumerate() {
                    st.route.insert((p, d), sbuf[i * m..(i + 1) * m].to_vec());
                }
            }
            CollectiveOp::ReduceScatter(_) => {
                let mut off = 0;
                for &d in graph.out_neighbors(p) {
                    let m = sizes.size(d);
                    st.partials
                        .insert(d, Partial { srcs: vec![p], value: sbuf[off..off + m].to_vec() });
                    off += m;
                }
            }
            CollectiveOp::Allreduce(_) => {
                for &d in graph.out_neighbors(p) {
                    st.partials.insert(d, Partial { srcs: vec![p], value: sbuf.clone() });
                }
                st.acc = Some(sbuf.clone());
            }
            CollectiveOp::Allgather | CollectiveOp::Allgatherv => {
                unreachable!("gather family does not take the combining path")
            }
        }
        states.push(st);
    }
    Ok(states)
}

/// A finished combining run: real receive buffers plus the lowered
/// simulator schedule (message bytes are the *combined* wire sizes the
/// run actually produced).
pub(crate) struct CombiningRun {
    pub rbufs: Vec<Vec<u8>>,
    pub schedule: Schedule,
}

/// Sequential combining execution — the oracle, and the byte source of
/// the Sim backend.
pub(crate) fn run_combining_virtual(
    plan: &AlltoallPlan,
    graph: &Topology,
    op: CollectiveOp,
    sbufs: &[Vec<u8>],
    sizes: &BlockSizes,
    rec: &dyn Recorder,
) -> Result<CombiningRun, ExecError> {
    let n = plan.n();
    let mut states = seed_states(op, graph, sbufs, sizes)?;
    let mut sched = Schedule::new(n);
    for k in 0..plan.phase_count() {
        let mut inboxes: Vec<Vec<(Rank, u64, Vec<WireGroup>)>> = vec![Vec::new(); n];
        let mut sent: HashMap<(Rank, Rank, u64), usize> = HashMap::new();
        for (r, state) in states.iter_mut().enumerate() {
            for msg in &plan.per_rank[r][k].sends {
                let packet = state.pack(msg, k)?;
                let bytes = packet_bytes(&packet);
                rec.msg_sent(r, msg.peer, bytes);
                sent.insert((r, msg.peer, msg.tag), bytes);
                inboxes[msg.peer].push((r, msg.tag, packet));
            }
        }
        for (r, inbox) in inboxes.iter_mut().enumerate() {
            inbox.sort_by_key(|e| (e.0, e.1));
            for (peer, _tag, packet) in inbox.drain(..) {
                rec.msg_recvd(r, peer, packet_bytes(&packet));
                states[r].integrate(packet);
            }
        }
        for r in 0..n {
            let bytes_of = |src: Rank, dst: Rank, tag: u64| sent[&(src, dst, tag)];
            let sends = plan.per_rank[r][k]
                .sends
                .iter()
                .map(|m| Msg { src: r, dst: m.peer, bytes: bytes_of(r, m.peer, m.tag), tag: m.tag })
                .collect();
            let recvs = plan.per_rank[r][k]
                .recvs
                .iter()
                .map(|m| Msg { src: m.peer, dst: r, bytes: bytes_of(m.peer, r, m.tag), tag: m.tag })
                .collect();
            sched.push_phase(r, Phase { local_seconds: 0.0, sends, recvs });
        }
    }
    let rbufs =
        states.into_iter().map(|st| st.finish(graph, op, sizes)).collect::<Result<Vec<_>, _>>()?;
    Ok(CombiningRun { rbufs, schedule: sched })
}

/// One-thread-per-rank combining execution over real channels. Runs the
/// same [`RankState`] engine as the virtual backend with the same
/// within-phase `(peer, tag)` integration order, so outputs (f32 bits
/// included) are identical.
pub(crate) fn run_combining_threaded(
    plan: &AlltoallPlan,
    graph: &Topology,
    op: CollectiveOp,
    sbufs: &[Vec<u8>],
    sizes: &BlockSizes,
    recv_timeout: Duration,
    rec: &dyn Recorder,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let n = plan.n();
    let states = seed_states(op, graph, sbufs, sizes)?;
    type Envelope = (usize, Rank, u64, Vec<WireGroup>);
    let mut txs: Vec<mpsc::Sender<Envelope>> = Vec::with_capacity(n);
    let mut rxs: Vec<mpsc::Receiver<Envelope>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let results: Vec<Result<Vec<u8>, ExecError>> = std::thread::scope(|scope| {
        let txs = &txs;
        let handles: Vec<_> = states
            .into_iter()
            .zip(rxs)
            .map(|(mut st, rx)| {
                scope.spawn(move || -> Result<Vec<u8>, ExecError> {
                    let rank = st.rank;
                    let mut pending: HashMap<usize, Vec<(Rank, u64, Vec<WireGroup>)>> =
                        HashMap::new();
                    for k in 0..plan.phase_count() {
                        let ph = &plan.per_rank[rank][k];
                        for msg in &ph.sends {
                            let packet = st.pack(msg, k)?;
                            rec.msg_sent(rank, msg.peer, packet_bytes(&packet));
                            txs[msg.peer]
                                .send((k, rank, msg.tag, packet))
                                .map_err(|_| ExecError::Timeout { rank, phase: k })?;
                        }
                        let want = ph.recvs.len();
                        let mut got = pending.remove(&k).unwrap_or_default();
                        while got.len() < want {
                            match rx.recv_timeout(recv_timeout) {
                                Ok((kk, peer, tag, packet)) if kk == k => {
                                    got.push((peer, tag, packet))
                                }
                                Ok((kk, peer, tag, packet)) => {
                                    pending.entry(kk).or_default().push((peer, tag, packet))
                                }
                                Err(_) => return Err(ExecError::Timeout { rank, phase: k }),
                            }
                        }
                        got.sort_by_key(|e| (e.0, e.1));
                        for (peer, _tag, packet) in got {
                            rec.msg_recvd(rank, peer, packet_bytes(&packet));
                            st.integrate(packet);
                        }
                    }
                    st.finish(graph, op, sizes)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| h.join().unwrap_or(Err(ExecError::WorkerPanic { rank })))
            .collect()
    });
    drop(txs);
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::plan_dh_alltoall;
    use crate::builder::build_pattern;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn combine_lanes_are_exact() {
        let mut acc = 250u32.to_le_bytes().to_vec();
        Reduction::new(ReduceOp::Sum, DType::U32).combine(&mut acc, &10u32.to_le_bytes());
        assert_eq!(acc, 260u32.to_le_bytes());
        let mut acc = vec![250u8, 7];
        Reduction::SUM_U8.combine(&mut acc, &[10, 1]);
        assert_eq!(acc, vec![4, 8], "u8 sum wraps");
        let mut acc = 3.5f32.to_le_bytes().to_vec();
        Reduction::new(ReduceOp::Max, DType::F32).combine(&mut acc, &(-1.0f32).to_le_bytes());
        assert_eq!(acc, 3.5f32.to_le_bytes());
        let mut acc = vec![0b1010];
        Reduction::new(ReduceOp::BitOr, DType::U8).combine(&mut acc, &[0b0101]);
        assert_eq!(acc, vec![0b1111]);
    }

    #[test]
    fn identities_are_neutral() {
        for red in [
            Reduction::SUM_U8,
            Reduction::new(ReduceOp::Sum, DType::F32),
            Reduction::new(ReduceOp::Max, DType::U32),
            Reduction::new(ReduceOp::Max, DType::F32),
            Reduction::new(ReduceOp::BitOr, DType::U32),
        ] {
            let block: Vec<u8> = (0..16).map(|i| (i * 17 + 3) as u8).collect();
            let mut acc = red.identity(16);
            red.combine(&mut acc, &block);
            assert_eq!(acc, block, "{red}");
        }
    }

    #[test]
    fn bitor_f32_is_rejected() {
        assert!(Reduction::new(ReduceOp::BitOr, DType::F32).validate().is_err());
        assert!(Reduction::new(ReduceOp::BitOr, DType::U32).validate().is_ok());
    }

    #[test]
    fn plan_tags_split_the_two_plan_families() {
        assert_eq!(CollectiveOp::Allgather.plan_tag(), CollectiveOp::Allgatherv.plan_tag());
        assert_eq!(
            CollectiveOp::Alltoallv.plan_tag(),
            CollectiveOp::Allreduce(Reduction::SUM_U8).plan_tag()
        );
        assert_ne!(CollectiveOp::Allgather.plan_tag(), CollectiveOp::Alltoallv.plan_tag());
    }

    fn rs_payloads(g: &Topology, sizes: &BlockSizes, seed: u64) -> Vec<Vec<u8>> {
        (0..g.n())
            .map(|p| {
                let mut buf = Vec::new();
                for &d in g.out_neighbors(p) {
                    buf.extend((0..sizes.size(d)).map(|i| {
                        (p.wrapping_mul(131) ^ d.wrapping_mul(31) ^ i ^ seed as usize) as u8
                    }));
                }
                buf
            })
            .collect()
    }

    #[test]
    fn allreduce_first_hop_coalesces_duplicate_values() {
        // every partial leaving a source on hop 1 carries x_src — the
        // wire must ship it once, not once per destination
        let g = erdos_renyi(32, 0.5, 9);
        let layout = ClusterLayout::new(4, 2, 4);
        let pattern = build_pattern(&g, &layout).unwrap();
        let plan = plan_dh_alltoall(&pattern, &g);
        let m = 64usize;
        let payloads: Vec<Vec<u8>> = (0..32).map(|r| vec![r as u8; m]).collect();
        let rec = nhood_telemetry::CountingRecorder::new(32);
        let sizes = BlockSizes::uniform(m);
        run_combining_virtual(
            &plan,
            &g,
            CollectiveOp::Allreduce(Reduction::SUM_U8),
            &payloads,
            &sizes,
            &rec,
        )
        .unwrap();
        let combined = rec.totals().bytes_sent as usize;
        let uncombined = plan.total_items_sent() * m;
        assert!(
            combined < uncombined,
            "coalescing must beat per-item shipping: {combined} vs {uncombined}"
        );
    }

    #[test]
    fn virtual_combining_matches_references_on_dh() {
        for (n, delta) in [(16usize, 0.3), (24, 0.5), (30, 0.2)] {
            let g = erdos_renyi(n, delta, 77);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let pattern = build_pattern(&g, &layout).unwrap();
            let plan = plan_dh_alltoall(&pattern, &g);
            plan.validate(&g).unwrap();

            // alltoallv, ragged per-source sizes including zeros
            let sizes = BlockSizes::per_rank((0..n).map(|p| (p * 7) % 5).collect::<Vec<_>>());
            let sbufs: Vec<Vec<u8>> = (0..n)
                .map(|p| {
                    (0..g.outdegree(p) * sizes.size(p)).map(|i| (p * 67 + i * 13) as u8).collect()
                })
                .collect();
            let got =
                run_combining_virtual(&plan, &g, CollectiveOp::Alltoallv, &sbufs, &sizes, &NULL)
                    .unwrap()
                    .rbufs;
            assert_eq!(got, reference_alltoallv(&g, &sbufs, &sizes), "alltoallv n={n}");

            // reduce_scatter, ragged per-destination sizes including zeros
            let red = Reduction::SUM_U8;
            let dsizes = BlockSizes::per_rank((0..n).map(|t| (t * 3) % 7).collect::<Vec<_>>());
            let sbufs = rs_payloads(&g, &dsizes, 5);
            let got = run_combining_virtual(
                &plan,
                &g,
                CollectiveOp::ReduceScatter(red),
                &sbufs,
                &dsizes,
                &NULL,
            )
            .unwrap()
            .rbufs;
            assert_eq!(
                got,
                reference_reduce_scatter(&g, &sbufs, &dsizes, red),
                "reduce_scatter n={n}"
            );

            // allreduce
            let m = 12;
            let payloads: Vec<Vec<u8>> =
                (0..n).map(|r| (0..m).map(|i| (r * 29 + i) as u8).collect()).collect();
            let usizes = BlockSizes::uniform(m);
            let got = run_combining_virtual(
                &plan,
                &g,
                CollectiveOp::Allreduce(red),
                &payloads,
                &usizes,
                &NULL,
            )
            .unwrap()
            .rbufs;
            assert_eq!(got, reference_allreduce(&g, &payloads, red), "allreduce n={n}");
        }
    }

    #[test]
    fn threaded_combining_is_bit_identical_to_virtual() {
        let g = erdos_renyi(24, 0.4, 3);
        let layout = ClusterLayout::new(3, 2, 4);
        let pattern = build_pattern(&g, &layout).unwrap();
        let plan = plan_dh_alltoall(&pattern, &g);
        let red = Reduction::new(ReduceOp::Sum, DType::F32);
        let m = 16;
        let payloads: Vec<Vec<u8>> = (0..24)
            .map(|r| {
                (0..m / 4)
                    .flat_map(|i| ((r as f32 + 0.5) * (i as f32 + 0.1)).to_le_bytes())
                    .collect()
            })
            .collect();
        let sizes = BlockSizes::uniform(m);
        let op = CollectiveOp::Allreduce(red);
        let v = run_combining_virtual(&plan, &g, op, &payloads, &sizes, &NULL).unwrap().rbufs;
        let t = run_combining_threaded(
            &plan,
            &g,
            op,
            &payloads,
            &sizes,
            Duration::from_secs(10),
            &NULL,
        )
        .unwrap();
        assert_eq!(v, t, "f32 bits must agree across backends");
    }

    #[test]
    fn derive_sizes_rejects_bad_shapes() {
        let g = erdos_renyi(8, 0.5, 1);
        let sbufs: Vec<Vec<u8>> = (0..8).map(|p| vec![0u8; g.outdegree(p) * 4]).collect();
        assert!(derive_sizes(&g, CollectiveOp::Alltoallv, &sbufs, None).is_ok());
        let mut bad = sbufs.clone();
        bad[2].push(0);
        assert!(matches!(
            derive_sizes(&g, CollectiveOp::Alltoallv, &bad, None),
            Err(CommError::Exec(ExecError::PayloadSizeMismatch { rank: 2, .. }))
        ));
        // f32 lanes demand 4-byte multiples
        let red = Reduction::new(ReduceOp::Sum, DType::F32);
        let odd: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 3]).collect();
        assert!(matches!(
            derive_sizes(&g, CollectiveOp::Allreduce(red), &odd, None),
            Err(CommError::InvalidReduction { .. })
        ));
    }
}
