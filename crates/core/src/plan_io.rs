//! Plan persistence: save a built [`CollectivePlan`] to disk and load it
//! back — the "persistent collective" workflow. Pattern creation is the
//! expensive one-time step (Fig. 8); applications that run the same
//! topology repeatedly can pay it once and reload the plan afterwards.
//!
//! The format is a small versioned little-endian binary (no external
//! dependencies): magic `NHPLAN1\0`, algorithm id, rank count, then each
//! rank's phases as length-prefixed send/recv lists.

use crate::pattern::SelectionStats;
use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NHPLAN1\0";

/// Load failure.
#[derive(Debug)]
pub enum PlanIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a plan file, or an unsupported version.
    BadMagic,
    /// Structurally invalid content (truncated, absurd counts).
    Corrupt(String),
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Io(e) => write!(f, "I/O error: {e}"),
            PlanIoError::BadMagic => write!(f, "not an nhood plan file (bad magic)"),
            PlanIoError::Corrupt(m) => write!(f, "corrupt plan file: {m}"),
        }
    }
}

impl std::error::Error for PlanIoError {}

impl From<io::Error> for PlanIoError {
    fn from(e: io::Error) -> Self {
        PlanIoError::Io(e)
    }
}

fn w64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r64(r: &mut impl Read) -> Result<u64, PlanIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Guard against absurd counts from corrupt files before allocating.
fn checked_len(v: u64, what: &str) -> Result<usize, PlanIoError> {
    const LIMIT: u64 = 1 << 32;
    if v > LIMIT {
        return Err(PlanIoError::Corrupt(format!("{what} count {v} exceeds limit")));
    }
    Ok(v as usize)
}

fn write_msg(w: &mut impl Write, m: &PlannedMsg) -> io::Result<()> {
    w64(w, m.peer as u64)?;
    w64(w, m.tag)?;
    w64(w, m.blocks.len() as u64)?;
    for &b in &m.blocks {
        w64(w, b as u64)?;
    }
    Ok(())
}

fn read_msg(r: &mut impl Read, n: usize) -> Result<PlannedMsg, PlanIoError> {
    let peer = checked_len(r64(r)?, "peer")?;
    if peer >= n {
        return Err(PlanIoError::Corrupt(format!("peer {peer} out of {n} ranks")));
    }
    let tag = r64(r)?;
    let len = checked_len(r64(r)?, "blocks")?;
    let mut blocks = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        let b = checked_len(r64(r)?, "block")?;
        if b >= n {
            return Err(PlanIoError::Corrupt(format!("block {b} out of {n} ranks")));
        }
        blocks.push(b);
    }
    Ok(PlannedMsg { peer, blocks, tag })
}

fn algorithm_id(a: Algorithm) -> (u64, u64) {
    match a {
        Algorithm::Naive => (0, 0),
        Algorithm::CommonNeighbor { k } => (1, k as u64),
        Algorithm::DistanceHalving => (2, 0),
        Algorithm::HierarchicalLeader { leaders_per_node } => (3, leaders_per_node as u64),
    }
}

fn algorithm_from(id: u64, param: u64) -> Result<Algorithm, PlanIoError> {
    Ok(match id {
        0 => Algorithm::Naive,
        1 => Algorithm::CommonNeighbor { k: param as usize },
        2 => Algorithm::DistanceHalving,
        3 => Algorithm::HierarchicalLeader { leaders_per_node: param as usize },
        other => return Err(PlanIoError::Corrupt(format!("unknown algorithm id {other}"))),
    })
}

/// Serializes a plan.
pub fn write_plan(plan: &CollectivePlan, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let (id, param) = algorithm_id(plan.algorithm);
    w64(&mut w, id)?;
    w64(&mut w, param)?;
    match plan.selection {
        None => w64(&mut w, 0)?,
        Some(s) => {
            w64(&mut w, 1)?;
            for v in [
                s.req,
                s.accept,
                s.drop,
                s.exit,
                s.notifications,
                s.descriptors,
                s.agent_searches,
                s.agents_found,
            ] {
                w64(&mut w, v as u64)?;
            }
        }
    }
    w64(&mut w, plan.n() as u64)?;
    for prog in &plan.per_rank {
        w64(&mut w, prog.len() as u64)?;
        for phase in prog {
            w64(&mut w, phase.copy_blocks as u64)?;
            w64(&mut w, phase.sends.len() as u64)?;
            for m in &phase.sends {
                write_msg(&mut w, m)?;
            }
            w64(&mut w, phase.recvs.len() as u64)?;
            for m in &phase.recvs {
                write_msg(&mut w, m)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a plan.
pub fn read_plan(mut r: impl Read) -> Result<CollectivePlan, PlanIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PlanIoError::BadMagic);
    }
    let algorithm = algorithm_from(r64(&mut r)?, r64(&mut r)?)?;
    let selection = match r64(&mut r)? {
        0 => None,
        1 => {
            let mut v = [0usize; 8];
            for slot in &mut v {
                *slot = checked_len(r64(&mut r)?, "stat")?;
            }
            Some(SelectionStats {
                req: v[0],
                accept: v[1],
                drop: v[2],
                exit: v[3],
                notifications: v[4],
                descriptors: v[5],
                agent_searches: v[6],
                agents_found: v[7],
            })
        }
        other => return Err(PlanIoError::Corrupt(format!("bad selection flag {other}"))),
    };
    let n = checked_len(r64(&mut r)?, "rank")?;
    let mut per_rank = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let phases = checked_len(r64(&mut r)?, "phase")?;
        let mut prog = Vec::with_capacity(phases.min(1 << 20));
        for _ in 0..phases {
            let copy_blocks = checked_len(r64(&mut r)?, "copy")?;
            let ns = checked_len(r64(&mut r)?, "send")?;
            let mut sends = Vec::with_capacity(ns.min(1 << 20));
            for _ in 0..ns {
                sends.push(read_msg(&mut r, n)?);
            }
            let nr = checked_len(r64(&mut r)?, "recv")?;
            let mut recvs = Vec::with_capacity(nr.min(1 << 20));
            for _ in 0..nr {
                recvs.push(read_msg(&mut r, n)?);
            }
            prog.push(PlanPhase { copy_blocks, sends, recvs });
        }
        per_rank.push(prog);
    }
    Ok(CollectivePlan { algorithm, per_rank, selection })
}

/// Convenience: save to a path.
pub fn save_plan(plan: &CollectivePlan, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_plan(plan, io::BufWriter::new(f))
}

/// Convenience: load from a path.
pub fn load_plan(path: &std::path::Path) -> Result<CollectivePlan, PlanIoError> {
    let f = std::fs::File::open(path)?;
    read_plan(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::lower::lower;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn round_trip(plan: &CollectivePlan) -> CollectivePlan {
        let mut buf = Vec::new();
        write_plan(plan, &mut buf).unwrap();
        read_plan(&buf[..]).unwrap()
    }

    #[test]
    fn all_algorithms_round_trip() {
        let g = erdos_renyi(24, 0.4, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let comm = crate::DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::DistanceHalving,
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
        ] {
            let plan = comm.plan(algo).unwrap();
            let back = round_trip(&plan);
            assert_eq!(back.algorithm, plan.algorithm);
            assert_eq!(back.per_rank, plan.per_rank, "{algo}");
            assert_eq!(back.selection, plan.selection);
            back.validate(&g).unwrap();
        }
    }

    #[test]
    fn loaded_plan_executes_identically() {
        use crate::exec::virtual_exec::test_payloads;
        use crate::exec::{Executor, Virtual};
        let g = erdos_renyi(32, 0.3, 9);
        let layout = ClusterLayout::new(4, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let back = round_trip(&plan);
        let payloads = test_payloads(32, 16, 3);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &payloads).unwrap(),
            Virtual.run_simple(&back, &g, &payloads).unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_plan(&b"not a plan"[..]),
            Err(PlanIoError::BadMagic) | Err(PlanIoError::Io(_))
        ));
        // right magic, truncated body
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        assert!(read_plan(&buf[..]).is_err());
        // absurd rank count
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes()); // naive
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // no selection
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // ranks
        assert!(matches!(read_plan(&buf[..]), Err(PlanIoError::Corrupt(_))));
    }

    #[test]
    fn out_of_range_peer_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        let plan = crate::naive::plan_naive(&g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        // plan for 8 ranks claims to be for 4: peers out of range
        let mut hacked = buf.clone();
        // ranks field sits after magic(8) + algo(16) + selection flag(8)
        hacked[32..40].copy_from_slice(&4u64.to_le_bytes());
        let err = read_plan(&hacked[..]);
        assert!(err.is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = erdos_renyi(16, 0.4, 2);
        let plan = crate::naive::plan_naive(&g);
        let path = std::env::temp_dir().join("nhood_plan_io_test.bin");
        save_plan(&plan, &path).unwrap();
        let back = load_plan(&path).unwrap();
        assert_eq!(back.per_rank, plan.per_rank);
    }
}
