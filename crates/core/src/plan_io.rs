//! Plan persistence: save a built [`CollectivePlan`] to disk and load it
//! back — the "persistent collective" workflow. Pattern creation is the
//! expensive one-time step (Fig. 8); applications that run the same
//! topology repeatedly can pay it once and reload the plan afterwards.
//!
//! The format is a small versioned little-endian binary (no external
//! dependencies): magic `NHPLAN1\0`, algorithm id, rank count, then each
//! rank's phases as length-prefixed send/recv lists.

use crate::pattern::SelectionStats;
use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use std::hash::Hasher;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NHPLAN1\0";

/// Trailing marker of the *version-1* integrity footer. The footer sits
/// *after* the plan body — the bounded decoder consumes exactly the
/// encoded bytes and ignores trailers, so checksummed files remain
/// readable by [`read_plan`] and pre-footer files load fine through
/// [`load_plan_checked`] (as unverified). v1 files are still read; new
/// files are written with the v2 footer below.
const FOOTER_MAGIC: &[u8; 8] = b"NHCK\0\0\0\x01";

/// v1 footer layout: graph digest (16) + checksum (16) + magic (8).
const FOOTER_LEN: usize = 40;

/// Trailing marker of the *version-2* footer, which additionally embeds
/// a per-rank offset index so the memory-mapped path can decode any one
/// rank's program without touching the rest of the file:
///
/// ```text
/// body || index: (n+1) × u64 LE absolute offsets || index_count: u64
///      || graph digest (16) || checksum (16) || magic (8)
/// ```
///
/// `index[r]` is the byte offset (into the file) where rank `r`'s
/// program starts; `index[n]` is the end of the body. The checksum
/// covers everything before it — body, index *and* count — so a flipped
/// index bit can never steer [`MappedPlan::rank`] while still
/// verifying. Like v1, the whole footer is a trailer the legacy
/// decoder ignores.
const FOOTER_MAGIC_V2: &[u8; 8] = b"NHCK\0\0\0\x02";

/// Fixed part of the v2 footer, after the variable-length index:
/// index_count (8) + graph digest (16) + checksum (16) + magic (8).
const FOOTER_V2_FIXED: usize = 48;

/// Dual-seeded SipHash digest of a byte slice (same construction as
/// `PlanFingerprint`: a collision needs both independently keyed halves
/// to collide at once).
fn content_digest(bytes: &[u8]) -> (u64, u64) {
    let pass = |seed: u64| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(seed);
        h.write(bytes);
        h.finish()
    };
    (pass(0x6e68_636b_5f68_6921), pass(0x6e68_636b_5f6c_6f21))
}

/// Load failure.
#[derive(Debug)]
pub enum PlanIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a plan file, or an unsupported version.
    BadMagic,
    /// Structurally invalid content (truncated, absurd counts).
    Corrupt(String),
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Io(e) => write!(f, "I/O error: {e}"),
            PlanIoError::BadMagic => write!(f, "not an nhood plan file (bad magic)"),
            PlanIoError::Corrupt(m) => write!(f, "corrupt plan file: {m}"),
        }
    }
}

impl std::error::Error for PlanIoError {}

impl From<io::Error> for PlanIoError {
    fn from(e: io::Error) -> Self {
        PlanIoError::Io(e)
    }
}

fn w64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Guard against absurd scalar values from corrupt files.
fn checked_len(v: u64, what: &str) -> Result<usize, PlanIoError> {
    const LIMIT: u64 = 1 << 32;
    if v > LIMIT {
        return Err(PlanIoError::Corrupt(format!("{what} count {v} exceeds limit")));
    }
    Ok(v as usize)
}

/// Bounded decode cursor over the whole file. Every *count* field is
/// validated against the bytes actually remaining in the input before
/// anything is allocated or looped over — a flipped length bit can
/// therefore neither over-allocate (the old decoder accepted any count
/// up to 2³² after a bare overflow check) nor send the decoder spinning
/// past the end of the file.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u64(&mut self, what: &str) -> Result<u64, PlanIoError> {
        if self.remaining() < 8 {
            return Err(PlanIoError::Corrupt(format!("truncated reading {what}")));
        }
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        Ok(v)
    }

    /// Reads a count of records that each occupy at least
    /// `min_elem_bytes` of input, and rejects it unless that many
    /// records can still fit in the remaining file.
    fn count(&mut self, min_elem_bytes: u64, what: &str) -> Result<usize, PlanIoError> {
        let v = self.u64(what)?;
        let rem = self.remaining() as u64;
        match v.checked_mul(min_elem_bytes) {
            Some(need) if need <= rem => Ok(v as usize),
            _ => Err(PlanIoError::Corrupt(format!(
                "{what} count {v} cannot fit in {rem} remaining bytes"
            ))),
        }
    }
}

fn write_msg(w: &mut impl Write, m: &PlannedMsg) -> io::Result<()> {
    w64(w, m.peer as u64)?;
    w64(w, m.tag)?;
    w64(w, m.blocks.len() as u64)?;
    for &b in &m.blocks {
        w64(w, b as u64)?;
    }
    Ok(())
}

fn read_msg(c: &mut Cursor<'_>, n: usize) -> Result<PlannedMsg, PlanIoError> {
    let peer = checked_len(c.u64("peer")?, "peer")?;
    if peer >= n {
        return Err(PlanIoError::Corrupt(format!("peer {peer} out of {n} ranks")));
    }
    let tag = c.u64("tag")?;
    let len = c.count(8, "blocks")?;
    let mut blocks = Vec::with_capacity(len);
    for _ in 0..len {
        let b = checked_len(c.u64("block")?, "block")?;
        if b >= n {
            return Err(PlanIoError::Corrupt(format!("block {b} out of {n} ranks")));
        }
        blocks.push(b);
    }
    Ok(PlannedMsg { peer, blocks, tag })
}

fn algorithm_id(a: Algorithm) -> (u64, u64) {
    match a {
        Algorithm::Naive => (0, 0),
        Algorithm::CommonNeighbor { k } => (1, k as u64),
        Algorithm::DistanceHalving => (2, 0),
        Algorithm::HierarchicalLeader { leaders_per_node } => (3, leaders_per_node as u64),
        Algorithm::Bruck => (4, 0),
        Algorithm::Pat { radix } => (5, radix as u64),
        Algorithm::Auto => (6, 0),
    }
}

fn algorithm_from(id: u64, param: u64) -> Result<Algorithm, PlanIoError> {
    Ok(match id {
        0 => Algorithm::Naive,
        1 => Algorithm::CommonNeighbor { k: param as usize },
        2 => Algorithm::DistanceHalving,
        3 => Algorithm::HierarchicalLeader { leaders_per_node: param as usize },
        4 => Algorithm::Bruck,
        5 => Algorithm::Pat { radix: param as usize },
        6 => Algorithm::Auto,
        other => return Err(PlanIoError::Corrupt(format!("unknown algorithm id {other}"))),
    })
}

/// Encodes a plan body and returns it together with the per-rank offset
/// table the v2 footer embeds: `offsets[r]` is the byte offset where
/// rank `r`'s program starts, `offsets[n]` the end of the body.
fn encode_body(plan: &CollectivePlan) -> (Vec<u8>, Vec<u64>) {
    let mut w: Vec<u8> = Vec::new();
    let ok = "Vec<u8> writes are infallible";
    w.extend_from_slice(MAGIC);
    let (id, param) = algorithm_id(plan.algorithm);
    w64(&mut w, id).expect(ok);
    w64(&mut w, param).expect(ok);
    match plan.selection {
        None => w64(&mut w, 0).expect(ok),
        Some(s) => {
            w64(&mut w, 1).expect(ok);
            for v in [
                s.req,
                s.accept,
                s.drop,
                s.exit,
                s.notifications,
                s.descriptors,
                s.agent_searches,
                s.agents_found,
            ] {
                w64(&mut w, v as u64).expect(ok);
            }
        }
    }
    w64(&mut w, plan.n() as u64).expect(ok);
    let mut offsets = Vec::with_capacity(plan.n() + 1);
    for prog in &plan.per_rank {
        offsets.push(w.len() as u64);
        w64(&mut w, prog.len() as u64).expect(ok);
        for phase in prog {
            w64(&mut w, phase.copy_blocks as u64).expect(ok);
            w64(&mut w, phase.sends.len() as u64).expect(ok);
            for m in &phase.sends {
                write_msg(&mut w, m).expect(ok);
            }
            w64(&mut w, phase.recvs.len() as u64).expect(ok);
            for m in &phase.recvs {
                write_msg(&mut w, m).expect(ok);
            }
        }
    }
    offsets.push(w.len() as u64);
    (w, offsets)
}

/// Serializes a plan.
pub fn write_plan(plan: &CollectivePlan, mut w: impl Write) -> io::Result<()> {
    let (buf, _) = encode_body(plan);
    w.write_all(&buf)
}

/// Deserializes a plan. The whole stream is read up front and decoded
/// through a bounded cursor, so corrupt counts are rejected against
/// the real file size instead of being trusted up to 2³² (see
/// `docs/PLAN_CACHE.md`).
pub fn read_plan(mut r: impl Read) -> Result<CollectivePlan, PlanIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode_plan(&buf)
}

/// Decodes a plan from an in-memory (or memory-mapped) byte slice.
/// Trailing bytes after the encoded plan — such as the integrity footer
/// [`save_plan_checked`] appends — are ignored.
pub fn decode_plan(buf: &[u8]) -> Result<CollectivePlan, PlanIoError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(PlanIoError::BadMagic);
    }
    let mut c = Cursor { buf, pos: MAGIC.len() };
    let (algorithm, selection) = read_header(&mut c)?;
    // every rank contributes at least a phase count (8 bytes)
    let n = c.count(8, "rank")?;
    let mut per_rank = Vec::with_capacity(n);
    for _ in 0..n {
        per_rank.push(read_rank_program(&mut c, n)?);
    }
    Ok(CollectivePlan { algorithm, per_rank, selection })
}

/// Decodes the fixed header after the magic: algorithm + selection
/// stats. Leaves the cursor at the rank count.
fn read_header(c: &mut Cursor<'_>) -> Result<(Algorithm, Option<SelectionStats>), PlanIoError> {
    let algorithm = algorithm_from(c.u64("algorithm id")?, c.u64("algorithm param")?)?;
    let selection = match c.u64("selection flag")? {
        0 => None,
        1 => {
            let mut v = [0usize; 8];
            for slot in &mut v {
                *slot = checked_len(c.u64("stat")?, "stat")?;
            }
            Some(SelectionStats {
                req: v[0],
                accept: v[1],
                drop: v[2],
                exit: v[3],
                notifications: v[4],
                descriptors: v[5],
                agent_searches: v[6],
                agents_found: v[7],
            })
        }
        other => return Err(PlanIoError::Corrupt(format!("bad selection flag {other}"))),
    };
    Ok((algorithm, selection))
}

/// Decodes one rank's program at the cursor. Bounds discipline matches
/// [`decode_plan`]: every phase occupies at least copy + send count +
/// recv count (24 bytes); every message at least peer + tag + block
/// count (24); every block 8.
fn read_rank_program(c: &mut Cursor<'_>, n: usize) -> Result<Vec<PlanPhase>, PlanIoError> {
    let phases = c.count(24, "phase")?;
    let mut prog = Vec::with_capacity(phases);
    for _ in 0..phases {
        let copy_blocks = checked_len(c.u64("copy")?, "copy")?;
        let ns = c.count(24, "send")?;
        let mut sends = Vec::with_capacity(ns);
        for _ in 0..ns {
            sends.push(read_msg(c, n)?);
        }
        let nr = c.count(24, "recv")?;
        let mut recvs = Vec::with_capacity(nr);
        for _ in 0..nr {
            recvs.push(read_msg(c, n)?);
        }
        prog.push(PlanPhase { copy_blocks, sends, recvs });
    }
    Ok(prog)
}

/// Convenience: save to a path.
pub fn save_plan(plan: &CollectivePlan, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_plan(plan, io::BufWriter::new(f))
}

/// Convenience: load from a path.
pub fn load_plan(path: &std::path::Path) -> Result<CollectivePlan, PlanIoError> {
    let f = std::fs::File::open(path)?;
    read_plan(io::BufReader::new(f))
}

/// A plan loaded through [`load_plan_checked`].
#[derive(Debug)]
pub struct CheckedPlan {
    /// The decoded plan.
    pub plan: CollectivePlan,
    /// `true` when an integrity footer was present and its checksum
    /// matched the bytes on disk.
    pub verified: bool,
    /// The topology digest recorded at save time, when one was (the
    /// cache uses it to skip re-validation — see `plan_cache`).
    pub graph_digest: Option<(u64, u64)>,
}

/// [`save_plan`] plus the v2 integrity footer: a per-rank offset index
/// (enabling [`load_plan_mapped`]'s lazy decode), a dual-SipHash
/// checksum of everything before it (and, when given, a digest of the
/// topology the plan was validated against). The footer lets
/// [`load_plan_checked`] detect bit rot without decoding and lets the
/// plan cache skip its expensive re-validation on the warm path.
pub fn save_plan_checked(
    plan: &CollectivePlan,
    path: &std::path::Path,
    graph_digest: Option<(u64, u64)>,
) -> io::Result<()> {
    let (mut buf, offsets) = encode_body(plan);
    for &o in &offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    buf.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    let (gd_hi, gd_lo) = graph_digest.unwrap_or((0, 0));
    buf.extend_from_slice(&gd_hi.to_le_bytes());
    buf.extend_from_slice(&gd_lo.to_le_bytes());
    // the checksum covers the body, the index AND the graph digest, so
    // a flipped index or digest bit cannot smuggle a plan past the
    // cache's topology check or steer the mapped reader
    let (ck_hi, ck_lo) = content_digest(&buf);
    buf.extend_from_slice(&ck_hi.to_le_bytes());
    buf.extend_from_slice(&ck_lo.to_le_bytes());
    buf.extend_from_slice(FOOTER_MAGIC_V2);
    std::fs::write(path, &buf)
}

fn le64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8 bytes"))
}

/// Parsed fixed part of a v2 footer.
struct V2Footer {
    /// End of the encoded plan body == start of the offset index.
    body_end: usize,
    /// Number of index entries (must equal `n + 1`; checked by the
    /// mapped reader once `n` is known).
    index_count: usize,
    /// Recorded topology digest, `(0, 0)` when none was saved.
    gd: (u64, u64),
}

/// Probes `buf` for a v2 footer. `None` when the trailing magic is not
/// v2 (legacy v1 or bare files); `Some(Err)` when the magic is present
/// but the checksum fails or the index count cannot fit — the file is
/// corrupt, not merely old.
fn probe_v2_footer(buf: &[u8]) -> Option<Result<V2Footer, PlanIoError>> {
    if buf.len() < MAGIC.len() + FOOTER_V2_FIXED + 8 || &buf[buf.len() - 8..] != FOOTER_MAGIC_V2 {
        return None;
    }
    let ck_at = buf.len() - 24;
    let want = (le64(&buf[ck_at..ck_at + 8]), le64(&buf[ck_at + 8..ck_at + 16]));
    if content_digest(&buf[..ck_at]) != want {
        return Some(Err(PlanIoError::Corrupt("integrity checksum mismatch".into())));
    }
    let gd_at = buf.len() - 40;
    let gd = (le64(&buf[gd_at..gd_at + 8]), le64(&buf[gd_at + 8..gd_at + 16]));
    let count = le64(&buf[buf.len() - 48..buf.len() - 40]);
    let index_end = buf.len() - FOOTER_V2_FIXED;
    let max_bytes = (index_end - MAGIC.len()) as u64;
    let index_bytes = match count.checked_mul(8) {
        Some(b) if (1..=max_bytes).contains(&b) => b as usize,
        _ => {
            return Some(Err(PlanIoError::Corrupt(format!(
                "rank index count {count} cannot fit in the file"
            ))))
        }
    };
    Some(Ok(V2Footer { body_end: index_end - index_bytes, index_count: count as usize, gd }))
}

/// Loads a plan through the memory-mapped read path, verifying the
/// integrity footer when one is present.
///
/// * Footer present, checksum good → `verified: true` (plus the saved
///   graph digest); the plan bytes are decoded straight out of the
///   mapping, no intermediate file copy.
/// * Footer present, checksum bad → [`PlanIoError::Corrupt`] without
///   decoding anything — a flipped bit can't reach the decoder.
/// * No footer (legacy file) → decodes normally with `verified: false`.
///
/// On non-Unix targets (or if `mmap` itself fails) the file is read
/// into memory instead; semantics are identical.
pub fn load_plan_checked(path: &std::path::Path) -> Result<CheckedPlan, PlanIoError> {
    let f = std::fs::File::open(path)?;
    let len = f.metadata()?.len() as usize;
    #[cfg(unix)]
    if let Some(map) = mmap::Mapping::map(&f, len) {
        return decode_checked(map.bytes());
    }
    drop(f);
    decode_checked(&std::fs::read(path)?)
}

/// Shared tail of [`load_plan_checked`]: footer probe (v2, then v1) +
/// checksum + decode over any byte source (mapping or heap buffer).
fn decode_checked(buf: &[u8]) -> Result<CheckedPlan, PlanIoError> {
    if let Some(v2) = probe_v2_footer(buf) {
        let v2 = v2?;
        let plan = decode_plan(&buf[..v2.body_end])?;
        return Ok(CheckedPlan {
            plan,
            verified: true,
            graph_digest: (v2.gd != (0, 0)).then_some(v2.gd),
        });
    }
    if buf.len() >= MAGIC.len() + FOOTER_LEN && &buf[buf.len() - 8..] == FOOTER_MAGIC {
        let body_end = buf.len() - FOOTER_LEN;
        let ck_at = buf.len() - 24;
        let want = (le64(&buf[ck_at..ck_at + 8]), le64(&buf[ck_at + 8..ck_at + 16]));
        if content_digest(&buf[..ck_at]) != want {
            return Err(PlanIoError::Corrupt("integrity checksum mismatch".into()));
        }
        let gd = (le64(&buf[body_end..body_end + 8]), le64(&buf[body_end + 8..body_end + 16]));
        let plan = decode_plan(&buf[..body_end])?;
        return Ok(CheckedPlan {
            plan,
            verified: true,
            graph_digest: (gd != (0, 0)).then_some(gd),
        });
    }
    Ok(CheckedPlan { plan: decode_plan(buf)?, verified: false, graph_digest: None })
}

/// Byte source behind a [`MappedPlan`]: the file mapping when the
/// platform delivers one, a heap buffer otherwise (non-Unix targets, or
/// an `mmap` failure) — semantics are identical either way.
enum PlanBytes {
    #[cfg(unix)]
    Mapped(mmap::Mapping),
    Heap(Vec<u8>),
}

impl PlanBytes {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            PlanBytes::Mapped(m) => m.bytes(),
            PlanBytes::Heap(v) => v,
        }
    }
}

/// A plan served straight out of its (memory-mapped) file: the header
/// and the v2 footer's per-rank offset index are decoded eagerly, the
/// per-rank programs stay as raw mapped bytes until asked for. Warm
/// starts therefore cost one checksum pass over the file plus an O(n)
/// index sanity scan — not the full decode-copy of every phase of every
/// rank — and ranks that are never queried are never even paged in.
///
/// Only v2 files (written by [`save_plan_checked`]) can be mapped; the
/// checksum must verify and must cover the index, so every offset this
/// type dereferences is integrity-protected. [`MappedPlan::rank`]
/// decodes one rank through the same bounded cursor as the full
/// decoder — a corrupt file that somehow passed the checksum still
/// cannot over-allocate or read out of bounds.
pub struct MappedPlan {
    src: PlanBytes,
    algorithm: Algorithm,
    selection: Option<SelectionStats>,
    n: usize,
    /// Byte offset of the rank-offset index within the file.
    index_at: usize,
    graph_digest: Option<(u64, u64)>,
}

impl std::fmt::Debug for MappedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedPlan")
            .field("algorithm", &self.algorithm)
            .field("n", &self.n)
            .field("bytes", &self.src.bytes().len())
            .field("graph_digest", &self.graph_digest)
            .finish()
    }
}

impl MappedPlan {
    fn from_src(src: PlanBytes) -> Result<Self, PlanIoError> {
        let buf = src.bytes();
        let v2 = match probe_v2_footer(buf) {
            Some(r) => r?,
            // no per-rank index: a legacy (v1 or bare) file — the caller
            // falls back to the decode-copy path
            None => return Err(PlanIoError::BadMagic),
        };
        if &buf[..MAGIC.len()] != MAGIC {
            return Err(PlanIoError::BadMagic);
        }
        let mut c = Cursor { buf: &buf[..v2.body_end], pos: MAGIC.len() };
        let (algorithm, selection) = read_header(&mut c)?;
        let n = c.count(8, "rank")?;
        if v2.index_count != n + 1 {
            return Err(PlanIoError::Corrupt(format!(
                "rank index holds {} entries for {n} ranks",
                v2.index_count
            )));
        }
        // The index is under the checksum, so these can only fail on a
        // checksum collision — but they are cheap, and they are what
        // makes every later `offset()` dereference safe by construction.
        let index_at = v2.body_end;
        let off = |i: usize| le64(&buf[index_at + 8 * i..index_at + 8 * i + 8]) as usize;
        if off(0) != c.pos || off(n) != v2.body_end {
            return Err(PlanIoError::Corrupt("rank index does not span the body".into()));
        }
        if (0..n).any(|i| off(i) > off(i + 1)) {
            return Err(PlanIoError::Corrupt("rank index is not monotone".into()));
        }
        let graph_digest = (v2.gd != (0, 0)).then_some(v2.gd);
        Ok(Self { src, algorithm, selection, n, index_at, graph_digest })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The plan's algorithm (from the eagerly decoded header).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Selection statistics recorded at save time, if any.
    pub fn selection(&self) -> Option<SelectionStats> {
        self.selection
    }

    /// The topology digest recorded at save time, when one was — the
    /// cache compares it to skip re-validation (see `plan_cache`).
    pub fn graph_digest(&self) -> Option<(u64, u64)> {
        self.graph_digest
    }

    fn offset(&self, i: usize) -> usize {
        le64(&self.src.bytes()[self.index_at + 8 * i..self.index_at + 8 * i + 8]) as usize
    }

    /// Decodes rank `r`'s program out of the mapping — the only bytes
    /// touched are `r`'s own slice of the file.
    pub fn rank(&self, r: usize) -> Result<Vec<PlanPhase>, PlanIoError> {
        if r >= self.n {
            return Err(PlanIoError::Corrupt(format!("rank {r} out of {}", self.n)));
        }
        let (start, end) = (self.offset(r), self.offset(r + 1));
        let mut c = Cursor { buf: &self.src.bytes()[..end], pos: start };
        let prog = read_rank_program(&mut c, self.n)?;
        if c.pos != end {
            return Err(PlanIoError::Corrupt(format!("rank {r} program does not fill its slot")));
        }
        Ok(prog)
    }

    /// Fully materializes the plan (every rank decoded). Equivalent to
    /// [`decode_plan`] on the body; use it when the whole plan is going
    /// to be executed anyway and an owned [`CollectivePlan`] is needed.
    pub fn to_plan(&self) -> Result<CollectivePlan, PlanIoError> {
        let mut per_rank = Vec::with_capacity(self.n);
        for r in 0..self.n {
            per_rank.push(self.rank(r)?);
        }
        Ok(CollectivePlan { algorithm: self.algorithm, per_rank, selection: self.selection })
    }
}

/// Opens `path` as a [`MappedPlan`]: the file is memory-mapped (heap
/// fallback off Unix), its v2 footer checksum verified, and only the
/// header + offset index decoded. Files without a v2 footer fail with
/// [`PlanIoError::BadMagic`] — they are not corrupt, just not mappable;
/// load them through [`load_plan_checked`] instead.
pub fn load_plan_mapped(path: &std::path::Path) -> Result<MappedPlan, PlanIoError> {
    let f = std::fs::File::open(path)?;
    #[cfg(unix)]
    {
        let len = f.metadata()?.len() as usize;
        if let Some(map) = mmap::Mapping::map(&f, len) {
            return MappedPlan::from_src(PlanBytes::Mapped(map));
        }
    }
    drop(f);
    MappedPlan::from_src(PlanBytes::Heap(std::fs::read(path)?))
}

/// Minimal read-only `mmap` wrapper (no external crates: the two libc
/// symbols are declared directly).
#[cfg(unix)]
mod mmap {
    use std::ffi::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only private mapping of a whole file, unmapped on drop.
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
    // memory with no interior mutability; `munmap` runs exactly once,
    // on drop, wherever the owner ends up.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `f`; `None` on failure (empty files can't
        /// be mapped — the caller falls back to a plain read, which then
        /// reports the usual bad-magic error).
        pub(super) fn map(f: &std::fs::File, len: usize) -> Option<Self> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, f.as_raw_fd(), 0)
            };
            // MAP_FAILED is (void *)-1
            if ptr as isize == -1 {
                None
            } else {
                Some(Self { ptr, len })
            }
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping is PROT_READ, covers exactly `len`
            // bytes, and lives until `self` is dropped; the borrow is
            // tied to `self`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` came from a successful mmap call.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::lower::lower;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn round_trip(plan: &CollectivePlan) -> CollectivePlan {
        let mut buf = Vec::new();
        write_plan(plan, &mut buf).unwrap();
        read_plan(&buf[..]).unwrap()
    }

    #[test]
    fn all_algorithms_round_trip() {
        let g = erdos_renyi(24, 0.4, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let comm = crate::DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::DistanceHalving,
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
        ] {
            let plan = comm.plan(algo).unwrap();
            let back = round_trip(&plan);
            assert_eq!(back.algorithm, plan.algorithm);
            assert_eq!(back.per_rank, plan.per_rank, "{algo}");
            assert_eq!(back.selection, plan.selection);
            back.validate(&g).unwrap();
        }
    }

    #[test]
    fn loaded_plan_executes_identically() {
        use crate::exec::virtual_exec::test_payloads;
        use crate::exec::{Executor, Virtual};
        let g = erdos_renyi(32, 0.3, 9);
        let layout = ClusterLayout::new(4, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let back = round_trip(&plan);
        let payloads = test_payloads(32, 16, 3);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &payloads).unwrap(),
            Virtual.run_simple(&back, &g, &payloads).unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_plan(&b"not a plan"[..]),
            Err(PlanIoError::BadMagic) | Err(PlanIoError::Io(_))
        ));
        // right magic, truncated body
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        assert!(read_plan(&buf[..]).is_err());
        // absurd rank count
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes()); // naive
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // no selection
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // ranks
        assert!(matches!(read_plan(&buf[..]), Err(PlanIoError::Corrupt(_))));
    }

    #[test]
    fn every_truncation_errors_and_bit_flips_never_panic() {
        use nhood_topology::rng::DetRng;
        let g = erdos_renyi(24, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        assert!(read_plan(&buf[..]).is_ok(), "pristine file must load");

        // The decoder consumes exactly the encoded bytes, so every
        // strict prefix must come back as a typed error — never a panic,
        // a hang, or a silently shorter plan.
        let mut rng = DetRng::seed_from_u64(0x71a6);
        let mut cuts: Vec<usize> = (0..64).collect();
        cuts.extend((0..200).map(|_| rng.gen_below(buf.len())));
        cuts.extend(buf.len().saturating_sub(64)..buf.len());
        for k in cuts {
            assert!(read_plan(&buf[..k]).is_err(), "prefix of {k} bytes must not parse");
        }

        // Single-bit flips anywhere in the file must never panic or
        // over-allocate; they either fail typed or still decode (a flip
        // in a payload-irrelevant field like a stat or a tag is legal).
        for _ in 0..500 {
            let byte = rng.gen_below(buf.len());
            let bit = rng.gen_below(8) as u32;
            let mut evil = buf.clone();
            evil[byte] ^= 1 << bit;
            if let Ok(p) = read_plan(&evil[..]) {
                // decoded plans are structurally sane even when wrong
                assert!(p.n() <= evil.len());
            }
        }
    }

    #[test]
    fn length_fields_are_bounded_by_remaining_file_size() {
        let g = erdos_renyi(8, 0.5, 3);
        let plan = crate::naive::plan_naive(&g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        // Blow up the rank count at offset 32 (magic + algo + selection
        // flag): far below the old 2^32 limit, far above what the file
        // can hold. The bounded cursor must reject it up front.
        for absurd in [1u64 << 20, 1 << 31] {
            let mut hacked = buf.clone();
            hacked[32..40].copy_from_slice(&absurd.to_le_bytes());
            assert!(
                matches!(read_plan(&hacked[..]), Err(PlanIoError::Corrupt(_))),
                "rank count {absurd} must be rejected against the file size"
            );
        }
    }

    #[test]
    fn out_of_range_peer_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        let plan = crate::naive::plan_naive(&g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        // plan for 8 ranks claims to be for 4: peers out of range
        let mut hacked = buf.clone();
        // ranks field sits after magic(8) + algo(16) + selection flag(8)
        hacked[32..40].copy_from_slice(&4u64.to_le_bytes());
        let err = read_plan(&hacked[..]);
        assert!(err.is_err());
    }

    #[test]
    fn checked_round_trip_and_legacy_interop() {
        let g = erdos_renyi(24, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("nhood_checked_rt_{}.nhplan", std::process::id()));

        // checked save → checked load: verified, digest preserved
        save_plan_checked(&plan, &path, Some((0xabcd, 0x1234))).unwrap();
        let back = load_plan_checked(&path).unwrap();
        assert!(back.verified);
        assert_eq!(back.graph_digest, Some((0xabcd, 0x1234)));
        assert_eq!(back.plan.per_rank, plan.per_rank);
        // the legacy reader ignores the footer
        assert_eq!(load_plan(&path).unwrap().per_rank, plan.per_rank);

        // checked save without a digest: verified but digest-less
        save_plan_checked(&plan, &path, None).unwrap();
        let back = load_plan_checked(&path).unwrap();
        assert!(back.verified);
        assert_eq!(back.graph_digest, None);

        // legacy save → checked load: decodes, unverified
        save_plan(&plan, &path).unwrap();
        let back = load_plan_checked(&path).unwrap();
        assert!(!back.verified);
        assert_eq!(back.plan.per_rank, plan.per_rank);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_path_survives_truncation_and_bit_flips() {
        use nhood_topology::rng::DetRng;
        let g = erdos_renyi(24, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let path =
            std::env::temp_dir().join(format!("nhood_mmap_fuzz_{}.nhplan", std::process::id()));
        save_plan_checked(&plan, &path, Some((1, 2))).unwrap();
        let buf = std::fs::read(&path).unwrap();
        let mut encoded = Vec::new();
        write_plan(&plan, &mut encoded).unwrap();
        let body_len = encoded.len();

        // Every strict prefix: never a panic; never a *verified* load;
        // truncation inside the body never yields a plan at all.
        let mut rng = DetRng::seed_from_u64(0x6b63);
        let mut cuts: Vec<usize> = (0..48).collect();
        cuts.extend((0..200).map(|_| rng.gen_below(buf.len())));
        cuts.extend(buf.len().saturating_sub(48)..buf.len());
        for k in cuts {
            std::fs::write(&path, &buf[..k]).unwrap();
            if let Ok(c) = load_plan_checked(&path) {
                // only possible when the whole body survived and the
                // cut merely amputated (part of) the footer
                assert!(!c.verified, "prefix of {k} bytes must not verify");
                assert!(k >= body_len, "body truncated at {k} must not decode");
            }
            // the mapped reader needs the v2 footer intact at the very
            // end of the file: every strict prefix must refuse to map
            assert!(load_plan_mapped(&path).is_err(), "prefix of {k} bytes must not map");
        }

        // Single-bit flips: never a panic, and a flip anywhere under the
        // checksum (body, digest, checksum itself) must not verify. A
        // flip in the trailing magic demotes the file to legacy, which
        // decodes the pristine body unverified — that's the designed
        // fallback, not a corruption escape (the cache re-validates
        // unverified loads).
        for _ in 0..500 {
            let byte = rng.gen_below(buf.len());
            let bit = rng.gen_below(8) as u32;
            let mut evil = buf.clone();
            evil[byte] ^= 1 << bit;
            std::fs::write(&path, &evil).unwrap();
            if let Ok(c) = load_plan_checked(&path) {
                if byte < buf.len() - 8 {
                    assert!(!c.verified, "flip at byte {byte} bit {bit} must not verify");
                } else {
                    assert_eq!(c.plan.per_rank, plan.per_rank, "magic flip serves legacy body");
                }
            }
            // every byte of a v2 file is either under the checksum, the
            // checksum itself, or the trailing magic — so a single flip
            // anywhere must keep the mapped reader from serving at all
            assert!(load_plan_mapped(&path).is_err(), "flip at byte {byte} bit {bit} must not map");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_plan_serves_per_rank_slices() {
        let g = erdos_renyi(24, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let path =
            std::env::temp_dir().join(format!("nhood_mapped_rt_{}.nhplan", std::process::id()));
        save_plan_checked(&plan, &path, Some((7, 9))).unwrap();

        let mapped = load_plan_mapped(&path).unwrap();
        assert_eq!(mapped.n(), plan.n());
        assert_eq!(mapped.algorithm(), plan.algorithm);
        assert_eq!(mapped.selection(), plan.selection);
        assert_eq!(mapped.graph_digest(), Some((7, 9)));
        // per-rank lazy decode matches the materialized plan exactly
        for r in 0..plan.n() {
            assert_eq!(mapped.rank(r).unwrap(), plan.per_rank[r], "rank {r}");
        }
        assert!(mapped.rank(plan.n()).is_err(), "out-of-range rank must fail typed");
        let full = mapped.to_plan().unwrap();
        assert_eq!(full.per_rank, plan.per_rank);
        assert_eq!(full.algorithm, plan.algorithm);
        assert_eq!(full.selection, plan.selection);
        full.validate(&g).unwrap();

        // a digest-less save maps too, just without a digest
        save_plan_checked(&plan, &path, None).unwrap();
        assert_eq!(load_plan_mapped(&path).unwrap().graph_digest(), None);

        // bare legacy files are not mappable (BadMagic, not Corrupt:
        // the caller falls back to the decode path, nothing is deleted)
        save_plan(&plan, &path).unwrap();
        assert!(matches!(load_plan_mapped(&path), Err(PlanIoError::BadMagic)));

        // v1-footer files (hand-built: body ‖ gd ‖ ck ‖ v1 magic) are
        // likewise unmappable but still load verified via the checked
        // reader — the two footers interoperate
        let mut v1 = Vec::new();
        write_plan(&plan, &mut v1).unwrap();
        v1.extend_from_slice(&7u64.to_le_bytes());
        v1.extend_from_slice(&9u64.to_le_bytes());
        let (hi, lo) = content_digest(&v1);
        v1.extend_from_slice(&hi.to_le_bytes());
        v1.extend_from_slice(&lo.to_le_bytes());
        v1.extend_from_slice(FOOTER_MAGIC);
        std::fs::write(&path, &v1).unwrap();
        assert!(matches!(load_plan_mapped(&path), Err(PlanIoError::BadMagic)));
        let back = load_plan_checked(&path).unwrap();
        assert!(back.verified, "v1 footer must still verify");
        assert_eq!(back.graph_digest, Some((7, 9)));
        assert_eq!(back.plan.per_rank, plan.per_rank);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_round_trip() {
        let g = erdos_renyi(16, 0.4, 2);
        let plan = crate::naive::plan_naive(&g);
        let path = std::env::temp_dir().join("nhood_plan_io_test.bin");
        save_plan(&plan, &path).unwrap();
        let back = load_plan(&path).unwrap();
        assert_eq!(back.per_rank, plan.per_rank);
    }
}
