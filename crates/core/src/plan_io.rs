//! Plan persistence: save a built [`CollectivePlan`] to disk and load it
//! back — the "persistent collective" workflow. Pattern creation is the
//! expensive one-time step (Fig. 8); applications that run the same
//! topology repeatedly can pay it once and reload the plan afterwards.
//!
//! The format is a small versioned little-endian binary (no external
//! dependencies): magic `NHPLAN1\0`, algorithm id, rank count, then each
//! rank's phases as length-prefixed send/recv lists.

use crate::pattern::SelectionStats;
use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NHPLAN1\0";

/// Load failure.
#[derive(Debug)]
pub enum PlanIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a plan file, or an unsupported version.
    BadMagic,
    /// Structurally invalid content (truncated, absurd counts).
    Corrupt(String),
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Io(e) => write!(f, "I/O error: {e}"),
            PlanIoError::BadMagic => write!(f, "not an nhood plan file (bad magic)"),
            PlanIoError::Corrupt(m) => write!(f, "corrupt plan file: {m}"),
        }
    }
}

impl std::error::Error for PlanIoError {}

impl From<io::Error> for PlanIoError {
    fn from(e: io::Error) -> Self {
        PlanIoError::Io(e)
    }
}

fn w64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Guard against absurd scalar values from corrupt files.
fn checked_len(v: u64, what: &str) -> Result<usize, PlanIoError> {
    const LIMIT: u64 = 1 << 32;
    if v > LIMIT {
        return Err(PlanIoError::Corrupt(format!("{what} count {v} exceeds limit")));
    }
    Ok(v as usize)
}

/// Bounded decode cursor over the whole file. Every *count* field is
/// validated against the bytes actually remaining in the input before
/// anything is allocated or looped over — a flipped length bit can
/// therefore neither over-allocate (the old decoder accepted any count
/// up to 2³² after a bare overflow check) nor send the decoder spinning
/// past the end of the file.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u64(&mut self, what: &str) -> Result<u64, PlanIoError> {
        if self.remaining() < 8 {
            return Err(PlanIoError::Corrupt(format!("truncated reading {what}")));
        }
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        Ok(v)
    }

    /// Reads a count of records that each occupy at least
    /// `min_elem_bytes` of input, and rejects it unless that many
    /// records can still fit in the remaining file.
    fn count(&mut self, min_elem_bytes: u64, what: &str) -> Result<usize, PlanIoError> {
        let v = self.u64(what)?;
        let rem = self.remaining() as u64;
        match v.checked_mul(min_elem_bytes) {
            Some(need) if need <= rem => Ok(v as usize),
            _ => Err(PlanIoError::Corrupt(format!(
                "{what} count {v} cannot fit in {rem} remaining bytes"
            ))),
        }
    }
}

fn write_msg(w: &mut impl Write, m: &PlannedMsg) -> io::Result<()> {
    w64(w, m.peer as u64)?;
    w64(w, m.tag)?;
    w64(w, m.blocks.len() as u64)?;
    for &b in &m.blocks {
        w64(w, b as u64)?;
    }
    Ok(())
}

fn read_msg(c: &mut Cursor<'_>, n: usize) -> Result<PlannedMsg, PlanIoError> {
    let peer = checked_len(c.u64("peer")?, "peer")?;
    if peer >= n {
        return Err(PlanIoError::Corrupt(format!("peer {peer} out of {n} ranks")));
    }
    let tag = c.u64("tag")?;
    let len = c.count(8, "blocks")?;
    let mut blocks = Vec::with_capacity(len);
    for _ in 0..len {
        let b = checked_len(c.u64("block")?, "block")?;
        if b >= n {
            return Err(PlanIoError::Corrupt(format!("block {b} out of {n} ranks")));
        }
        blocks.push(b);
    }
    Ok(PlannedMsg { peer, blocks, tag })
}

fn algorithm_id(a: Algorithm) -> (u64, u64) {
    match a {
        Algorithm::Naive => (0, 0),
        Algorithm::CommonNeighbor { k } => (1, k as u64),
        Algorithm::DistanceHalving => (2, 0),
        Algorithm::HierarchicalLeader { leaders_per_node } => (3, leaders_per_node as u64),
    }
}

fn algorithm_from(id: u64, param: u64) -> Result<Algorithm, PlanIoError> {
    Ok(match id {
        0 => Algorithm::Naive,
        1 => Algorithm::CommonNeighbor { k: param as usize },
        2 => Algorithm::DistanceHalving,
        3 => Algorithm::HierarchicalLeader { leaders_per_node: param as usize },
        other => return Err(PlanIoError::Corrupt(format!("unknown algorithm id {other}"))),
    })
}

/// Serializes a plan.
pub fn write_plan(plan: &CollectivePlan, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let (id, param) = algorithm_id(plan.algorithm);
    w64(&mut w, id)?;
    w64(&mut w, param)?;
    match plan.selection {
        None => w64(&mut w, 0)?,
        Some(s) => {
            w64(&mut w, 1)?;
            for v in [
                s.req,
                s.accept,
                s.drop,
                s.exit,
                s.notifications,
                s.descriptors,
                s.agent_searches,
                s.agents_found,
            ] {
                w64(&mut w, v as u64)?;
            }
        }
    }
    w64(&mut w, plan.n() as u64)?;
    for prog in &plan.per_rank {
        w64(&mut w, prog.len() as u64)?;
        for phase in prog {
            w64(&mut w, phase.copy_blocks as u64)?;
            w64(&mut w, phase.sends.len() as u64)?;
            for m in &phase.sends {
                write_msg(&mut w, m)?;
            }
            w64(&mut w, phase.recvs.len() as u64)?;
            for m in &phase.recvs {
                write_msg(&mut w, m)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a plan. The whole stream is read up front and decoded
/// through a bounded cursor, so corrupt counts are rejected against
/// the real file size instead of being trusted up to 2³² (see
/// `docs/PLAN_CACHE.md`).
pub fn read_plan(mut r: impl Read) -> Result<CollectivePlan, PlanIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(PlanIoError::BadMagic);
    }
    let mut c = Cursor { buf: &buf, pos: MAGIC.len() };
    let algorithm = algorithm_from(c.u64("algorithm id")?, c.u64("algorithm param")?)?;
    let selection = match c.u64("selection flag")? {
        0 => None,
        1 => {
            let mut v = [0usize; 8];
            for slot in &mut v {
                *slot = checked_len(c.u64("stat")?, "stat")?;
            }
            Some(SelectionStats {
                req: v[0],
                accept: v[1],
                drop: v[2],
                exit: v[3],
                notifications: v[4],
                descriptors: v[5],
                agent_searches: v[6],
                agents_found: v[7],
            })
        }
        other => return Err(PlanIoError::Corrupt(format!("bad selection flag {other}"))),
    };
    // every rank contributes at least a phase count (8 bytes); every
    // phase at least copy + send count + recv count (24); every message
    // at least peer + tag + block count (24); every block 8
    let n = c.count(8, "rank")?;
    let mut per_rank = Vec::with_capacity(n);
    for _ in 0..n {
        let phases = c.count(24, "phase")?;
        let mut prog = Vec::with_capacity(phases);
        for _ in 0..phases {
            let copy_blocks = checked_len(c.u64("copy")?, "copy")?;
            let ns = c.count(24, "send")?;
            let mut sends = Vec::with_capacity(ns);
            for _ in 0..ns {
                sends.push(read_msg(&mut c, n)?);
            }
            let nr = c.count(24, "recv")?;
            let mut recvs = Vec::with_capacity(nr);
            for _ in 0..nr {
                recvs.push(read_msg(&mut c, n)?);
            }
            prog.push(PlanPhase { copy_blocks, sends, recvs });
        }
        per_rank.push(prog);
    }
    Ok(CollectivePlan { algorithm, per_rank, selection })
}

/// Convenience: save to a path.
pub fn save_plan(plan: &CollectivePlan, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_plan(plan, io::BufWriter::new(f))
}

/// Convenience: load from a path.
pub fn load_plan(path: &std::path::Path) -> Result<CollectivePlan, PlanIoError> {
    let f = std::fs::File::open(path)?;
    read_plan(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::lower::lower;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn round_trip(plan: &CollectivePlan) -> CollectivePlan {
        let mut buf = Vec::new();
        write_plan(plan, &mut buf).unwrap();
        read_plan(&buf[..]).unwrap()
    }

    #[test]
    fn all_algorithms_round_trip() {
        let g = erdos_renyi(24, 0.4, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let comm = crate::DistGraphComm::create_adjacent(g.clone(), layout).unwrap();
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::DistanceHalving,
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
        ] {
            let plan = comm.plan(algo).unwrap();
            let back = round_trip(&plan);
            assert_eq!(back.algorithm, plan.algorithm);
            assert_eq!(back.per_rank, plan.per_rank, "{algo}");
            assert_eq!(back.selection, plan.selection);
            back.validate(&g).unwrap();
        }
    }

    #[test]
    fn loaded_plan_executes_identically() {
        use crate::exec::virtual_exec::test_payloads;
        use crate::exec::{Executor, Virtual};
        let g = erdos_renyi(32, 0.3, 9);
        let layout = ClusterLayout::new(4, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let back = round_trip(&plan);
        let payloads = test_payloads(32, 16, 3);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &payloads).unwrap(),
            Virtual.run_simple(&back, &g, &payloads).unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_plan(&b"not a plan"[..]),
            Err(PlanIoError::BadMagic) | Err(PlanIoError::Io(_))
        ));
        // right magic, truncated body
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&2u64.to_le_bytes());
        assert!(read_plan(&buf[..]).is_err());
        // absurd rank count
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes()); // naive
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // no selection
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // ranks
        assert!(matches!(read_plan(&buf[..]), Err(PlanIoError::Corrupt(_))));
    }

    #[test]
    fn every_truncation_errors_and_bit_flips_never_panic() {
        use nhood_topology::rng::DetRng;
        let g = erdos_renyi(24, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        assert!(read_plan(&buf[..]).is_ok(), "pristine file must load");

        // The decoder consumes exactly the encoded bytes, so every
        // strict prefix must come back as a typed error — never a panic,
        // a hang, or a silently shorter plan.
        let mut rng = DetRng::seed_from_u64(0x71a6);
        let mut cuts: Vec<usize> = (0..64).collect();
        cuts.extend((0..200).map(|_| rng.gen_below(buf.len())));
        cuts.extend(buf.len().saturating_sub(64)..buf.len());
        for k in cuts {
            assert!(read_plan(&buf[..k]).is_err(), "prefix of {k} bytes must not parse");
        }

        // Single-bit flips anywhere in the file must never panic or
        // over-allocate; they either fail typed or still decode (a flip
        // in a payload-irrelevant field like a stat or a tag is legal).
        for _ in 0..500 {
            let byte = rng.gen_below(buf.len());
            let bit = rng.gen_below(8) as u32;
            let mut evil = buf.clone();
            evil[byte] ^= 1 << bit;
            if let Ok(p) = read_plan(&evil[..]) {
                // decoded plans are structurally sane even when wrong
                assert!(p.n() <= evil.len());
            }
        }
    }

    #[test]
    fn length_fields_are_bounded_by_remaining_file_size() {
        let g = erdos_renyi(8, 0.5, 3);
        let plan = crate::naive::plan_naive(&g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        // Blow up the rank count at offset 32 (magic + algo + selection
        // flag): far below the old 2^32 limit, far above what the file
        // can hold. The bounded cursor must reject it up front.
        for absurd in [1u64 << 20, 1 << 31] {
            let mut hacked = buf.clone();
            hacked[32..40].copy_from_slice(&absurd.to_le_bytes());
            assert!(
                matches!(read_plan(&hacked[..]), Err(PlanIoError::Corrupt(_))),
                "rank count {absurd} must be rejected against the file size"
            );
        }
    }

    #[test]
    fn out_of_range_peer_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        let plan = crate::naive::plan_naive(&g);
        let mut buf = Vec::new();
        write_plan(&plan, &mut buf).unwrap();
        // plan for 8 ranks claims to be for 4: peers out of range
        let mut hacked = buf.clone();
        // ranks field sits after magic(8) + algo(16) + selection flag(8)
        hacked[32..40].copy_from_slice(&4u64.to_le_bytes());
        let err = read_plan(&hacked[..]);
        assert!(err.is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = erdos_renyi(16, 0.4, 2);
        let plan = crate::naive::plan_naive(&g);
        let path = std::env::temp_dir().join("nhood_plan_io_test.bin");
        save_plan(&plan, &path).unwrap();
        let back = load_plan(&path).unwrap();
        assert_eq!(back.per_rank, plan.per_rank);
    }
}
