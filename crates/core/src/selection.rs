//! Event-driven emulation of the joint agent/origin selection protocol
//! (Algorithms 2 and 3 of the paper).
//!
//! One **round** is half of one halving step: every rank of one half (the
//! *proposers*) runs `find_agent` while every rank of the opposite half
//! (the *acceptors*) runs `find_origin`. Ranks negotiate with
//! REQ / ACCEPT / DROP / EXIT signals:
//!
//! * a proposer REQs its best-scoring candidate and waits;
//! * an acceptor ACCEPTs the REQ of its best-scoring candidate (at most
//!   one origin per acceptor per round) and proactively DROPs everyone
//!   else;
//! * a DROPped proposer advances to its next-best candidate;
//! * an accepted proposer EXITs its remaining candidates so they stop
//!   waiting for it.
//!
//! The emulation drives per-rank state machines from a FIFO signal queue
//! — the same protocol the paper runs over MPI, with a deterministic
//! arrival order (see DESIGN.md §2 for the substitution argument). Every
//! signal is counted, which feeds the Fig. 8 overhead analysis.
//!
//! The *score* of a pair is the number of outgoing neighbors the two
//! ranks share **inside the acceptor-side half** (the paper's matrix-A
//! query); a pair is mutually a candidate iff its score is ≥ 1, which
//! makes the candidate relation symmetric. Ties are broken toward the
//! lower rank, mirroring a rank-ordered candidate scan.

use crate::pattern::SelectionStats;
use nhood_topology::Rank;
use std::collections::{HashMap, VecDeque};

/// Outcome of one selection round.
#[derive(Clone, Debug, Default)]
pub struct RoundResult {
    /// proposer → acceptor matches.
    pub matched: HashMap<Rank, Rank>,
    /// Signal tallies for this round (`agent_searches` counts every
    /// proposer, `agents_found` every matched proposer).
    pub stats: SelectionStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sig {
    Req,
    Accept,
    Drop,
    Exit,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CandState {
    Active,
    Waiting,
    Inactive,
}

fn push_signal(
    queue: &mut VecDeque<(Rank, Rank, Sig)>,
    log: &mut Option<&mut Vec<Event>>,
    from: Rank,
    to: Rank,
    sig: Sig,
) {
    if let Some(l) = log.as_deref_mut() {
        l.push(Event::Sent { from, to });
    }
    queue.push_back((from, to, sig));
}

struct Proposer {
    rank: Rank,
    /// candidates sorted best-first: (score desc, rank asc)
    candidates: Vec<Rank>,
    state: HashMap<Rank, CandState>,
    /// index into `candidates` of the outstanding REQ target
    cursor: usize,
    selected: Option<Rank>,
    failed: bool,
}

struct Acceptor {
    rank: Rank,
    candidates: Vec<Rank>,
    state: HashMap<Rank, CandState>,
    selected: Option<Rank>,
}

impl Acceptor {
    /// Best-scoring non-INACTIVE candidate, if any. `candidates` is
    /// sorted best-first so the first live entry wins.
    fn best_live(&self) -> Option<Rank> {
        self.candidates.iter().copied().find(|c| self.state[c] != CandState::Inactive)
    }
}

/// One observable protocol event, in global causal order: a signal is
/// `Sent` when its sender emits it and `Received` when its receiver
/// processes it. The per-rank subsequences of this log are exactly the
/// blocking send/recv programs the ranks executed, which lets the
/// `nhood-bench` Fig. 8 harness replay a negotiation through the network
/// simulator and *measure* the pattern-creation time instead of
/// estimating it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `from` emitted a signal addressed to `to`.
    Sent {
        /// Sender.
        from: Rank,
        /// Addressee.
        to: Rank,
    },
    /// `by` processed the signal that `from` had sent it.
    Received {
        /// Processing rank.
        by: Rank,
        /// Original sender.
        from: Rank,
    },
}

/// Runs one selection round.
///
/// `score(p, a)` must return the shared-outgoing-neighbor count of
/// proposer `p` and acceptor `a` within the acceptor-side half; pairs
/// with score 0 are not candidates. The function is called once per
/// (proposer, acceptor) pair.
pub fn run_round(
    proposers: &[Rank],
    acceptors: &[Rank],
    score: impl FnMut(Rank, Rank) -> usize,
) -> RoundResult {
    run_round_impl(proposers, acceptors, score, None)
}

/// [`run_round`] that additionally appends every signal's send and
/// receive to `log`, in causal order.
pub fn run_round_logged(
    proposers: &[Rank],
    acceptors: &[Rank],
    score: impl FnMut(Rank, Rank) -> usize,
    log: &mut Vec<Event>,
) -> RoundResult {
    run_round_impl(proposers, acceptors, score, Some(log))
}

fn run_round_impl(
    proposers: &[Rank],
    acceptors: &[Rank],
    mut score: impl FnMut(Rank, Rank) -> usize,
    mut log: Option<&mut Vec<Event>>,
) -> RoundResult {
    let mut stats = SelectionStats { agent_searches: proposers.len(), ..Default::default() };

    // Build candidate lists, best-first.
    let mut props: HashMap<Rank, Proposer> = HashMap::with_capacity(proposers.len());
    let mut accs: HashMap<Rank, Acceptor> = HashMap::with_capacity(acceptors.len());
    let mut acc_cands: HashMap<Rank, Vec<(usize, Rank)>> =
        acceptors.iter().map(|&a| (a, Vec::new())).collect();
    for &p in proposers {
        let mut cands: Vec<(usize, Rank)> = Vec::new();
        for &a in acceptors {
            let s = score(p, a);
            if s > 0 {
                cands.push((s, a));
                acc_cands.get_mut(&a).expect("acceptor exists").push((s, p));
            }
        }
        cands.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        let candidates: Vec<Rank> = cands.iter().map(|&(_, r)| r).collect();
        let state = candidates.iter().map(|&c| (c, CandState::Active)).collect();
        props.insert(
            p,
            Proposer { rank: p, candidates, state, cursor: 0, selected: None, failed: false },
        );
    }
    for &a in acceptors {
        let mut cands = acc_cands.remove(&a).expect("populated above");
        cands.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        let candidates: Vec<Rank> = cands.iter().map(|&(_, r)| r).collect();
        let state = candidates.iter().map(|&c| (c, CandState::Active)).collect();
        accs.insert(a, Acceptor { rank: a, candidates, state, selected: None });
    }

    let mut queue: VecDeque<(Rank, Rank, Sig)> = VecDeque::new();

    // Bootstrap: every proposer with candidates REQs its best one.
    for &p in proposers {
        let pr = props.get_mut(&p).expect("proposer exists");
        if let Some(&best) = pr.candidates.first() {
            push_signal(&mut queue, &mut log, p, best, Sig::Req);
            stats.req += 1;
        } else {
            pr.failed = true;
        }
    }

    // Acceptor `a` selects proposer `p`: ACCEPT p, proactively DROP every
    // other live candidate.
    fn accept(
        a: &mut Acceptor,
        p: Rank,
        queue: &mut VecDeque<(Rank, Rank, Sig)>,
        log: &mut Option<&mut Vec<Event>>,
        stats: &mut SelectionStats,
    ) {
        a.selected = Some(p);
        push_signal(queue, log, a.rank, p, Sig::Accept);
        stats.accept += 1;
        for &c in &a.candidates {
            if c != p && a.state[&c] != CandState::Inactive {
                push_signal(queue, log, a.rank, c, Sig::Drop);
                stats.drop += 1;
                a.state.insert(c, CandState::Inactive);
            }
        }
        a.state.insert(p, CandState::Inactive);
    }

    while let Some((from, to, sig)) = queue.pop_front() {
        if let Some(l) = log.as_deref_mut() {
            l.push(Event::Received { by: to, from });
        }
        match sig {
            Sig::Req => {
                let a = accs.get_mut(&to).expect("REQ goes to an acceptor");
                if a.selected.is_some() {
                    // straggler: already matched this round
                    push_signal(&mut queue, &mut log, to, from, Sig::Drop);
                    stats.drop += 1;
                    a.state.insert(from, CandState::Inactive);
                    continue;
                }
                debug_assert_eq!(a.state[&from], CandState::Active, "duplicate REQ");
                a.state.insert(from, CandState::Waiting);
                if a.best_live() == Some(from) {
                    accept(a, from, &mut queue, &mut log, &mut stats);
                }
            }
            Sig::Accept => {
                let p = props.get_mut(&to).expect("ACCEPT goes to a proposer");
                debug_assert!(p.selected.is_none(), "double accept");
                p.selected = Some(from);
                stats.agents_found += 1;
                // EXIT all other candidates still considered live by us.
                for i in 0..p.candidates.len() {
                    let c = p.candidates[i];
                    if c != from && p.state[&c] != CandState::Inactive {
                        push_signal(&mut queue, &mut log, p.rank, c, Sig::Exit);
                        stats.exit += 1;
                        p.state.insert(c, CandState::Inactive);
                    }
                }
                p.state.insert(from, CandState::Inactive);
            }
            Sig::Drop => {
                let p = props.get_mut(&to).expect("DROP goes to a proposer");
                if p.state.get(&from) == Some(&CandState::Inactive) && p.selected.is_some() {
                    continue; // late chatter after we matched
                }
                let was_target = p
                    .candidates
                    .get(p.cursor)
                    .is_some_and(|&c| c == from && p.selected.is_none() && !p.failed);
                let already_inactive = p.state.get(&from) == Some(&CandState::Inactive);
                p.state.insert(from, CandState::Inactive);
                if p.selected.is_some() || p.failed || already_inactive {
                    continue;
                }
                if was_target {
                    // advance to the next live candidate
                    p.cursor += 1;
                    while p.cursor < p.candidates.len()
                        && p.state[&p.candidates[p.cursor]] == CandState::Inactive
                    {
                        p.cursor += 1;
                    }
                    if p.cursor < p.candidates.len() {
                        let next = p.candidates[p.cursor];
                        push_signal(&mut queue, &mut log, p.rank, next, Sig::Req);
                        stats.req += 1;
                    } else {
                        p.failed = true;
                    }
                } else {
                    // unsolicited DROP from an acceptor we never REQ'd:
                    // tell it to stop considering us (Alg. 2 line 34)
                    push_signal(&mut queue, &mut log, p.rank, from, Sig::Exit);
                    stats.exit += 1;
                }
            }
            Sig::Exit => {
                let a = accs.get_mut(&to).expect("EXIT goes to an acceptor");
                let prev = a.state.insert(from, CandState::Inactive);
                if a.selected.is_some() {
                    // Alg. 3 lines 41-48: a matched acceptor answers a
                    // still-ACTIVE candidate's EXIT with a final DROP.
                    if prev == Some(CandState::Active) {
                        push_signal(&mut queue, &mut log, a.rank, from, Sig::Drop);
                        stats.drop += 1;
                    }
                    continue;
                }
                if let Some(best) = a.best_live() {
                    if a.state[&best] == CandState::Waiting {
                        accept(a, best, &mut queue, &mut log, &mut stats);
                    }
                }
            }
        }
    }

    let matched: HashMap<Rank, Rank> =
        props.values().filter_map(|p| p.selected.map(|a| (p.rank, a))).collect();

    // Protocol-liveness sanity: an unmatched acceptor must not have any
    // proposer still waiting on it (it would have accepted its best
    // waiter when the queue drained).
    debug_assert!(accs.values().all(|a| {
        a.selected.is_some() || a.candidates.iter().all(|c| a.state[c] != CandState::Waiting)
    }));

    RoundResult { matched, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// score lookup from an explicit table
    fn table_score(t: &[(Rank, Rank, usize)]) -> impl FnMut(Rank, Rank) -> usize + '_ {
        move |p, a| t.iter().find(|&&(tp, ta, _)| tp == p && ta == a).map_or(0, |&(_, _, s)| s)
    }

    #[test]
    fn empty_round() {
        let r = run_round(&[], &[], |_, _| 0);
        assert!(r.matched.is_empty());
        assert_eq!(r.stats.total_signals(), 0);
        assert_eq!(r.stats.agent_searches, 0);
    }

    #[test]
    fn no_candidates_means_no_signals() {
        let r = run_round(&[0, 1], &[2, 3], |_, _| 0);
        assert!(r.matched.is_empty());
        assert_eq!(r.stats.total_signals(), 0);
        assert_eq!(r.stats.agent_searches, 2);
        assert_eq!(r.stats.agents_found, 0);
        assert_eq!(r.stats.success_rate(), 0.0);
    }

    #[test]
    fn single_pair_matches_with_minimal_chatter() {
        let t = [(0, 1, 3)];
        let r = run_round(&[0], &[1], table_score(&t));
        assert_eq!(r.matched[&0], 1);
        assert_eq!(r.stats.req, 1);
        assert_eq!(r.stats.accept, 1);
        assert_eq!(r.stats.drop, 0);
        assert_eq!(r.stats.exit, 0);
        assert_eq!(r.stats.agents_found, 1);
    }

    #[test]
    fn acceptor_takes_best_proposer() {
        // both proposers want acceptor 9; proposer 1 scores higher
        let t = [(0, 9, 1), (1, 9, 5)];
        let r = run_round(&[0, 1], &[9], table_score(&t));
        assert_eq!(r.matched.get(&1), Some(&9));
        assert_eq!(r.matched.get(&0), None);
        // 0's REQ either arrived first (waits, then dropped) or second
        // (dropped immediately); either way exactly one match
        assert_eq!(r.stats.agents_found, 1);
        assert!(r.stats.drop >= 1);
    }

    #[test]
    fn dropped_proposer_falls_back_to_second_choice() {
        // 0 prefers 9 (score 5) over 8 (score 1); 1 only knows 9 with
        // score 7 and wins it; 0 then settles for 8.
        let t = [(0, 9, 5), (0, 8, 1), (1, 9, 7)];
        let r = run_round(&[0, 1], &[8, 9], table_score(&t));
        assert_eq!(r.matched[&1], 9);
        assert_eq!(r.matched[&0], 8);
        assert!(r.stats.req >= 3, "0 must re-REQ after the drop");
    }

    #[test]
    fn acceptor_waits_for_its_best() {
        // acceptor 9's best is proposer 1, but 1 prefers acceptor 8.
        // 9 must not grab 0's early REQ; it waits until 1 EXITs (after
        // being accepted by 8), then takes 0.
        let t = [(0, 9, 2), (1, 9, 9), (1, 8, 9)];
        // tie on 1's side between 8 and 9 (both score 9) → lower rank 8 wins
        let r = run_round(&[0, 1], &[8, 9], table_score(&t));
        assert_eq!(r.matched[&1], 8);
        assert_eq!(r.matched[&0], 9);
    }

    #[test]
    fn ties_break_toward_lower_rank() {
        let t = [(0, 5, 3), (0, 7, 3)];
        let r = run_round(&[0], &[5, 7], table_score(&t));
        assert_eq!(r.matched[&0], 5);
    }

    #[test]
    fn one_acceptor_many_proposers() {
        // only one acceptor: exactly one proposer can win
        let t = [(0, 9, 1), (1, 9, 2), (2, 9, 3), (3, 9, 4)];
        let r = run_round(&[0, 1, 2, 3], &[9], table_score(&t));
        assert_eq!(r.matched.len(), 1);
        assert_eq!(r.stats.agents_found, 1);
        assert_eq!(r.stats.agent_searches, 4);
        // everyone else exhausted their lists
        assert!((r.stats.success_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_matching_when_preferences_align() {
        // proposer i strongly prefers acceptor 10+i
        let mut t = vec![];
        for i in 0..4usize {
            for j in 0..4usize {
                t.push((i, 10 + j, if i == j { 10 } else { 1 }));
            }
        }
        let r = run_round(&[0, 1, 2, 3], &[10, 11, 12, 13], table_score(&t));
        assert_eq!(r.matched.len(), 4);
        for i in 0..4usize {
            assert_eq!(r.matched[&i], 10 + i);
        }
    }

    #[test]
    fn all_pairs_same_score_still_gives_maximal_matching() {
        // uniform scores: greedy order decides, but matching must be
        // maximal — every proposer matched (4 proposers, 4 acceptors,
        // complete candidate graph)
        let r = run_round(&[0, 1, 2, 3], &[4, 5, 6, 7], |_, _| 1);
        assert_eq!(r.matched.len(), 4);
        let mut acc: Vec<Rank> = r.matched.values().copied().collect();
        acc.sort_unstable();
        acc.dedup();
        assert_eq!(acc.len(), 4, "no acceptor matched twice");
    }

    #[test]
    fn matching_is_one_to_one() {
        // random-ish asymmetric scores
        let score = |p: Rank, a: Rank| (p * 7 + a * 13) % 5;
        let proposers: Vec<Rank> = (0..20).collect();
        let acceptors: Vec<Rank> = (20..40).collect();
        let r = run_round(&proposers, &acceptors, score);
        let mut acc: Vec<Rank> = r.matched.values().copied().collect();
        acc.sort_unstable();
        let len = acc.len();
        acc.dedup();
        assert_eq!(acc.len(), len, "an acceptor accepted twice");
        // matches only between candidate pairs
        for (&p, &a) in &r.matched {
            assert!(score(p, a) > 0, "matched a zero-score pair {p}->{a}");
        }
    }

    #[test]
    fn matching_is_maximal_on_candidate_graph() {
        // After the round, no unmatched proposer shares a candidate edge
        // with an unmatched acceptor (greedy maximality).
        let score = |p: Rank, a: Rank| usize::from((p + a).is_multiple_of(3));
        let proposers: Vec<Rank> = (0..15).collect();
        let acceptors: Vec<Rank> = (15..30).collect();
        let r = run_round(&proposers, &acceptors, score);
        let matched_acceptors: std::collections::HashSet<Rank> =
            r.matched.values().copied().collect();
        for &p in &proposers {
            if r.matched.contains_key(&p) {
                continue;
            }
            for &a in &acceptors {
                if score(p, a) > 0 && !matched_acceptors.contains(&a) {
                    panic!("unmatched pair ({p},{a}) with positive score");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let score = |p: Rank, a: Rank| (p * 31 + a * 17) % 7;
        let proposers: Vec<Rank> = (0..30).collect();
        let acceptors: Vec<Rank> = (30..60).collect();
        let r1 = run_round(&proposers, &acceptors, score);
        let r2 = run_round(&proposers, &acceptors, score);
        assert_eq!(r1.matched, r2.matched);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn signal_counts_are_conservative() {
        // every REQ is eventually answered by exactly one ACCEPT or DROP
        // (modulo the DROP-broadcast and EXIT chatter, counts stay sane)
        let score = |p: Rank, a: Rank| usize::from(p % 3 != a % 3);
        let proposers: Vec<Rank> = (0..12).collect();
        let acceptors: Vec<Rank> = (12..24).collect();
        let r = run_round(&proposers, &acceptors, score);
        assert!(r.stats.accept <= r.stats.req);
        assert_eq!(r.stats.accept, r.stats.agents_found);
        assert_eq!(r.stats.accept, r.matched.len());
    }
}
