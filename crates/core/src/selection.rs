//! Event-driven emulation of the joint agent/origin selection protocol
//! (Algorithms 2 and 3 of the paper).
//!
//! One **round** is half of one halving step: every rank of one half (the
//! *proposers*) runs `find_agent` while every rank of the opposite half
//! (the *acceptors*) runs `find_origin`. Ranks negotiate with
//! REQ / ACCEPT / DROP / EXIT signals:
//!
//! * a proposer REQs its best-scoring candidate and waits;
//! * an acceptor ACCEPTs the REQ of its best-scoring candidate (at most
//!   one origin per acceptor per round) and proactively DROPs everyone
//!   else;
//! * a DROPped proposer advances to its next-best candidate;
//! * an accepted proposer EXITs its remaining candidates so they stop
//!   waiting for it.
//!
//! The emulation drives per-rank state machines from a FIFO signal queue
//! — the same protocol the paper runs over MPI, with a deterministic
//! arrival order (see DESIGN.md §2 for the substitution argument). Every
//! signal is counted, which feeds the Fig. 8 overhead analysis.
//!
//! The *score* of a pair is the number of outgoing neighbors the two
//! ranks share **inside the acceptor-side half** (the paper's matrix-A
//! query); a pair is mutually a candidate iff its score is ≥ 1, which
//! makes the candidate relation symmetric. Ties are broken toward the
//! lower rank, mirroring a rank-ordered candidate scan. Under
//! [`crate::sizes::LoadMetric::Bytes`] the builders refine the ordering
//! lexicographically: shared-neighbor count stays primary, and ties are
//! broken toward the proposer carrying *fewer* block bytes — the
//! pairing that adds the least forwarding load to the accepting agent —
//! before falling back to the rank order. The byte term applies to the
//! proposer on both sides of a pair and never creates or removes
//! candidacy, so the relation stays symmetric and candidate sets match
//! the paper's exactly.
//!
//! Internally a round is split into two stages so the builder can
//! parallelize the expensive one: **scoring** fills a [`RoundCandidates`]
//! CSR (per-proposer and per-acceptor candidate lists, best-first, as
//! flat `offsets`/`targets` arrays over *local* indices), and the
//! **drive** ([`run_matching`]) replays the protocol over dense
//! `Vec<CandState>` matrices — no hash lookups on the hot path. The
//! drive is single-threaded and deterministic, so any partitioning of
//! the scoring work yields bit-identical rounds.

use crate::pattern::SelectionStats;
use nhood_topology::Rank;
use std::collections::{HashMap, VecDeque};

/// Outcome of one selection round.
#[derive(Clone, Debug, Default)]
pub struct RoundResult {
    /// proposer → acceptor matches.
    pub matched: HashMap<Rank, Rank>,
    /// Signal tallies for this round (`agent_searches` counts every
    /// proposer, `agents_found` every matched proposer).
    pub stats: SelectionStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sig {
    Req,
    Accept,
    Drop,
    Exit,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CandState {
    Active,
    Waiting,
    Inactive,
}

/// One observable protocol event, in global causal order: a signal is
/// `Sent` when its sender emits it and `Received` when its receiver
/// processes it. The per-rank subsequences of this log are exactly the
/// blocking send/recv programs the ranks executed, which lets the
/// `nhood-bench` Fig. 8 harness replay a negotiation through the network
/// simulator and *measure* the pattern-creation time instead of
/// estimating it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `from` emitted a signal addressed to `to`.
    Sent {
        /// Sender.
        from: Rank,
        /// Addressee.
        to: Rank,
    },
    /// `by` processed the signal that `from` had sent it.
    Received {
        /// Processing rank.
        by: Rank,
        /// Original sender.
        from: Rank,
    },
}

/// One proposer's scored candidates: `(score, acceptor local index)`,
/// in acceptor-slice order (the order `build` calls `score`).
pub(crate) type ScoreRow = Vec<(usize, u32)>;

/// The frozen input of one protocol round: both sides' candidate lists,
/// best-first, in CSR form over local indices.
#[derive(Clone, Debug, Default)]
pub struct RoundCandidates {
    proposers: Vec<Rank>,
    acceptors: Vec<Rank>,
    /// `prop_off.len() == proposers.len() + 1`; proposer `pi`'s
    /// candidates (acceptor local indices, best-first) are
    /// `prop_cand[prop_off[pi]..prop_off[pi + 1]]`.
    prop_off: Vec<u32>,
    prop_cand: Vec<u32>,
    /// Mirror CSR for the acceptor side (proposer local indices).
    acc_off: Vec<u32>,
    acc_cand: Vec<u32>,
}

impl RoundCandidates {
    /// Scores every (proposer, acceptor) pair — `score` is called once
    /// per pair, proposers outermost, both in slice order — and freezes
    /// the candidate CSR. Pairs with score 0 are not candidates.
    pub fn build(
        proposers: &[Rank],
        acceptors: &[Rank],
        mut score: impl FnMut(Rank, Rank) -> usize,
    ) -> Self {
        let rows: Vec<ScoreRow> =
            proposers.iter().map(|&p| Self::score_row(p, acceptors, &mut score)).collect();
        Self::from_rows(proposers.to_vec(), acceptors.to_vec(), rows)
    }

    /// Scores one proposer against every acceptor. Split out so the
    /// builder can farm rows out to a worker pool and reassemble with
    /// [`from_rows`](Self::from_rows).
    pub(crate) fn score_row(
        p: Rank,
        acceptors: &[Rank],
        mut score: impl FnMut(Rank, Rank) -> usize,
    ) -> ScoreRow {
        let mut row = ScoreRow::new();
        for (ai, &a) in acceptors.iter().enumerate() {
            let s = score(p, a);
            if s > 0 {
                row.push((s, ai as u32));
            }
        }
        row
    }

    /// Assembles the CSR from per-proposer score rows (one per proposer,
    /// in proposer-slice order). Sorting is (score desc, rank asc) on
    /// both sides — the comparator every matchmaking path shares.
    pub(crate) fn from_rows(
        proposers: Vec<Rank>,
        acceptors: Vec<Rank>,
        rows: Vec<ScoreRow>,
    ) -> Self {
        debug_assert_eq!(rows.len(), proposers.len());
        let mut acc_rows: Vec<Vec<(usize, u32)>> = vec![Vec::new(); acceptors.len()];
        let mut prop_off: Vec<u32> = Vec::with_capacity(proposers.len() + 1);
        prop_off.push(0);
        let mut prop_cand: Vec<u32> = Vec::new();
        for (pi, mut row) in rows.into_iter().enumerate() {
            for &(s, ai) in &row {
                acc_rows[ai as usize].push((s, pi as u32));
            }
            row.sort_unstable_by(|x, y| {
                y.0.cmp(&x.0).then(acceptors[x.1 as usize].cmp(&acceptors[y.1 as usize]))
            });
            prop_cand.extend(row.iter().map(|&(_, ai)| ai));
            prop_off.push(prop_cand.len() as u32);
        }
        let mut acc_off: Vec<u32> = Vec::with_capacity(acceptors.len() + 1);
        acc_off.push(0);
        let mut acc_cand: Vec<u32> = Vec::new();
        for mut row in acc_rows {
            row.sort_unstable_by(|x, y| {
                y.0.cmp(&x.0).then(proposers[x.1 as usize].cmp(&proposers[y.1 as usize]))
            });
            acc_cand.extend(row.iter().map(|&(_, pi)| pi));
            acc_off.push(acc_cand.len() as u32);
        }
        Self { proposers, acceptors, prop_off, prop_cand, acc_off, acc_cand }
    }

    fn prop_cands(&self, pi: usize) -> &[u32] {
        &self.prop_cand[self.prop_off[pi] as usize..self.prop_off[pi + 1] as usize]
    }

    fn acc_cands(&self, ai: usize) -> &[u32] {
        &self.acc_cand[self.acc_off[ai] as usize..self.acc_off[ai + 1] as usize]
    }

    /// Cross-links between the two CSR views of the candidate graph:
    /// `p2a[j]` is the acceptor-side edge index of proposer-side edge
    /// `j`, and `a2p` the mirror. The drive keeps per-*edge* state, so
    /// memory is O(candidate edges) instead of the former dense
    /// `np × na` matrices — the difference between megabytes and
    /// gigabytes in the first halving step at 100k ranks.
    fn edge_links(&self) -> (Vec<u32>, Vec<u32>) {
        let mut by_pair: HashMap<(u32, u32), u32> = HashMap::with_capacity(self.acc_cand.len());
        for ai in 0..self.acceptors.len() {
            let base = self.acc_off[ai] as usize;
            for (off, &pi) in self.acc_cands(ai).iter().enumerate() {
                by_pair.insert((pi, ai as u32), (base + off) as u32);
            }
        }
        let mut p2a = vec![0u32; self.prop_cand.len()];
        let mut a2p = vec![0u32; self.acc_cand.len()];
        for pi in 0..self.proposers.len() {
            let base = self.prop_off[pi] as usize;
            for (off, &ai) in self.prop_cands(pi).iter().enumerate() {
                let j = (base + off) as u32;
                let k = by_pair[&(pi as u32, ai)];
                p2a[j as usize] = k;
                a2p[k as usize] = j;
            }
        }
        (p2a, a2p)
    }
}

/// Runs one selection round.
///
/// `score(p, a)` must return the shared-outgoing-neighbor count of
/// proposer `p` and acceptor `a` within the acceptor-side half; pairs
/// with score 0 are not candidates. The function is called once per
/// (proposer, acceptor) pair.
pub fn run_round(
    proposers: &[Rank],
    acceptors: &[Rank],
    score: impl FnMut(Rank, Rank) -> usize,
) -> RoundResult {
    run_matching(&RoundCandidates::build(proposers, acceptors, score))
}

/// [`run_round`] that additionally appends every signal's send and
/// receive to `log`, in causal order.
pub fn run_round_logged(
    proposers: &[Rank],
    acceptors: &[Rank],
    score: impl FnMut(Rank, Rank) -> usize,
    log: &mut Vec<Event>,
) -> RoundResult {
    run_matching_impl(&RoundCandidates::build(proposers, acceptors, score), Some(log))
}

/// Drives the protocol over pre-scored candidates (see
/// [`RoundCandidates`]). Deterministic: same candidates in, same
/// matching, signals, and stats out.
pub fn run_matching(rc: &RoundCandidates) -> RoundResult {
    run_matching_impl(rc, None)
}

/// [`run_matching`] that additionally appends every signal's send and
/// receive to `log`, in causal order.
pub fn run_matching_logged(rc: &RoundCandidates, log: &mut Vec<Event>) -> RoundResult {
    run_matching_impl(rc, Some(log))
}

/// A queued signal: sender/receiver local indices plus the candidate
/// edge it travels (both CSR views). Direction is implied by the signal
/// kind (REQ/EXIT travel proposer→acceptor, ACCEPT/DROP
/// acceptor→proposer); carrying both edge indices keeps every state
/// touch O(1) on the sparse per-edge state.
#[derive(Clone, Copy)]
struct Signal {
    from: u32,
    to: u32,
    p_edge: u32,
    a_edge: u32,
    sig: Sig,
}

#[allow(clippy::too_many_arguments)]
fn push_signal(
    queue: &mut VecDeque<Signal>,
    log: &mut Option<&mut Vec<Event>>,
    from_rank: Rank,
    to_rank: Rank,
    from: u32,
    to: u32,
    p_edge: u32,
    a_edge: u32,
    sig: Sig,
) {
    if let Some(l) = log.as_deref_mut() {
        l.push(Event::Sent { from: from_rank, to: to_rank });
    }
    queue.push_back(Signal { from, to, p_edge, a_edge, sig });
}

/// Acceptor `ai` selects proposer `pi` (reached via acceptor-side edge
/// `k`): ACCEPT pi, proactively DROP every other live candidate (in
/// candidate order).
#[allow(clippy::too_many_arguments)]
fn accept(
    rc: &RoundCandidates,
    ai: usize,
    pi: u32,
    k: u32,
    a2p: &[u32],
    astate: &mut [CandState],
    a_sel: &mut [Option<u32>],
    queue: &mut VecDeque<Signal>,
    log: &mut Option<&mut Vec<Event>>,
    stats: &mut SelectionStats,
) {
    let a_rank = rc.acceptors[ai];
    a_sel[ai] = Some(pi);
    push_signal(
        queue,
        log,
        a_rank,
        rc.proposers[pi as usize],
        ai as u32,
        pi,
        a2p[k as usize],
        k,
        Sig::Accept,
    );
    stats.accept += 1;
    let base = rc.acc_off[ai] as usize;
    for (off, &c) in rc.acc_cands(ai).iter().enumerate() {
        let ke = (base + off) as u32;
        if c != pi && astate[ke as usize] != CandState::Inactive {
            push_signal(
                queue,
                log,
                a_rank,
                rc.proposers[c as usize],
                ai as u32,
                c,
                a2p[ke as usize],
                ke,
                Sig::Drop,
            );
            stats.drop += 1;
            astate[ke as usize] = CandState::Inactive;
        }
    }
    astate[k as usize] = CandState::Inactive;
}

fn run_matching_impl(rc: &RoundCandidates, mut log: Option<&mut Vec<Event>>) -> RoundResult {
    let np = rc.proposers.len();
    let na = rc.acceptors.len();
    let mut stats = SelectionStats { agent_searches: np, ..Default::default() };

    // Per-candidate-edge state, one cell per CSR entry on each side.
    // Signals only travel candidate edges and the two CSR views are
    // exact mirrors by construction (`from_rows` derives both from the
    // same score rows), so the views stay in agreement just as the
    // former dense matrices did — at O(candidate edges) memory.
    let (p2a, a2p) = rc.edge_links();
    let mut pstate: Vec<CandState> = vec![CandState::Active; rc.prop_cand.len()];
    let mut astate: Vec<CandState> = vec![CandState::Active; rc.acc_cand.len()];
    // Per-proposer: index into its candidate list of the outstanding REQ.
    let mut cursor: Vec<usize> = vec![0; np];
    let mut p_sel: Vec<Option<u32>> = vec![None; np];
    let mut p_failed: Vec<bool> = vec![false; np];
    let mut a_sel: Vec<Option<u32>> = vec![None; na];

    // Best-scoring non-INACTIVE candidate of acceptor `ai`, if any, as
    // (proposer local index, acceptor-side edge). Candidates are sorted
    // best-first, so the first live entry wins.
    let best_live = |ai: usize, astate: &[CandState]| -> Option<(u32, u32)> {
        let base = rc.acc_off[ai] as usize;
        rc.acc_cands(ai)
            .iter()
            .enumerate()
            .map(|(off, &c)| (c, (base + off) as u32))
            .find(|&(_, ke)| astate[ke as usize] != CandState::Inactive)
    };

    let mut queue: VecDeque<Signal> = VecDeque::new();

    // Bootstrap: every proposer with candidates REQs its best one.
    for (pi, failed) in p_failed.iter_mut().enumerate() {
        if let Some(&best) = rc.prop_cands(pi).first() {
            let j = rc.prop_off[pi];
            push_signal(
                &mut queue,
                &mut log,
                rc.proposers[pi],
                rc.acceptors[best as usize],
                pi as u32,
                best,
                j,
                p2a[j as usize],
                Sig::Req,
            );
            stats.req += 1;
        } else {
            *failed = true;
        }
    }

    while let Some(Signal { from, to, p_edge, a_edge, sig }) = queue.pop_front() {
        match sig {
            Sig::Req => {
                let (pi, ai) = (from as usize, to as usize);
                if let Some(l) = log.as_deref_mut() {
                    l.push(Event::Received { by: rc.acceptors[ai], from: rc.proposers[pi] });
                }
                if a_sel[ai].is_some() {
                    // straggler: already matched this round
                    push_signal(
                        &mut queue,
                        &mut log,
                        rc.acceptors[ai],
                        rc.proposers[pi],
                        to,
                        from,
                        p_edge,
                        a_edge,
                        Sig::Drop,
                    );
                    stats.drop += 1;
                    astate[a_edge as usize] = CandState::Inactive;
                    continue;
                }
                debug_assert_eq!(astate[a_edge as usize], CandState::Active, "duplicate REQ");
                astate[a_edge as usize] = CandState::Waiting;
                if best_live(ai, &astate).map(|(c, _)| c) == Some(from) {
                    accept(
                        rc,
                        ai,
                        from,
                        a_edge,
                        &a2p,
                        &mut astate,
                        &mut a_sel,
                        &mut queue,
                        &mut log,
                        &mut stats,
                    );
                }
            }
            Sig::Accept => {
                let (ai, pi) = (from as usize, to as usize);
                if let Some(l) = log.as_deref_mut() {
                    l.push(Event::Received { by: rc.proposers[pi], from: rc.acceptors[ai] });
                }
                debug_assert!(p_sel[pi].is_none(), "double accept");
                p_sel[pi] = Some(from);
                stats.agents_found += 1;
                // EXIT all other candidates still considered live by us.
                let base = rc.prop_off[pi] as usize;
                for (off, &c) in rc.prop_cands(pi).iter().enumerate() {
                    let je = (base + off) as u32;
                    if c != from && pstate[je as usize] != CandState::Inactive {
                        push_signal(
                            &mut queue,
                            &mut log,
                            rc.proposers[pi],
                            rc.acceptors[c as usize],
                            to,
                            c,
                            je,
                            p2a[je as usize],
                            Sig::Exit,
                        );
                        stats.exit += 1;
                        pstate[je as usize] = CandState::Inactive;
                    }
                }
                pstate[p_edge as usize] = CandState::Inactive;
            }
            Sig::Drop => {
                let (ai, pi) = (from as usize, to as usize);
                if let Some(l) = log.as_deref_mut() {
                    l.push(Event::Received { by: rc.proposers[pi], from: rc.acceptors[ai] });
                }
                if pstate[p_edge as usize] == CandState::Inactive && p_sel[pi].is_some() {
                    continue; // late chatter after we matched
                }
                let cands = rc.prop_cands(pi);
                let was_target = cands
                    .get(cursor[pi])
                    .is_some_and(|&c| c == from && p_sel[pi].is_none() && !p_failed[pi]);
                let already_inactive = pstate[p_edge as usize] == CandState::Inactive;
                pstate[p_edge as usize] = CandState::Inactive;
                if p_sel[pi].is_some() || p_failed[pi] || already_inactive {
                    continue;
                }
                if was_target {
                    // advance to the next live candidate
                    let base = rc.prop_off[pi] as usize;
                    cursor[pi] += 1;
                    while cursor[pi] < cands.len()
                        && pstate[base + cursor[pi]] == CandState::Inactive
                    {
                        cursor[pi] += 1;
                    }
                    if cursor[pi] < cands.len() {
                        let next = cands[cursor[pi]];
                        let j = (base + cursor[pi]) as u32;
                        push_signal(
                            &mut queue,
                            &mut log,
                            rc.proposers[pi],
                            rc.acceptors[next as usize],
                            to,
                            next,
                            j,
                            p2a[j as usize],
                            Sig::Req,
                        );
                        stats.req += 1;
                    } else {
                        p_failed[pi] = true;
                    }
                } else {
                    // unsolicited DROP from an acceptor we never REQ'd:
                    // tell it to stop considering us (Alg. 2 line 34)
                    push_signal(
                        &mut queue,
                        &mut log,
                        rc.proposers[pi],
                        rc.acceptors[ai],
                        to,
                        from,
                        p_edge,
                        a_edge,
                        Sig::Exit,
                    );
                    stats.exit += 1;
                }
            }
            Sig::Exit => {
                let (pi, ai) = (from as usize, to as usize);
                if let Some(l) = log.as_deref_mut() {
                    l.push(Event::Received { by: rc.acceptors[ai], from: rc.proposers[pi] });
                }
                let prev = astate[a_edge as usize];
                astate[a_edge as usize] = CandState::Inactive;
                if a_sel[ai].is_some() {
                    // Alg. 3 lines 41-48: a matched acceptor answers a
                    // still-ACTIVE candidate's EXIT with a final DROP.
                    if prev == CandState::Active {
                        push_signal(
                            &mut queue,
                            &mut log,
                            rc.acceptors[ai],
                            rc.proposers[pi],
                            to,
                            from,
                            p_edge,
                            a_edge,
                            Sig::Drop,
                        );
                        stats.drop += 1;
                    }
                    continue;
                }
                if let Some((best, ke)) = best_live(ai, &astate) {
                    if astate[ke as usize] == CandState::Waiting {
                        accept(
                            rc,
                            ai,
                            best,
                            ke,
                            &a2p,
                            &mut astate,
                            &mut a_sel,
                            &mut queue,
                            &mut log,
                            &mut stats,
                        );
                    }
                }
            }
        }
    }

    let matched: HashMap<Rank, Rank> = p_sel
        .iter()
        .enumerate()
        .filter_map(|(pi, sel)| sel.map(|ai| (rc.proposers[pi], rc.acceptors[ai as usize])))
        .collect();

    // Protocol-liveness sanity: an unmatched acceptor must not have any
    // proposer still waiting on it (it would have accepted its best
    // waiter when the queue drained).
    debug_assert!((0..na).all(|ai| {
        a_sel[ai].is_some()
            || (rc.acc_off[ai]..rc.acc_off[ai + 1])
                .all(|k| astate[k as usize] != CandState::Waiting)
    }));

    RoundResult { matched, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// score lookup from an explicit table
    fn table_score(t: &[(Rank, Rank, usize)]) -> impl FnMut(Rank, Rank) -> usize + '_ {
        move |p, a| t.iter().find(|&&(tp, ta, _)| tp == p && ta == a).map_or(0, |&(_, _, s)| s)
    }

    #[test]
    fn empty_round() {
        let r = run_round(&[], &[], |_, _| 0);
        assert!(r.matched.is_empty());
        assert_eq!(r.stats.total_signals(), 0);
        assert_eq!(r.stats.agent_searches, 0);
    }

    #[test]
    fn no_candidates_means_no_signals() {
        let r = run_round(&[0, 1], &[2, 3], |_, _| 0);
        assert!(r.matched.is_empty());
        assert_eq!(r.stats.total_signals(), 0);
        assert_eq!(r.stats.agent_searches, 2);
        assert_eq!(r.stats.agents_found, 0);
        assert_eq!(r.stats.success_rate(), 0.0);
    }

    #[test]
    fn single_pair_matches_with_minimal_chatter() {
        let t = [(0, 1, 3)];
        let r = run_round(&[0], &[1], table_score(&t));
        assert_eq!(r.matched[&0], 1);
        assert_eq!(r.stats.req, 1);
        assert_eq!(r.stats.accept, 1);
        assert_eq!(r.stats.drop, 0);
        assert_eq!(r.stats.exit, 0);
        assert_eq!(r.stats.agents_found, 1);
    }

    #[test]
    fn acceptor_takes_best_proposer() {
        // both proposers want acceptor 9; proposer 1 scores higher
        let t = [(0, 9, 1), (1, 9, 5)];
        let r = run_round(&[0, 1], &[9], table_score(&t));
        assert_eq!(r.matched.get(&1), Some(&9));
        assert_eq!(r.matched.get(&0), None);
        // 0's REQ either arrived first (waits, then dropped) or second
        // (dropped immediately); either way exactly one match
        assert_eq!(r.stats.agents_found, 1);
        assert!(r.stats.drop >= 1);
    }

    #[test]
    fn dropped_proposer_falls_back_to_second_choice() {
        // 0 prefers 9 (score 5) over 8 (score 1); 1 only knows 9 with
        // score 7 and wins it; 0 then settles for 8.
        let t = [(0, 9, 5), (0, 8, 1), (1, 9, 7)];
        let r = run_round(&[0, 1], &[8, 9], table_score(&t));
        assert_eq!(r.matched[&1], 9);
        assert_eq!(r.matched[&0], 8);
        assert!(r.stats.req >= 3, "0 must re-REQ after the drop");
    }

    #[test]
    fn acceptor_waits_for_its_best() {
        // acceptor 9's best is proposer 1, but 1 prefers acceptor 8.
        // 9 must not grab 0's early REQ; it waits until 1 EXITs (after
        // being accepted by 8), then takes 0.
        let t = [(0, 9, 2), (1, 9, 9), (1, 8, 9)];
        // tie on 1's side between 8 and 9 (both score 9) → lower rank 8 wins
        let r = run_round(&[0, 1], &[8, 9], table_score(&t));
        assert_eq!(r.matched[&1], 8);
        assert_eq!(r.matched[&0], 9);
    }

    #[test]
    fn ties_break_toward_lower_rank() {
        let t = [(0, 5, 3), (0, 7, 3)];
        let r = run_round(&[0], &[5, 7], table_score(&t));
        assert_eq!(r.matched[&0], 5);
    }

    #[test]
    fn ties_break_by_rank_even_when_slices_are_unsorted() {
        // acceptor slice deliberately out of rank order: the comparator
        // must use rank values, not local indices
        let t = [(0, 5, 3), (0, 7, 3)];
        let r = run_round(&[0], &[7, 5], table_score(&t));
        assert_eq!(r.matched[&0], 5);
    }

    #[test]
    fn one_acceptor_many_proposers() {
        // only one acceptor: exactly one proposer can win
        let t = [(0, 9, 1), (1, 9, 2), (2, 9, 3), (3, 9, 4)];
        let r = run_round(&[0, 1, 2, 3], &[9], table_score(&t));
        assert_eq!(r.matched.len(), 1);
        assert_eq!(r.stats.agents_found, 1);
        assert_eq!(r.stats.agent_searches, 4);
        // everyone else exhausted their lists
        assert!((r.stats.success_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_matching_when_preferences_align() {
        // proposer i strongly prefers acceptor 10+i
        let mut t = vec![];
        for i in 0..4usize {
            for j in 0..4usize {
                t.push((i, 10 + j, if i == j { 10 } else { 1 }));
            }
        }
        let r = run_round(&[0, 1, 2, 3], &[10, 11, 12, 13], table_score(&t));
        assert_eq!(r.matched.len(), 4);
        for i in 0..4usize {
            assert_eq!(r.matched[&i], 10 + i);
        }
    }

    #[test]
    fn all_pairs_same_score_still_gives_maximal_matching() {
        // uniform scores: greedy order decides, but matching must be
        // maximal — every proposer matched (4 proposers, 4 acceptors,
        // complete candidate graph)
        let r = run_round(&[0, 1, 2, 3], &[4, 5, 6, 7], |_, _| 1);
        assert_eq!(r.matched.len(), 4);
        let mut acc: Vec<Rank> = r.matched.values().copied().collect();
        acc.sort_unstable();
        acc.dedup();
        assert_eq!(acc.len(), 4, "no acceptor matched twice");
    }

    #[test]
    fn matching_is_one_to_one() {
        // random-ish asymmetric scores
        let score = |p: Rank, a: Rank| (p * 7 + a * 13) % 5;
        let proposers: Vec<Rank> = (0..20).collect();
        let acceptors: Vec<Rank> = (20..40).collect();
        let r = run_round(&proposers, &acceptors, score);
        let mut acc: Vec<Rank> = r.matched.values().copied().collect();
        acc.sort_unstable();
        let len = acc.len();
        acc.dedup();
        assert_eq!(acc.len(), len, "an acceptor accepted twice");
        // matches only between candidate pairs
        for (&p, &a) in &r.matched {
            assert!(score(p, a) > 0, "matched a zero-score pair {p}->{a}");
        }
    }

    #[test]
    fn matching_is_maximal_on_candidate_graph() {
        // After the round, no unmatched proposer shares a candidate edge
        // with an unmatched acceptor (greedy maximality).
        let score = |p: Rank, a: Rank| usize::from((p + a).is_multiple_of(3));
        let proposers: Vec<Rank> = (0..15).collect();
        let acceptors: Vec<Rank> = (15..30).collect();
        let r = run_round(&proposers, &acceptors, score);
        let matched_acceptors: std::collections::HashSet<Rank> =
            r.matched.values().copied().collect();
        for &p in &proposers {
            if r.matched.contains_key(&p) {
                continue;
            }
            for &a in &acceptors {
                if score(p, a) > 0 && !matched_acceptors.contains(&a) {
                    panic!("unmatched pair ({p},{a}) with positive score");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let score = |p: Rank, a: Rank| (p * 31 + a * 17) % 7;
        let proposers: Vec<Rank> = (0..30).collect();
        let acceptors: Vec<Rank> = (30..60).collect();
        let r1 = run_round(&proposers, &acceptors, score);
        let r2 = run_round(&proposers, &acceptors, score);
        assert_eq!(r1.matched, r2.matched);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn signal_counts_are_conservative() {
        // every REQ is eventually answered by exactly one ACCEPT or DROP
        // (modulo the DROP-broadcast and EXIT chatter, counts stay sane)
        let score = |p: Rank, a: Rank| usize::from(p % 3 != a % 3);
        let proposers: Vec<Rank> = (0..12).collect();
        let acceptors: Vec<Rank> = (12..24).collect();
        let r = run_round(&proposers, &acceptors, score);
        assert!(r.stats.accept <= r.stats.req);
        assert_eq!(r.stats.accept, r.stats.agents_found);
        assert_eq!(r.stats.accept, r.matched.len());
    }

    #[test]
    fn split_scoring_matches_monolithic_build() {
        // Scoring rows computed separately (as the parallel builder does)
        // and reassembled must produce the identical round.
        let score = |p: Rank, a: Rank| (p * 31 + a * 17) % 7;
        let proposers: Vec<Rank> = (0..24).collect();
        let acceptors: Vec<Rank> = (24..48).collect();
        let whole = RoundCandidates::build(&proposers, &acceptors, score);
        let rows: Vec<ScoreRow> =
            proposers.iter().map(|&p| RoundCandidates::score_row(p, &acceptors, score)).collect();
        let split = RoundCandidates::from_rows(proposers.clone(), acceptors.clone(), rows);
        let r1 = run_matching(&whole);
        let r2 = run_matching(&split);
        assert_eq!(r1.matched, r2.matched);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn logged_matching_equals_unlogged() {
        let score = |p: Rank, a: Rank| (p * 5 + a * 3) % 4;
        let proposers: Vec<Rank> = (0..10).collect();
        let acceptors: Vec<Rank> = (10..20).collect();
        let rc = RoundCandidates::build(&proposers, &acceptors, score);
        let mut log = Vec::new();
        let r1 = run_matching_logged(&rc, &mut log);
        let r2 = run_matching(&rc);
        assert_eq!(r1.matched, r2.matched);
        assert_eq!(r1.stats, r2.stats);
        // every signal appears exactly twice: once sent, once received
        let sent = log.iter().filter(|e| matches!(e, Event::Sent { .. })).count();
        let recvd = log.iter().filter(|e| matches!(e, Event::Received { .. })).count();
        assert_eq!(sent, recvd);
        assert_eq!(sent, r1.stats.total_signals());
    }
}
