//! A locality-aware Bruck neighborhood allgather (after Bienz et al.,
//! "A Locality-Aware Bruck Allgather"): instead of every rank walking
//! log-stride offsets itself, each **node** elects a router rank, blocks
//! funnel to the router, routers exchange combined messages over
//! log-stride *node* offsets, and arrivals scatter locally.
//!
//! Phases under block placement:
//!
//! 1. **local** — every block with at least one off-node outgoing
//!    neighbor is gathered to its node's router; intra-node edges are
//!    satisfied by direct sends in the same phase;
//! 2. **rounds** `r = 0..R-1` with `R = ceil(log2(nodes))` — a block
//!    destined for node offset `q` (mod the node count) hops from the
//!    router at offset `q mod 2^r` to the router at offset
//!    `q mod 2^(r+1)` whenever bit `r` of `q` is set. All blocks moving
//!    between the same router pair in a round travel as **one combined
//!    message**, which is what caps the inter-node message count at
//!    `O(nodes · log nodes)` regardless of δ;
//! 3. **scatter** — each router delivers the remote blocks it received
//!    to the local ranks whose in-edges demand them, one combined
//!    message per local rank.
//!
//! Compared to [`crate::leader`] this replaces the `O(nodes²)` leader
//! exchange with `O(nodes · log nodes)` hops at the price of forwarding
//! blocks through intermediate routers; the auto-tuner decides which
//! trade wins for a given (topology, δ, sizes) point.

use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use nhood_cluster::ClusterLayout;
use nhood_topology::{Rank, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the locality-aware Bruck plan.
///
/// # Panics
/// Panics if the layout is not block-placed or the topology exceeds the
/// layout capacity.
pub fn plan_bruck(graph: &Topology, layout: &ClusterLayout) -> CollectivePlan {
    assert_eq!(
        layout.placement(),
        nhood_cluster::Placement::Block,
        "Bruck routing needs block placement (see remap for alternatives)"
    );
    let n = graph.n();
    assert!(n <= layout.capacity(), "{n} ranks exceed layout capacity");
    if n == 0 {
        return CollectivePlan { algorithm: Algorithm::Bruck, per_rank: vec![], selection: None };
    }
    let per_node = layout.ranks_per_node();
    let node_of = |r: Rank| r / per_node;
    // Only occupied nodes take part in the ring of offsets.
    let nn = n.div_ceil(per_node);
    let router = |node: usize| node * per_node;
    let ranks_on = |node: usize| {
        let lo = node * per_node;
        lo..(lo + per_node).min(n)
    };
    // R = smallest number of rounds covering every offset 1..nn-1.
    let rounds = if nn <= 1 { 0 } else { usize::BITS as usize - (nn - 1).leading_zeros() as usize };

    let mut local: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut round_phases: Vec<Vec<PlanPhase>> = vec![vec![PlanPhase::default(); n]; rounds];
    let mut scatter: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut epilogue: Vec<PlanPhase> = vec![PlanPhase::default(); n];

    // Destination nodes per block, and whether the block leaves its node.
    // gathered: blocks that travel to their local router in the local phase.
    let mut gathered: BTreeSet<Rank> = BTreeSet::new();
    // Combined router-to-router traffic: (round, src router, dst router) -> blocks.
    let mut hops: Vec<BTreeMap<(Rank, Rank), BTreeSet<Rank>>> = vec![BTreeMap::new(); rounds];
    // Remote blocks arriving at each node's router (destinations only).
    let mut arrivals: BTreeMap<usize, BTreeSet<Rank>> = BTreeMap::new();
    for b in 0..n {
        let a = node_of(b);
        let mut dest_nodes: BTreeSet<usize> = BTreeSet::new();
        for &t in graph.out_neighbors(b) {
            let bn = node_of(t);
            if bn != a {
                dest_nodes.insert(bn);
            }
        }
        if dest_nodes.is_empty() {
            continue;
        }
        gathered.insert(b);
        for &bn in &dest_nodes {
            let q = (bn + nn - a) % nn;
            debug_assert!(q > 0);
            for (r, hop) in hops.iter_mut().enumerate().take(rounds) {
                if q >> r & 1 == 1 {
                    let src = router((a + (q & ((1 << r) - 1))) % nn);
                    let dst = router((a + (q & ((1 << (r + 1)) - 1))) % nn);
                    hop.entry((src, dst)).or_default().insert(b);
                }
            }
            arrivals.entry(bn).or_default().insert(b);
        }
    }

    // Local phase: gather to the router, plus intra-node direct sends.
    for &b in &gathered {
        let l = router(node_of(b));
        if l == b {
            continue; // the router already holds its own block
        }
        local[b].sends.push(PlannedMsg { peer: l, blocks: vec![b], tag: 0 });
        local[l].recvs.push(PlannedMsg { peer: b, blocks: vec![b], tag: 0 });
    }
    for b in 0..n {
        let a = node_of(b);
        let l = router(a);
        for &t in graph.out_neighbors(b) {
            if node_of(t) != a {
                continue;
            }
            if t == l && gathered.contains(&b) && l != b {
                continue; // delivered by the gather
            }
            let tag = 1_000_000 + t as u64;
            local[b].sends.push(PlannedMsg { peer: t, blocks: vec![b], tag });
            local[t].recvs.push(PlannedMsg { peer: b, blocks: vec![b], tag });
        }
    }

    // Log-stride rounds: one combined message per router pair per round.
    // An arrival at offset `p` happens exactly once — in the round where
    // the top bit of `p` was set — so no router ever receives a block
    // twice, and a router forwarding in round `r` received the block at
    // an offset below `2^r`, i.e. in an earlier round (or holds it from
    // the local phase at offset 0).
    for (r, round) in hops.iter().enumerate() {
        let tag = 1 + r as u64;
        for (&(src, dst), blocks) in round {
            let blocks: Vec<Rank> = blocks.iter().copied().collect();
            round_phases[r][src].copy_blocks += blocks.len(); // pack
            round_phases[r][src].sends.push(PlannedMsg { peer: dst, blocks: blocks.clone(), tag });
            round_phases[r][dst].recvs.push(PlannedMsg { peer: src, blocks, tag });
        }
    }

    // Scatter: deliver each remote arrival to the local ranks that need
    // it. The router's own in-edges were satisfied by the arrival itself.
    let scatter_tag = 1 + rounds as u64;
    for (&bn, blocks) in &arrivals {
        let l = router(bn);
        let mut per_target: BTreeMap<Rank, Vec<Rank>> = BTreeMap::new();
        for &b in blocks {
            for t in ranks_on(bn) {
                if t != l && graph.has_edge(b, t) {
                    per_target.entry(t).or_default().push(b);
                }
            }
        }
        for (t, blocks) in per_target {
            scatter[l].copy_blocks += blocks.len();
            epilogue[t].copy_blocks += blocks.len();
            scatter[l].sends.push(PlannedMsg { peer: t, blocks: blocks.clone(), tag: scatter_tag });
            scatter[t].recvs.push(PlannedMsg { peer: l, blocks, tag: scatter_tag });
        }
    }

    let per_rank = (0..n)
        .map(|r| {
            let mut prog = Vec::with_capacity(rounds + 3);
            prog.push(std::mem::take(&mut local[r]));
            for round in &mut round_phases {
                prog.push(std::mem::take(&mut round[r]));
            }
            prog.push(std::mem::take(&mut scatter[r]));
            prog.push(std::mem::take(&mut epilogue[r]));
            prog
        })
        .collect();
    CollectivePlan { algorithm: Algorithm::Bruck, per_rank, selection: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use crate::exec::{Executor, Virtual};
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn validates_and_matches_reference() {
        for (n, delta) in [(32usize, 0.3), (24, 0.7), (36, 0.1), (17, 0.4), (64, 0.6), (5, 0.9)] {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let plan = plan_bruck(&g, &layout);
            plan.validate(&g).unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
            let payloads = test_payloads(n, 8, 1);
            let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads), "n={n} delta={delta}");
        }
    }

    #[test]
    fn single_node_degenerates_to_direct_sends() {
        let g = erdos_renyi(8, 0.5, 9);
        let layout = ClusterLayout::new(1, 2, 4);
        let plan = plan_bruck(&g, &layout);
        plan.validate(&g).unwrap();
        let sends: usize =
            plan.per_rank.iter().flat_map(|p| p.iter()).map(|ph| ph.sends.len()).sum();
        assert_eq!(sends, g.edge_count(), "one direct send per edge, no relaying");
    }

    #[test]
    fn internode_messages_bounded_by_log_rounds() {
        let g = erdos_renyi(64, 0.9, 3);
        let layout = ClusterLayout::new(8, 2, 4); // 8 nodes
        let plan = plan_bruck(&g, &layout);
        plan.validate(&g).unwrap();
        let mut internode = 0usize;
        for (r, prog) in plan.per_rank.iter().enumerate() {
            for phase in prog {
                for m in &phase.sends {
                    if !layout.same_node(r, m.peer) {
                        internode += 1;
                    }
                }
            }
        }
        // 8 nodes, 3 rounds: at most nodes * rounds router hops.
        assert!(internode <= 8 * 3, "{internode} inter-node messages exceed the Bruck bound");
    }

    #[test]
    #[should_panic(expected = "block placement")]
    fn non_block_placement_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        let layout =
            ClusterLayout::new(2, 2, 2).with_placement(nhood_cluster::Placement::RoundRobinNodes);
        let _ = plan_bruck(&g, &layout);
    }
}
