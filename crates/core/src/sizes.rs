//! Per-rank block sizes for the variable-size (`allgatherv`) collective,
//! and the [`LoadMetric`] knob that decides what "load" means during
//! agent selection.
//!
//! The paper's collective is uniform: every rank contributes one block of
//! `m` bytes, and every executor hot path exploits that (`offset = slot *
//! m`). `MPI_Neighbor_allgatherv`-shaped exchanges — our SpMM stripes
//! included — break the assumption: each rank `r` contributes `size(r)`
//! bytes. [`BlockSizes`] is the size table threaded through pattern
//! construction, arena layout and execution; the
//! [`Uniform`](BlockSizes::Uniform) variant preserves the constant-time
//! fast path, and [`PerRank`](BlockSizes::PerRank) shares one table
//! across builder threads via `Arc`.

use nhood_topology::Rank;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Per-rank contribution sizes in bytes.
///
/// `Uniform(m)` is the classic allgather (every rank sends `m` bytes);
/// `PerRank` is the allgatherv generalisation. Zero-length blocks are
/// legal in both variants — a rank may contribute nothing and still
/// relay its neighbors' blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockSizes {
    /// Every rank contributes the same number of bytes.
    Uniform(usize),
    /// Rank `r` contributes `sizes[r]` bytes.
    PerRank(Arc<Vec<usize>>),
}

impl BlockSizes {
    /// The uniform table at block size `m`.
    pub fn uniform(m: usize) -> Self {
        BlockSizes::Uniform(m)
    }

    /// A per-rank table (collapses to [`Uniform`](Self::Uniform) when all
    /// entries agree, preserving the fast path).
    pub fn per_rank(sizes: Vec<usize>) -> Self {
        match sizes.first() {
            Some(&m) if sizes.iter().all(|&s| s == m) => BlockSizes::Uniform(m),
            Some(_) => BlockSizes::PerRank(Arc::new(sizes)),
            None => BlockSizes::Uniform(0),
        }
    }

    /// Derives the size table from concrete payloads.
    pub fn from_payloads(payloads: &[Vec<u8>]) -> Self {
        Self::per_rank(payloads.iter().map(Vec::len).collect())
    }

    /// Bytes contributed by rank `r`.
    #[inline]
    pub fn size(&self, r: Rank) -> usize {
        match self {
            BlockSizes::Uniform(m) => *m,
            BlockSizes::PerRank(t) => t.get(r).copied().unwrap_or(0),
        }
    }

    /// True for the uniform fast path.
    pub fn is_uniform(&self) -> bool {
        matches!(self, BlockSizes::Uniform(_))
    }

    /// The largest per-rank contribution in the table.
    pub fn max_size(&self) -> usize {
        match self {
            BlockSizes::Uniform(m) => *m,
            BlockSizes::PerRank(t) => t.iter().copied().max().unwrap_or(0),
        }
    }

    /// Feeds the table into a fingerprint hasher. Uniform and per-rank
    /// tables hash distinctly even when extensionally equal at a given
    /// `n` is impossible — `per_rank` canonicalises constant tables to
    /// `Uniform`, so equal tables always hash equal.
    pub fn hash_into<H: Hasher>(&self, state: &mut H) {
        match self {
            BlockSizes::Uniform(m) => {
                0u8.hash(state);
                m.hash(state);
            }
            BlockSizes::PerRank(t) => {
                1u8.hash(state);
                t.len().hash(state);
                for &s in t.iter() {
                    s.hash(state);
                }
            }
        }
    }
}

impl Default for BlockSizes {
    /// Unit blocks: size-agnostic callers get neighbor-count semantics.
    fn default() -> Self {
        BlockSizes::Uniform(1)
    }
}

/// What agent selection weighs when scoring candidate pairs.
///
/// The Distance Halving matchmaking (Algorithms 2–3) pairs a proposer
/// with the acceptor sharing the most *outgoing load* in the
/// acceptor-side half. The paper counts shared neighbors;
/// [`Bytes`](LoadMetric::Bytes) keeps that count as the primary score —
/// a candidacy identical to the paper's, so byte awareness can never
/// trade away offloaded targets — and breaks ties toward the proposer
/// carrying *fewer* block bytes. Pairing does not change how many bytes
/// get delivered (it combines messages), so what byte awareness can
/// improve is *who carries them*: accepting the lighter of two
/// otherwise-equal proposers adds the least forwarding load to this
/// agent's send queue, spreading heavy blocks across agents instead of
/// stacking them. On uniform sizes the two metrics induce the same
/// ordering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LoadMetric {
    /// Score = number of shared outgoing neighbors (the paper's metric).
    #[default]
    Neighbors,
    /// Score = shared outgoing neighbors, ties broken toward the
    /// lighter proposer block.
    Bytes,
}

impl LoadMetric {
    /// Stable discriminant for fingerprinting.
    pub(crate) fn id(self) -> u64 {
        match self {
            LoadMetric::Neighbors => 0,
            LoadMetric::Bytes => 1,
        }
    }

    /// The scale factor that packs (shared neighbors, proposer bytes)
    /// lexicographically into one integer score: strictly larger than
    /// any byte tie-breaker, so a shared-neighbor advantage always
    /// dominates. Compute once per build.
    pub(crate) fn scale(self, sizes: &BlockSizes) -> usize {
        match self {
            LoadMetric::Neighbors => 1,
            LoadMetric::Bytes => sizes.max_size().saturating_add(1),
        }
    }

    /// Scores one candidate pair: `shared` outgoing neighbors with
    /// proposer `p`; under [`Bytes`](LoadMetric::Bytes) the tie-breaker
    /// is `max_size - size(p)` (lighter blocks score higher). Zero
    /// shared neighbors is zero under both metrics — the candidate
    /// relation never widens, which keeps it symmetric and preserves
    /// the two-message invariant.
    #[inline]
    pub(crate) fn score(self, shared: usize, p: Rank, sizes: &BlockSizes, scale: usize) -> usize {
        match self {
            LoadMetric::Neighbors => shared,
            LoadMetric::Bytes => {
                if shared == 0 {
                    0
                } else {
                    let light = (scale - 1).saturating_sub(sizes.size(p));
                    shared.saturating_mul(scale).saturating_add(light)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(s: &BlockSizes) -> u64 {
        let mut d = DefaultHasher::new();
        s.hash_into(&mut d);
        d.finish()
    }

    #[test]
    fn per_rank_canonicalises_constant_tables() {
        assert_eq!(BlockSizes::per_rank(vec![4, 4, 4]), BlockSizes::Uniform(4));
        assert_eq!(BlockSizes::per_rank(vec![]), BlockSizes::Uniform(0));
        assert!(!BlockSizes::per_rank(vec![4, 5]).is_uniform());
    }

    #[test]
    fn from_payloads_detects_raggedness() {
        let uni = BlockSizes::from_payloads(&[vec![0; 8], vec![1; 8]]);
        assert_eq!(uni, BlockSizes::Uniform(8));
        let rag = BlockSizes::from_payloads(&[vec![0; 8], vec![1; 3]]);
        assert_eq!(rag.size(0), 8);
        assert_eq!(rag.size(1), 3);
        assert_eq!(rag.size(99), 0, "out-of-range ranks contribute nothing");
    }

    #[test]
    fn hashes_distinguish_tables() {
        let a = BlockSizes::per_rank(vec![1, 2, 3]);
        let b = BlockSizes::per_rank(vec![1, 2, 4]);
        let u = BlockSizes::Uniform(2);
        assert_ne!(h(&a), h(&b));
        assert_ne!(h(&a), h(&u));
        assert_eq!(h(&a), h(&BlockSizes::per_rank(vec![1, 2, 3])));
    }

    #[test]
    fn metric_scores_are_lexicographic_in_shared_then_bytes() {
        let sizes = BlockSizes::per_rank(vec![10, 0, 7]);
        let scale = LoadMetric::Bytes.scale(&sizes);
        assert_eq!(scale, 11, "scale must exceed the largest block");
        // a shared-neighbor advantage always dominates any byte gap
        let heavy_few = LoadMetric::Bytes.score(1, 0, &sizes, scale);
        let light_many = LoadMetric::Bytes.score(2, 1, &sizes, scale);
        assert!(light_many > heavy_few);
        // at equal shared counts, the lighter proposer wins the tie —
        // it adds the least forwarding load to the accepting agent
        let heavy = LoadMetric::Bytes.score(2, 0, &sizes, scale);
        let light = LoadMetric::Bytes.score(2, 2, &sizes, scale);
        assert!(light > heavy);
        assert_eq!(LoadMetric::Bytes.score(2, 1, &sizes, scale), 2 * scale + 10);
        // zero shared neighbors is never a candidate under either metric
        assert_eq!(LoadMetric::Bytes.score(0, 0, &sizes, scale), 0);
        assert_eq!(LoadMetric::Neighbors.score(0, 0, &sizes, 1), 0);
        // the Neighbors metric is the paper's plain count
        assert_eq!(
            LoadMetric::Neighbors.score(3, 0, &sizes, LoadMetric::Neighbors.scale(&sizes)),
            3
        );
    }
}
