//! Lowering a [`DhPattern`] to an executable [`CollectivePlan`]
//! (the planning half of the paper's Algorithm 4).
//!
//! Phase layout (lock-step across ranks):
//!
//! * phases `0 .. max_steps` — the halving steps: in phase `t` a rank
//!   ships its whole pre-step buffer to its step-`t` agent and receives
//!   its origin's buffer;
//! * phase `max_steps` — the final phase: one combined message per
//!   remaining responsibility target (mostly intra-socket, plus the
//!   direct-send fallbacks of failed agent searches);
//! * phase `max_steps + 1` — a copy-only epilogue charging the scatter of
//!   received final-phase messages into the receive buffer.
//!
//! Copy accounting (`copy_blocks`, in block units):
//!
//! * phase 0: 1 (`sbuf → main_buf`, Algorithm 4 line 3);
//! * phase `t > 0`: the receive-buffer copies of step `t-1`'s arrivals
//!   that were this rank's in-neighbors (Algorithm 4 lines 15–17);
//! * final phase: step-`last` arrival copies plus the temp-buffer packing
//!   of all outgoing final messages (lines 21–28);
//! * epilogue: one copy per received final-phase block (line 33).
//!
//! Ordering contract with the zero-copy engine: [`crate::arena`] derives
//! each rank's flat slot layout by walking phases — and the `recvs` list
//! within a phase — in exactly the order emitted here, assigning fresh
//! blocks consecutive tail slots on first arrival. Because a halving-step
//! receive delivers the peer's whole pre-step buffer (itself laid out by
//! the same walk) and final-phase `recvs` are sorted by peer, every
//! delivered message lands as one contiguous slot run. Reordering the
//! emission here is safe for correctness (the layout just follows), but
//! can fragment those runs and cost the arena engine its single-slice
//! sends.

use crate::pattern::DhPattern;
use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use crate::pool::WorkerPool;
use nhood_topology::{Rank, Topology};

/// Tag for final-phase messages (halving steps use their step index).
pub const FINAL_TAG: u64 = 1 << 32;

/// Lowers a built pattern into an executable plan.
///
/// # Panics
/// Panics if `pattern` and `graph` disagree on the number of ranks (the
/// public API in [`crate::comm`] makes this unreachable).
pub fn lower(pattern: &DhPattern, graph: &Topology) -> CollectivePlan {
    lower_pooled(pattern, graph, &WorkerPool::serial())
}

/// [`lower`] running the per-rank descriptor lowering on `pool`. Each
/// rank's program (halving phases, final-phase sends, copy accounting)
/// is independent of every other rank's, so ranks lower concurrently;
/// only the receive mirror of the final phase is merged serially — in
/// rank order, with `recvs` sorted by peer — keeping the plan
/// byte-identical to a serial lowering.
pub fn lower_pooled(pattern: &DhPattern, graph: &Topology, pool: &WorkerPool) -> CollectivePlan {
    let n = graph.n();
    assert_eq!(pattern.n(), n, "pattern/topology rank mismatch");
    let steps = pattern.max_steps();

    // Stage 1 (parallel): per-rank programs up to the final-phase sends,
    // plus the outgoing (target, blocks) list the merge needs.
    type Lowered = (Vec<PlanPhase>, Vec<(Rank, Vec<Rank>)>);
    let built: Vec<Lowered> = pool.map(n, |p| {
        let rp = &pattern.ranks[p];
        // phases: steps halving + 1 final + 1 epilogue
        let mut prog: Vec<PlanPhase> = Vec::with_capacity(steps + 2);

        // Halving phases.
        for t in 0..steps {
            let mut phase = PlanPhase::default();
            if t == 0 {
                phase.copy_blocks = 1;
            } else if rp.steps.get(t - 1).is_some() {
                phase.copy_blocks =
                    pattern.arriving(p, t - 1).iter().filter(|&&b| graph.has_edge(b, p)).count();
            }
            if let Some(step) = rp.steps.get(t) {
                if let Some(agent) = step.agent {
                    phase.sends.push(PlannedMsg {
                        peer: agent,
                        blocks: pattern.held_before(p, t).to_vec(),
                        tag: t as u64,
                    });
                }
                if let Some(origin) = step.origin {
                    phase.recvs.push(PlannedMsg {
                        peer: origin,
                        blocks: pattern.arriving(p, t).to_vec(),
                        tag: t as u64,
                    });
                }
            }
            prog.push(phase);
        }

        // Final phase: group responsibilities by target. The CSR map
        // flattens to (target, block) pairs whose lexicographic sort
        // yields targets ascending with each target's blocks ascending —
        // the same grouping the old BTreeMap inversion produced.
        let mut phase = PlanPhase::default();
        if steps == 0 {
            // no halving at all: sbuf is sent directly, no main_buf copy
        } else if !rp.steps.is_empty() {
            let last = rp.steps.len() - 1;
            phase.copy_blocks +=
                pattern.arriving(p, last).iter().filter(|&&b| graph.has_edge(b, p)).count();
        }
        let mut pairs: Vec<(Rank, Rank)> = Vec::with_capacity(rp.responsibilities.total_targets());
        for (block, targets) in rp.responsibilities.iter() {
            for &t in targets {
                pairs.push((t, block));
            }
        }
        pairs.sort_unstable();
        let mut outgoing: Vec<(Rank, Vec<Rank>)> = Vec::new();
        let mut i = 0usize;
        while i < pairs.len() {
            let target = pairs[i].0;
            let mut blocks = Vec::new();
            while i < pairs.len() && pairs[i].0 == target {
                blocks.push(pairs[i].1);
                i += 1;
            }
            phase.copy_blocks += blocks.len(); // temp-buffer packing
            phase.sends.push(PlannedMsg { peer: target, blocks: blocks.clone(), tag: FINAL_TAG });
            outgoing.push((target, blocks));
        }
        prog.push(phase);
        (prog, outgoing)
    });

    // Stage 2 (serial): mirror the receives + epilogue copies, in rank
    // order.
    let mut incoming: Vec<Vec<(Rank, Vec<Rank>)>> = vec![Vec::new(); n];
    for (q, (_, outgoing)) in built.iter().enumerate() {
        for (target, blocks) in outgoing {
            incoming[*target].push((q, blocks.clone()));
        }
    }
    let mut per_rank: Vec<Vec<PlanPhase>> = Vec::with_capacity(n);
    for (r, (mut prog, _)) in built.into_iter().enumerate() {
        let mut scatter = 0usize;
        {
            let final_phase = prog.last_mut().expect("final phase exists");
            for (src, blocks) in incoming[r].drain(..) {
                scatter += blocks.len();
                final_phase.recvs.push(PlannedMsg { peer: src, blocks, tag: FINAL_TAG });
            }
            final_phase.recvs.sort_by_key(|m| m.peer);
        }
        prog.push(PlanPhase { copy_blocks: scatter, sends: vec![], recvs: vec![] });
        per_rank.push(prog);
    }

    CollectivePlan {
        algorithm: Algorithm::DistanceHalving,
        per_rank,
        selection: Some(pattern.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn build_and_lower(
        n: usize,
        delta: f64,
        seed: u64,
        layout: &ClusterLayout,
    ) -> (Topology, CollectivePlan) {
        let g = erdos_renyi(n, delta, seed);
        let pat = build_pattern(&g, layout).unwrap();
        let plan = lower(&pat, &g);
        (g, plan)
    }

    #[test]
    fn lowered_plans_validate() {
        for (n, delta, nodes, sockets, cores) in [
            (16, 0.3, 2, 2, 4),
            (16, 0.05, 4, 2, 2),
            (24, 0.5, 3, 2, 4),
            (36, 0.2, 3, 2, 6),
            (30, 0.7, 5, 2, 3),
            (17, 0.4, 3, 2, 3),
            (8, 0.0, 2, 2, 2),
            (12, 1.0, 3, 2, 2),
        ] {
            let layout = ClusterLayout::new(nodes, sockets, cores);
            let (g, plan) = build_and_lower(n, delta, 42, &layout);
            plan.validate(&g).unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
        }
    }

    #[test]
    fn phase_structure() {
        let layout = ClusterLayout::new(4, 2, 4); // 32 cores, L=4
        let (_, plan) = build_and_lower(32, 0.4, 1, &layout);
        // 32 -> 16 -> 8 -> 4: 3 halving steps + final + epilogue
        assert_eq!(plan.phase_count(), 5);
        assert_eq!(plan.algorithm, Algorithm::DistanceHalving);
        assert!(plan.selection.is_some());
    }

    #[test]
    fn halving_sends_whole_buffer() {
        let layout = ClusterLayout::new(2, 2, 4);
        let g = erdos_renyi(16, 0.6, 9);
        let pat = build_pattern(&g, &layout).unwrap();
        let plan = lower(&pat, &g);
        for (p, prog) in plan.per_rank.iter().enumerate() {
            for (t, step) in pat.ranks[p].steps.iter().enumerate() {
                let phase = &prog[t];
                if step.agent.is_some() {
                    assert_eq!(phase.sends.len(), 1);
                    assert_eq!(phase.sends[0].blocks, pat.held_before(p, t));
                } else {
                    assert!(phase.sends.is_empty());
                }
            }
        }
    }

    #[test]
    fn final_phase_messages_cover_responsibilities() {
        let layout = ClusterLayout::new(2, 2, 4);
        let g = erdos_renyi(16, 0.3, 5);
        let pat = build_pattern(&g, &layout).unwrap();
        let plan = lower(&pat, &g);
        let final_idx = plan.phase_count() - 2;
        for (q, prog) in plan.per_rank.iter().enumerate() {
            let sent: usize = prog[final_idx].sends.iter().map(|m| m.blocks.len()).sum();
            let owed: usize = pat.ranks[q].responsibilities.total_targets();
            assert_eq!(sent, owed, "rank {q} final messages mismatch responsibilities");
        }
    }

    #[test]
    fn copy_accounting() {
        let layout = ClusterLayout::new(2, 2, 2); // 8 cores, L=2
        let g = erdos_renyi(8, 0.5, 3);
        let pat = build_pattern(&g, &layout).unwrap();
        let plan = lower(&pat, &g);
        // phase 0 always pays the sbuf copy
        for prog in &plan.per_rank {
            assert_eq!(prog[0].copy_blocks, 1);
            // epilogue copies equal received final blocks
            let final_idx = plan.phase_count() - 2;
            let got: usize = prog[final_idx].recvs.iter().map(|m| m.blocks.len()).sum();
            assert_eq!(prog[final_idx + 1].copy_blocks, got);
        }
    }

    #[test]
    fn pooled_lowering_is_identical_to_serial() {
        for (n, delta) in [(17usize, 0.4), (32, 0.2), (24, 0.7)] {
            let g = erdos_renyi(n, delta, 31);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let pat = build_pattern(&g, &layout).unwrap();
            let serial = lower(&pat, &g);
            for threads in [2usize, 4] {
                let pooled = lower_pooled(&pat, &g, &crate::pool::WorkerPool::new(threads));
                assert_eq!(serial.per_rank, pooled.per_rank, "n={n} threads={threads}");
                assert_eq!(serial.algorithm, pooled.algorithm);
                assert_eq!(serial.selection, pooled.selection);
            }
        }
    }

    #[test]
    fn single_socket_plan_is_direct_sends() {
        let layout = ClusterLayout::new(1, 1, 8);
        let (g, plan) = build_and_lower(8, 0.5, 7, &layout);
        plan.validate(&g).unwrap();
        // no halving: 0 steps, phases = final + epilogue
        assert_eq!(plan.phase_count(), 2);
        // every edge is one direct single-block message
        assert_eq!(plan.message_count(), g.edge_count());
        assert_eq!(plan.total_blocks_sent(), g.edge_count());
    }
}
