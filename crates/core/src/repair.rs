//! Incremental plan repair under topology churn and link failure.
//!
//! A Distance Halving plan is expensive to build (agent negotiation
//! dominates — see Fig. 8) but most of it survives small topology
//! changes: the halving schedule and the agent/origin matchings are
//! *valid for any* communication graph (any exactly-once pairing is a
//! correct pattern; the graph only steers which pairing scores best).
//! This module exploits that invariance two ways:
//!
//! * **Edge churn** ([`repair_for_churn`]): adding or removing graph
//!   edges keeps every matching decision and patches only the
//!   responsibility rows, final-phase messages and copy accounting the
//!   changed edges touch. The result is **byte-identical** to re-running
//!   `assemble_pattern` + `lower` on the new graph with the old
//!   decisions — at the cost of a pattern/plan clone plus O(changed)
//!   work instead of a full rebuild.
//! * **Link failure** ([`repair_link_down`]): when a physical link dies
//!   mid-execution, every matching that crossed it is revoked (those
//!   ranks fall back to the failed-agent-search direct-send path) and
//!   every final-phase delivery routed over it moves to an alternate
//!   holder of the block with a live link. A delivery with no live
//!   alternate is *dropped* and reported as
//!   [`Completeness::Degraded`] — degraded output, never a hang or
//!   silent corruption.
//!
//! Both paths bound their blast radius with a [`RepairPolicy`]: past a
//! damaged-rank fraction (or a run of successive incremental repairs)
//! the caller should cut its losses and rebuild from scratch.

use crate::builder::{assemble_pattern, Decision};
use crate::lower::{lower, FINAL_TAG};
use crate::pattern::{in_range, DhPattern};
use crate::plan::{CollectivePlan, PlanValidationError, PlannedMsg};
use nhood_topology::{Rank, Topology};
use std::collections::{BTreeSet, HashMap, HashSet};

/// When an incremental repair should give up and rebuild from scratch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairPolicy {
    /// Maximum fraction of ranks a repair may touch before a full
    /// rebuild is cheaper/safer than patching.
    pub max_damage_frac: f64,
    /// Maximum successive incremental repairs before a forced rebuild
    /// (bounds drift accumulated over long churn sequences).
    pub max_repair_rounds: u32,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self { max_damage_frac: 0.25, max_repair_rounds: 8 }
    }
}

/// Whether a repaired plan still delivers every edge of the virtual
/// topology.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Completeness {
    /// Every `(block, target)` delivery the topology requires is served.
    #[default]
    Full,
    /// Some deliveries were dropped — no live route existed for them.
    Degraded {
        /// The `(block, target)` pairs that will not be delivered.
        missing: Vec<(Rank, Rank)>,
    },
}

impl Completeness {
    /// `true` when nothing was dropped.
    pub fn is_full(&self) -> bool {
        matches!(self, Completeness::Full)
    }
}

/// Why an incremental repair could not be applied (the caller should
/// fall back to a full rebuild).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The pattern and the requested edit disagree — e.g. a removed
    /// edge whose responsibility row is not where the carrier-chain
    /// walk says it must be. Indicates stale repair state.
    InconsistentState {
        /// The edge being repaired.
        edge: (Rank, Rank),
        /// What was inconsistent.
        detail: &'static str,
    },
    /// The repaired plan failed validation — an internal bug surfaced
    /// loudly instead of returning a corrupt plan.
    Invalid(PlanValidationError),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::InconsistentState { edge: (u, v), detail } => {
                write!(f, "repair state inconsistent at edge ({u} -> {v}): {detail}")
            }
            RepairError::Invalid(e) => write!(f, "repaired plan invalid: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Outcome of a successful churn repair.
#[derive(Clone, Debug)]
pub struct ChurnRepair {
    /// The patched pattern (old matchings, new graph's bookkeeping).
    pub pattern: DhPattern,
    /// The patched plan — byte-identical to re-lowering `pattern`.
    pub plan: CollectivePlan,
    /// Ranks whose program changed, ascending.
    pub changed_ranks: Vec<Rank>,
    /// `changed_ranks.len() / n`.
    pub damage_frac: f64,
}

/// Outcome of a link-down repair.
#[derive(Clone, Debug)]
pub struct LinkDownRepair {
    /// The repaired pattern (dead matchings revoked).
    pub pattern: DhPattern,
    /// The re-lowered plan; no message crosses a dead link.
    pub plan: CollectivePlan,
    /// The topology the plan validates (and should execute) against:
    /// the original graph, minus any dropped deliveries.
    pub exec_graph: Topology,
    /// Ranks whose program changed versus `old_plan`, ascending.
    pub changed_ranks: Vec<Rank>,
    /// `changed_ranks.len() / n`.
    pub damage_frac: f64,
    /// Whether every required delivery still has a route.
    pub completeness: Completeness,
}

/// Re-extracts the per-step (agent, origin) decision lists from a built
/// pattern — the exact input `assemble_pattern` consumed, in the same
/// ascending-rank order the builders emit. Lets a repair replay (or
/// selectively revoke) old matchings without re-running negotiation.
pub fn recover_decisions(pattern: &DhPattern) -> Vec<Vec<Decision>> {
    (0..pattern.max_steps())
        .map(|t| {
            pattern
                .ranks
                .iter()
                .enumerate()
                .filter_map(|(p, rp)| rp.steps.get(t).map(|s| (p, s.agent, s.origin, s.h1, s.h2)))
                .collect()
        })
        .collect()
}

/// Where the responsibility row `(u -> v)` sits after the halving phase,
/// under `pattern`'s decisions — without consulting any responsibility
/// map. `None` means the pair is covered by a halving-phase arrival
/// (block `u` lands in `v`'s buffer), so no row exists anywhere.
///
/// Follows the carrier chain of Algorithm 1: the row starts at `u` and
/// moves to the carrier's agent at the first step whose opposite half
/// contains `v`; a failed agent search at that step strands it on the
/// carrier for good (the direct-send fallback).
pub fn resp_owner(pattern: &DhPattern, u: Rank, v: Rank) -> Option<Rank> {
    // Any halving-phase arrival of u at v covers the pair (lemma 1 of
    // the exactly-once proof makes a second arrival impossible).
    if (0..pattern.ranks[v].steps.len()).any(|t| pattern.arriving(v, t).contains(&u)) {
        return None;
    }
    let mut c = u;
    let mut t = 0usize;
    while let Some(step) = pattern.ranks[c].steps.get(t) {
        if in_range(v, step.h2) {
            match step.agent {
                // an agent == v would have delivered u to v — excluded
                // by the arrival check above
                Some(a) => {
                    debug_assert_ne!(a, v, "arrival check must have caught agent == target");
                    c = a;
                }
                // no agent found: the row stays with c (direct send)
                None => break,
            }
        }
        t += 1;
    }
    Some(c)
}

/// How many of `u`'s halving steps have `v` in the opposite half — the
/// per-edge contribution to `SelectionStats::notifications` (0 or 1,
/// since the opposite halves of one rank's steps are disjoint).
fn notification_count(pattern: &DhPattern, u: Rank, v: Rank) -> usize {
    pattern.ranks[u].steps.iter().filter(|s| in_range(v, s.h2)).count()
}

/// Re-derives every `copy_blocks` of rank `r`'s program from the
/// pattern and graph, exactly as [`crate::lower`] computes them:
/// phase 0 pays the sbuf copy, phase `t > 0` the in-neighbor copies of
/// step `t-1`'s arrivals, the final phase the last step's arrival
/// copies plus the temp-buffer packing of its own sends, the epilogue
/// one copy per received final block.
fn recompute_copies(
    pattern: &DhPattern,
    graph: &Topology,
    steps: usize,
    r: Rank,
    prog: &mut [crate::plan::PlanPhase],
) {
    let rp = &pattern.ranks[r];
    let arrival_copies =
        |t: usize| pattern.arriving(r, t).iter().filter(|&&b| graph.has_edge(b, r)).count();
    for (t, phase) in prog.iter_mut().enumerate().take(steps) {
        phase.copy_blocks = if t == 0 {
            1
        } else if t - 1 < rp.steps.len() {
            arrival_copies(t - 1)
        } else {
            0
        };
    }
    let mut fin = 0usize;
    if steps > 0 && !rp.steps.is_empty() {
        fin += arrival_copies(rp.steps.len() - 1);
    }
    fin += prog[steps].sends.iter().map(|m| m.blocks.len()).sum::<usize>();
    prog[steps].copy_blocks = fin;
    prog[steps + 1].copy_blocks = prog[steps].recvs.iter().map(|m| m.blocks.len()).sum::<usize>();
}

/// Adds `block` to the final-phase message `r -> peer` (send or recv
/// side), creating the message at its sorted position if absent. Keeps
/// the lowering's ordering contract: messages ascending by peer, blocks
/// ascending within a message.
fn final_msg_add(msgs: &mut Vec<PlannedMsg>, peer: Rank, block: Rank) {
    match msgs.binary_search_by_key(&peer, |m| m.peer) {
        Ok(i) => {
            let blocks = &mut msgs[i].blocks;
            if let Err(j) = blocks.binary_search(&block) {
                blocks.insert(j, block);
            }
        }
        Err(i) => {
            msgs.insert(i, PlannedMsg { peer, blocks: vec![block], tag: FINAL_TAG });
        }
    }
}

/// Removes `block` from the final-phase message `r -> peer`, dropping
/// the message when it empties. Returns `false` when the message or the
/// block was not there (inconsistent state).
fn final_msg_remove(msgs: &mut Vec<PlannedMsg>, peer: Rank, block: Rank) -> bool {
    let Ok(i) = msgs.binary_search_by_key(&peer, |m| m.peer) else {
        return false;
    };
    let Ok(j) = msgs[i].blocks.binary_search(&block) else {
        return false;
    };
    msgs[i].blocks.remove(j);
    if msgs[i].blocks.is_empty() {
        msgs.remove(i);
    }
    true
}

/// Patches `pattern`/`plan` for a set of edge additions and removals,
/// preserving every matching decision. `new_graph` must already have
/// the churn applied; `added`/`removed` must be the actual deltas
/// (edges genuinely absent before / present before, no self-edges, no
/// duplicates).
///
/// The returned plan is byte-identical to
/// `lower(assemble_pattern(new_graph, decisions), new_graph)` with the
/// recovered decisions — the property `mutated_plan_is_byte_identical`
/// below pins this.
pub fn repair_for_churn(
    pattern: &DhPattern,
    plan: &CollectivePlan,
    new_graph: &Topology,
    added: &[(Rank, Rank)],
    removed: &[(Rank, Rank)],
) -> Result<ChurnRepair, RepairError> {
    let n = pattern.n();
    let steps = pattern.max_steps();
    let mut new_pattern = pattern.clone();
    let mut new_plan = plan.clone();
    let final_idx = steps; // phases: 0..steps halving, steps final, steps+1 epilogue
    let mut changed: BTreeSet<Rank> = BTreeSet::new();

    for (&edge, add) in added.iter().map(|e| (e, true)).chain(removed.iter().map(|e| (e, false))) {
        let (u, v) = edge;
        match resp_owner(pattern, u, v) {
            None => {
                // Covered by a halving arrival: only v's receive-copy
                // accounting changes with the edge.
                changed.insert(v);
            }
            Some(w) => {
                let row = new_pattern.ranks[w].responsibilities.get(u).map(<[Rank]>::to_vec);
                if add {
                    let mut targets = row.unwrap_or_default();
                    match targets.binary_search(&v) {
                        Ok(_) => {
                            return Err(RepairError::InconsistentState {
                                edge,
                                detail: "added edge already has a responsibility row",
                            })
                        }
                        Err(j) => targets.insert(j, v),
                    }
                    new_pattern.ranks[w].responsibilities.insert(u, targets);
                    final_msg_add(&mut new_plan.per_rank[w][final_idx].sends, v, u);
                    final_msg_add(&mut new_plan.per_rank[v][final_idx].recvs, w, u);
                } else {
                    let mut targets = row.ok_or(RepairError::InconsistentState {
                        edge,
                        detail: "removed edge has no responsibility row at its owner",
                    })?;
                    let Ok(j) = targets.binary_search(&v) else {
                        return Err(RepairError::InconsistentState {
                            edge,
                            detail: "owner's row does not list the removed target",
                        });
                    };
                    targets.remove(j);
                    new_pattern.ranks[w].responsibilities.insert(u, targets);
                    let ok = final_msg_remove(&mut new_plan.per_rank[w][final_idx].sends, v, u)
                        && final_msg_remove(&mut new_plan.per_rank[v][final_idx].recvs, w, u);
                    if !ok {
                        return Err(RepairError::InconsistentState {
                            edge,
                            detail: "plan's final phase lacks the removed delivery",
                        });
                    }
                }
                changed.insert(w);
                changed.insert(v);
            }
        }
        // Agent announcements go to out-neighbors in the opposite half,
        // so the edge shifts the notification tally by its h2 hits.
        let delta = notification_count(pattern, u, v);
        if add {
            new_pattern.stats.notifications += delta;
        } else {
            new_pattern.stats.notifications -= delta;
        }
    }
    new_plan.selection = Some(new_pattern.stats);

    for &r in &changed {
        recompute_copies(&new_pattern, new_graph, steps, r, &mut new_plan.per_rank[r]);
    }

    let changed_ranks: Vec<Rank> = changed.into_iter().collect();
    let damage_frac = changed_ranks.len() as f64 / n.max(1) as f64;
    Ok(ChurnRepair { pattern: new_pattern, plan: new_plan, changed_ranks, damage_frac })
}

/// Repairs a pattern after one or more physical links died: revokes
/// every matching whose halving transfer crosses a dead link, reroutes
/// final-phase deliveries routed over dead links to alternate holders,
/// and re-lowers. `dead` holds *directed* pairs (insert both directions
/// for a severed cable). Deliveries with no live route are dropped and
/// reported via [`LinkDownRepair::completeness`]; the returned
/// `exec_graph` excludes them so the plan validates and executes
/// cleanly.
pub fn repair_link_down(
    pattern: &DhPattern,
    old_plan: &CollectivePlan,
    graph: &Topology,
    dead: &HashSet<(Rank, Rank)>,
) -> Result<LinkDownRepair, RepairError> {
    let n = pattern.n();
    let l = pattern.ranks_per_socket;

    // 1. Replay the old matchings minus any that cross a dead link.
    let mut decisions = recover_decisions(pattern);
    for step in &mut decisions {
        for d in step.iter_mut() {
            let (p, agent, origin, ..) = *d;
            if let Some(a) = agent {
                if dead.contains(&(p, a)) {
                    d.1 = None;
                }
            }
            if let Some(o) = origin {
                if dead.contains(&(o, p)) {
                    d.2 = None;
                }
            }
        }
    }
    // Preserve the negotiation tallies; the revoked transfers' derived
    // counts (notifications, descriptors) are recomputed by assembly.
    let mut stats = pattern.stats;
    stats.notifications = 0;
    stats.descriptors = 0;
    let mut repaired = assemble_pattern(graph, l, &decisions, stats);

    // 2. Reroute final-phase deliveries that would cross a dead link.
    // holders[b] = ranks holding block b at the end of halving, ascending.
    let mut holders: HashMap<Rank, Vec<Rank>> = HashMap::new();
    for (r, rp) in repaired.ranks.iter().enumerate() {
        for &b in &rp.held_final {
            holders.entry(b).or_default().push(r);
        }
    }
    let mut moves: Vec<(Rank, Rank, Rank, Option<Rank>)> = Vec::new(); // (from, block, target, to)
    for (w, rp) in repaired.ranks.iter().enumerate() {
        for (b, targets) in rp.responsibilities.iter() {
            for &t in targets {
                if !dead.contains(&(w, t)) {
                    continue;
                }
                let alt = holders
                    .get(&b)
                    .and_then(|hs| {
                        hs.iter().find(|&&z| z != w && z != t && !dead.contains(&(z, t)))
                    })
                    .copied();
                moves.push((w, b, t, alt));
            }
        }
    }
    let mut missing: Vec<(Rank, Rank)> = Vec::new();
    for &(w, b, t, to) in &moves {
        let mut row: Vec<Rank> = repaired.ranks[w].responsibilities.get(b).unwrap_or(&[]).to_vec();
        row.retain(|&x| x != t);
        repaired.ranks[w].responsibilities.insert(b, row);
        match to {
            Some(z) => {
                let mut row: Vec<Rank> =
                    repaired.ranks[z].responsibilities.get(b).unwrap_or(&[]).to_vec();
                if let Err(j) = row.binary_search(&t) {
                    row.insert(j, t);
                }
                repaired.ranks[z].responsibilities.insert(b, row);
            }
            None => missing.push((b, t)),
        }
    }
    missing.sort_unstable();
    missing.dedup();

    // 3. Re-lower against the graph minus dropped deliveries.
    let exec_graph = if missing.is_empty() {
        graph.clone()
    } else {
        let gone: HashSet<(Rank, Rank)> = missing.iter().copied().collect();
        Topology::from_edges(n, graph.edges().filter(|e| !gone.contains(e)))
    };
    let plan = lower(&repaired, &exec_graph);
    plan.validate(&exec_graph).map_err(RepairError::Invalid)?;
    debug_assert!(
        plan.per_rank.iter().enumerate().all(|(r, prog)| prog
            .iter()
            .flat_map(|ph| ph.sends.iter())
            .all(|m| !dead.contains(&(r, m.peer)))),
        "repaired plan still schedules a send over a dead link"
    );

    let changed_ranks: Vec<Rank> =
        (0..n).filter(|&r| old_plan.per_rank.get(r) != plan.per_rank.get(r)).collect();
    let damage_frac = changed_ranks.len() as f64 / n.max(1) as f64;
    let completeness =
        if missing.is_empty() { Completeness::Full } else { Completeness::Degraded { missing } };
    Ok(LinkDownRepair {
        pattern: repaired,
        plan,
        exec_graph,
        changed_ranks,
        damage_frac,
        completeness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads, Virtual};
    use crate::exec::Executor;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn layout(n: usize) -> ClusterLayout {
        ClusterLayout::new(n.div_ceil(8), 2, 4)
    }

    /// Applies churn to a graph's edge set.
    fn churned(g: &Topology, added: &[(Rank, Rank)], removed: &[(Rank, Rank)]) -> Topology {
        let gone: HashSet<(Rank, Rank)> = removed.iter().copied().collect();
        Topology::from_edges(
            g.n(),
            g.edges().filter(|e| !gone.contains(e)).chain(added.iter().copied()),
        )
    }

    type EdgeSet = Vec<(Rank, Rank)>;

    /// Picks a deterministic churn set: `k` edges to remove from the
    /// graph and `k` non-edges to add.
    fn churn_set(g: &Topology, k: usize, seed: u64) -> (EdgeSet, EdgeSet) {
        let edges: Vec<_> = g.edges().collect();
        let n = g.n();
        let removed: Vec<_> =
            (0..k).map(|i| edges[(seed as usize + i * 37) % edges.len()]).collect();
        let mut added = Vec::new();
        let mut x = seed;
        while added.len() < k {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 16) as usize % n;
            let v = (x >> 40) as usize % n;
            if u != v && !g.has_edge(u, v) && !added.contains(&(u, v)) {
                added.push((u, v));
            }
        }
        (added, removed)
    }

    #[test]
    fn recovered_decisions_rebuild_the_same_pattern() {
        let g = erdos_renyi(48, 0.3, 7);
        let lay = layout(48);
        let pat = build_pattern(&g, &lay).unwrap();
        let decisions = recover_decisions(&pat);
        let mut stats = pat.stats;
        stats.notifications = 0;
        stats.descriptors = 0;
        let rebuilt = assemble_pattern(&g, lay.ranks_per_socket(), &decisions, stats);
        assert_eq!(pat.stats, rebuilt.stats);
        assert_eq!(pat.ranks, rebuilt.ranks);
    }

    #[test]
    fn resp_owner_agrees_with_built_responsibilities() {
        for (n, delta, seed) in [(32usize, 0.3, 1u64), (48, 0.5, 2), (40, 0.1, 3)] {
            let g = erdos_renyi(n, delta, seed);
            let pat = build_pattern(&g, &layout(n)).unwrap();
            for (u, v) in g.edges() {
                match resp_owner(&pat, u, v) {
                    Some(w) => {
                        let row = pat.ranks[w].responsibilities.get(u).unwrap_or_else(|| {
                            panic!("owner {w} of ({u}->{v}) holds no row for {u}")
                        });
                        assert!(row.contains(&v), "({u}->{v}) not in owner {w}'s row");
                    }
                    None => {
                        let arrived =
                            (0..pat.ranks[v].steps.len()).any(|t| pat.arriving(v, t).contains(&u));
                        assert!(arrived, "({u}->{v}) neither owned nor arriving");
                    }
                }
            }
        }
    }

    /// The tentpole identity: the surgical patch equals the
    /// decision-preserving rebuild, byte for byte — pattern and plan.
    #[test]
    fn churn_repair_is_byte_identical_to_decision_preserving_rebuild() {
        for (n, delta, seed) in [(32usize, 0.1, 11u64), (48, 0.3, 12), (64, 0.6, 13), (41, 0.3, 14)]
        {
            let g = erdos_renyi(n, delta, seed);
            let lay = layout(n);
            let pat = build_pattern(&g, &lay).unwrap();
            let plan = lower(&pat, &g);
            let (added, removed) = churn_set(&g, 3, seed);
            let g2 = churned(&g, &added, &removed);

            let rep = repair_for_churn(&pat, &plan, &g2, &added, &removed)
                .unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));

            let decisions = recover_decisions(&pat);
            let mut stats = pat.stats;
            stats.notifications = 0;
            stats.descriptors = 0;
            let want_pat = assemble_pattern(&g2, lay.ranks_per_socket(), &decisions, stats);
            let want_plan = lower(&want_pat, &g2);

            assert_eq!(rep.pattern.stats, want_pat.stats, "n={n} delta={delta}");
            assert_eq!(rep.pattern.ranks, want_pat.ranks, "n={n} delta={delta}");
            assert_eq!(rep.plan.per_rank, want_plan.per_rank, "n={n} delta={delta}");
            rep.plan.validate(&g2).unwrap();

            // The changed-rank list is truthful: untouched programs are
            // bitwise-unchanged from the old plan.
            for r in 0..n {
                if !rep.changed_ranks.contains(&r) {
                    assert_eq!(rep.plan.per_rank[r], plan.per_rank[r], "rank {r} silently changed");
                }
            }
        }
    }

    #[test]
    fn churn_repair_add_then_remove_roundtrips() {
        let g = erdos_renyi(32, 0.3, 9);
        let pat = build_pattern(&g, &layout(32)).unwrap();
        let plan = lower(&pat, &g);
        let (added, _) = churn_set(&g, 2, 77);
        let g2 = churned(&g, &added, &[]);
        let rep = repair_for_churn(&pat, &plan, &g2, &added, &[]).unwrap();
        // removing the same edges from the churned state restores the
        // original pattern and plan exactly
        let back = repair_for_churn(&rep.pattern, &rep.plan, &g, &[], &added).unwrap();
        assert_eq!(back.pattern.ranks, pat.ranks);
        assert_eq!(back.pattern.stats, pat.stats);
        assert_eq!(back.plan.per_rank, plan.per_rank);
    }

    #[test]
    fn churn_repair_rejects_inconsistent_edits() {
        let g = erdos_renyi(16, 0.4, 5);
        let pat = build_pattern(&g, &layout(16)).unwrap();
        let plan = lower(&pat, &g);
        // "removing" a non-edge must be reported, not silently patched
        let bogus = (0..16)
            .flat_map(|u| (0..16).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .unwrap();
        let g2 = churned(&g, &[], &[bogus]);
        match repair_for_churn(&pat, &plan, &g2, &[], &[bogus]) {
            Err(e) => assert!(matches!(e, RepairError::InconsistentState { .. }), "{e}"),
            // a bogus removal of an arrival-covered pair is indistinguishable
            // from a no-op copy retally — also acceptable
            Ok(rep) => assert!(rep.changed_ranks.len() <= 1),
        }
    }

    #[test]
    fn link_down_repair_reroutes_and_validates() {
        let g = erdos_renyi(48, 0.4, 21);
        let pat = build_pattern(&g, &layout(48)).unwrap();
        let plan = lower(&pat, &g);
        // kill the first halving-phase matching's link
        let (p, a) = pat
            .ranks
            .iter()
            .enumerate()
            .find_map(|(p, rp)| rp.steps.first().and_then(|s| s.agent).map(|a| (p, a)))
            .expect("some rank matched in step 0");
        let dead: HashSet<(Rank, Rank)> = [(p, a), (a, p)].into_iter().collect();
        let rep = repair_link_down(&pat, &plan, &g, &dead).unwrap();
        assert_eq!(rep.pattern.ranks[p].steps[0].agent, None, "dead matching not revoked");
        assert_eq!(rep.pattern.ranks[a].steps[0].origin, None);
        // no message crosses the dead link, either direction
        for (r, prog) in rep.plan.per_rank.iter().enumerate() {
            for ph in prog {
                for m in &ph.sends {
                    assert!(!dead.contains(&(r, m.peer)), "send {r} -> {} over dead link", m.peer);
                }
            }
        }
        // the repaired plan produces correct output on its exec graph
        let payloads = test_payloads(48, 8, 4);
        let got = Virtual.run_simple(&rep.plan, &rep.exec_graph, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&rep.exec_graph, &payloads));
        if rep.completeness.is_full() {
            assert_eq!(rep.exec_graph.edge_count(), g.edge_count());
        }
        assert!(!rep.changed_ranks.is_empty());
        assert!(rep.damage_frac > 0.0);
    }

    #[test]
    fn link_down_with_no_alternate_degrades_not_corrupts() {
        // A sparse graph where rank u's block is held only by u: killing
        // u's direct link to a target it still owes leaves no alternate,
        // so the delivery is dropped and reported.
        let g = Topology::from_edges(8, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let lay = ClusterLayout::new(1, 2, 4); // L = 4, one halving step
        let pat = build_pattern(&g, &lay).unwrap();
        let plan = lower(&pat, &g);
        // find a responsibility delivered over a direct final send
        let mut found = None;
        'outer: for rp in &pat.ranks {
            for (_, targets) in rp.responsibilities.iter() {
                if let Some(&t) = targets.first() {
                    found = Some(t);
                    break 'outer;
                }
            }
        }
        let Some(t) = found else {
            return; // all deliveries are arrival-covered; nothing to test
        };
        // kill every link into t, so no reroute can exist
        let dead: HashSet<(Rank, Rank)> =
            (0..8).filter(|&z| z != t).flat_map(|z| [(z, t), (t, z)]).collect();
        let rep = repair_link_down(&pat, &plan, &g, &dead).unwrap();
        match &rep.completeness {
            Completeness::Degraded { missing } => {
                assert!(missing.iter().any(|&(_, mt)| mt == t), "t={t} must lose a delivery");
                assert!(rep.exec_graph.edge_count() < g.edge_count());
            }
            Completeness::Full => panic!("expected a degraded repair"),
        }
        rep.plan.validate(&rep.exec_graph).unwrap();
    }
}
