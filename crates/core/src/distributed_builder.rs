//! A truly distributed pattern builder: one OS thread per rank, running
//! the agent/origin negotiation of Algorithms 2–3 over real channels.
//!
//! Where [`crate::builder`] *emulates* the protocol sequentially (with a
//! deterministic arrival order), this module *runs* it: every rank is a
//! thread, every REQ/ACCEPT/DROP/EXIT is a real message, and arrival
//! order is whatever the scheduler produces — the closest this library
//! gets to the paper's MPI-side implementation. The resulting matching
//! can differ run-to-run (as it can on a real cluster), but every run
//! yields a valid pattern; the test suite executes patterns from this
//! builder and checks them against the MPI-semantics reference.
//!
//! # Protocol and termination
//!
//! The negotiation follows a strict **two-message invariant**: every
//! candidate pair exchanges exactly one message in each direction,
//!
//! * `REQ → / ← ACCEPT` — matched;
//! * `REQ → / ← DROP` — rejected (acceptor matched someone else, or the
//!   REQ straggled in after the acceptor's broadcast DROP crossed it);
//! * `← DROP / EXIT →` — the acceptor's broadcast DROP reached a
//!   proposer that had never contacted it; the proposer acknowledges;
//! * `EXIT → / ← DROP` — a matched proposer dismisses an acceptor it
//!   never contacted; the acceptor acknowledges.
//!
//! A round therefore ends for a rank exactly when all its candidate
//! pairs are resolved in both directions — no counters shared across
//! rounds, no global barrier, and stray messages can never leak into a
//! later round. (The published pseudocode's `c_s + c_r = c_t` accounting
//! aims at the same property; the acknowledgement rules here make it
//! watertight under message crossings.)
//!
//! # Fault injection
//!
//! [`build_pattern_distributed_faulty`] runs the same protocol against a
//! [`FaultPlan`]: control signals can be dropped (retried with bounded
//! exponential backoff) or delayed, and slow ranks stall at every step
//! entry. Duplication and reordering faults are **not** applied here —
//! the two-message invariant assumes exactly-once signal delivery, so
//! the transport emulation below provides it (as MPI would); a signal
//! lost beyond the retry budget surfaces as
//! [`BuildError::NegotiationTimeout`] on some waiting rank, never as a
//! hang. This is what [`crate::comm::RobustPolicy`] degrades on: a
//! timed-out negotiation falls back to the naive plan.

use crate::builder::{assemble_pattern, check_inputs, segments_per_step, BuildError, Decision};
use crate::fault::{FaultAction, FaultPlan};
use crate::pattern::{split_half, DhPattern, SelectionStats};
use crate::pool::WorkerPool;
use crate::sizes::{BlockSizes, LoadMetric};
use nhood_cluster::ClusterLayout;
use nhood_telemetry::{labels, Recorder, NULL};
use nhood_topology::{Bitset, Rank, Topology};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Default per-receive timeout: converts protocol bugs (or unsurvivable
/// fault schedules) into errors, not hangs.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(20);

/// Retransmission budget per control signal under fault injection.
const SIGNAL_MAX_RETRIES: u32 = 5;
/// First retry backoff for control signals; doubles per attempt with
/// deterministic jitter (see [`crate::fault::backoff`]).
const SIGNAL_BACKOFF: Duration = Duration::from_micros(100);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Req,
    Accept,
    Drop,
    Exit,
}

#[derive(Clone, Copy, Debug)]
struct Signal {
    step: u32,
    round: u8,
    from: Rank,
    kind: Kind,
}

/// One rank's participation in one halving step.
#[derive(Clone, Copy, Debug)]
struct StepRole {
    lower: (Rank, Rank),
    upper: (Rank, Rank),
    am_lower: bool,
}

#[derive(Default)]
struct PairState {
    sent: bool,
    received: bool,
    inactive: bool,
    waiting: bool,
}

/// Builds the Distance Halving pattern by actually running the
/// negotiation protocol with one thread per rank.
///
/// Produces the same pattern *structure* as
/// [`crate::builder::build_pattern`]; the matching itself may differ (it
/// depends on real message arrival order). Intended for moderate rank
/// counts (one OS thread each).
pub fn build_pattern_distributed(
    graph: &Topology,
    layout: &ClusterLayout,
) -> Result<DhPattern, BuildError> {
    build_pattern_distributed_faulty(graph, layout, None, RECV_TIMEOUT)
}

/// [`build_pattern_distributed`] under fault injection: control signals
/// consult `fault` at every send (drops are retried with bounded
/// backoff, delays sleep), slow ranks stall at step entry, and any rank
/// left waiting longer than `recv_timeout` returns
/// [`BuildError::NegotiationTimeout`] instead of panicking or hanging.
pub fn build_pattern_distributed_faulty(
    graph: &Topology,
    layout: &ClusterLayout,
    fault: Option<&FaultPlan>,
    recv_timeout: Duration,
) -> Result<DhPattern, BuildError> {
    build_pattern_distributed_recorded(graph, layout, fault, recv_timeout, &NULL)
}

/// [`build_pattern_distributed_faulty`] with a telemetry [`Recorder`]:
/// every rank reports a `negotiate` span per halving step, one
/// negotiation-round event per proposer/acceptor role it plays, and a
/// retry event per retransmitted control signal.
pub fn build_pattern_distributed_recorded(
    graph: &Topology,
    layout: &ClusterLayout,
    fault: Option<&FaultPlan>,
    recv_timeout: Duration,
    rec: &dyn Recorder,
) -> Result<DhPattern, BuildError> {
    build_pattern_distributed_pooled(graph, layout, fault, recv_timeout, &WorkerPool::serial(), rec)
}

/// [`build_pattern_distributed_recorded`] with the rank threads managed
/// by a [`WorkerPool`]. Negotiation jobs block on each other's messages,
/// so the pool's [`run_all`](WorkerPool::run_all) entry point is used —
/// every rank still gets a thread regardless of the pool's bound, but
/// spawn, join and panic propagation live in one audited place instead
/// of an ad-hoc `thread::scope` here. Timeout semantics are unchanged: a
/// rank waiting longer than `recv_timeout` returns
/// [`BuildError::NegotiationTimeout`], and the first error in rank order
/// is the one reported.
pub fn build_pattern_distributed_pooled(
    graph: &Topology,
    layout: &ClusterLayout,
    fault: Option<&FaultPlan>,
    recv_timeout: Duration,
    pool: &WorkerPool,
    rec: &dyn Recorder,
) -> Result<DhPattern, BuildError> {
    build_pattern_distributed_pooled_v(
        graph,
        layout,
        fault,
        recv_timeout,
        &BlockSizes::default(),
        LoadMetric::Neighbors,
        pool,
        rec,
    )
}

/// Size-aware [`build_pattern_distributed_pooled`]: under
/// [`LoadMetric::Bytes`] score ties are broken toward the **proposer**
/// with fewer block bytes (both sides of a pair apply the same byte
/// term and candidacy never changes, so the candidate relation stays
/// symmetric and the two-message invariant holds).
/// [`LoadMetric::Neighbors`] is the paper's count-based scoring.
#[allow(clippy::too_many_arguments)]
pub fn build_pattern_distributed_pooled_v(
    graph: &Topology,
    layout: &ClusterLayout,
    fault: Option<&FaultPlan>,
    recv_timeout: Duration,
    sizes: &BlockSizes,
    metric: LoadMetric,
    pool: &WorkerPool,
    rec: &dyn Recorder,
) -> Result<DhPattern, BuildError> {
    check_inputs(graph, layout)?;
    let n = graph.n();
    let l = layout.ranks_per_socket();
    let step_segments = segments_per_step(n, l);
    let out_sets: Arc<Vec<Bitset>> = Arc::new(graph.out_bitsets());

    // Per-rank step roles.
    let mut roles: Vec<Vec<Option<StepRole>>> = vec![Vec::new(); n];
    for active in &step_segments {
        for r in roles.iter_mut() {
            r.push(None);
        }
        for &seg in active {
            let (_, lower, upper) = split_half(seg.0, seg.1);
            for (p, role) in roles.iter_mut().enumerate().take(seg.1 + 1).skip(seg.0) {
                let am_lower = p <= lower.1;
                let t = role.len() - 1;
                role[t] = Some(StepRole { lower, upper, am_lower });
            }
        }
    }

    let mut senders: Vec<Sender<Signal>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Signal>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);

    let jobs: Vec<_> = (0..n)
        .map(|p| {
            let rx = receivers[p].take().expect("taken once");
            let senders = Arc::clone(&senders);
            let out_sets = Arc::clone(&out_sets);
            let my_roles = roles[p].clone();
            move || {
                rank_main(
                    p,
                    rx,
                    senders,
                    out_sets,
                    my_roles,
                    fault,
                    recv_timeout,
                    sizes,
                    metric,
                    rec,
                )
            }
        })
        .collect();
    let results: Vec<Result<RankOutcome, BuildError>> = pool.run_all(jobs);

    // Convert per-rank outcomes into per-step decision lists.
    let mut stats = SelectionStats::default();
    let mut steps: Vec<Vec<Decision>> = vec![Vec::new(); step_segments.len()];
    for (p, outcome) in results.into_iter().enumerate() {
        let (outcomes, s) = outcome?;
        stats.merge(&s);
        for (t, (agent, origin)) in outcomes.into_iter().enumerate() {
            if let Some(role) = roles[p][t] {
                let (h1, h2) =
                    if role.am_lower { (role.lower, role.upper) } else { (role.upper, role.lower) };
                steps[t].push((p, agent, origin, h1, h2));
            }
        }
    }
    // assemble_pattern adds notifications/descriptors itself.
    Ok(assemble_pattern(graph, l, &steps, stats))
}

/// What one negotiation thread produces: per step `(agent, origin)` —
/// the agent this rank selected (if any) and the peer it agreed to act
/// for (if any) — plus its share of the signal accounting.
type RankOutcome = (Vec<(Option<Rank>, Option<Rank>)>, SelectionStats);

/// The per-rank thread: walks its halving steps, playing proposer and
/// acceptor in the order of Algorithm 1 lines 14–24 (lower half proposes
/// in round 0, upper half in round 1).
#[allow(clippy::too_many_arguments)]
fn rank_main(
    p: Rank,
    rx: Receiver<Signal>,
    senders: Arc<Vec<Sender<Signal>>>,
    out_sets: Arc<Vec<Bitset>>,
    roles: Vec<Option<StepRole>>,
    fault: Option<&FaultPlan>,
    recv_timeout: Duration,
    sizes: &BlockSizes,
    metric: LoadMetric,
    rec: &dyn Recorder,
) -> Result<RankOutcome, BuildError> {
    let mut stats = SelectionStats::default();
    let mut parked: HashMap<(u32, u8), Vec<Signal>> = HashMap::new();
    let mut outcomes = Vec::with_capacity(roles.len());

    for (t, role) in roles.iter().enumerate() {
        let Some(role) = role else {
            outcomes.push((None, None));
            continue;
        };
        if let Some(fp) = fault {
            let stall = fp.stall(p);
            if stall > Duration::ZERO {
                std::thread::sleep(stall);
            }
        }
        rec.span_begin(p, labels::NEGOTIATE);
        let t = t as u32;
        let (h2, my_half) =
            if role.am_lower { (role.upper, role.lower) } else { (role.lower, role.upper) };
        // Candidates: opposite-half ranks sharing ≥1 outgoing neighbor in
        // the acceptor-side half. The acceptor-side half differs per
        // round: when I propose, it's my h2; when I accept, it's my h1.
        let proposer_cands = candidates(p, h2, h2, &out_sets, sizes, metric, true);
        let acceptor_cands = candidates(p, h2, my_half, &out_sets, sizes, metric, false);

        let (agent, origin) = if role.am_lower {
            let agent = propose(
                Round {
                    p,
                    step: t,
                    round: 0,
                    senders: &senders,
                    parked: &mut parked,
                    rx: &rx,
                    fault,
                    recv_timeout,
                    rec,
                },
                &proposer_cands,
                &mut stats,
            )?;
            let origin = accept(
                Round {
                    p,
                    step: t,
                    round: 1,
                    senders: &senders,
                    parked: &mut parked,
                    rx: &rx,
                    fault,
                    recv_timeout,
                    rec,
                },
                &acceptor_cands,
                &mut stats,
            )?;
            (agent, origin)
        } else {
            let origin = accept(
                Round {
                    p,
                    step: t,
                    round: 0,
                    senders: &senders,
                    parked: &mut parked,
                    rx: &rx,
                    fault,
                    recv_timeout,
                    rec,
                },
                &acceptor_cands,
                &mut stats,
            )?;
            let agent = propose(
                Round {
                    p,
                    step: t,
                    round: 1,
                    senders: &senders,
                    parked: &mut parked,
                    rx: &rx,
                    fault,
                    recv_timeout,
                    rec,
                },
                &proposer_cands,
                &mut stats,
            )?;
            (agent, origin)
        };
        rec.span_end(p, labels::NEGOTIATE);
        outcomes.push((agent, origin));
    }
    Ok((outcomes, stats))
}

/// Candidate list of `p` against the opposite half, scored by shared
/// outgoing neighbors within `score_half` (with proposer block bytes as
/// the [`LoadMetric::Bytes`] tie-breaker), best-first (score desc, rank
/// asc). The byte term always applies to the proposing rank of the pair
/// — `p` itself when `i_propose`, the candidate `c` otherwise — so both
/// sides of a pair compute the identical score and the candidate
/// relation is symmetric.
#[allow(clippy::too_many_arguments)]
fn candidates(
    p: Rank,
    opposite: (Rank, Rank),
    score_half: (Rank, Rank),
    out_sets: &[Bitset],
    sizes: &BlockSizes,
    metric: LoadMetric,
    i_propose: bool,
) -> Vec<Rank> {
    let scale = metric.scale(sizes);
    let mut cands: Vec<(usize, Rank)> = (opposite.0..=opposite.1)
        .filter_map(|c| {
            let shared =
                out_sets[p].intersection_count_in_range(&out_sets[c], score_half.0, score_half.1);
            let proposer = if i_propose { p } else { c };
            let s = metric.score(shared, proposer, sizes, scale);
            (s > 0).then_some((s, c))
        })
        .collect();
    cands.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    cands.into_iter().map(|(_, c)| c).collect()
}

struct Round<'a> {
    p: Rank,
    step: u32,
    round: u8,
    senders: &'a Arc<Vec<Sender<Signal>>>,
    parked: &'a mut HashMap<(u32, u8), Vec<Signal>>,
    rx: &'a Receiver<Signal>,
    fault: Option<&'a FaultPlan>,
    recv_timeout: Duration,
    rec: &'a dyn Recorder,
}

impl<'a> Round<'a> {
    fn send(&self, to: Rank, kind: Kind, stats: &mut SelectionStats) {
        match kind {
            Kind::Req => stats.req += 1,
            Kind::Accept => stats.accept += 1,
            Kind::Drop => stats.drop += 1,
            Kind::Exit => stats.exit += 1,
        }
        let sig = Signal { step: self.step, round: self.round, from: self.p, kind };
        let Some(fp) = self.fault else {
            // a peer can only be gone if the whole build is tearing down
            // on another rank's error; the join surfaces that
            let _ = self.senders[to].send(sig);
            return;
        };
        // one message per direction per pair per round, so (step, round)
        // identifies the signal on this (src, dst) pair
        let tag = (self.step as u64) << 1 | self.round as u64;
        let mut attempt: u32 = 0;
        loop {
            match fp.send_action(self.p, to, tag, attempt) {
                FaultAction::Deliver | FaultAction::Duplicate => {
                    // duplication is suppressed on the control plane: the
                    // two-message invariant requires exactly-once signals
                    let _ = self.senders[to].send(sig);
                    return;
                }
                FaultAction::Delay(d) => {
                    std::thread::sleep(d);
                    let _ = self.senders[to].send(sig);
                    return;
                }
                FaultAction::LinkDown => {
                    // a severed link never heals within a round: the signal
                    // is lost outright and the peer's timeout reports it
                    return;
                }
                FaultAction::Drop => {
                    if attempt >= SIGNAL_MAX_RETRIES {
                        return; // lost for good; the peer's timeout reports it
                    }
                    self.rec.retry(self.p);
                    // jittered per (src, dst, tag) so colliding ranks
                    // desynchronize; deterministic per fault seed
                    let seed = crate::fault::backoff_seed(fp.seed(), self.p as u64, to as u64, tag);
                    std::thread::sleep(crate::fault::backoff(SIGNAL_BACKOFF, attempt, seed));
                    attempt += 1;
                }
            }
        }
    }

    /// Receives the next signal for *this* round, parking strays. A wait
    /// longer than the configured timeout is a typed error — lost
    /// signals and dead peers must not hang the build.
    fn recv(&mut self) -> Result<Signal, BuildError> {
        let key = (self.step, self.round);
        if let Some(q) = self.parked.get_mut(&key) {
            if let Some(s) = q.pop() {
                return Ok(s);
            }
        }
        loop {
            let s = self.rx.recv_timeout(self.recv_timeout).map_err(|_| {
                BuildError::NegotiationTimeout {
                    rank: self.p,
                    step: self.step as usize,
                    round: self.round,
                }
            })?;
            if (s.step, s.round) == key {
                return Ok(s);
            }
            self.parked.entry((s.step, s.round)).or_default().push(s);
        }
    }
}

/// `find_agent` (Algorithm 2): walk the candidate list best-first,
/// keeping exactly one outstanding REQ, until accepted or exhausted.
fn propose(
    mut net: Round<'_>,
    cands: &[Rank],
    stats: &mut SelectionStats,
) -> Result<Option<Rank>, BuildError> {
    stats.agent_searches += 1;
    net.rec.negotiation_round(net.p);
    let mut state: HashMap<Rank, PairState> =
        cands.iter().map(|&c| (c, PairState::default())).collect();
    let mut selected: Option<Rank> = None;
    let mut current: Option<Rank> = None;

    if let Some(&first) = cands.first() {
        net.send(first, Kind::Req, stats);
        state.get_mut(&first).expect("candidate").sent = true;
        current = Some(first);
    }
    while state.values().any(|s| !s.sent || !s.received) {
        let sig = net.recv()?;
        let st = state.get_mut(&sig.from).expect("signal from a candidate");
        st.received = true;
        match sig.kind {
            Kind::Accept => {
                selected = Some(sig.from);
                stats.agents_found += 1;
                // dismiss everyone not yet contacted
                let pending: Vec<Rank> =
                    state.iter().filter(|(_, s)| !s.sent).map(|(&c, _)| c).collect();
                for c in pending {
                    net.send(c, Kind::Exit, stats);
                    state.get_mut(&c).expect("candidate").sent = true;
                }
            }
            Kind::Drop => {
                st.inactive = true;
                if !st.sent {
                    // unsolicited broadcast DROP: acknowledge
                    let from = sig.from;
                    net.send(from, Kind::Exit, stats);
                    state.get_mut(&from).expect("candidate").sent = true;
                } else if selected.is_none() && current == Some(sig.from) {
                    // our outstanding REQ was rejected: try the next one
                    if let Some(&next) = cands.iter().find(|c| !state[c].sent && !state[c].inactive)
                    {
                        net.send(next, Kind::Req, stats);
                        state.get_mut(&next).expect("candidate").sent = true;
                        current = Some(next);
                    }
                }
            }
            Kind::Req | Kind::Exit => {
                unreachable!("proposer received {:?}", sig.kind)
            }
        }
    }
    Ok(selected)
}

/// `find_origin` (Algorithm 3): accept the best-scoring proposer that has
/// REQ'd (re-evaluated after every event), broadcast DROP to the rest on
/// match, acknowledge EXITs.
fn accept(
    mut net: Round<'_>,
    cands: &[Rank],
    stats: &mut SelectionStats,
) -> Result<Option<Rank>, BuildError> {
    net.rec.negotiation_round(net.p);
    let mut state: HashMap<Rank, PairState> =
        cands.iter().map(|&c| (c, PairState::default())).collect();
    let mut selected: Option<Rank> = None;

    while state.values().any(|s| !s.sent || !s.received) {
        // accept the best live waiter, if any
        if selected.is_none() {
            let best_live = cands.iter().copied().find(|c| !state[c].inactive && !state[c].sent);
            if let Some(best) = best_live {
                if state[&best].waiting {
                    selected = Some(best);
                    net.send(best, Kind::Accept, stats);
                    state.get_mut(&best).expect("candidate").sent = true;
                    // broadcast DROP to everyone else not yet answered
                    let pending: Vec<Rank> =
                        state.iter().filter(|(_, s)| !s.sent).map(|(&c, _)| c).collect();
                    for c in pending {
                        net.send(c, Kind::Drop, stats);
                        state.get_mut(&c).expect("candidate").sent = true;
                    }
                    continue;
                }
            }
        }
        if !state.values().any(|s| !s.sent || !s.received) {
            break;
        }
        let sig = net.recv()?;
        let st = state.get_mut(&sig.from).expect("signal from a candidate");
        st.received = true;
        match sig.kind {
            Kind::Req => {
                if st.sent {
                    // our broadcast DROP crossed this REQ: both done
                } else if selected.is_some() {
                    let from = sig.from;
                    net.send(from, Kind::Drop, stats);
                    state.get_mut(&from).expect("candidate").sent = true;
                } else {
                    st.waiting = true;
                }
            }
            Kind::Exit => {
                st.inactive = true;
                if !st.sent {
                    let from = sig.from;
                    net.send(from, Kind::Drop, stats);
                    state.get_mut(&from).expect("candidate").sent = true;
                }
            }
            Kind::Accept | Kind::Drop => {
                unreachable!("acceptor received {:?}", sig.kind)
            }
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use crate::exec::{Executor, Virtual};
    use crate::lower::lower;
    use nhood_topology::random::erdos_renyi;

    fn check(graph: &Topology, layout: &ClusterLayout) -> DhPattern {
        let pat = build_pattern_distributed(graph, layout).expect("builds");
        let plan = lower(&pat, graph);
        plan.validate(graph).expect("exactly-once delivery");
        let payloads = test_payloads(graph.n(), 8, 3);
        let got = Virtual.run_simple(&plan, graph, &payloads).expect("executes");
        assert_eq!(got, reference_allgather(graph, &payloads));
        pat
    }

    #[test]
    fn distributed_negotiation_yields_valid_patterns() {
        for (n, delta) in [(16usize, 0.3), (24, 0.5), (32, 0.1), (17, 0.6)] {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            check(&g, &layout);
        }
    }

    #[test]
    fn repeated_runs_always_valid_under_scheduling_noise() {
        let g = erdos_renyi(24, 0.4, 9);
        let layout = ClusterLayout::new(3, 2, 4);
        for _ in 0..10 {
            check(&g, &layout);
        }
    }

    #[test]
    fn empty_and_single_socket() {
        let g = Topology::from_edges(8, []);
        let layout = ClusterLayout::new(2, 2, 2);
        let pat = check(&g, &layout);
        assert_eq!(pat.stats.total_signals(), 0);
        let g = erdos_renyi(8, 0.5, 2);
        let one_socket = ClusterLayout::new(1, 1, 8);
        let pat = check(&g, &one_socket);
        assert_eq!(pat.max_steps(), 0);
    }

    #[test]
    fn matches_sequential_structure_on_full_graph() {
        // on the complete graph every search succeeds in both builders,
        // so the aggregate structure must agree even if pairings differ
        let n = 16;
        let g = Topology::from_edges(
            n,
            (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j))),
        );
        let layout = ClusterLayout::new(2, 2, 4);
        let dist = check(&g, &layout);
        let seq = crate::builder::build_pattern(&g, &layout).expect("builds");
        assert_eq!(dist.max_steps(), seq.max_steps());
        assert_eq!(dist.stats.agents_found, seq.stats.agents_found);
        for (d, s) in dist.ranks.iter().zip(&seq.ranks) {
            assert_eq!(d.held_final.len(), s.held_final.len());
        }
    }

    #[test]
    fn signal_counts_respect_two_message_invariant() {
        let g = erdos_renyi(24, 0.5, 4);
        let layout = ClusterLayout::new(3, 2, 4);
        let pat = build_pattern_distributed(&g, &layout).expect("builds");
        let s = &pat.stats;
        // every pairwise exchange is exactly two messages, so the total
        // signal count is even and splits evenly between directions
        assert_eq!(s.total_signals() % 2, 0);
        assert_eq!(s.accept, s.agents_found);
        // proposer-side sends (REQ + EXIT) equal acceptor-side sends
        // (ACCEPT + DROP): one message each way per pair
        assert_eq!(s.req + s.exit, s.accept + s.drop);
    }

    #[test]
    fn survivable_drop_rate_still_builds_valid_patterns() {
        let g = erdos_renyi(24, 0.4, 6);
        let layout = ClusterLayout::new(3, 2, 4);
        // 5% drop with a 5-retry budget: loss odds per signal ≈ 1.6e-8
        let fp = FaultPlan::seeded(31)
            .with_message_drop(0.05)
            .with_message_delay(0.1, Duration::from_micros(300));
        let pat = build_pattern_distributed_faulty(&g, &layout, Some(&fp), Duration::from_secs(10))
            .expect("survivable schedule must build");
        let plan = lower(&pat, &g);
        plan.validate(&g).expect("exactly-once delivery");
        let payloads = test_payloads(24, 8, 3);
        let got = Virtual.run_simple(&plan, &g, &payloads).expect("executes");
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn unsurvivable_drops_time_out_typed_not_hang() {
        let g = erdos_renyi(16, 0.5, 8);
        let layout = ClusterLayout::new(2, 2, 4);
        // every signal is dropped every time: negotiation cannot proceed
        let fp = FaultPlan::seeded(1).with_message_drop(1.0);
        let t0 = std::time::Instant::now();
        let err =
            build_pattern_distributed_faulty(&g, &layout, Some(&fp), Duration::from_millis(100))
                .expect_err("nothing can be negotiated");
        assert!(
            matches!(err, BuildError::NegotiationTimeout { .. }),
            "expected NegotiationTimeout, got {err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(10), "must not hang");
    }
}
