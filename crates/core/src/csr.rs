//! Flat CSR (`offsets`/`targets`) responsibility maps.
//!
//! The responsibility map of a [`crate::pattern::RankPattern`] — block
//! `b` → the targets still owed a delivery of `b` — used to be a
//! `BTreeMap<Rank, Vec<Rank>>`, which puts a pointer chase on every
//! lookup of the lowering hot path. [`RespMap`] stores the same relation
//! as three flat arrays (sorted keys, offsets, concatenated target
//! lists): reads are a binary search plus a slice, iteration is linear
//! over contiguous memory, and equality/hashing see a canonical form.
//!
//! The builder mutates responsibilities incrementally while halving
//! steps execute, so the map has a two-phase life: [`RespBuilder`]
//! (sorted association list, cheap in-place edits) during
//! `assemble_pattern`, frozen into an immutable [`RespMap`] when the
//! pattern is done.

use nhood_topology::Rank;

/// A frozen block → targets map in CSR form. Keys are sorted and unique;
/// each key's target list is a contiguous slice of `targets`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RespMap {
    keys: Vec<Rank>,
    /// `offsets.len() == keys.len() + 1`; entry `i`'s targets are
    /// `targets[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    targets: Vec<Rank>,
}

impl Default for RespMap {
    fn default() -> Self {
        Self::new()
    }
}

impl RespMap {
    /// The empty map.
    pub fn new() -> Self {
        Self { keys: Vec::new(), offsets: vec![0], targets: Vec::new() }
    }

    /// Builds a map from `(block, targets)` entries. Entries are sorted
    /// by block; empty target lists are dropped; entries sharing a block
    /// are **merged** (their targets unioned, sorted, deduplicated).
    /// Merging must happen in release builds too — a `debug_assert` here
    /// once let duplicate keys through silently, producing a map whose
    /// binary-search lookups and canonical equality were both wrong.
    pub fn from_entries(mut entries: Vec<(Rank, Vec<Rank>)>) -> Self {
        entries.sort_unstable_by_key(|e| e.0);
        entries.retain(|e| !e.1.is_empty());
        let mut map = Self::new();
        map.keys.reserve(entries.len());
        let mut entries = entries.into_iter().peekable();
        while let Some((block, mut targets)) = entries.next() {
            let mut merged = false;
            while entries.peek().is_some_and(|e| e.0 == block) {
                targets.extend(entries.next().expect("peeked").1);
                merged = true;
            }
            if merged {
                targets.sort_unstable();
                targets.dedup();
            }
            map.keys.push(block);
            map.targets.extend_from_slice(&targets);
            map.offsets.push(map.targets.len() as u32);
        }
        map
    }

    /// Inserts (or replaces) one entry, keeping the CSR canonical. An
    /// empty `targets` removes the entry. O(total) rebuild — meant for
    /// construction in tests and small fix-ups, not hot paths (the
    /// builder uses [`RespBuilder`]).
    pub fn insert(&mut self, block: Rank, targets: Vec<Rank>) {
        let mut entries: Vec<(Rank, Vec<Rank>)> =
            self.iter().filter(|&(b, _)| b != block).map(|(b, t)| (b, t.to_vec())).collect();
        if !targets.is_empty() {
            entries.push((block, targets));
        }
        *self = Self::from_entries(entries);
    }

    /// The targets owed for `block`, if any.
    pub fn get(&self, block: Rank) -> Option<&[Rank]> {
        let i = self.keys.binary_search(&block).ok()?;
        Some(&self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Iterates `(block, targets)` entries in block order.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &[Rank])> {
        self.keys.iter().enumerate().map(move |(i, &b)| {
            (b, &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize])
        })
    }

    /// Iterates the target lists in block order.
    pub fn values(&self) -> impl Iterator<Item = &[Rank]> {
        self.iter().map(|(_, t)| t)
    }

    /// The sorted block keys.
    pub fn blocks(&self) -> &[Rank] {
        &self.keys
    }

    /// Number of blocks with at least one owed target.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no deliveries are owed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total owed (block, target) deliveries — the final-phase block
    /// volume of this rank.
    pub fn total_targets(&self) -> usize {
        self.targets.len()
    }
}

/// Mutable companion of [`RespMap`]: a sorted association list
/// supporting the three edits `assemble_pattern` performs per halving
/// step (read for the descriptor `D`, drop offloaded targets, merge a
/// received descriptor batch).
#[derive(Clone, Debug, Default)]
pub struct RespBuilder {
    /// Sorted by block, no empty target lists.
    entries: Vec<(Rank, Vec<Rank>)>,
}

impl RespBuilder {
    /// A builder holding one initial entry (skipped when `targets` is
    /// empty) — each rank starts responsible for its own block's
    /// deliveries.
    pub fn seeded(block: Rank, targets: &[Rank]) -> Self {
        if targets.is_empty() {
            Self::default()
        } else {
            Self { entries: vec![(block, targets.to_vec())] }
        }
    }

    /// Iterates `(block, targets)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &[Rank])> {
        self.entries.iter().map(|(b, t)| (*b, t.as_slice()))
    }

    /// Drops every target for which `keep` is false; entries left with no
    /// targets disappear.
    pub fn retain_targets(&mut self, keep: impl Fn(Rank) -> bool) {
        self.entries.retain_mut(|(_, targets)| {
            targets.retain(|&t| keep(t));
            !targets.is_empty()
        });
    }

    /// Merges `moved` into `block`'s target list (sorted, deduplicated),
    /// creating the entry if needed. `moved` must be non-empty.
    pub fn merge(&mut self, block: Rank, moved: &[Rank]) {
        debug_assert!(!moved.is_empty());
        match self.entries.binary_search_by_key(&block, |e| e.0) {
            Ok(i) => {
                let targets = &mut self.entries[i].1;
                targets.extend_from_slice(moved);
                targets.sort_unstable();
                targets.dedup();
            }
            Err(i) => {
                let mut targets = moved.to_vec();
                targets.sort_unstable();
                targets.dedup();
                self.entries.insert(i, (block, targets));
            }
        }
    }

    /// Freezes into the immutable CSR form.
    pub fn freeze(self) -> RespMap {
        RespMap::from_entries(self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_roundtrip() {
        let m = RespMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.total_targets(), 0);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.get(0), None);
        assert_eq!(m, RespMap::default());
        assert_eq!(m, RespBuilder::default().freeze());
    }

    #[test]
    fn from_entries_sorts_and_drops_empty() {
        let m = RespMap::from_entries(vec![(5, vec![1, 2]), (0, vec![9]), (3, vec![])]);
        assert_eq!(m.blocks(), &[0, 5]);
        assert_eq!(m.get(0), Some(&[9][..]));
        assert_eq!(m.get(5), Some(&[1, 2][..]));
        assert_eq!(m.get(3), None);
        assert_eq!(m.total_targets(), 3);
        let pairs: Vec<(Rank, Vec<Rank>)> = m.iter().map(|(b, t)| (b, t.to_vec())).collect();
        assert_eq!(pairs, vec![(0, vec![9]), (5, vec![1, 2])]);
    }

    #[test]
    fn duplicate_blocks_merge_in_release_builds_too() {
        // Regression: this used to be a debug_assert only, so release
        // builds silently froze maps with duplicate keys — get() then
        // returned an arbitrary one of the duplicate slices and equality
        // saw non-canonical forms.
        let m = RespMap::from_entries(vec![(2, vec![5, 1]), (0, vec![3]), (2, vec![1, 9])]);
        assert_eq!(m.blocks(), &[0, 2]);
        assert_eq!(m.get(0), Some(&[3][..]));
        assert_eq!(m.get(2), Some(&[1, 5, 9][..]));
        assert_eq!(m.total_targets(), 4);
        assert_eq!(m.len(), 2);
        // canonical equality regardless of how the duplicates were split
        let n = RespMap::from_entries(vec![(0, vec![3]), (2, vec![1, 5, 9])]);
        assert_eq!(m, n);
        // non-duplicate entries keep their given target order
        let o = RespMap::from_entries(vec![(1, vec![9, 4])]);
        assert_eq!(o.get(1), Some(&[9, 4][..]));
    }

    #[test]
    fn insert_replaces_and_removes() {
        let mut m = RespMap::new();
        m.insert(2, vec![4, 5]);
        m.insert(1, vec![7]);
        assert_eq!(m.blocks(), &[1, 2]);
        m.insert(2, vec![8]);
        assert_eq!(m.get(2), Some(&[8][..]));
        m.insert(1, vec![]);
        assert_eq!(m.blocks(), &[2]);
    }

    #[test]
    fn canonical_equality_regardless_of_construction_order() {
        let a = RespMap::from_entries(vec![(1, vec![2]), (3, vec![4, 5])]);
        let mut b = RespMap::new();
        b.insert(3, vec![4, 5]);
        b.insert(1, vec![2]);
        assert_eq!(a, b);
    }

    #[test]
    fn builder_edits_mirror_assembly_steps() {
        let mut rb = RespBuilder::seeded(0, &[1, 2, 5, 6]);
        // offload targets 5 and 6 (the opposite half)
        rb.retain_targets(|t| t < 4);
        assert_eq!(rb.iter().collect::<Vec<_>>(), vec![(0, &[1, 2][..])]);
        // a descriptor arrives: block 3 owes {2, 7}, then more of block 0
        rb.merge(3, &[7, 2]);
        rb.merge(0, &[2, 4]); // 2 already present — dedup
        let m = rb.freeze();
        assert_eq!(m.get(0), Some(&[1, 2, 4][..]));
        assert_eq!(m.get(3), Some(&[2, 7][..]));
        assert_eq!(m.total_targets(), 5);
    }

    #[test]
    fn builder_retain_can_empty_everything() {
        let mut rb = RespBuilder::seeded(1, &[2, 3]);
        rb.retain_targets(|_| false);
        assert!(rb.freeze().is_empty());
        // seeding with no targets is already empty
        assert!(RespBuilder::seeded(0, &[]).freeze().is_empty());
    }
}
