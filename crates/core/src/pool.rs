//! Re-export of the dependency-free worker pool.
//!
//! The pool originally lived in this crate, but the sharded simnet
//! engine (`nhood-simnet`, which `nhood-core` depends on) needs it too,
//! so the implementation moved down the dependency graph to
//! [`nhood_cluster::pool`]. This module keeps every existing
//! `nhood_core::pool::WorkerPool` path compiling unchanged.

pub use nhood_cluster::pool::WorkerPool;
