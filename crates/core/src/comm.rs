//! The public communicator API — the `MPI_Dist_graph_create_adjacent` /
//! `MPI_Neighbor_allgather` surface of this library.
//!
//! ```
//! use nhood_cluster::ClusterLayout;
//! use nhood_core::comm::DistGraphComm;
//! use nhood_core::plan::Algorithm;
//! use nhood_topology::random::erdos_renyi;
//!
//! let graph = erdos_renyi(16, 0.3, 42);
//! let layout = ClusterLayout::new(2, 2, 4);
//! let comm = DistGraphComm::create_adjacent(graph, layout).unwrap();
//! let payloads: Vec<Vec<u8>> = (0..16).map(|r| vec![r as u8; 8]).collect();
//! let rbufs = comm.neighbor_allgather(Algorithm::DistanceHalving, &payloads).unwrap();
//! assert_eq!(rbufs.len(), 16);
//! ```

use crate::builder::{build_pattern, BuildError};
use crate::common_neighbor::plan_common_neighbor;
use crate::exec::sim_exec::{simulate, SimCost};
use crate::exec::virtual_exec::run_virtual;
use crate::exec::ExecError;
use crate::lower::lower;
use crate::naive::plan_naive;
use crate::plan::{Algorithm, CollectivePlan};
use nhood_cluster::ClusterLayout;
use nhood_simnet::{SimError, SimReport};
use nhood_topology::Topology;

/// Errors from the communicator API.
#[derive(Debug)]
pub enum CommError {
    /// Pattern construction failed.
    Build(BuildError),
    /// Plan execution failed.
    Exec(ExecError),
    /// Simulation failed.
    Sim(SimError),
    /// A produced plan failed validation — an internal bug, surfaced
    /// loudly rather than silently returning wrong data.
    InvalidPlan(String),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Build(e) => write!(f, "pattern build failed: {e}"),
            CommError::Exec(e) => write!(f, "execution failed: {e}"),
            CommError::Sim(e) => write!(f, "simulation failed: {e}"),
            CommError::InvalidPlan(m) => write!(f, "internal plan invariant violated: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<BuildError> for CommError {
    fn from(e: BuildError) -> Self {
        CommError::Build(e)
    }
}
impl From<ExecError> for CommError {
    fn from(e: ExecError) -> Self {
        CommError::Exec(e)
    }
}
impl From<SimError> for CommError {
    fn from(e: SimError) -> Self {
        CommError::Sim(e)
    }
}

/// A communicator with an attached virtual topology and cluster layout.
///
/// Construction corresponds to `MPI_Dist_graph_create_adjacent`: it is
/// the point where pattern-creation work happens (and where Distance
/// Halving pays its one-time agent-selection overhead — see Fig. 8).
#[derive(Clone, Debug)]
pub struct DistGraphComm {
    graph: Topology,
    layout: ClusterLayout,
}

impl DistGraphComm {
    /// Creates a communicator. Fails if the layout has fewer cores than
    /// the topology has ranks.
    pub fn create_adjacent(graph: Topology, layout: ClusterLayout) -> Result<Self, CommError> {
        if graph.n() > layout.capacity() {
            return Err(CommError::Build(BuildError::LayoutTooSmall {
                ranks: graph.n(),
                capacity: layout.capacity(),
            }));
        }
        Ok(Self { graph, layout })
    }

    /// The virtual topology.
    pub fn graph(&self) -> &Topology {
        &self.graph
    }

    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Builds (and validates) the data-movement plan for an algorithm.
    pub fn plan(&self, algo: Algorithm) -> Result<CollectivePlan, CommError> {
        let plan = match algo {
            Algorithm::Naive => plan_naive(&self.graph),
            Algorithm::CommonNeighbor { k } => plan_common_neighbor(&self.graph, k),
            Algorithm::DistanceHalving => {
                let pattern = build_pattern(&self.graph, &self.layout)?;
                lower(&pattern, &self.graph)
            }
            Algorithm::HierarchicalLeader { leaders_per_node } => {
                crate::leader::plan_hierarchical_leader(&self.graph, &self.layout, leaders_per_node)
            }
        };
        plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
        Ok(plan)
    }

    /// One-call neighborhood allgather: plans `algo` and executes it with
    /// the virtual executor. Returns each rank's receive buffer
    /// (in-neighbor payloads concatenated in `in_neighbors` order).
    pub fn neighbor_allgather(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let plan = self.plan(algo)?;
        Ok(run_virtual(&plan, &self.graph, payloads)?)
    }

    /// The `neighbor_allgatherv` variant of
    /// [`neighbor_allgather`](Self::neighbor_allgather): per-rank
    /// payloads may differ in length. The receive buffer of rank `r`
    /// concatenates its in-neighbors' payloads, each at its own size.
    pub fn neighbor_allgatherv(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let plan = self.plan(algo)?;
        Ok(crate::exec::virtual_exec::run_virtual_v(&plan, &self.graph, payloads)?)
    }

    /// Neighborhood **alltoall**: `sbufs[p]` holds one distinct `m`-byte
    /// block per outgoing neighbor (in `O(p)` order); returns per-rank
    /// receive buffers with one block per incoming neighbor (in `I(r)`
    /// order). Supports [`Algorithm::Naive`] and
    /// [`Algorithm::DistanceHalving`] (the paper's future-work variant,
    /// see [`crate::alltoall`]).
    pub fn neighbor_alltoall(
        &self,
        algo: Algorithm,
        sbufs: &[Vec<u8>],
        m: usize,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let plan = self.alltoall_plan(algo)?;
        Ok(crate::alltoall::run_alltoall_virtual(&plan, &self.graph, sbufs, m)?)
    }

    /// Builds (and validates) an alltoall plan.
    ///
    /// # Panics
    /// Panics for [`Algorithm::CommonNeighbor`], which is not defined for
    /// alltoall.
    pub fn alltoall_plan(
        &self,
        algo: Algorithm,
    ) -> Result<crate::alltoall::AlltoallPlan, CommError> {
        let plan = match algo {
            Algorithm::Naive => crate::alltoall::plan_naive_alltoall(&self.graph),
            Algorithm::DistanceHalving => {
                let pattern = build_pattern(&self.graph, &self.layout)?;
                crate::alltoall::plan_dh_alltoall(&pattern, &self.graph)
            }
            Algorithm::CommonNeighbor { .. } | Algorithm::HierarchicalLeader { .. } => {
                panic!("alltoall supports only the naive and distance-halving algorithms")
            }
        };
        plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
        Ok(plan)
    }

    /// Simulated latency of `algo` at per-rank message size `m`.
    pub fn latency(&self, algo: Algorithm, m: usize, cost: &SimCost) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(simulate(&plan, &self.layout, m, cost)?)
    }

    /// Simulated latency with per-rank payload sizes (`allgatherv`).
    pub fn latency_v(
        &self,
        algo: Algorithm,
        sizes: &[usize],
        cost: &SimCost,
    ) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(crate::exec::sim_exec::simulate_v(&plan, &self.layout, sizes, cost)?)
    }

    /// Sweeps Common Neighbor over `ks` and returns `(k, plan)` with the
    /// lowest simulated latency at message size `m` — the paper launches
    /// CN "with various values of K" and reports the best.
    pub fn best_common_neighbor(
        &self,
        ks: &[usize],
        m: usize,
        cost: &SimCost,
    ) -> Result<(usize, CollectivePlan), CommError> {
        assert!(!ks.is_empty(), "need at least one K to sweep");
        let mut best: Option<(f64, usize, CollectivePlan)> = None;
        for &k in ks {
            let plan = self.plan(Algorithm::CommonNeighbor { k })?;
            let t = simulate(&plan, &self.layout, m, cost)?.makespan;
            if best.as_ref().is_none_or(|(bt, ..)| t < *bt) {
                best = Some((t, k, plan));
            }
        }
        let (_, k, plan) = best.expect("ks is non-empty");
        Ok((k, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use nhood_topology::random::erdos_renyi;

    fn comm(n: usize, delta: f64) -> DistGraphComm {
        let graph = erdos_renyi(n, delta, 21);
        let layout = ClusterLayout::new(n / 8, 2, 4);
        DistGraphComm::create_adjacent(graph, layout).unwrap()
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 16, 5);
        let want = reference_allgather(c.graph(), &payloads);
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::DistanceHalving,
        ] {
            let got = c.neighbor_allgather(algo, &payloads).unwrap();
            assert_eq!(got, want, "{algo}");
        }
    }

    #[test]
    fn create_rejects_oversized_graph() {
        let graph = erdos_renyi(100, 0.1, 1);
        let layout = ClusterLayout::new(2, 2, 4);
        assert!(matches!(
            DistGraphComm::create_adjacent(graph, layout),
            Err(CommError::Build(BuildError::LayoutTooSmall { ranks: 100, capacity: 16 }))
        ));
    }

    #[test]
    fn latency_positive_and_algorithm_dependent() {
        let c = comm(64, 0.5);
        let cost = SimCost::niagara();
        let tn = c.latency(Algorithm::Naive, 64, &cost).unwrap().makespan;
        let td = c.latency(Algorithm::DistanceHalving, 64, &cost).unwrap().makespan;
        assert!(tn > 0.0 && td > 0.0);
        assert_ne!(tn, td);
    }

    #[test]
    fn best_k_sweep_picks_a_swept_value() {
        let c = comm(32, 0.4);
        let cost = SimCost::niagara();
        let (k, plan) = c.best_common_neighbor(&[2, 4, 8], 256, &cost).unwrap();
        assert!([2, 4, 8].contains(&k));
        assert_eq!(plan.algorithm, Algorithm::CommonNeighbor { k });
        // the chosen K is at least as good as the others
        let t_best = simulate(&plan, c.layout(), 256, &cost).unwrap().makespan;
        for other in [2usize, 4, 8] {
            let p = c.plan(Algorithm::CommonNeighbor { k: other }).unwrap();
            let t = simulate(&p, c.layout(), 256, &cost).unwrap().makespan;
            assert!(t_best <= t + 1e-15, "k={other} beat the sweep winner");
        }
    }

    #[test]
    fn plan_exposes_selection_stats_only_for_dh() {
        let c = comm(32, 0.3);
        assert!(c.plan(Algorithm::Naive).unwrap().selection.is_none());
        assert!(c.plan(Algorithm::DistanceHalving).unwrap().selection.is_some());
    }
}
