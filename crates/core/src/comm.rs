//! The public communicator API — the `MPI_Dist_graph_create_adjacent` /
//! `MPI_Neighbor_*` surface of this library, fronted by the
//! collective-agnostic [`DistGraphComm::collective`] entry point.
//!
//! ```
//! use nhood_cluster::ClusterLayout;
//! use nhood_core::collective::CollectiveRequest;
//! use nhood_core::comm::DistGraphComm;
//! use nhood_core::plan::Algorithm;
//! use nhood_topology::random::erdos_renyi;
//!
//! let graph = erdos_renyi(16, 0.3, 42);
//! let layout = ClusterLayout::new(2, 2, 4);
//! let comm = DistGraphComm::create_adjacent(graph, layout).unwrap();
//! let payloads: Vec<Vec<u8>> = (0..16).map(|r| vec![r as u8; 8]).collect();
//! let req = CollectiveRequest::allgather(&payloads).algorithm(Algorithm::DistanceHalving);
//! let out = comm.collective(&req).unwrap();
//! assert_eq!(out.rbufs.len(), 16);
//! ```

use crate::alltoall::AlltoallPlan;
use crate::arena::BlockArena;
use crate::builder::{build_pattern_pooled, BuildError, PairingStrategy};
use crate::collective::{
    check_support, derive_sizes, run_combining_threaded, run_combining_virtual, CollectiveOp,
    CollectiveOutput, CollectiveRequest, ExecBackend, Reduction,
};
use crate::common_neighbor::plan_common_neighbor;
use crate::distributed_builder::build_pattern_distributed_pooled_v;
use crate::exec::sim_exec::{simulate, simulate_v, SimCost};
use crate::exec::threaded::DEFAULT_TIMEOUT;
use crate::exec::{ExecError, ExecOptions, Executor, Threaded, Virtual};
use crate::fault::{FaultCounts, FaultPlan, FaultStats};
use crate::lower::lower_pooled;
use crate::naive::plan_naive;
use crate::pattern::DhPattern;
use crate::plan::{Algorithm, CollectivePlan, PlanValidationError};
use crate::plan_cache::{PlanCache, PlanFingerprint};
use crate::pool::WorkerPool;
use crate::repair::{repair_for_churn, repair_link_down, Completeness, RepairPolicy};
use crate::sizes::{BlockSizes, LoadMetric};
use nhood_cluster::ClusterLayout;
use nhood_simnet::{Engine, SimError, SimReport};
use nhood_telemetry::{labels, Counts, Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Errors from the communicator API.
#[derive(Debug)]
pub enum CommError {
    /// Pattern construction failed.
    Build(BuildError),
    /// Plan execution failed.
    Exec(ExecError),
    /// Simulation failed.
    Sim(SimError),
    /// A produced plan failed validation — an internal bug, surfaced
    /// loudly (and typed, so tests can match on the cause) rather than
    /// silently returning wrong data.
    InvalidPlan(PlanValidationError),
    /// A produced alltoall plan failed validation.
    InvalidAlltoallPlan(String),
    /// The requested (op, algorithm, robustness, backend) combination is
    /// outside the support matrix (see docs/EXECUTION_API.md) — e.g.
    /// Common Neighbor has no item-routing formulation, and robust
    /// execution covers the allgather family only.
    UnsupportedCollective {
        /// The collective that was requested.
        op: CollectiveOp,
        /// The algorithm it was requested under.
        algorithm: Algorithm,
        /// Which support-matrix rule rejected it.
        reason: &'static str,
    },
    /// The reduction itself is malformed: an undefined operator/lane
    /// combination, or block lengths that don't split into whole lanes.
    InvalidReduction {
        /// The offending reduction.
        reduction: Reduction,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// An algorithm parameter is degenerate for this communicator —
    /// e.g. `CommonNeighbor { k: 0 }`, `Pat { radix: 0 | 1 }` or
    /// `HierarchicalLeader { leaders_per_node: 0 }`. Oversized but
    /// well-formed parameters are clamped instead (see
    /// [`DistGraphComm::normalize_algorithm`]); only parameters with no
    /// sensible reading reject.
    BadAlgorithmParam {
        /// The offending algorithm as requested.
        algorithm: Algorithm,
        /// Which parameter rule rejected it.
        reason: &'static str,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Build(e) => write!(f, "pattern build failed: {e}"),
            CommError::Exec(e) => write!(f, "execution failed: {e}"),
            CommError::Sim(e) => write!(f, "simulation failed: {e}"),
            CommError::InvalidPlan(m) => write!(f, "internal plan invariant violated: {m}"),
            CommError::InvalidAlltoallPlan(m) => {
                write!(f, "internal alltoall plan invariant violated: {m}")
            }
            CommError::UnsupportedCollective { op, algorithm, reason } => {
                write!(f, "{op} under {algorithm} is unsupported: {reason}")
            }
            CommError::InvalidReduction { reduction, reason } => {
                write!(f, "invalid reduction {reduction}: {reason}")
            }
            CommError::BadAlgorithmParam { algorithm, reason } => {
                write!(f, "invalid parameter for {algorithm}: {reason}")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<BuildError> for CommError {
    fn from(e: BuildError) -> Self {
        CommError::Build(e)
    }
}
impl From<ExecError> for CommError {
    fn from(e: ExecError) -> Self {
        CommError::Exec(e)
    }
}
impl From<SimError> for CommError {
    fn from(e: SimError) -> Self {
        CommError::Sim(e)
    }
}

/// Robustness knobs of a communicator: timeouts, the retry policy of the
/// threaded transport, link-down self-healing, and whether failures
/// degrade to the naive plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustPolicy {
    /// Per-receive timeout of the threaded executor (previously the
    /// hard-coded `DEFAULT_TIMEOUT`).
    pub recv_timeout: Duration,
    /// Optional wall-clock budget per plan phase; `None` leaves only the
    /// per-receive timeout.
    pub phase_deadline: Option<Duration>,
    /// Per-receive timeout of the distributed pattern negotiation.
    pub negotiation_timeout: Duration,
    /// Retransmissions per message under fault injection.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Degrade to the naive plan when Distance Halving pattern
    /// construction or execution fails, instead of returning the error.
    pub fallback_to_naive: bool,
    /// When a link dies mid-execution, repair the plan around it
    /// ([`crate::repair::repair_link_down`]) and re-execute, instead of
    /// immediately degrading to naive (which would cross the same dead
    /// link anyway whenever it is a graph edge).
    pub repair_link_down: bool,
    /// Blast-radius bounds for incremental repairs — both mid-run
    /// link-down recovery and [`DistGraphComm::mutate`].
    pub repair: RepairPolicy,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        Self {
            recv_timeout: DEFAULT_TIMEOUT,
            phase_deadline: None,
            negotiation_timeout: crate::distributed_builder::RECV_TIMEOUT,
            max_retries: 4,
            backoff_base: Duration::from_micros(200),
            fallback_to_naive: true,
            repair_link_down: true,
            repair: RepairPolicy::default(),
        }
    }
}

/// Why a robust allgather abandoned the requested algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Pattern construction (the distributed negotiation) failed.
    BuildFailed(String),
    /// The plan built, but executing it failed.
    ExecFailed(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::BuildFailed(e) => write!(f, "pattern build failed ({e})"),
            FallbackReason::ExecFailed(e) => write!(f, "execution failed ({e})"),
        }
    }
}

/// Structured outcome of [`DistGraphComm::neighbor_allgather_robust`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// The algorithm the caller asked for.
    pub requested: Algorithm,
    /// The algorithm whose plan actually produced the buffers.
    pub used: Algorithm,
    /// `Some` iff the run degraded from `requested` to `used`.
    pub fallback: Option<FallbackReason>,
    /// Faults injected and retries spent, across **every** attempt this
    /// call made — the failed primary run, repaired re-executions and
    /// the naive fallback all tally into one shared sink.
    pub faults: FaultCounts,
    /// Telemetry counter totals, when the run was given a counting
    /// recorder (see
    /// [`DistGraphComm::neighbor_allgather_robust_recorded`]); `None`
    /// otherwise.
    pub counters: Option<Counts>,
    /// Mid-execution link-down repairs performed before the buffers were
    /// produced (0 on the happy path).
    pub repairs: u32,
    /// Ranks that did not receive every in-neighbor block the virtual
    /// topology promises (targets of dropped deliveries), ascending.
    /// Empty unless `completeness` is degraded.
    pub degraded_ranks: Vec<Rank>,
    /// Whether the returned buffers honor the full virtual topology or a
    /// quorum-degraded subset of it.
    pub completeness: Completeness,
}

impl ExecReport {
    /// `true` if the requested algorithm completed without degradation:
    /// no fallback, no mid-run repairs, every delivery served.
    pub fn clean(&self) -> bool {
        self.fallback.is_none() && self.repairs == 0 && self.completeness.is_full()
    }
}

impl std::fmt::Display for ExecReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.fallback {
            None => write!(f, "{} ok ({})", self.used, self.faults)?,
            Some(r) => {
                write!(f, "{} -> {} fallback: {r} ({})", self.requested, self.used, self.faults)?
            }
        }
        if self.repairs > 0 {
            write!(f, " [{} repairs]", self.repairs)?;
        }
        if let Completeness::Degraded { missing } = &self.completeness {
            write!(f, " [degraded: {} deliveries dropped]", missing.len())?;
        }
        if let Some(c) = &self.counters {
            write!(f, " [{c}]")?;
        }
        Ok(())
    }
}

/// What [`DistGraphComm::mutate`] did to absorb a topology change.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Edges actually added (after dropping no-ops the graph already had).
    pub edges_added: usize,
    /// Edges actually removed (after dropping edges the graph lacked).
    pub edges_removed: usize,
    /// `true` when the change was absorbed by a full pattern rebuild
    /// (cold slot, damage over threshold, or repair-round budget spent);
    /// `false` when the surgical repair path handled it.
    pub full_rebuild: bool,
    /// Ranks whose plan rows changed (= `n` for a full rebuild).
    pub changed_ranks: usize,
    /// `changed_ranks / n`.
    pub damage_frac: f64,
    /// Successive surgical repairs absorbed by the active plan since its
    /// last full build (resets to 0 on rebuild).
    pub repairs: u32,
}

/// The communicator's churn state: the live Distance Halving pattern and
/// plan that [`DistGraphComm::mutate`] patches in place, with the
/// fingerprint its cache entry lives under.
#[derive(Clone, Debug)]
struct ChurnSlot {
    pattern: Arc<DhPattern>,
    plan: Arc<CollectivePlan>,
    /// Cache key of `plan` (`None` when no cache is attached).
    fp: Option<PlanFingerprint>,
    /// Surgical repairs since the last full build.
    repairs: u32,
    /// Size table the pattern was negotiated against.
    sizes: BlockSizes,
}

/// A communicator with an attached virtual topology and cluster layout.
///
/// Construction corresponds to `MPI_Dist_graph_create_adjacent`: it is
/// the point where pattern-creation work happens (and where Distance
/// Halving pays its one-time agent-selection overhead — see Fig. 8).
#[derive(Clone, Debug)]
pub struct DistGraphComm {
    graph: Topology,
    layout: ClusterLayout,
    policy: RobustPolicy,
    fault: Option<FaultPlan>,
    cache: Option<Arc<PlanCache>>,
    build_pool: WorkerPool,
    metric: LoadMetric,
    sizes: Option<BlockSizes>,
    churn: Option<ChurnSlot>,
    /// Memo of the item-routing plan the combining family shares
    /// (alltoallv / reduce_scatter / allreduce all route identically).
    /// Keyed by [`PlanFingerprint::of_collective`] over the *current*
    /// graph, so `mutate` invalidates it for free; clones share the memo
    /// the way they share an attached [`PlanCache`].
    a2a_slot: A2aSlot,
    /// The §V cost model [`Algorithm::Auto`] scores candidates under.
    tuner_cost: SimCost,
    /// Memo of the tuner's winning plan, keyed like the cache entry
    /// ([`PlanFingerprint::of_tuner`]); shared by clones, cleared by
    /// [`Self::mutate`].
    tuner_slot: TunerSlot,
    /// Candidate simulations the tuner has performed through this
    /// communicator (and its clones) — the cache-effectiveness counter
    /// [`Self::tuner_sims`] exposes.
    tuner_sims: Arc<std::sync::atomic::AtomicU64>,
}

/// The shared memo cell for the combining family's item-routing plan.
type A2aSlot = Arc<Mutex<Option<(PlanFingerprint, Arc<AlltoallPlan>)>>>;

/// The shared memo cell for the auto-tuner's winning plan.
type TunerSlot = Arc<Mutex<Option<(PlanFingerprint, Arc<CollectivePlan>)>>>;

// Tenants of the collective service own one communicator each and may
// be dispatched from worker threads while sharing a plan cache — the
// communicator (and everything a robust run threads through it) must
// stay `Send + Sync`-clean. Compile-time pin, not a runtime check.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DistGraphComm>();
    assert_send_sync::<RobustPolicy>();
    assert_send_sync::<ExecReport>();
};

impl DistGraphComm {
    /// Creates a communicator. Fails if the layout has fewer cores than
    /// the topology has ranks.
    pub fn create_adjacent(graph: Topology, layout: ClusterLayout) -> Result<Self, CommError> {
        if graph.n() > layout.capacity() {
            return Err(CommError::Build(BuildError::LayoutTooSmall {
                ranks: graph.n(),
                capacity: layout.capacity(),
            }));
        }
        Ok(Self {
            graph,
            layout,
            policy: RobustPolicy::default(),
            fault: None,
            cache: None,
            build_pool: WorkerPool::serial(),
            metric: LoadMetric::default(),
            sizes: None,
            churn: None,
            a2a_slot: Arc::new(Mutex::new(None)),
            tuner_cost: SimCost::niagara(),
            tuner_slot: Arc::new(Mutex::new(None)),
            tuner_sims: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// Replaces the §V cost model [`Algorithm::Auto`] scores candidates
    /// under (default: [`SimCost::niagara`]). The cost model is part of
    /// the tuner cache key — two communicators tuning under different
    /// link speeds never share winners.
    pub fn with_tuner_cost(mut self, cost: SimCost) -> Self {
        self.tuner_cost = cost;
        self
    }

    /// The cost model the auto-tuner scores with.
    pub fn tuner_cost(&self) -> &SimCost {
        &self.tuner_cost
    }

    /// Total candidate simulations the auto-tuner has performed through
    /// this communicator and its clones. A second resolution of an
    /// identical tuner fingerprint must not move this counter — the
    /// winner comes from the memo or the attached [`PlanCache`].
    pub fn tuner_sims(&self) -> u64 {
        self.tuner_sims.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Selects the load metric of agent selection:
    /// [`LoadMetric::Neighbors`] (the paper's count-based scoring, the
    /// default) or [`LoadMetric::Bytes`], which weighs candidates by
    /// their block size — from [`Self::with_block_sizes`] when set,
    /// otherwise derived per call from the `allgatherv` payloads.
    pub fn with_load_metric(mut self, metric: LoadMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Pins the per-rank block-size table consulted by
    /// [`LoadMetric::Bytes`] selection (and by the size-aware plan-cache
    /// fingerprint). Without it, sized paths derive the table from the
    /// payloads they are handed.
    pub fn with_block_sizes(mut self, sizes: BlockSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// The active load metric.
    pub fn load_metric(&self) -> LoadMetric {
        self.metric
    }

    /// The pinned block-size table, if any.
    pub fn block_sizes(&self) -> Option<&BlockSizes> {
        self.sizes.as_ref()
    }

    /// The size table planning uses when nothing better is known: the
    /// pinned table, or the uniform default.
    fn planning_sizes(&self) -> BlockSizes {
        self.sizes.clone().unwrap_or_default()
    }

    /// Replaces the robustness policy (timeouts, retries, fallback).
    pub fn with_policy(mut self, policy: RobustPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault plan: the threaded executor and the distributed
    /// negotiation of [`Self::neighbor_allgather_robust`] consult it at
    /// every send.
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a shared plan cache: [`Self::plan_shared`] (and every
    /// collective that plans through it) first consults the cache, keyed
    /// by a [`PlanFingerprint`] of this communicator's topology, layout
    /// and the requested algorithm.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the worker-thread count for pattern construction and plan
    /// lowering (`0` = size to the host's available parallelism). The
    /// default is serial, which parallel builds are byte-identical to.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_pool = if threads == 0 { WorkerPool::auto() } else { WorkerPool::new(threads) };
        self
    }

    /// The plan-construction worker pool.
    pub fn build_pool(&self) -> &WorkerPool {
        &self.build_pool
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// The active robustness policy.
    pub fn policy(&self) -> &RobustPolicy {
        &self.policy
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The virtual topology.
    pub fn graph(&self) -> &Topology {
        &self.graph
    }

    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The live Distance Halving plan maintained across
    /// [`mutate`](Self::mutate) calls, if one has been built.
    pub fn churn_plan(&self) -> Option<&Arc<CollectivePlan>> {
        self.churn.as_ref().map(|s| &s.plan)
    }

    /// Absorbs a topology change — `edges_added` joins the neighborhood,
    /// `edges_removed` leaves it — by **repairing** the communicator's
    /// live Distance Halving plan instead of rebuilding it.
    ///
    /// The first call (or any call whose damage exceeds
    /// [`RepairPolicy::max_damage_frac`], or arriving after
    /// [`RepairPolicy::max_repair_rounds`] successive repairs) performs a
    /// full build on the new topology and validates it. Every other call
    /// runs [`crate::repair::repair_for_churn`]: all agent matchings are
    /// preserved and only the responsibility rows, final-phase messages
    /// and copy counts the changed edges touch are patched — the result
    /// is byte-identical to a decision-preserving rebuild (a property
    /// the repair engine pins with tests), so the surgical path skips
    /// re-validation and costs O(clone + changed) instead of a build.
    ///
    /// An attached [`PlanCache`] is kept coherent: the old entry is
    /// retired from both tiers and the patched plan is inserted under
    /// [`PlanFingerprint::mutated`], whose XOR delta makes an
    /// add-then-remove round trip land back on the original key.
    ///
    /// Edges the graph already has (for adds), lacks (for removes) and
    /// self-loops are ignored; `mutate(&[], &[])` is a warm-up that just
    /// (re)builds the slot. Subsequent collectives on this communicator
    /// plan against the mutated topology automatically.
    pub fn mutate(
        &mut self,
        edges_added: &[(Rank, Rank)],
        edges_removed: &[(Rank, Rank)],
    ) -> Result<MutationReport, CommError> {
        let mut added: Vec<(Rank, Rank)> = edges_added
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && u < self.n() && v < self.n() && !self.graph.has_edge(u, v))
            .collect();
        added.sort_unstable();
        added.dedup();
        let mut removed: Vec<(Rank, Rank)> =
            edges_removed.iter().copied().filter(|&(u, v)| self.graph.has_edge(u, v)).collect();
        removed.sort_unstable();
        removed.dedup();

        let gone: HashSet<(Rank, Rank)> = removed.iter().copied().collect();
        let new_graph = Topology::from_edges(
            self.n(),
            self.graph.edges().filter(|e| !gone.contains(e)).chain(added.iter().copied()),
        );
        let sizes = self.planning_sizes();
        let n = self.n();

        // Retire the auto-tuner's winner for the pre-churn topology.
        // The churned adjacency hashes to a fresh tuner key, so the old
        // entry could never be *served* again — but it would squat in
        // the LRU until evicted; drop it (and the memo) eagerly.
        if let Some(cache) = &self.cache {
            cache.retire(self.tuner_fingerprint_sized(&sizes));
        }
        *self.tuner_slot.lock().expect("tuner memo poisoned") = None;

        // Surgical attempt against the live slot, bounded by policy.
        let surgical = self.churn.as_ref().and_then(|slot| {
            if slot.repairs >= self.policy.repair.max_repair_rounds || slot.sizes != sizes {
                return None;
            }
            repair_for_churn(&slot.pattern, &slot.plan, &new_graph, &added, &removed)
                .ok()
                .filter(|rep| rep.damage_frac <= self.policy.repair.max_damage_frac)
        });

        let report = match surgical {
            Some(rep) => {
                let churned: Vec<(Rank, Rank)> =
                    added.iter().chain(removed.iter()).copied().collect();
                let slot = self.churn.as_mut().expect("surgical repair implies a live slot");
                let new_fp = slot.fp.map(|fp| fp.mutated(&churned));
                let plan = Arc::new(rep.plan);
                if let Some(cache) = &self.cache {
                    if let Some(old) = slot.fp {
                        cache.retire(old);
                    }
                    if let Some(fp) = new_fp {
                        cache.insert(fp, Arc::clone(&plan));
                    }
                }
                let report = MutationReport {
                    edges_added: added.len(),
                    edges_removed: removed.len(),
                    full_rebuild: false,
                    changed_ranks: rep.changed_ranks.len(),
                    damage_frac: rep.damage_frac,
                    repairs: slot.repairs + 1,
                };
                slot.pattern = Arc::new(rep.pattern);
                slot.plan = plan;
                slot.fp = new_fp;
                slot.repairs += 1;
                report
            }
            None => {
                let pattern = crate::builder::build_pattern_recorded_v(
                    &new_graph,
                    &self.layout,
                    PairingStrategy::LoadAware,
                    &sizes,
                    self.metric,
                    &self.build_pool,
                    &NULL,
                )?;
                let plan = lower_pooled(&pattern, &new_graph, &self.build_pool);
                plan.validate(&new_graph).map_err(CommError::InvalidPlan)?;
                let plan = Arc::new(plan);
                let fp = self.cache.as_ref().map(|cache| {
                    if let Some(old) = self.churn.as_ref().and_then(|s| s.fp) {
                        cache.retire(old);
                    }
                    let fp = PlanFingerprint::of_build_v(
                        &new_graph,
                        &self.layout,
                        Algorithm::DistanceHalving,
                        &sizes,
                        self.metric,
                    );
                    cache.insert(fp, Arc::clone(&plan));
                    fp
                });
                self.churn =
                    Some(ChurnSlot { pattern: Arc::new(pattern), plan, fp, repairs: 0, sizes });
                MutationReport {
                    edges_added: added.len(),
                    edges_removed: removed.len(),
                    full_rebuild: true,
                    changed_ranks: n,
                    damage_frac: 1.0,
                    repairs: 0,
                }
            }
        };
        self.graph = new_graph;
        Ok(report)
    }

    /// Builds (and validates) the data-movement plan for an algorithm.
    /// Construction runs on the communicator's build pool
    /// ([`Self::with_build_threads`]); the plan cache is **not**
    /// consulted — use [`Self::plan_shared`] for the cached path.
    pub fn plan(&self, algo: Algorithm) -> Result<CollectivePlan, CommError> {
        self.build_plan_recorded(algo, &self.planning_sizes(), &NULL)
    }

    /// The uncached build path shared by [`Self::plan`] and cache misses.
    fn build_plan_recorded(
        &self,
        algo: Algorithm,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<CollectivePlan, CommError> {
        let plan = match self.normalize_algorithm(algo)? {
            Algorithm::Naive => plan_naive(&self.graph),
            Algorithm::CommonNeighbor { k } => plan_common_neighbor(&self.graph, k),
            Algorithm::DistanceHalving => {
                let pattern = crate::builder::build_pattern_recorded_v(
                    &self.graph,
                    &self.layout,
                    PairingStrategy::LoadAware,
                    sizes,
                    self.metric,
                    &self.build_pool,
                    rec,
                )?;
                rec.span_begin(0, nhood_telemetry::labels::PLAN_LOWER);
                let plan = lower_pooled(&pattern, &self.graph, &self.build_pool);
                rec.span_end(0, nhood_telemetry::labels::PLAN_LOWER);
                plan
            }
            Algorithm::HierarchicalLeader { leaders_per_node } => {
                crate::leader::plan_hierarchical_leader(&self.graph, &self.layout, leaders_per_node)
            }
            Algorithm::Bruck => crate::bruck::plan_bruck(&self.graph, &self.layout),
            Algorithm::Pat { radix } => crate::pat::plan_pat(&self.graph, radix),
            Algorithm::Auto => {
                // The tuner validates (and usually caches) the winner.
                return self.resolve_auto(sizes, rec).map(|p| (*p).clone());
            }
        };
        plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
        Ok(plan)
    }

    /// Validates and canonicalizes an algorithm choice for this
    /// communicator. Parameters with no sensible reading —
    /// `CommonNeighbor { k: 0 }`, `Pat { radix: 0 | 1 }`,
    /// `HierarchicalLeader { leaders_per_node: 0 }` — return
    /// [`CommError::BadAlgorithmParam`]. An oversized Common Neighbor
    /// group (`k > n`) is **clamped to `n`** (one group spanning every
    /// rank), documented behaviour that also canonicalizes the plan
    /// cache key: `k = n` and `k = 10·n` request the same plan and
    /// share a slot. `k = 1` (every rank its own group) and `k` not
    /// dividing `n` (a ragged trailing group) are valid as-is.
    pub fn normalize_algorithm(&self, algo: Algorithm) -> Result<Algorithm, CommError> {
        match algo {
            Algorithm::CommonNeighbor { k: 0 } => Err(CommError::BadAlgorithmParam {
                algorithm: algo,
                reason: "group size k must be at least 1",
            }),
            Algorithm::CommonNeighbor { k } if k > self.n() && self.n() > 0 => {
                Ok(Algorithm::CommonNeighbor { k: self.n() })
            }
            Algorithm::Pat { radix } if radix < 2 => Err(CommError::BadAlgorithmParam {
                algorithm: algo,
                reason: "aggregation radix must be at least 2",
            }),
            Algorithm::HierarchicalLeader { leaders_per_node: 0 } => {
                Err(CommError::BadAlgorithmParam {
                    algorithm: algo,
                    reason: "need at least one leader per node",
                })
            }
            other => Ok(other),
        }
    }

    /// The concrete algorithm a request for `algo` executes:
    /// [`Algorithm::Auto`] resolves to the tuner's winner for this
    /// communicator's current fingerprint (tuning now if the winner is
    /// not yet cached), anything else just normalizes. The service's
    /// batching keys on the result, so Auto tenants coalesce with
    /// tenants that picked the winner explicitly.
    pub fn resolve_algorithm(&self, algo: Algorithm) -> Result<Algorithm, CommError> {
        match self.normalize_algorithm(algo)? {
            Algorithm::Auto => Ok(self.resolve_auto(&self.planning_sizes(), &NULL)?.algorithm),
            concrete => Ok(concrete),
        }
    }

    /// The cache key this communicator's [`Algorithm::Auto`] winner
    /// lives under — [`PlanFingerprint::of_tuner`] over the current
    /// topology, layout, planning sizes, load metric and tuner cost
    /// model.
    pub fn tuner_fingerprint(&self) -> PlanFingerprint {
        self.tuner_fingerprint_sized(&self.planning_sizes())
    }

    fn tuner_fingerprint_sized(&self, sizes: &BlockSizes) -> PlanFingerprint {
        PlanFingerprint::of_tuner(
            &self.graph,
            &self.layout,
            sizes,
            self.metric,
            &format!("{:?}", self.tuner_cost),
        )
    }

    /// Serves the auto-tuner's winning plan: memo, then the attached
    /// [`PlanCache`] under the tuner key, then a full tuning pass whose
    /// winner is cached under both the tuner key and the winner's own
    /// canonical build key. Only the tuning pass performs candidate
    /// simulations ([`Self::tuner_sims`]).
    fn resolve_auto(
        &self,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<Arc<CollectivePlan>, CommError> {
        let key = self.tuner_fingerprint_sized(sizes);
        {
            let slot = self.tuner_slot.lock().expect("tuner memo poisoned");
            if let Some((k, plan)) = slot.as_ref() {
                if *k == key {
                    rec.plan_cache(0, true);
                    return Ok(Arc::clone(plan));
                }
            }
        }
        if let Some(cache) = &self.cache {
            if let Some(plan) = cache.lookup(key, &self.graph) {
                rec.plan_cache(0, true);
                *self.tuner_slot.lock().expect("tuner memo poisoned") =
                    Some((key, Arc::clone(&plan)));
                return Ok(plan);
            }
        }
        rec.plan_cache(0, false);
        let outcome = self.tune_sized(sizes, rec)?;
        let plan = outcome.plan;
        if let Some(cache) = &self.cache {
            cache.insert_validated(key, Arc::clone(&plan), &self.graph);
            // Also park the winner under its own build key: a later
            // explicit request for the winning algorithm (same sizes
            // and metric) hits instead of rebuilding.
            let canonical = PlanFingerprint::of_build_v(
                &self.graph,
                &self.layout,
                outcome.winner,
                sizes,
                self.metric,
            );
            cache.insert_validated(canonical, Arc::clone(&plan), &self.graph);
        }
        *self.tuner_slot.lock().expect("tuner memo poisoned") = Some((key, Arc::clone(&plan)));
        Ok(plan)
    }

    /// Runs one full tuning pass for this communicator's planning sizes
    /// — every portfolio candidate ([`crate::autotune::candidates`]) is
    /// built and scored through the tuner cost model; the strict-minimum
    /// makespan wins, ties breaking toward the earlier candidate. This
    /// always simulates; the cached entry points are
    /// [`Algorithm::Auto`] requests and [`Self::resolve_algorithm`].
    pub fn tune(&self) -> Result<crate::autotune::TuneOutcome, CommError> {
        self.tune_sized(&self.planning_sizes(), &NULL)
    }

    fn tune_sized(
        &self,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<crate::autotune::TuneOutcome, CommError> {
        let cands = crate::autotune::candidates(self.n(), &self.layout, 8);
        self.tune_candidates(&cands, sizes, rec)
    }

    /// [`Self::tune`] over an explicit candidate list. Candidates whose
    /// build fails (e.g. Distance Halving on a non-block layout) are
    /// skipped; at least one candidate must build.
    pub fn tune_candidates(
        &self,
        cands: &[Algorithm],
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<crate::autotune::TuneOutcome, CommError> {
        let lens: Vec<usize> = (0..self.n()).map(|r| sizes.size(r)).collect();
        let mut scores: Vec<(Algorithm, f64)> = Vec::with_capacity(cands.len());
        let mut sims = 0u64;
        let mut best: Option<(f64, Algorithm, CollectivePlan)> = None;
        let mut last_err = None;
        for &cand in cands {
            debug_assert_ne!(cand, Algorithm::Auto, "the tuner only scores concrete candidates");
            let plan = match self.build_plan_recorded(cand, sizes, rec) {
                Ok(p) => p,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let t = simulate_v(&plan, &self.layout, &lens, &self.tuner_cost)?.makespan;
            sims += 1;
            scores.push((plan.algorithm, t));
            if best.as_ref().is_none_or(|(bt, ..)| t < *bt) {
                best = Some((t, plan.algorithm, plan));
            }
        }
        self.tuner_sims.fetch_add(sims, std::sync::atomic::Ordering::Relaxed);
        let Some((_, winner, plan)) = best else {
            return Err(last_err.expect("an empty candidate list never reaches the tuner"));
        };
        Ok(crate::autotune::TuneOutcome { winner, scores, simulations: sims, plan: Arc::new(plan) })
    }

    /// [`Self::plan`] through the attached [`PlanCache`]: on a hit the
    /// cached `Arc` is returned with no build or validation work (plans
    /// are validated before insertion, and disk-tier loads are
    /// re-validated inside the cache). Without an attached cache this is
    /// a plain build wrapped in an `Arc`.
    pub fn plan_shared(&self, algo: Algorithm) -> Result<Arc<CollectivePlan>, CommError> {
        self.plan_shared_recorded(algo, &NULL)
    }

    /// [`Self::plan_shared`] with a telemetry [`Recorder`]: the lookup
    /// reports `plan_cache` hit/miss (against rank 0, the
    /// communicator-wide event's representative) and cold builds report
    /// their build/lower spans.
    pub fn plan_shared_recorded(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<Arc<CollectivePlan>, CommError> {
        self.plan_shared_sized(algo, &self.planning_sizes(), rec)
    }

    /// The sized planning path behind every cached build: the cache key
    /// is [`PlanFingerprint::of_build_v`] over this communicator's
    /// metric and `sizes`, so a Bytes-metric ragged build can never be
    /// served a plan negotiated for different block sizes.
    fn plan_shared_sized(
        &self,
        algo: Algorithm,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<Arc<CollectivePlan>, CommError> {
        // Normalize first: the clamp must land before fingerprinting so
        // equivalent requests (k = n vs k = 10·n) share a cache slot.
        let algo = self.normalize_algorithm(algo)?;
        if algo == Algorithm::Auto {
            return self.resolve_auto(sizes, rec);
        }
        // A live churn slot holds THE current Distance Halving plan for
        // this communicator's (possibly mutated) topology — serve it
        // without touching the cache or rebuilding.
        if algo == Algorithm::DistanceHalving {
            if let Some(slot) = &self.churn {
                if slot.sizes == *sizes {
                    rec.plan_cache(0, true);
                    return Ok(Arc::clone(&slot.plan));
                }
            }
        }
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.build_plan_recorded(algo, sizes, rec)?));
        };
        let fp = PlanFingerprint::of_build_v(&self.graph, &self.layout, algo, sizes, self.metric);
        let (plan, hit) =
            cache.get_or_build(fp, &self.graph, || self.build_plan_recorded(algo, sizes, rec))?;
        rec.plan_cache(0, hit);
        Ok(plan)
    }

    /// Runs any neighborhood collective from one typed request — the
    /// single entry point every per-op convenience method now shims to.
    ///
    /// The allgather family executes the lowered [`CollectivePlan`]
    /// (every algorithm; robust + fault-injected execution on the
    /// threaded backend). The combining family — alltoallv, sparse
    /// reduce_scatter, sparse allreduce — routes the shared item
    /// [`AlltoallPlan`] with reducing agents (Naive and Distance Halving
    /// only). On [`ExecBackend::Sim`] the output carries **both** real
    /// oracle bytes and the simulator's makespan (under
    /// [`SimCost::niagara`]); the legacy [`crate::exec::Sim`] executor
    /// returned empty buffers.
    ///
    /// Combinations outside the support matrix return
    /// [`CommError::UnsupportedCollective`] /
    /// [`CommError::InvalidReduction`] before any work happens.
    pub fn collective(&self, req: &CollectiveRequest) -> Result<CollectiveOutput, CommError> {
        check_support(req.op, req.algorithm, req.robust, req.backend)?;
        if req.op.is_gather() {
            self.gather_collective(req)
        } else {
            self.combining_collective(req)
        }
    }

    /// The allgather-family half of [`Self::collective`].
    fn gather_collective(&self, req: &CollectiveRequest) -> Result<CollectiveOutput, CommError> {
        if req.robust {
            // check_support pinned the backend to Threaded already.
            let (rbufs, report) =
                self.robust_allgather_inner(req.algorithm, req.payloads, req.recorder)?;
            let faults = report.faults;
            return Ok(CollectiveOutput { rbufs, faults, report: Some(report), sim: None });
        }
        let ragged = req.op == CollectiveOp::Allgatherv;
        let sizes = match (&req.sizes, ragged) {
            (Some(s), _) => s.clone(),
            (None, true) => {
                self.sizes.clone().unwrap_or_else(|| BlockSizes::from_payloads(req.payloads))
            }
            (None, false) => self.planning_sizes(),
        };
        let plan = self.plan_shared_sized(req.algorithm, &sizes, req.recorder)?;
        let base_opts = || ExecOptions::new().ragged(ragged).recorder(req.recorder).op(req.op);
        match req.backend {
            ExecBackend::Virtual => {
                let out = Virtual.run(
                    &plan,
                    &self.graph,
                    req.payloads,
                    &mut BlockArena::new(),
                    &base_opts(),
                )?;
                Ok(CollectiveOutput { rbufs: out.rbufs, faults: out.faults, ..Default::default() })
            }
            ExecBackend::Threaded => {
                let mut opts = base_opts()
                    .recv_timeout(self.policy.recv_timeout)
                    .phase_deadline(self.policy.phase_deadline)
                    .retries(self.policy.max_retries, self.policy.backoff_base);
                if let Some(fp) = self.fault.as_ref() {
                    opts = opts.fault(fp);
                }
                let out = Threaded.run(
                    &plan,
                    &self.graph,
                    req.payloads,
                    &mut BlockArena::new(),
                    &opts,
                )?;
                Ok(CollectiveOutput { rbufs: out.rbufs, faults: out.faults, ..Default::default() })
            }
            ExecBackend::Sim => {
                let out = Virtual.run(
                    &plan,
                    &self.graph,
                    req.payloads,
                    &mut BlockArena::new(),
                    &base_opts(),
                )?;
                let lens: Vec<usize> = req.payloads.iter().map(Vec::len).collect();
                let report = simulate_v(&plan, &self.layout, &lens, &SimCost::niagara())?;
                Ok(CollectiveOutput {
                    rbufs: out.rbufs,
                    faults: out.faults,
                    report: None,
                    sim: Some(report),
                })
            }
        }
    }

    /// The combining-family half of [`Self::collective`]: alltoallv,
    /// sparse reduce_scatter and sparse allreduce over the shared item
    /// routing, with reducing agents at forwarding hops.
    fn combining_collective(&self, req: &CollectiveRequest) -> Result<CollectiveOutput, CommError> {
        let sizes = derive_sizes(&self.graph, req.op, req.payloads, req.sizes.as_ref())?;
        let plan = self.a2a_plan_shared(req.algorithm, req.recorder)?;
        if req.robust {
            // check_support pinned op == Alltoallv, backend == Threaded.
            return self.robust_alltoallv(&plan, req, &sizes);
        }
        match req.backend {
            ExecBackend::Virtual => {
                let run = run_combining_virtual(
                    &plan,
                    &self.graph,
                    req.op,
                    req.payloads,
                    &sizes,
                    req.recorder,
                )?;
                Ok(CollectiveOutput { rbufs: run.rbufs, ..Default::default() })
            }
            ExecBackend::Threaded => {
                let rbufs = run_combining_threaded(
                    &plan,
                    &self.graph,
                    req.op,
                    req.payloads,
                    &sizes,
                    self.policy.recv_timeout,
                    req.recorder,
                )?;
                Ok(CollectiveOutput { rbufs, ..Default::default() })
            }
            ExecBackend::Sim => {
                // The virtual run is the byte oracle AND the schedule
                // source: its per-message sizes are the combined wire
                // bytes, which is what makes the simulated makespan
                // reflect message combining.
                let run = run_combining_virtual(
                    &plan,
                    &self.graph,
                    req.op,
                    req.payloads,
                    &sizes,
                    req.recorder,
                )?;
                let cost = SimCost::niagara();
                let report = Engine::new(&self.layout, cost.net).run(&run.schedule)?;
                Ok(CollectiveOutput { rbufs: run.rbufs, sim: Some(report), ..Default::default() })
            }
        }
    }

    /// Robust alltoallv on the threaded transport: items are idempotent
    /// to re-route (no hop-applied reductions to replay), so a failed
    /// run degrades to the **naive item routing** — direct sends over
    /// graph edges only — when the policy allows, mirroring the
    /// allgather family's fallback. The combining transport takes no
    /// fault plan; robustness here covers real liveness failures
    /// (timeouts) of the primary routing.
    fn robust_alltoallv(
        &self,
        plan: &AlltoallPlan,
        req: &CollectiveRequest,
        sizes: &BlockSizes,
    ) -> Result<CollectiveOutput, CommError> {
        let used = self.combining_algorithm(req.algorithm)?;
        let mut report = ExecReport {
            requested: req.algorithm,
            used,
            fallback: None,
            faults: FaultCounts::default(),
            counters: None,
            repairs: 0,
            degraded_ranks: Vec::new(),
            completeness: Completeness::Full,
        };
        let err = match run_combining_threaded(
            plan,
            &self.graph,
            req.op,
            req.payloads,
            sizes,
            self.policy.recv_timeout,
            req.recorder,
        ) {
            Ok(rbufs) => {
                report.counters = req.recorder.counts();
                return Ok(CollectiveOutput { rbufs, report: Some(report), ..Default::default() });
            }
            Err(e) => e,
        };
        if !(self.policy.fallback_to_naive && used != Algorithm::Naive) {
            return Err(err.into());
        }
        req.recorder.fallback(0);
        report.fallback = Some(FallbackReason::ExecFailed(err.to_string()));
        report.used = Algorithm::Naive;
        let naive = self.alltoall_plan(Algorithm::Naive)?;
        let rbufs = run_combining_threaded(
            &naive,
            &self.graph,
            req.op,
            req.payloads,
            sizes,
            self.policy.recv_timeout,
            req.recorder,
        )?;
        report.counters = req.recorder.counts();
        Ok(CollectiveOutput { rbufs, report: Some(report), ..Default::default() })
    }

    /// The concrete algorithm a combining-family request routes under:
    /// [`Algorithm::Auto`] maps to Distance Halving — the combining
    /// family has no per-request tuner (its two routings, naive and DH,
    /// are distinguished by topology shape the §V model already settled
    /// in the paper's favor) — and the result shares the memo slot with
    /// explicit Distance Halving requests.
    fn combining_algorithm(&self, algo: Algorithm) -> Result<Algorithm, CommError> {
        match self.normalize_algorithm(algo)? {
            Algorithm::Auto => Ok(Algorithm::DistanceHalving),
            concrete => Ok(concrete),
        }
    }

    /// The combining family's plan path: one item-routing
    /// [`AlltoallPlan`] shared (via a fingerprint-keyed memo) by
    /// alltoallv, reduce_scatter and allreduce — they route identically,
    /// so mixed-op traffic reuses a single plan instead of rebuilding
    /// per op.
    fn a2a_plan_shared(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<Arc<AlltoallPlan>, CommError> {
        let algo = self.combining_algorithm(algo)?;
        let fp = PlanFingerprint::of_collective(
            &self.graph,
            &self.layout,
            algo,
            &self.planning_sizes(),
            self.metric,
            &CollectiveOp::Alltoallv,
        );
        {
            let slot = self.a2a_slot.lock().expect("a2a memo poisoned");
            if let Some((key, plan)) = slot.as_ref() {
                if *key == fp {
                    rec.plan_cache(0, true);
                    return Ok(Arc::clone(plan));
                }
            }
        }
        rec.plan_cache(0, false);
        let plan = Arc::new(self.alltoall_plan(algo)?);
        *self.a2a_slot.lock().expect("a2a memo poisoned") = Some((fp, Arc::clone(&plan)));
        Ok(plan)
    }

    /// One-call neighborhood allgather on the virtual backend.
    #[deprecated(note = "use `DistGraphComm::collective` with `CollectiveRequest::allgather`")]
    pub fn neighbor_allgather(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        self.collective(&CollectiveRequest::allgather(payloads).algorithm(algo)).map(|o| o.rbufs)
    }

    /// Ragged (per-rank-sized) neighborhood allgather on the virtual
    /// backend.
    #[deprecated(note = "use `DistGraphComm::collective` with `CollectiveRequest::allgatherv`")]
    pub fn neighbor_allgatherv(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        self.collective(&CollectiveRequest::allgatherv(payloads).algorithm(algo)).map(|o| o.rbufs)
    }

    /// Uniform neighborhood alltoall: `sbufs[p]` holds one distinct
    /// `m`-byte block per outgoing neighbor (in `O(p)` order).
    #[deprecated(note = "use `DistGraphComm::collective` with `CollectiveRequest::alltoallv`")]
    pub fn neighbor_alltoall(
        &self,
        algo: Algorithm,
        sbufs: &[Vec<u8>],
        m: usize,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let req = CollectiveRequest::alltoallv(sbufs).algorithm(algo).sizes(BlockSizes::uniform(m));
        self.collective(&req).map(|o| o.rbufs)
    }

    /// Builds (and validates) the item-routing alltoall plan the
    /// combining family executes.
    ///
    /// # Errors
    /// Returns [`CommError::UnsupportedCollective`] for
    /// [`Algorithm::CommonNeighbor`], [`Algorithm::HierarchicalLeader`],
    /// [`Algorithm::Bruck`] and [`Algorithm::Pat`], which have no
    /// item-routing formulation. [`Algorithm::Auto`] routes as Distance
    /// Halving.
    pub fn alltoall_plan(
        &self,
        algo: Algorithm,
    ) -> Result<crate::alltoall::AlltoallPlan, CommError> {
        check_support(CollectiveOp::Alltoallv, algo, false, ExecBackend::Virtual)?;
        let plan = match self.combining_algorithm(algo)? {
            Algorithm::Naive => crate::alltoall::plan_naive_alltoall(&self.graph),
            Algorithm::DistanceHalving => {
                let pattern = build_pattern_pooled(
                    &self.graph,
                    &self.layout,
                    PairingStrategy::LoadAware,
                    &self.build_pool,
                )?;
                crate::alltoall::plan_dh_alltoall(&pattern, &self.graph)
            }
            Algorithm::CommonNeighbor { .. }
            | Algorithm::HierarchicalLeader { .. }
            | Algorithm::Bruck
            | Algorithm::Pat { .. } => {
                unreachable!("rejected by check_support")
            }
            Algorithm::Auto => unreachable!("resolved by combining_algorithm"),
        };
        plan.validate(&self.graph).map_err(CommError::InvalidAlltoallPlan)?;
        Ok(plan)
    }

    /// Plans `algo` the way the robust path does: Distance Halving runs
    /// the *distributed* negotiation (under the communicator's fault
    /// plan and negotiation timeout), so pattern construction is itself
    /// exposed to injected faults; every other algorithm plans as
    /// [`Self::plan`].
    pub fn robust_plan(&self, algo: Algorithm) -> Result<CollectivePlan, CommError> {
        self.robust_plan_recorded(algo, &NULL)
    }

    /// [`Self::robust_plan`] with a telemetry [`Recorder`]: the
    /// distributed negotiation reports per-rank negotiation rounds,
    /// signal retries and `negotiate` spans as it runs.
    pub fn robust_plan_recorded(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<CollectivePlan, CommError> {
        self.robust_plan_with_pattern(algo, rec).map(|(plan, _)| plan)
    }

    /// The planning path of the robust collective, keeping the built
    /// [`DhPattern`] alive alongside the plan — mid-execution link-down
    /// repair needs the pattern's decisions, not just the lowered
    /// messages. Non-DH algorithms have no pattern.
    fn robust_plan_with_pattern(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<(CollectivePlan, Option<DhPattern>), CommError> {
        match algo {
            Algorithm::DistanceHalving => {
                // A live churn slot IS the current plan — no negotiation.
                if let Some(slot) = &self.churn {
                    if slot.sizes == self.planning_sizes() {
                        rec.plan_cache(0, true);
                        return Ok(((*slot.plan).clone(), Some((*slot.pattern).clone())));
                    }
                }
                let pattern = build_pattern_distributed_pooled_v(
                    &self.graph,
                    &self.layout,
                    self.fault.as_ref(),
                    self.policy.negotiation_timeout,
                    &self.planning_sizes(),
                    self.metric,
                    &self.build_pool,
                    rec,
                )?;
                let plan = lower_pooled(&pattern, &self.graph, &self.build_pool);
                plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
                Ok((plan, Some(pattern)))
            }
            _ => Ok((self.plan(algo)?, None)),
        }
    }

    /// Fault-tolerant neighborhood allgather on the threaded executor.
    ///
    /// Plans `algo` (Distance Halving via the distributed negotiation,
    /// so construction itself can fail under faults) and executes with
    /// the policy's timeouts, retry budget and the attached fault plan.
    /// If the policy allows it, a failed build or a liveness failure
    /// during execution **degrades to the naive plan** instead of
    /// erroring; the returned [`ExecReport`] records what was requested,
    /// what ran, why it degraded, and the fault/retry tally. Buffers are
    /// only ever returned when some plan ran to completion — a fault
    /// schedule that defeats both the requested plan and the naive
    /// fallback yields a typed error, never corrupt data or a hang.
    #[deprecated(
        note = "use `DistGraphComm::collective` with `CollectiveRequest::allgather(..).robust(true).backend(ExecBackend::Threaded)`"
    )]
    pub fn neighbor_allgather_robust(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        self.robust_allgather_inner(algo, payloads, &NULL)
    }

    /// [`Self::neighbor_allgather_robust`] with a telemetry
    /// [`Recorder`]: negotiation, execution, retries and the
    /// degradation decision itself all report into `rec` (a fallback is
    /// recorded against rank 0, the communicator-wide event's
    /// representative). When `rec` keeps counters (a
    /// `CountingRecorder`), their totals are copied into
    /// [`ExecReport::counters`].
    #[deprecated(
        note = "use `DistGraphComm::collective` with `CollectiveRequest::allgather(..).robust(true).backend(ExecBackend::Threaded).recorder(..)`"
    )]
    pub fn neighbor_allgather_robust_recorded(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
        rec: &dyn Recorder,
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        self.robust_allgather_inner(algo, payloads, rec)
    }

    /// The robust-allgather engine behind [`Self::collective`] with
    /// `robust = true`: distributed negotiation, mid-run link-down
    /// self-healing, and naive degradation, per the communicator's
    /// [`RobustPolicy`].
    fn robust_allgather_inner(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
        rec: &dyn Recorder,
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        let mut report = ExecReport {
            requested: algo,
            used: algo,
            fallback: None,
            faults: FaultCounts::default(),
            counters: None,
            repairs: 0,
            degraded_ranks: Vec::new(),
            completeness: Completeness::Full,
        };
        // One shared sink tallies every attempt — the failed primary,
        // repaired re-executions and the naive fallback — so the final
        // report never under-counts the faults a failed run absorbed.
        let sink = FaultStats::default();
        let planned = match self.robust_plan_with_pattern(algo, rec) {
            Ok(p) => Some(p),
            Err(e) => {
                if self.policy.fallback_to_naive && algo != Algorithm::Naive {
                    rec.fallback(0);
                    report.fallback = Some(FallbackReason::BuildFailed(e.to_string()));
                    report.used = Algorithm::Naive;
                    None
                } else {
                    return Err(e);
                }
            }
        };
        // Ragged (`allgatherv`-shaped) payloads flow through the same
        // robust machinery: the executors derive per-rank extents from
        // the payloads themselves, so detecting raggedness here is all
        // the plumbing the degraded paths need.
        let first_len = payloads.first().map_or(0, Vec::len);
        let ragged = payloads.iter().any(|p| p.len() != first_len);
        let mut opts = ExecOptions::new()
            .ragged(ragged)
            .recv_timeout(self.policy.recv_timeout)
            .phase_deadline(self.policy.phase_deadline)
            .retries(self.policy.max_retries, self.policy.backoff_base)
            .recorder(rec)
            .fault_sink(&sink);
        if let Some(fp) = self.fault.as_ref() {
            opts = opts.fault(fp);
        }
        let mut arena = BlockArena::new();
        if let Some((mut plan, mut pattern)) = planned {
            // Auto resolves during planning: report the winner that ran,
            // not the `auto` placeholder the caller requested.
            report.used = plan.algorithm;
            // Execute, self-healing around dead links: a LinkDown error
            // marks the edge dead, the plan is repaired to route around
            // it, and execution restarts — up to the policy's repair
            // budget. Only unrepairable failures fall through to naive.
            let mut exec_graph = self.graph.clone();
            let mut dead: HashSet<(Rank, Rank)> = HashSet::new();
            let err = loop {
                let err = match Threaded.run(&plan, &exec_graph, payloads, &mut arena, &opts) {
                    Ok(run) => {
                        report.faults = run.faults;
                        report.counters = rec.counts();
                        return Ok((run.rbufs, report));
                    }
                    Err(e) => e,
                };
                let repairable = matches!(err, ExecError::LinkDown { .. })
                    && self.policy.repair_link_down
                    && pattern.is_some()
                    && report.repairs < self.policy.repair.max_repair_rounds;
                if !repairable {
                    break err;
                }
                let ExecError::LinkDown { src, dst, .. } = err else { unreachable!() };
                dead.insert((src, dst));
                dead.insert((dst, src));
                rec.span_begin(0, labels::REPAIR);
                let base = pattern.as_ref().expect("repairable implies pattern");
                // Repair around the full dead set; past the damage
                // threshold, rebuild the matchings from scratch first —
                // fresh negotiation avoids the dead links where it can,
                // and the reroute pass covers what it cannot.
                let repaired = repair_link_down(base, &plan, &self.graph, &dead)
                    .ok()
                    .filter(|r| r.damage_frac <= self.policy.repair.max_damage_frac)
                    .or_else(|| {
                        build_pattern_pooled(
                            &self.graph,
                            &self.layout,
                            PairingStrategy::LoadAware,
                            &self.build_pool,
                        )
                        .ok()
                        .and_then(|fresh| repair_link_down(&fresh, &plan, &self.graph, &dead).ok())
                    });
                rec.span_end(0, labels::REPAIR);
                let Some(rep) = repaired else { break err };
                rec.repair(0);
                report.repairs += 1;
                report.degraded_ranks = match &rep.completeness {
                    Completeness::Full => Vec::new(),
                    Completeness::Degraded { missing } => {
                        let mut targets: Vec<Rank> = missing.iter().map(|&(_, t)| t).collect();
                        targets.sort_unstable();
                        targets.dedup();
                        targets
                    }
                };
                report.completeness = rep.completeness;
                // Patch only the arena rows the repair touched; a failed
                // patch just leaves the run to rebuild the layout itself.
                let _ = arena.repair(&rep.plan, &rep.exec_graph, &rep.changed_ranks);
                exec_graph = rep.exec_graph;
                plan = rep.plan;
                pattern = Some(rep.pattern);
            };
            if !(self.policy.fallback_to_naive && report.used != Algorithm::Naive) {
                return Err(err.into());
            }
            rec.fallback(0);
            report.fallback = Some(FallbackReason::ExecFailed(err.to_string()));
            report.used = Algorithm::Naive;
            // Naive routes directly over graph edges: a degraded repair's
            // dropped deliveries don't apply to it.
            report.degraded_ranks = Vec::new();
            report.completeness = Completeness::Full;
        }
        // degraded path: the naive plan under the same faults and policy.
        // The shared sink already accumulated the failed attempts'
        // tallies, so the outcome's snapshot is the complete count.
        let naive = self.plan(Algorithm::Naive)?;
        let run = Threaded.run(&naive, &self.graph, payloads, &mut arena, &opts)?;
        report.faults = run.faults;
        report.counters = rec.counts();
        Ok((run.rbufs, report))
    }

    /// Simulated latency of `algo` at per-rank message size `m`.
    pub fn latency(
        &self,
        algo: Algorithm,
        m: usize,
        cost: &SimCost,
    ) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(simulate(&plan, &self.layout, m, cost)?)
    }

    /// Simulated latency with per-rank payload sizes (`allgatherv`).
    pub fn latency_v(
        &self,
        algo: Algorithm,
        sizes: &[usize],
        cost: &SimCost,
    ) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(crate::exec::sim_exec::simulate_v(&plan, &self.layout, sizes, cost)?)
    }

    /// Sweeps Common Neighbor over `ks` and returns `(k, plan)` with the
    /// lowest simulated latency at message size `m` — the paper launches
    /// CN "with various values of K" and reports the best.
    pub fn best_common_neighbor(
        &self,
        ks: &[usize],
        m: usize,
        cost: &SimCost,
    ) -> Result<(usize, CollectivePlan), CommError> {
        assert!(!ks.is_empty(), "need at least one K to sweep");
        let mut best: Option<(f64, usize, CollectivePlan)> = None;
        for &k in ks {
            let plan = self.plan(Algorithm::CommonNeighbor { k })?;
            let t = simulate(&plan, &self.layout, m, cost)?.makespan;
            if best.as_ref().is_none_or(|(bt, ..)| t < *bt) {
                best = Some((t, k, plan));
            }
        }
        let (_, k, plan) = best.expect("ks is non-empty");
        Ok((k, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use nhood_topology::random::erdos_renyi;

    fn comm(n: usize, delta: f64) -> DistGraphComm {
        let graph = erdos_renyi(n, delta, 21);
        let layout = ClusterLayout::new(n / 8, 2, 4);
        DistGraphComm::create_adjacent(graph, layout).unwrap()
    }

    fn allgather(c: &DistGraphComm, algo: Algorithm, payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
        c.collective(&CollectiveRequest::allgather(payloads).algorithm(algo)).unwrap().rbufs
    }

    fn robust(
        c: &DistGraphComm,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        let req = CollectiveRequest::allgather(payloads)
            .algorithm(algo)
            .robust(true)
            .backend(ExecBackend::Threaded);
        c.collective(&req).map(|o| (o.rbufs, o.report.expect("robust run carries a report")))
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 16, 5);
        let want = reference_allgather(c.graph(), &payloads);
        for algo in [
            Algorithm::Naive,
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::DistanceHalving,
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
            Algorithm::Bruck,
            Algorithm::Pat { radix: 2 },
            Algorithm::Pat { radix: 4 },
            Algorithm::Auto,
        ] {
            let got = allgather(&c, algo, &payloads);
            assert_eq!(got, want, "{algo}");
        }
    }

    #[test]
    fn degenerate_algorithm_params_reject_or_clamp() {
        let c = comm(32, 0.4);
        let payloads = test_payloads(32, 8, 1);
        // no sensible reading: typed rejection, not a panic
        for bad in [
            Algorithm::CommonNeighbor { k: 0 },
            Algorithm::Pat { radix: 0 },
            Algorithm::Pat { radix: 1 },
            Algorithm::HierarchicalLeader { leaders_per_node: 0 },
        ] {
            match c.plan(bad) {
                Err(CommError::BadAlgorithmParam { algorithm, .. }) => assert_eq!(algorithm, bad),
                other => panic!("{bad}: expected BadAlgorithmParam, got {other:?}"),
            }
            let req = CollectiveRequest::allgather(&payloads).algorithm(bad);
            assert!(
                matches!(c.collective(&req), Err(CommError::BadAlgorithmParam { .. })),
                "{bad}"
            );
        }
        // k = 1 (singleton groups) and k ∤ n (ragged last group): valid
        let want = reference_allgather(c.graph(), &payloads);
        for k in [1usize, 5, 7] {
            let plan = c.plan(Algorithm::CommonNeighbor { k }).unwrap();
            assert_eq!(plan.algorithm, Algorithm::CommonNeighbor { k });
            assert_eq!(allgather(&c, Algorithm::CommonNeighbor { k }, &payloads), want, "k={k}");
        }
        // k ≥ n clamps to n — documented, and canonicalizes the cache key
        for k in [32usize, 33, 200] {
            let plan = c.plan(Algorithm::CommonNeighbor { k }).unwrap();
            assert_eq!(plan.algorithm, Algorithm::CommonNeighbor { k: 32 }, "k={k} must clamp");
            assert_eq!(allgather(&c, Algorithm::CommonNeighbor { k }, &payloads), want, "k={k}");
        }
        let cache = Arc::new(PlanCache::new(8));
        let c = comm(32, 0.4).with_plan_cache(Arc::clone(&cache));
        let a = c.plan_shared(Algorithm::CommonNeighbor { k: 200 }).unwrap();
        let b = c.plan_shared(Algorithm::CommonNeighbor { k: 32 }).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "clamped k must share the canonical cache slot");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn auto_tunes_once_then_serves_cached_winner() {
        let cache = Arc::new(PlanCache::new(16));
        let c = comm(32, 0.4).with_plan_cache(Arc::clone(&cache));
        let p1 = c.plan_shared(Algorithm::Auto).unwrap();
        let sims = c.tuner_sims();
        assert!(sims > 0, "a cold Auto resolution must simulate candidates");
        assert_ne!(p1.algorithm, Algorithm::Auto, "the cached plan is the concrete winner");
        // same fingerprint again: served from the memo, zero new sims
        let p2 = c.plan_shared(Algorithm::Auto).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(c.tuner_sims(), sims, "second resolution must not simulate");
        // a FRESH communicator (cold memo) sharing the cache: still zero
        let c2 = DistGraphComm::create_adjacent(c.graph().clone(), c.layout().clone())
            .unwrap()
            .with_plan_cache(Arc::clone(&cache));
        let p3 = c2.plan_shared(Algorithm::Auto).unwrap();
        assert_eq!(c2.tuner_sims(), 0, "shared cache serves the winner with zero simulations");
        assert_eq!(p3.algorithm, p1.algorithm);
        // the winner also landed under its own canonical build key
        let explicit = c2.plan_shared(p1.algorithm).unwrap();
        assert!(Arc::ptr_eq(&p3, &explicit), "explicit winner requests coalesce with Auto");
    }

    #[test]
    fn auto_winner_is_deterministic_across_build_threads() {
        // same fingerprint ⇒ same winner, regardless of worker count
        let base = comm(48, 0.3);
        let want = base.resolve_algorithm(Algorithm::Auto).unwrap();
        for threads in [1usize, 2, 4] {
            for _ in 0..2 {
                let c = comm(48, 0.3).with_build_threads(threads);
                assert_eq!(
                    c.resolve_algorithm(Algorithm::Auto).unwrap(),
                    want,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn mutate_retires_the_tuner_entry() {
        let cache = Arc::new(PlanCache::new(16));
        let mut c = comm(32, 0.4).with_plan_cache(Arc::clone(&cache));
        c.plan_shared(Algorithm::Auto).unwrap();
        let old_key = c.tuner_fingerprint();
        let old_graph = c.graph().clone();
        assert!(cache.lookup(old_key, &old_graph).is_some(), "tuner entry cached");
        let (added, removed) = churn_sets(c.graph(), 2, 4);
        c.mutate(&added, &removed).unwrap();
        assert!(cache.lookup(old_key, &old_graph).is_none(), "mutate must retire the tuner entry");
        assert_ne!(c.tuner_fingerprint(), old_key, "churn moves the tuner key");
        // a fresh Auto resolution tunes against the churned topology
        let sims = c.tuner_sims();
        let payloads = test_payloads(32, 8, 2);
        let got = allgather(&c, Algorithm::Auto, &payloads);
        assert_eq!(got, reference_allgather(c.graph(), &payloads));
        assert!(c.tuner_sims() > sims, "post-churn Auto must re-tune");
    }

    #[test]
    fn robust_alltoallv_runs_on_threaded_with_a_report() {
        let c = comm(16, 0.4);
        let m = 4usize;
        let sbufs: Vec<Vec<u8>> = (0..16)
            .map(|p| (0..c.graph().outdegree(p) * m).map(|i| (p * 17 + i) as u8).collect())
            .collect();
        let req = CollectiveRequest::alltoallv(&sbufs)
            .sizes(BlockSizes::uniform(m))
            .robust(true)
            .backend(ExecBackend::Threaded);
        let out = c.collective(&req).unwrap();
        assert_eq!(
            out.rbufs,
            crate::collective::reference_alltoallv(c.graph(), &sbufs, &BlockSizes::uniform(m))
        );
        let report = out.report.expect("robust alltoallv carries a report");
        assert!(report.clean(), "{report}");
        assert_eq!(report.used, Algorithm::DistanceHalving);
    }

    #[test]
    fn robust_reductions_reject_naming_the_unsupported_piece() {
        let c = comm(16, 0.4);
        let payloads = test_payloads(16, 4, 3);
        for req in [
            CollectiveRequest::reduce_scatter(&payloads, Reduction::SUM_U8),
            CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8),
        ] {
            let req = req.robust(true).backend(ExecBackend::Threaded);
            match c.collective(&req) {
                Err(CommError::UnsupportedCollective { reason, .. }) => assert!(
                    reason.contains("reduction"),
                    "reason must name the unsupported piece: {reason}"
                ),
                other => panic!("expected UnsupportedCollective, got {other:?}"),
            }
        }
    }

    #[test]
    fn create_rejects_oversized_graph() {
        let graph = erdos_renyi(100, 0.1, 1);
        let layout = ClusterLayout::new(2, 2, 4);
        assert!(matches!(
            DistGraphComm::create_adjacent(graph, layout),
            Err(CommError::Build(BuildError::LayoutTooSmall { ranks: 100, capacity: 16 }))
        ));
    }

    #[test]
    fn latency_positive_and_algorithm_dependent() {
        let c = comm(64, 0.5);
        let cost = SimCost::niagara();
        let tn = c.latency(Algorithm::Naive, 64, &cost).unwrap().makespan;
        let td = c.latency(Algorithm::DistanceHalving, 64, &cost).unwrap().makespan;
        assert!(tn > 0.0 && td > 0.0);
        assert_ne!(tn, td);
    }

    #[test]
    fn best_k_sweep_picks_a_swept_value() {
        let c = comm(32, 0.4);
        let cost = SimCost::niagara();
        let (k, plan) = c.best_common_neighbor(&[2, 4, 8], 256, &cost).unwrap();
        assert!([2, 4, 8].contains(&k));
        assert_eq!(plan.algorithm, Algorithm::CommonNeighbor { k });
        // the chosen K is at least as good as the others
        let t_best = simulate(&plan, c.layout(), 256, &cost).unwrap().makespan;
        for other in [2usize, 4, 8] {
            let p = c.plan(Algorithm::CommonNeighbor { k: other }).unwrap();
            let t = simulate(&p, c.layout(), 256, &cost).unwrap().makespan;
            assert!(t_best <= t + 1e-15, "k={other} beat the sweep winner");
        }
    }

    #[test]
    fn plan_exposes_selection_stats_only_for_dh() {
        let c = comm(32, 0.3);
        assert!(c.plan(Algorithm::Naive).unwrap().selection.is_none());
        assert!(c.plan(Algorithm::DistanceHalving).unwrap().selection.is_some());
    }

    #[test]
    fn unsupported_combinations_reject_typed() {
        let c = comm(16, 0.4);
        let payloads = test_payloads(16, 4, 3);
        // combining ops have no CN/HL item-routing formulation
        for algo in [
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
        ] {
            match c.alltoall_plan(algo) {
                Err(CommError::UnsupportedCollective { op, algorithm, .. }) => {
                    assert_eq!(op, CollectiveOp::Alltoallv);
                    assert_eq!(algorithm, algo);
                }
                other => panic!("expected UnsupportedCollective, got {other:?}"),
            }
            let req =
                CollectiveRequest::reduce_scatter(&payloads, Reduction::SUM_U8).algorithm(algo);
            assert!(matches!(
                c.collective(&req),
                Err(CommError::UnsupportedCollective { op: CollectiveOp::ReduceScatter(_), .. })
            ));
        }
        // robustness covers the allgather family only...
        let req = CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8)
            .robust(true)
            .backend(ExecBackend::Threaded);
        assert!(matches!(c.collective(&req), Err(CommError::UnsupportedCollective { .. })));
        // ...and runs on the threaded transport only
        let req = CollectiveRequest::allgather(&payloads).robust(true);
        assert!(matches!(c.collective(&req), Err(CommError::UnsupportedCollective { .. })));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_collective() {
        let c = comm(16, 0.4);
        let payloads = test_payloads(16, 8, 11);
        let via_shim = c.neighbor_allgather(Algorithm::DistanceHalving, &payloads).unwrap();
        let via_req = allgather(&c, Algorithm::DistanceHalving, &payloads);
        assert_eq!(via_shim, via_req);

        let m = 6usize;
        let sbufs: Vec<Vec<u8>> = (0..16)
            .map(|p| (0..c.graph().outdegree(p) * m).map(|i| (p * 31 + i) as u8).collect())
            .collect();
        let via_shim = c.neighbor_alltoall(Algorithm::DistanceHalving, &sbufs, m).unwrap();
        let req = CollectiveRequest::alltoallv(&sbufs).sizes(BlockSizes::uniform(m));
        let via_req = c.collective(&req).unwrap().rbufs;
        assert_eq!(via_shim, via_req);
    }

    #[test]
    fn combining_family_shares_one_memoized_routing_plan() {
        let c = comm(32, 0.4);
        let rec = nhood_telemetry::CountingRecorder::new(32);
        let m = 8usize;
        let payloads = test_payloads(32, m, 2);
        let sbufs: Vec<Vec<u8>> = (0..32)
            .map(|p| (0..c.graph().outdegree(p) * m).map(|i| (p * 13 + i) as u8).collect())
            .collect();
        // alltoallv (cold build), then reduce ops: all hit the same memo
        let req = CollectiveRequest::alltoallv(&sbufs).sizes(BlockSizes::uniform(m)).recorder(&rec);
        c.collective(&req).unwrap();
        let req = CollectiveRequest::reduce_scatter(&sbufs, Reduction::SUM_U8)
            .sizes(BlockSizes::uniform(m))
            .recorder(&rec);
        c.collective(&req).unwrap();
        let req = CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8).recorder(&rec);
        c.collective(&req).unwrap();
        let t = rec.totals();
        assert_eq!(t.plan_cache_misses, 1, "one cold item-plan build");
        assert_eq!(t.plan_cache_hits, 2, "subsequent combining ops reuse the memo");
    }

    #[test]
    fn mutate_invalidates_the_combining_plan_memo() {
        let mut c = comm(32, 0.4);
        let payloads = test_payloads(32, 8, 8);
        let run = |c: &DistGraphComm| {
            c.collective(&CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8)).unwrap().rbufs
        };
        let before = run(&c);
        assert_eq!(
            before,
            crate::collective::reference_allreduce(c.graph(), &payloads, Reduction::SUM_U8)
        );
        let (added, removed) = churn_sets(c.graph(), 2, 3);
        c.mutate(&added, &removed).unwrap();
        let after = run(&c);
        assert_eq!(
            after,
            crate::collective::reference_allreduce(c.graph(), &payloads, Reduction::SUM_U8),
            "post-mutate allreduce must plan against the new topology"
        );
    }

    #[test]
    fn sim_backend_returns_bytes_and_makespan() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 16, 4);
        let req =
            CollectiveRequest::allreduce(&payloads, Reduction::SUM_U8).backend(ExecBackend::Sim);
        let out = c.collective(&req).unwrap();
        assert_eq!(
            out.rbufs,
            crate::collective::reference_allreduce(c.graph(), &payloads, Reduction::SUM_U8)
        );
        assert!(out.sim.expect("sim backend reports").makespan > 0.0);

        let req = CollectiveRequest::allgather(&payloads).backend(ExecBackend::Sim);
        let out = c.collective(&req).unwrap();
        assert_eq!(out.rbufs, reference_allgather(c.graph(), &payloads));
        assert!(out.sim.expect("sim backend reports").makespan > 0.0);
    }

    #[test]
    fn robust_allgather_without_faults_is_clean() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 8, 7);
        let (bufs, report) = robust(&c, Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
        assert!(report.clean());
        assert_eq!(report.used, Algorithm::DistanceHalving);
        assert_eq!(report.faults.total_injected(), 0);
    }

    #[test]
    fn robust_allgather_retries_through_moderate_drops() {
        let c = comm(32, 0.3).with_fault_plan(
            crate::fault::FaultPlan::seeded(11)
                .with_message_drop(0.05)
                .with_message_delay(0.05, Duration::from_micros(200)),
        );
        let payloads = test_payloads(32, 8, 2);
        let (bufs, report) = robust(&c, Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads), "{report}");
        assert!(report.faults.drops + report.faults.delays > 0);
    }

    #[test]
    fn starved_negotiation_degrades_to_naive() {
        // rank 0 stalls 300 ms at every negotiation step while its peers
        // give up after 60 ms: the DH build reliably times out. The
        // fallback's naive plan tolerates the same straggler (it has no
        // negotiation and a 10 s receive timeout), so the robust call
        // still returns correct buffers — just on the degraded plan.
        let graph = erdos_renyi(32, 0.3, 21);
        let layout = ClusterLayout::new(4, 2, 4);
        let c = DistGraphComm::create_adjacent(graph, layout)
            .unwrap()
            .with_policy(RobustPolicy {
                negotiation_timeout: Duration::from_millis(60),
                ..RobustPolicy::default()
            })
            .with_fault_plan(
                crate::fault::FaultPlan::seeded(3).with_slow_rank(0, Duration::from_millis(300)),
            );
        let payloads = test_payloads(32, 4, 1);
        let (bufs, report) = robust(&c, Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
        assert_eq!(report.used, Algorithm::Naive);
        assert!(matches!(report.fallback, Some(FallbackReason::BuildFailed(_))), "{report}");
    }

    type EdgeSet = Vec<(usize, usize)>;

    /// Picks churn sets for a graph: `k` present edges and `k` absent
    /// pairs, deterministically.
    fn churn_sets(g: &Topology, k: usize, seed: u64) -> (EdgeSet, EdgeSet) {
        let edges: Vec<_> = g.edges().collect();
        let removed: Vec<_> =
            (0..k).map(|i| edges[(seed as usize + i * 101) % edges.len()]).collect();
        let mut added = Vec::new();
        let mut x = seed | 1;
        while added.len() < k {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 16) as usize % g.n();
            let v = (x >> 40) as usize % g.n();
            if u != v && !g.has_edge(u, v) && !added.contains(&(u, v)) {
                added.push((u, v));
            }
        }
        (added, removed)
    }

    #[test]
    fn mutate_cold_builds_then_repairs_surgically() {
        let mut c = comm(32, 0.3);
        let payloads = test_payloads(32, 8, 3);
        // warm-up: cold slot → full build
        let warm = c.mutate(&[], &[]).unwrap();
        assert!(warm.full_rebuild);
        assert_eq!(warm.repairs, 0);

        let (added, removed) = churn_sets(c.graph(), 2, 5);
        let rep = c.mutate(&added, &removed).unwrap();
        assert!(!rep.full_rebuild, "small churn must take the surgical path");
        assert_eq!(rep.edges_added, 2);
        assert_eq!(rep.edges_removed, 2);
        assert!(rep.repairs == 1 && rep.damage_frac < 1.0);

        // the mutated communicator serves correct allgathers on the NEW topology
        let got = allgather(&c, Algorithm::DistanceHalving, &payloads);
        assert_eq!(got, reference_allgather(c.graph(), &payloads));

        // reference-output equality vs a from-scratch communicator on the same graph
        let fresh = DistGraphComm::create_adjacent(c.graph().clone(), c.layout().clone()).unwrap();
        let want = allgather(&fresh, Algorithm::DistanceHalving, &payloads);
        assert_eq!(got, want);
    }

    #[test]
    fn mutate_keeps_the_plan_cache_coherent() {
        let cache = Arc::new(PlanCache::new(8));
        let graph = erdos_renyi(32, 0.3, 21);
        let layout = ClusterLayout::new(4, 2, 4);
        let mut c = DistGraphComm::create_adjacent(graph, layout)
            .unwrap()
            .with_plan_cache(Arc::clone(&cache));
        c.mutate(&[], &[]).unwrap();
        assert_eq!(cache.len(), 1, "warm-up inserts under the canonical key");

        let (added, _) = churn_sets(c.graph(), 2, 9);
        c.mutate(&added, &[]).unwrap();
        assert_eq!(cache.len(), 1, "old entry retired, mutated entry inserted");
        // removing the same edges restores the canonical fingerprint:
        // the slot's key equals a cold build request for the original graph
        let original = erdos_renyi(32, 0.3, 21);
        c.mutate(&[], &added).unwrap();
        let canonical = PlanFingerprint::of_build_v(
            &original,
            c.layout(),
            Algorithm::DistanceHalving,
            &BlockSizes::default(),
            LoadMetric::default(),
        );
        assert!(
            cache.lookup(canonical, &original).is_some(),
            "add/remove round trip must land back on the original cache key"
        );
    }

    #[test]
    fn mutate_over_damage_threshold_rebuilds() {
        let mut c = comm(32, 0.5);
        c.mutate(&[], &[]).unwrap();
        // churn a third of all edges: far past the default 25% damage cap
        let edges: Vec<_> = c.graph().edges().collect();
        let removed: Vec<_> = edges.iter().copied().step_by(3).collect();
        let rep = c.mutate(&[], &removed).unwrap();
        assert!(rep.full_rebuild, "mass churn must fall back to a full rebuild");
        assert_eq!(rep.repairs, 0);
        let payloads = test_payloads(32, 8, 4);
        let got = allgather(&c, Algorithm::DistanceHalving, &payloads);
        assert_eq!(got, reference_allgather(c.graph(), &payloads));
    }

    /// Finds a (src, dst) pair the DH plan sends over but the graph has
    /// no edge between (either direction) — a pure relay link, invisible
    /// to the naive plan.
    fn dh_only_link(plan: &CollectivePlan, g: &Topology) -> Option<(usize, usize, usize)> {
        for (r, prog) in plan.per_rank.iter().enumerate() {
            for (k, ph) in prog.iter().enumerate() {
                for m in &ph.sends {
                    if !g.has_edge(r, m.peer) && !g.has_edge(m.peer, r) {
                        return Some((r, m.peer, k));
                    }
                }
            }
        }
        None
    }

    #[test]
    fn failed_primary_faults_survive_into_the_fallback_report() {
        // Regression (satellite 3): a LinkDown that kills the DH run must
        // still be counted in the final report after the naive fallback
        // succeeds — the old code threw away the failed attempt's tally.
        let c = comm(32, 0.3);
        let plan = c.robust_plan(Algorithm::DistanceHalving).unwrap();
        let (src, dst, phase) =
            dh_only_link(&plan, c.graph()).expect("DH at δ=0.3 uses relay links");
        let c = c
            .with_policy(RobustPolicy {
                repair_link_down: false, // force the naive fallback path
                ..RobustPolicy::default()
            })
            .with_fault_plan(crate::fault::FaultPlan::seeded(7).with_link_down(src, dst, phase));
        let payloads = test_payloads(32, 8, 6);
        let (bufs, report) = robust(&c, Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
        assert_eq!(report.used, Algorithm::Naive, "{report}");
        assert!(matches!(report.fallback, Some(FallbackReason::ExecFailed(_))), "{report}");
        assert!(
            report.faults.link_downs >= 1,
            "failed primary's link_downs lost from the report: {report}"
        );
    }

    #[test]
    fn link_down_mid_run_repairs_without_fallback() {
        let c = comm(64, 0.4);
        let plan = c.robust_plan(Algorithm::DistanceHalving).unwrap();
        let (src, dst, phase) =
            dh_only_link(&plan, c.graph()).expect("DH at δ=0.4 uses relay links");
        let c =
            c.with_fault_plan(crate::fault::FaultPlan::seeded(13).with_link_down(src, dst, phase));
        let payloads = test_payloads(64, 8, 9);
        let (bufs, report) = robust(&c, Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(report.used, Algorithm::DistanceHalving, "{report}");
        assert!(report.fallback.is_none(), "repair must obviate the naive fallback: {report}");
        assert!(report.repairs >= 1, "{report}");
        assert!(report.faults.link_downs >= 1, "{report}");
        assert!(!report.clean(), "a repaired run is not clean");
        // the dead link is NOT a graph edge, so no delivery is lost:
        // buffers must be complete and exact
        assert!(report.completeness.is_full(), "{report}");
        assert!(report.degraded_ranks.is_empty());
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
    }

    #[test]
    fn fallback_disabled_surfaces_the_build_error() {
        let graph = erdos_renyi(16, 0.4, 5);
        let layout = ClusterLayout::new(2, 2, 4);
        let c = DistGraphComm::create_adjacent(graph, layout)
            .unwrap()
            .with_policy(RobustPolicy {
                negotiation_timeout: Duration::from_millis(50),
                fallback_to_naive: false,
                ..RobustPolicy::default()
            })
            .with_fault_plan(crate::fault::FaultPlan::seeded(9).with_message_drop(1.0));
        let payloads = test_payloads(16, 4, 0);
        match robust(&c, Algorithm::DistanceHalving, &payloads) {
            Err(CommError::Build(BuildError::NegotiationTimeout { .. })) => {}
            other => panic!("expected NegotiationTimeout, got {other:?}"),
        }
    }
}
