//! The public communicator API — the `MPI_Dist_graph_create_adjacent` /
//! `MPI_Neighbor_allgather` surface of this library.
//!
//! ```
//! use nhood_cluster::ClusterLayout;
//! use nhood_core::comm::DistGraphComm;
//! use nhood_core::plan::Algorithm;
//! use nhood_topology::random::erdos_renyi;
//!
//! let graph = erdos_renyi(16, 0.3, 42);
//! let layout = ClusterLayout::new(2, 2, 4);
//! let comm = DistGraphComm::create_adjacent(graph, layout).unwrap();
//! let payloads: Vec<Vec<u8>> = (0..16).map(|r| vec![r as u8; 8]).collect();
//! let rbufs = comm.neighbor_allgather(Algorithm::DistanceHalving, &payloads).unwrap();
//! assert_eq!(rbufs.len(), 16);
//! ```

use crate::arena::BlockArena;
use crate::builder::{build_pattern_pooled, BuildError, PairingStrategy};
use crate::common_neighbor::plan_common_neighbor;
use crate::distributed_builder::build_pattern_distributed_pooled_v;
use crate::exec::sim_exec::{simulate, SimCost};
use crate::exec::threaded::DEFAULT_TIMEOUT;
use crate::exec::{ExecError, ExecOptions, Executor, Threaded, Virtual};
use crate::fault::{FaultCounts, FaultPlan};
use crate::lower::lower_pooled;
use crate::naive::plan_naive;
use crate::plan::{Algorithm, CollectivePlan, PlanValidationError};
use crate::plan_cache::{PlanCache, PlanFingerprint};
use crate::pool::WorkerPool;
use crate::sizes::{BlockSizes, LoadMetric};
use nhood_cluster::ClusterLayout;
use nhood_simnet::{SimError, SimReport};
use nhood_telemetry::{Counts, Recorder, NULL};
use nhood_topology::Topology;
use std::sync::Arc;
use std::time::Duration;

/// Errors from the communicator API.
#[derive(Debug)]
pub enum CommError {
    /// Pattern construction failed.
    Build(BuildError),
    /// Plan execution failed.
    Exec(ExecError),
    /// Simulation failed.
    Sim(SimError),
    /// A produced plan failed validation — an internal bug, surfaced
    /// loudly (and typed, so tests can match on the cause) rather than
    /// silently returning wrong data.
    InvalidPlan(PlanValidationError),
    /// A produced alltoall plan failed validation.
    InvalidAlltoallPlan(String),
    /// The requested algorithm does not support the requested operation
    /// (e.g. Common Neighbor has no alltoall formulation).
    UnsupportedAlgorithm {
        /// The algorithm that was requested.
        algorithm: Algorithm,
        /// The operation it cannot perform.
        operation: &'static str,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Build(e) => write!(f, "pattern build failed: {e}"),
            CommError::Exec(e) => write!(f, "execution failed: {e}"),
            CommError::Sim(e) => write!(f, "simulation failed: {e}"),
            CommError::InvalidPlan(m) => write!(f, "internal plan invariant violated: {m}"),
            CommError::InvalidAlltoallPlan(m) => {
                write!(f, "internal alltoall plan invariant violated: {m}")
            }
            CommError::UnsupportedAlgorithm { algorithm, operation } => {
                write!(f, "{algorithm} does not support {operation}")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<BuildError> for CommError {
    fn from(e: BuildError) -> Self {
        CommError::Build(e)
    }
}
impl From<ExecError> for CommError {
    fn from(e: ExecError) -> Self {
        CommError::Exec(e)
    }
}
impl From<SimError> for CommError {
    fn from(e: SimError) -> Self {
        CommError::Sim(e)
    }
}

/// Robustness knobs of a communicator: timeouts, the retry policy of the
/// threaded transport, and whether failures degrade to the naive plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobustPolicy {
    /// Per-receive timeout of the threaded executor (previously the
    /// hard-coded `DEFAULT_TIMEOUT`).
    pub recv_timeout: Duration,
    /// Optional wall-clock budget per plan phase; `None` leaves only the
    /// per-receive timeout.
    pub phase_deadline: Option<Duration>,
    /// Per-receive timeout of the distributed pattern negotiation.
    pub negotiation_timeout: Duration,
    /// Retransmissions per message under fault injection.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Degrade to the naive plan when Distance Halving pattern
    /// construction or execution fails, instead of returning the error.
    pub fallback_to_naive: bool,
}

impl Default for RobustPolicy {
    fn default() -> Self {
        Self {
            recv_timeout: DEFAULT_TIMEOUT,
            phase_deadline: None,
            negotiation_timeout: crate::distributed_builder::RECV_TIMEOUT,
            max_retries: 4,
            backoff_base: Duration::from_micros(200),
            fallback_to_naive: true,
        }
    }
}

/// Why a robust allgather abandoned the requested algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Pattern construction (the distributed negotiation) failed.
    BuildFailed(String),
    /// The plan built, but executing it failed.
    ExecFailed(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::BuildFailed(e) => write!(f, "pattern build failed ({e})"),
            FallbackReason::ExecFailed(e) => write!(f, "execution failed ({e})"),
        }
    }
}

/// Structured outcome of [`DistGraphComm::neighbor_allgather_robust`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// The algorithm the caller asked for.
    pub requested: Algorithm,
    /// The algorithm whose plan actually produced the buffers.
    pub used: Algorithm,
    /// `Some` iff the run degraded from `requested` to `used`.
    pub fallback: Option<FallbackReason>,
    /// Faults injected and retries spent (summed over a fallback re-run).
    pub faults: FaultCounts,
    /// Telemetry counter totals, when the run was given a counting
    /// recorder (see
    /// [`DistGraphComm::neighbor_allgather_robust_recorded`]); `None`
    /// otherwise.
    pub counters: Option<Counts>,
}

impl ExecReport {
    /// `true` if the requested algorithm completed without degradation.
    pub fn clean(&self) -> bool {
        self.fallback.is_none()
    }
}

impl std::fmt::Display for ExecReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.fallback {
            None => write!(f, "{} ok ({})", self.used, self.faults)?,
            Some(r) => {
                write!(f, "{} -> {} fallback: {r} ({})", self.requested, self.used, self.faults)?
            }
        }
        if let Some(c) = &self.counters {
            write!(f, " [{c}]")?;
        }
        Ok(())
    }
}

/// A communicator with an attached virtual topology and cluster layout.
///
/// Construction corresponds to `MPI_Dist_graph_create_adjacent`: it is
/// the point where pattern-creation work happens (and where Distance
/// Halving pays its one-time agent-selection overhead — see Fig. 8).
#[derive(Clone, Debug)]
pub struct DistGraphComm {
    graph: Topology,
    layout: ClusterLayout,
    policy: RobustPolicy,
    fault: Option<FaultPlan>,
    cache: Option<Arc<PlanCache>>,
    build_pool: WorkerPool,
    metric: LoadMetric,
    sizes: Option<BlockSizes>,
}

impl DistGraphComm {
    /// Creates a communicator. Fails if the layout has fewer cores than
    /// the topology has ranks.
    pub fn create_adjacent(graph: Topology, layout: ClusterLayout) -> Result<Self, CommError> {
        if graph.n() > layout.capacity() {
            return Err(CommError::Build(BuildError::LayoutTooSmall {
                ranks: graph.n(),
                capacity: layout.capacity(),
            }));
        }
        Ok(Self {
            graph,
            layout,
            policy: RobustPolicy::default(),
            fault: None,
            cache: None,
            build_pool: WorkerPool::serial(),
            metric: LoadMetric::default(),
            sizes: None,
        })
    }

    /// Selects the load metric of agent selection:
    /// [`LoadMetric::Neighbors`] (the paper's count-based scoring, the
    /// default) or [`LoadMetric::Bytes`], which weighs candidates by
    /// their block size — from [`Self::with_block_sizes`] when set,
    /// otherwise derived per call from the `allgatherv` payloads.
    pub fn with_load_metric(mut self, metric: LoadMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Pins the per-rank block-size table consulted by
    /// [`LoadMetric::Bytes`] selection (and by the size-aware plan-cache
    /// fingerprint). Without it, sized paths derive the table from the
    /// payloads they are handed.
    pub fn with_block_sizes(mut self, sizes: BlockSizes) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// The active load metric.
    pub fn load_metric(&self) -> LoadMetric {
        self.metric
    }

    /// The pinned block-size table, if any.
    pub fn block_sizes(&self) -> Option<&BlockSizes> {
        self.sizes.as_ref()
    }

    /// The size table planning uses when nothing better is known: the
    /// pinned table, or the uniform default.
    fn planning_sizes(&self) -> BlockSizes {
        self.sizes.clone().unwrap_or_default()
    }

    /// Replaces the robustness policy (timeouts, retries, fallback).
    pub fn with_policy(mut self, policy: RobustPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault plan: the threaded executor and the distributed
    /// negotiation of [`Self::neighbor_allgather_robust`] consult it at
    /// every send.
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a shared plan cache: [`Self::plan_shared`] (and every
    /// collective that plans through it) first consults the cache, keyed
    /// by a [`PlanFingerprint`] of this communicator's topology, layout
    /// and the requested algorithm.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the worker-thread count for pattern construction and plan
    /// lowering (`0` = size to the host's available parallelism). The
    /// default is serial, which parallel builds are byte-identical to.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_pool = if threads == 0 { WorkerPool::auto() } else { WorkerPool::new(threads) };
        self
    }

    /// The plan-construction worker pool.
    pub fn build_pool(&self) -> &WorkerPool {
        &self.build_pool
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// The active robustness policy.
    pub fn policy(&self) -> &RobustPolicy {
        &self.policy
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The virtual topology.
    pub fn graph(&self) -> &Topology {
        &self.graph
    }

    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Builds (and validates) the data-movement plan for an algorithm.
    /// Construction runs on the communicator's build pool
    /// ([`Self::with_build_threads`]); the plan cache is **not**
    /// consulted — use [`Self::plan_shared`] for the cached path.
    pub fn plan(&self, algo: Algorithm) -> Result<CollectivePlan, CommError> {
        self.build_plan_recorded(algo, &self.planning_sizes(), &NULL)
    }

    /// The uncached build path shared by [`Self::plan`] and cache misses.
    fn build_plan_recorded(
        &self,
        algo: Algorithm,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<CollectivePlan, CommError> {
        let plan = match algo {
            Algorithm::Naive => plan_naive(&self.graph),
            Algorithm::CommonNeighbor { k } => plan_common_neighbor(&self.graph, k),
            Algorithm::DistanceHalving => {
                let pattern = crate::builder::build_pattern_recorded_v(
                    &self.graph,
                    &self.layout,
                    PairingStrategy::LoadAware,
                    sizes,
                    self.metric,
                    &self.build_pool,
                    rec,
                )?;
                rec.span_begin(0, nhood_telemetry::labels::PLAN_LOWER);
                let plan = lower_pooled(&pattern, &self.graph, &self.build_pool);
                rec.span_end(0, nhood_telemetry::labels::PLAN_LOWER);
                plan
            }
            Algorithm::HierarchicalLeader { leaders_per_node } => {
                crate::leader::plan_hierarchical_leader(&self.graph, &self.layout, leaders_per_node)
            }
        };
        plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
        Ok(plan)
    }

    /// [`Self::plan`] through the attached [`PlanCache`]: on a hit the
    /// cached `Arc` is returned with no build or validation work (plans
    /// are validated before insertion, and disk-tier loads are
    /// re-validated inside the cache). Without an attached cache this is
    /// a plain build wrapped in an `Arc`.
    pub fn plan_shared(&self, algo: Algorithm) -> Result<Arc<CollectivePlan>, CommError> {
        self.plan_shared_recorded(algo, &NULL)
    }

    /// [`Self::plan_shared`] with a telemetry [`Recorder`]: the lookup
    /// reports `plan_cache` hit/miss (against rank 0, the
    /// communicator-wide event's representative) and cold builds report
    /// their build/lower spans.
    pub fn plan_shared_recorded(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<Arc<CollectivePlan>, CommError> {
        self.plan_shared_sized(algo, &self.planning_sizes(), rec)
    }

    /// The sized planning path behind every cached build: the cache key
    /// is [`PlanFingerprint::of_build_v`] over this communicator's
    /// metric and `sizes`, so a Bytes-metric ragged build can never be
    /// served a plan negotiated for different block sizes.
    fn plan_shared_sized(
        &self,
        algo: Algorithm,
        sizes: &BlockSizes,
        rec: &dyn Recorder,
    ) -> Result<Arc<CollectivePlan>, CommError> {
        let Some(cache) = &self.cache else {
            return Ok(Arc::new(self.build_plan_recorded(algo, sizes, rec)?));
        };
        let fp = PlanFingerprint::of_build_v(&self.graph, &self.layout, algo, sizes, self.metric);
        let (plan, hit) =
            cache.get_or_build(fp, &self.graph, || self.build_plan_recorded(algo, sizes, rec))?;
        rec.plan_cache(0, hit);
        Ok(plan)
    }

    /// One-call neighborhood allgather: plans `algo` and executes it with
    /// the virtual executor (arena engine). Returns each rank's receive
    /// buffer (in-neighbor payloads concatenated in `in_neighbors`
    /// order).
    pub fn neighbor_allgather(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let plan = self.plan_shared(algo)?;
        Ok(Virtual.run_simple(&plan, &self.graph, payloads)?)
    }

    /// The `neighbor_allgatherv` variant of
    /// [`neighbor_allgather`](Self::neighbor_allgather): per-rank
    /// payloads may differ in length (including zero). The receive
    /// buffer of rank `r` concatenates its in-neighbors' payloads, each
    /// at its own size.
    ///
    /// Under [`LoadMetric::Bytes`] the plan is negotiated against the
    /// communicator's size table — [`Self::with_block_sizes`] when
    /// pinned, otherwise the per-call payload lengths — and cached under
    /// a size-aware fingerprint.
    pub fn neighbor_allgatherv(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let sizes = self.sizes.clone().unwrap_or_else(|| BlockSizes::from_payloads(payloads));
        let plan = self.plan_shared_sized(algo, &sizes, &NULL)?;
        let opts = ExecOptions::new().ragged(true);
        let out = Virtual.run(&plan, &self.graph, payloads, &mut BlockArena::new(), &opts)?;
        Ok(out.rbufs)
    }

    /// Neighborhood **alltoall**: `sbufs[p]` holds one distinct `m`-byte
    /// block per outgoing neighbor (in `O(p)` order); returns per-rank
    /// receive buffers with one block per incoming neighbor (in `I(r)`
    /// order). Supports [`Algorithm::Naive`] and
    /// [`Algorithm::DistanceHalving`] (the paper's future-work variant,
    /// see [`crate::alltoall`]).
    pub fn neighbor_alltoall(
        &self,
        algo: Algorithm,
        sbufs: &[Vec<u8>],
        m: usize,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let plan = self.alltoall_plan(algo)?;
        Ok(crate::alltoall::run_alltoall_virtual(&plan, &self.graph, sbufs, m)?)
    }

    /// Builds (and validates) an alltoall plan.
    ///
    /// # Errors
    /// Returns [`CommError::UnsupportedAlgorithm`] for
    /// [`Algorithm::CommonNeighbor`] and
    /// [`Algorithm::HierarchicalLeader`], which have no alltoall
    /// formulation.
    pub fn alltoall_plan(
        &self,
        algo: Algorithm,
    ) -> Result<crate::alltoall::AlltoallPlan, CommError> {
        let plan = match algo {
            Algorithm::Naive => crate::alltoall::plan_naive_alltoall(&self.graph),
            Algorithm::DistanceHalving => {
                let pattern = build_pattern_pooled(
                    &self.graph,
                    &self.layout,
                    PairingStrategy::LoadAware,
                    &self.build_pool,
                )?;
                crate::alltoall::plan_dh_alltoall(&pattern, &self.graph)
            }
            Algorithm::CommonNeighbor { .. } | Algorithm::HierarchicalLeader { .. } => {
                return Err(CommError::UnsupportedAlgorithm {
                    algorithm: algo,
                    operation: "neighborhood alltoall",
                })
            }
        };
        plan.validate(&self.graph).map_err(CommError::InvalidAlltoallPlan)?;
        Ok(plan)
    }

    /// Plans `algo` the way the robust path does: Distance Halving runs
    /// the *distributed* negotiation (under the communicator's fault
    /// plan and negotiation timeout), so pattern construction is itself
    /// exposed to injected faults; every other algorithm plans as
    /// [`Self::plan`].
    pub fn robust_plan(&self, algo: Algorithm) -> Result<CollectivePlan, CommError> {
        self.robust_plan_recorded(algo, &NULL)
    }

    /// [`Self::robust_plan`] with a telemetry [`Recorder`]: the
    /// distributed negotiation reports per-rank negotiation rounds,
    /// signal retries and `negotiate` spans as it runs.
    pub fn robust_plan_recorded(
        &self,
        algo: Algorithm,
        rec: &dyn Recorder,
    ) -> Result<CollectivePlan, CommError> {
        match algo {
            Algorithm::DistanceHalving => {
                let pattern = build_pattern_distributed_pooled_v(
                    &self.graph,
                    &self.layout,
                    self.fault.as_ref(),
                    self.policy.negotiation_timeout,
                    &self.planning_sizes(),
                    self.metric,
                    &self.build_pool,
                    rec,
                )?;
                let plan = lower_pooled(&pattern, &self.graph, &self.build_pool);
                plan.validate(&self.graph).map_err(CommError::InvalidPlan)?;
                Ok(plan)
            }
            _ => self.plan(algo),
        }
    }

    /// Fault-tolerant neighborhood allgather on the threaded executor.
    ///
    /// Plans `algo` (Distance Halving via the distributed negotiation,
    /// so construction itself can fail under faults) and executes with
    /// the policy's timeouts, retry budget and the attached fault plan.
    /// If the policy allows it, a failed build or a liveness failure
    /// during execution **degrades to the naive plan** instead of
    /// erroring; the returned [`ExecReport`] records what was requested,
    /// what ran, why it degraded, and the fault/retry tally. Buffers are
    /// only ever returned when some plan ran to completion — a fault
    /// schedule that defeats both the requested plan and the naive
    /// fallback yields a typed error, never corrupt data or a hang.
    pub fn neighbor_allgather_robust(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        self.neighbor_allgather_robust_recorded(algo, payloads, &NULL)
    }

    /// [`Self::neighbor_allgather_robust`] with a telemetry
    /// [`Recorder`]: negotiation, execution, retries and the
    /// degradation decision itself all report into `rec` (a fallback is
    /// recorded against rank 0, the communicator-wide event's
    /// representative). When `rec` keeps counters (a
    /// `CountingRecorder`), their totals are copied into
    /// [`ExecReport::counters`].
    pub fn neighbor_allgather_robust_recorded(
        &self,
        algo: Algorithm,
        payloads: &[Vec<u8>],
        rec: &dyn Recorder,
    ) -> Result<(Vec<Vec<u8>>, ExecReport), CommError> {
        let mut report = ExecReport {
            requested: algo,
            used: algo,
            fallback: None,
            faults: FaultCounts::default(),
            counters: None,
        };
        let plan = match self.robust_plan_recorded(algo, rec) {
            Ok(p) => Some(p),
            Err(e) => {
                if self.policy.fallback_to_naive && algo != Algorithm::Naive {
                    rec.fallback(0);
                    report.fallback = Some(FallbackReason::BuildFailed(e.to_string()));
                    report.used = Algorithm::Naive;
                    None
                } else {
                    return Err(e);
                }
            }
        };
        let mut opts = ExecOptions::new()
            .recv_timeout(self.policy.recv_timeout)
            .phase_deadline(self.policy.phase_deadline)
            .retries(self.policy.max_retries, self.policy.backoff_base)
            .recorder(rec);
        if let Some(fp) = self.fault.as_ref() {
            opts = opts.fault(fp);
        }
        let mut arena = BlockArena::new();
        if let Some(plan) = plan {
            match Threaded.run(&plan, &self.graph, payloads, &mut arena, &opts) {
                Ok(run) => {
                    report.faults = run.faults;
                    report.counters = rec.counts();
                    return Ok((run.rbufs, report));
                }
                Err(e) => {
                    if !(self.policy.fallback_to_naive && report.used != Algorithm::Naive) {
                        return Err(e.into());
                    }
                    rec.fallback(0);
                    report.fallback = Some(FallbackReason::ExecFailed(e.to_string()));
                    report.used = Algorithm::Naive;
                }
            }
        }
        // degraded path: the naive plan under the same faults and policy
        let naive = self.plan(Algorithm::Naive)?;
        let run = Threaded.run(&naive, &self.graph, payloads, &mut arena, &opts)?;
        report.faults = report.faults.merged(&run.faults);
        report.counters = rec.counts();
        Ok((run.rbufs, report))
    }

    /// Simulated latency of `algo` at per-rank message size `m`.
    pub fn latency(
        &self,
        algo: Algorithm,
        m: usize,
        cost: &SimCost,
    ) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(simulate(&plan, &self.layout, m, cost)?)
    }

    /// Simulated latency with per-rank payload sizes (`allgatherv`).
    pub fn latency_v(
        &self,
        algo: Algorithm,
        sizes: &[usize],
        cost: &SimCost,
    ) -> Result<SimReport, CommError> {
        let plan = self.plan(algo)?;
        Ok(crate::exec::sim_exec::simulate_v(&plan, &self.layout, sizes, cost)?)
    }

    /// Sweeps Common Neighbor over `ks` and returns `(k, plan)` with the
    /// lowest simulated latency at message size `m` — the paper launches
    /// CN "with various values of K" and reports the best.
    pub fn best_common_neighbor(
        &self,
        ks: &[usize],
        m: usize,
        cost: &SimCost,
    ) -> Result<(usize, CollectivePlan), CommError> {
        assert!(!ks.is_empty(), "need at least one K to sweep");
        let mut best: Option<(f64, usize, CollectivePlan)> = None;
        for &k in ks {
            let plan = self.plan(Algorithm::CommonNeighbor { k })?;
            let t = simulate(&plan, &self.layout, m, cost)?.makespan;
            if best.as_ref().is_none_or(|(bt, ..)| t < *bt) {
                best = Some((t, k, plan));
            }
        }
        let (_, k, plan) = best.expect("ks is non-empty");
        Ok((k, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use nhood_topology::random::erdos_renyi;

    fn comm(n: usize, delta: f64) -> DistGraphComm {
        let graph = erdos_renyi(n, delta, 21);
        let layout = ClusterLayout::new(n / 8, 2, 4);
        DistGraphComm::create_adjacent(graph, layout).unwrap()
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 16, 5);
        let want = reference_allgather(c.graph(), &payloads);
        for algo in
            [Algorithm::Naive, Algorithm::CommonNeighbor { k: 4 }, Algorithm::DistanceHalving]
        {
            let got = c.neighbor_allgather(algo, &payloads).unwrap();
            assert_eq!(got, want, "{algo}");
        }
    }

    #[test]
    fn create_rejects_oversized_graph() {
        let graph = erdos_renyi(100, 0.1, 1);
        let layout = ClusterLayout::new(2, 2, 4);
        assert!(matches!(
            DistGraphComm::create_adjacent(graph, layout),
            Err(CommError::Build(BuildError::LayoutTooSmall { ranks: 100, capacity: 16 }))
        ));
    }

    #[test]
    fn latency_positive_and_algorithm_dependent() {
        let c = comm(64, 0.5);
        let cost = SimCost::niagara();
        let tn = c.latency(Algorithm::Naive, 64, &cost).unwrap().makespan;
        let td = c.latency(Algorithm::DistanceHalving, 64, &cost).unwrap().makespan;
        assert!(tn > 0.0 && td > 0.0);
        assert_ne!(tn, td);
    }

    #[test]
    fn best_k_sweep_picks_a_swept_value() {
        let c = comm(32, 0.4);
        let cost = SimCost::niagara();
        let (k, plan) = c.best_common_neighbor(&[2, 4, 8], 256, &cost).unwrap();
        assert!([2, 4, 8].contains(&k));
        assert_eq!(plan.algorithm, Algorithm::CommonNeighbor { k });
        // the chosen K is at least as good as the others
        let t_best = simulate(&plan, c.layout(), 256, &cost).unwrap().makespan;
        for other in [2usize, 4, 8] {
            let p = c.plan(Algorithm::CommonNeighbor { k: other }).unwrap();
            let t = simulate(&p, c.layout(), 256, &cost).unwrap().makespan;
            assert!(t_best <= t + 1e-15, "k={other} beat the sweep winner");
        }
    }

    #[test]
    fn plan_exposes_selection_stats_only_for_dh() {
        let c = comm(32, 0.3);
        assert!(c.plan(Algorithm::Naive).unwrap().selection.is_none());
        assert!(c.plan(Algorithm::DistanceHalving).unwrap().selection.is_some());
    }

    #[test]
    fn alltoall_plan_rejects_unsupported_algorithms_typed() {
        let c = comm(16, 0.4);
        for algo in [
            Algorithm::CommonNeighbor { k: 4 },
            Algorithm::HierarchicalLeader { leaders_per_node: 2 },
        ] {
            match c.alltoall_plan(algo) {
                Err(CommError::UnsupportedAlgorithm { algorithm, operation }) => {
                    assert_eq!(algorithm, algo);
                    assert!(operation.contains("alltoall"));
                }
                other => panic!("expected UnsupportedAlgorithm, got {other:?}"),
            }
        }
    }

    #[test]
    fn robust_allgather_without_faults_is_clean() {
        let c = comm(32, 0.3);
        let payloads = test_payloads(32, 8, 7);
        let (bufs, report) =
            c.neighbor_allgather_robust(Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
        assert!(report.clean());
        assert_eq!(report.used, Algorithm::DistanceHalving);
        assert_eq!(report.faults.total_injected(), 0);
    }

    #[test]
    fn robust_allgather_retries_through_moderate_drops() {
        let c = comm(32, 0.3).with_fault_plan(
            crate::fault::FaultPlan::seeded(11)
                .with_message_drop(0.05)
                .with_message_delay(0.05, Duration::from_micros(200)),
        );
        let payloads = test_payloads(32, 8, 2);
        let (bufs, report) =
            c.neighbor_allgather_robust(Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads), "{report}");
        assert!(report.faults.drops + report.faults.delays > 0);
    }

    #[test]
    fn starved_negotiation_degrades_to_naive() {
        // rank 0 stalls 300 ms at every negotiation step while its peers
        // give up after 60 ms: the DH build reliably times out. The
        // fallback's naive plan tolerates the same straggler (it has no
        // negotiation and a 10 s receive timeout), so the robust call
        // still returns correct buffers — just on the degraded plan.
        let graph = erdos_renyi(32, 0.3, 21);
        let layout = ClusterLayout::new(4, 2, 4);
        let c = DistGraphComm::create_adjacent(graph, layout)
            .unwrap()
            .with_policy(RobustPolicy {
                negotiation_timeout: Duration::from_millis(60),
                ..RobustPolicy::default()
            })
            .with_fault_plan(
                crate::fault::FaultPlan::seeded(3).with_slow_rank(0, Duration::from_millis(300)),
            );
        let payloads = test_payloads(32, 4, 1);
        let (bufs, report) =
            c.neighbor_allgather_robust(Algorithm::DistanceHalving, &payloads).unwrap();
        assert_eq!(bufs, reference_allgather(c.graph(), &payloads));
        assert_eq!(report.used, Algorithm::Naive);
        assert!(matches!(report.fallback, Some(FallbackReason::BuildFailed(_))), "{report}");
    }

    #[test]
    fn fallback_disabled_surfaces_the_build_error() {
        let graph = erdos_renyi(16, 0.4, 5);
        let layout = ClusterLayout::new(2, 2, 4);
        let c = DistGraphComm::create_adjacent(graph, layout)
            .unwrap()
            .with_policy(RobustPolicy {
                negotiation_timeout: Duration::from_millis(50),
                fallback_to_naive: false,
                ..RobustPolicy::default()
            })
            .with_fault_plan(crate::fault::FaultPlan::seeded(9).with_message_drop(1.0));
        let payloads = test_payloads(16, 4, 0);
        match c.neighbor_allgather_robust(Algorithm::DistanceHalving, &payloads) {
            Err(CommError::Build(BuildError::NegotiationTimeout { .. })) => {}
            other => panic!("expected NegotiationTimeout, got {other:?}"),
        }
    }
}
