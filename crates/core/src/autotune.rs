//! The simulation-driven algorithm auto-tuner behind
//! [`Algorithm::Auto`].
//!
//! Instead of static crossover thresholds (the old `select_algo`
//! heuristics, now thin shims over this module), the tuner builds every
//! portfolio candidate for the request's exact (topology, layout,
//! [`BlockSizes`](crate::sizes::BlockSizes)) triple, scores each plan
//! through the §V cost model ([`crate::exec::sim_exec::simulate_v`]),
//! and picks the strict-minimum makespan. Candidate order is fixed and
//! ties break toward the earlier candidate, so the winner is a pure
//! function of the tuner fingerprint — the determinism the plan cache
//! relies on ([`crate::plan_cache::PlanFingerprint::of_tuner`]).
//!
//! Tuning is paid once per fingerprint: the winning plan is inserted
//! into the attached [`crate::plan_cache::PlanCache`] under the tuner
//! key (and under the winner's own canonical build key, so explicit
//! requests for the winning algorithm coalesce with `Auto` requests),
//! and [`crate::comm::DistGraphComm::mutate`] retires the entry when
//! the topology churns. See `docs/AUTOTUNE.md`.

use crate::plan::{Algorithm, CollectivePlan};
use nhood_cluster::{ClusterLayout, Placement};
use std::sync::Arc;

/// The `CommonNeighbor` group sizes the tuner sweeps — the paper
/// launches CN "with various values of K" and reports the best; this is
/// that sweep, clamped to the communicator size.
pub const CN_SWEEP: [usize; 4] = [2, 4, 8, 16];

/// What one tuning pass decided, and at what cost.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The winning (concrete) algorithm.
    pub winner: Algorithm,
    /// Simulated makespan per candidate that built successfully, in
    /// candidate order.
    pub scores: Vec<(Algorithm, f64)>,
    /// Candidate simulations this pass performed (0 would mean the
    /// caller should have hit the cache instead).
    pub simulations: u64,
    /// The winner's validated plan.
    pub plan: Arc<CollectivePlan>,
}

/// The candidate portfolio for a communicator of `n` ranks on `layout`.
///
/// Always includes `Naive`; for non-degenerate sizes also Distance
/// Halving, the [`CN_SWEEP`] of Common Neighbor group sizes (those
/// below `n`), and PAT at radix 2 and 4. The node-hierarchical designs
/// — `HierarchicalLeader { leaders_per_node }` and `Bruck` — join only
/// under block placement (their builders require it) and only when the
/// layout actually spans multiple nodes.
pub fn candidates(n: usize, layout: &ClusterLayout, leaders_per_node: usize) -> Vec<Algorithm> {
    let mut cands = vec![Algorithm::Naive];
    if n < 2 {
        return cands;
    }
    cands.push(Algorithm::DistanceHalving);
    for k in CN_SWEEP {
        if k < n {
            cands.push(Algorithm::CommonNeighbor { k });
        }
    }
    cands.push(Algorithm::Pat { radix: 2 });
    cands.push(Algorithm::Pat { radix: 4 });
    if layout.placement() == Placement::Block && layout.nodes() > 1 {
        cands.push(Algorithm::HierarchicalLeader { leaders_per_node: leaders_per_node.max(1) });
        cands.push(Algorithm::Bruck);
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_scales_with_n_and_placement() {
        let block = ClusterLayout::new(4, 2, 4);
        let full = candidates(32, &block, 8);
        assert!(full.contains(&Algorithm::Bruck));
        assert!(full.contains(&Algorithm::HierarchicalLeader { leaders_per_node: 8 }));
        assert!(full.contains(&Algorithm::CommonNeighbor { k: 16 }));

        // tiny communicator: direct sends only
        assert_eq!(candidates(1, &block, 8), vec![Algorithm::Naive]);

        // CN sweep clamps below n
        let small = candidates(8, &block, 8);
        assert!(!small.contains(&Algorithm::CommonNeighbor { k: 8 }));
        assert!(small.contains(&Algorithm::CommonNeighbor { k: 4 }));

        // non-block placement drops the node-hierarchical designs
        let rr = ClusterLayout::new(4, 2, 4).with_placement(Placement::RoundRobinNodes);
        let no_hier = candidates(32, &rr, 8);
        assert!(!no_hier.contains(&Algorithm::Bruck));
        assert!(!no_hier.iter().any(|a| matches!(a, Algorithm::HierarchicalLeader { .. })));
    }

    #[test]
    fn auto_is_never_its_own_candidate() {
        let layout = ClusterLayout::new(4, 2, 4);
        assert!(!candidates(64, &layout, 8).contains(&Algorithm::Auto));
    }
}
