//! PAT-style aggregated trees (after Jeaugey, "PAT: a new algorithm for
//! all-gather and reduce-scatter operations at scale"): each destination
//! rank's **in-neighborhood** aggregates along a radix-`R` binomial tree
//! rooted at one of the sources, and the root makes a single combined
//! delivery. Depth is `O(log_R k)` for an in-degree of `k`, and every
//! link carries each block at most once — the aggregation pattern the
//! PAT paper uses to keep allgather traffic flat at scale.
//!
//! The per-destination trees are built independently and then merged
//! into one lock-step plan: within each phase, a block already held by
//! (or concurrently arriving at) the receiver is dropped from the
//! message, so overlapping trees never double-deliver. Tree roots are
//! rotated by the destination rank to spread aggregation load.

use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use nhood_topology::{Rank, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the PAT aggregated-tree plan.
///
/// # Panics
/// Panics if `radix < 2`.
pub fn plan_pat(graph: &Topology, radix: usize) -> CollectivePlan {
    assert!(radix >= 2, "PAT aggregation needs radix >= 2");
    let n = graph.n();

    // Per destination, the aggregation tree over its sorted in-neighbors
    // (rotated by the destination rank so roots spread across sources).
    // rounds[j][(src, dst)] -> blocks moving in aggregation round j;
    // the final delivery to the destination shares the round maps.
    let mut rounds: Vec<BTreeMap<(Rank, Rank), BTreeSet<Rank>>> = Vec::new();
    for t in 0..n {
        let mut srcs: Vec<Rank> =
            graph.in_neighbors(t).iter().copied().filter(|&s| s != t).collect();
        if srcs.is_empty() {
            continue;
        }
        srcs.sort_unstable();
        let k = srcs.len();
        srcs.rotate_left(t % k);
        // Aggregation: in round j, the source at index i (i a multiple of
        // step = radix^j but not of step * radix) sends its subtree
        // [i, i + step) to its parent at the next-lower multiple.
        let mut depth = 0usize;
        let mut step = 1usize;
        while step < k {
            if rounds.len() <= depth {
                rounds.push(BTreeMap::new());
            }
            let next = step * radix;
            let mut i = step;
            while i < k {
                if !i.is_multiple_of(next) {
                    let parent = i - (i % next);
                    let blocks: BTreeSet<Rank> =
                        srcs[i..(i + step).min(k)].iter().copied().collect();
                    rounds[depth].entry((srcs[i], srcs[parent])).or_default().extend(blocks);
                }
                i += step;
            }
            depth += 1;
            step = next;
        }
        // Delivery: the root sends the whole in-neighborhood in one
        // combined message, one round after aggregation finishes.
        if rounds.len() <= depth {
            rounds.push(BTreeMap::new());
        }
        rounds[depth].entry((srcs[0], t)).or_default().extend(srcs.iter().copied());
    }

    // Merge the per-destination trees into lock-step phases. `held`
    // mirrors the possession rule of plan validation exactly: a message
    // only carries blocks its receiver does not already hold and is not
    // concurrently receiving this phase, so overlapping trees cannot
    // double-deliver and every send reads pre-phase possession.
    let depth = rounds.len();
    let mut held: Vec<BTreeSet<Rank>> = (0..n).map(|r| BTreeSet::from([r])).collect();
    let mut phases: Vec<Vec<PlanPhase>> = Vec::with_capacity(depth);
    let mut epilogue: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    for (j, round) in rounds.iter().enumerate() {
        let mut phase: Vec<PlanPhase> = vec![PlanPhase::default(); n];
        let mut arriving: Vec<BTreeSet<Rank>> = vec![BTreeSet::new(); n];
        for (&(src, dst), blocks) in round {
            let filtered: Vec<Rank> = blocks
                .iter()
                .copied()
                .filter(|b| !held[dst].contains(b) && !arriving[dst].contains(b))
                .collect();
            if filtered.is_empty() {
                continue;
            }
            debug_assert!(filtered.iter().all(|b| held[src].contains(b)));
            arriving[dst].extend(filtered.iter().copied());
            if filtered.len() > 1 {
                phase[src].copy_blocks += filtered.len(); // pack
                epilogue[dst].copy_blocks += filtered.len(); // unpack
            }
            phase[src].sends.push(PlannedMsg {
                peer: dst,
                blocks: filtered.clone(),
                tag: j as u64,
            });
            phase[dst].recvs.push(PlannedMsg { peer: src, blocks: filtered, tag: j as u64 });
        }
        for (r, new) in arriving.into_iter().enumerate() {
            held[r].extend(new);
        }
        phases.push(phase);
    }

    let per_rank = (0..n)
        .map(|r| {
            let mut prog = Vec::with_capacity(depth + 1);
            for phase in &mut phases {
                prog.push(std::mem::take(&mut phase[r]));
            }
            prog.push(std::mem::take(&mut epilogue[r]));
            prog
        })
        .collect();
    CollectivePlan { algorithm: Algorithm::Pat { radix }, per_rank, selection: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use crate::exec::{Executor, Virtual};
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn validates_and_matches_reference() {
        for (n, delta, radix) in [
            (32usize, 0.3, 2usize),
            (32, 0.3, 4),
            (24, 0.7, 2),
            (36, 0.1, 3),
            (17, 0.4, 2),
            (64, 0.6, 8),
            (5, 0.9, 2),
        ] {
            let g = erdos_renyi(n, delta, 42);
            let plan = plan_pat(&g, radix);
            plan.validate(&g).unwrap_or_else(|e| panic!("n={n} delta={delta} radix={radix}: {e}"));
            let payloads = test_payloads(n, 8, 1);
            let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads), "n={n} radix={radix}");
        }
    }

    #[test]
    fn depth_is_logarithmic_in_indegree() {
        let g = erdos_renyi(64, 0.9, 5);
        let plan = plan_pat(&g, 4);
        plan.validate(&g).unwrap();
        let depth = plan.per_rank.iter().map(Vec::len).max().unwrap_or(0);
        // radix 4, in-degree <= 63: ceil(log4 63) = 3 aggregation rounds
        // + 1 delivery + 1 epilogue.
        assert!(depth <= 5, "depth {depth} exceeds the radix-4 binomial bound");
    }

    #[test]
    fn empty_neighborhoods_yield_empty_programs() {
        let g = Topology::from_edges(4, []);
        let plan = plan_pat(&g, 2);
        plan.validate(&g).unwrap();
        assert!(plan
            .per_rank
            .iter()
            .flat_map(|p| p.iter())
            .all(|ph| ph.sends.is_empty() && ph.recvs.is_empty()));
    }

    #[test]
    #[should_panic(expected = "radix")]
    fn radix_below_two_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        let _ = plan_pat(&g, 1);
    }
}
