//! Virtual re-ranking: Distance Halving under arbitrary rank placements.
//!
//! The halving algorithm needs rank order to mirror physical locality
//! (contiguous socket ranges), which block placement gives for free. For
//! any other placement — `--map-by node`, explicit rankfiles — a real
//! library would *relabel*: sort ranks by physical location into
//! **virtual ranks**, run the whole pattern machinery in virtual space,
//! and translate the resulting plan back. This module does exactly that.
//!
//! Alignment is exact when every socket holds the same number of ranks;
//! with partially filled sockets the virtual "socket" boundaries are
//! best-effort (correctness never depends on them — only locality does).

use crate::builder::{build_pattern, BuildError};
use crate::lower::lower;
use crate::plan::CollectivePlan;
use nhood_cluster::ClusterLayout;
use nhood_topology::{Rank, Topology};

/// The permutation used by a reordered plan.
#[derive(Clone, Debug)]
pub struct RankOrder {
    /// `physical[v]` = physical rank occupying virtual slot `v`.
    pub physical: Vec<Rank>,
    /// `virtual_of[p]` = virtual slot of physical rank `p`.
    pub virtual_of: Vec<Rank>,
}

/// Computes the locality-sorted rank order for a layout: virtual slots
/// walk ranks in (group, node, socket, core) order, so halving splits
/// align with *group* boundaries first (Dragonfly+ global links), then
/// nodes, then sockets — even when the job's node allocation is permuted.
pub fn locality_order(layout: &ClusterLayout, n: usize) -> RankOrder {
    let mut physical: Vec<Rank> = (0..n).collect();
    physical.sort_by_key(|&p| {
        let loc = layout.location(p);
        (layout.group_of_node(loc.node), loc.node, loc.socket, loc.core)
    });
    let mut virtual_of = vec![0; n];
    for (v, &p) in physical.iter().enumerate() {
        virtual_of[p] = v;
    }
    RankOrder { physical, virtual_of }
}

/// Builds a Distance Halving plan for `graph` on a layout with *any*
/// placement, by re-ranking into locality order, planning in virtual
/// space, and relabelling the plan back to physical ranks.
pub fn plan_distance_halving_reordered(
    graph: &Topology,
    layout: &ClusterLayout,
) -> Result<CollectivePlan, BuildError> {
    let n = graph.n();
    if n > layout.capacity() {
        return Err(BuildError::LayoutTooSmall { ranks: n, capacity: layout.capacity() });
    }
    let order = locality_order(layout, n);

    // Virtual graph: relabel every edge.
    let vedges: Vec<(Rank, Rank)> =
        graph.edges().map(|(s, d)| (order.virtual_of[s], order.virtual_of[d])).collect();
    let vgraph = Topology::from_edges(n, vedges);

    // A block-placed layout of the same shape hosts the virtual ranks.
    let block = ClusterLayout::with_groups(
        layout.nodes(),
        layout.sockets_per_node(),
        layout.ranks_per_socket(),
        layout.nodes_per_group(),
    );
    let pattern = build_pattern(&vgraph, &block)?;
    let vplan = lower(&pattern, &vgraph);

    // Translate back: program of virtual rank v belongs to physical rank
    // physical[v]; peers and block ids are physical ranks again.
    let mut per_rank = vec![Vec::new(); n];
    for (v, prog) in vplan.per_rank.into_iter().enumerate() {
        let p = order.physical[v];
        per_rank[p] = prog
            .into_iter()
            .map(|mut phase| {
                for msg in phase.sends.iter_mut().chain(phase.recvs.iter_mut()) {
                    msg.peer = order.physical[msg.peer];
                    for b in &mut msg.blocks {
                        *b = order.physical[*b];
                    }
                }
                phase
            })
            .collect();
    }
    Ok(CollectivePlan { algorithm: vplan.algorithm, per_rank, selection: vplan.selection })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use crate::exec::{Executor, Virtual};
    use nhood_cluster::Placement;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn locality_order_is_a_permutation() {
        let layout = ClusterLayout::new(3, 2, 4).with_placement(Placement::RoundRobinNodes);
        let order = locality_order(&layout, 24);
        let mut seen = [false; 24];
        for &p in &order.physical {
            assert!(!seen[p], "rank {p} twice");
            seen[p] = true;
        }
        for p in 0..24 {
            assert_eq!(order.physical[order.virtual_of[p]], p);
        }
        // virtual order walks nodes monotonically
        for w in order.physical.windows(2) {
            let a = layout.location(w[0]);
            let b = layout.location(w[1]);
            assert!((a.node, a.socket, a.core) < (b.node, b.socket, b.core));
        }
    }

    #[test]
    fn block_placement_order_is_identity() {
        let layout = ClusterLayout::new(2, 2, 4);
        let order = locality_order(&layout, 16);
        assert_eq!(order.physical, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn reordered_plan_is_correct_under_round_robin() {
        let g = erdos_renyi(24, 0.4, 9);
        let layout = ClusterLayout::new(3, 2, 4).with_placement(Placement::RoundRobinNodes);
        // the plain builder refuses this placement...
        assert!(build_pattern(&g, &layout).is_err());
        // ...but the reordered planner handles it
        let plan = plan_distance_halving_reordered(&g, &layout).unwrap();
        plan.validate(&g).unwrap();
        let payloads = test_payloads(24, 8, 2);
        let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn reordered_equals_plain_under_block_placement() {
        let g = erdos_renyi(32, 0.3, 4);
        let layout = ClusterLayout::new(4, 2, 4);
        let plain = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let reordered = plan_distance_halving_reordered(&g, &layout).unwrap();
        // identity permutation → byte-identical plans
        assert_eq!(plain.per_rank, reordered.per_rank);
    }

    #[test]
    fn reordered_plan_restores_locality() {
        // under round-robin, naive DH would treat rank-distance as
        // locality; the reordered plan's final phase must stay mostly
        // node-local *physically*
        let g = erdos_renyi(32, 0.5, 11);
        let layout = ClusterLayout::new(4, 2, 4).with_placement(Placement::RoundRobinNodes);
        let plan = plan_distance_halving_reordered(&g, &layout).unwrap();
        let final_idx = plan.phase_count() - 2;
        let mut local = 0usize;
        let mut remote = 0usize;
        for (p, prog) in plan.per_rank.iter().enumerate() {
            for msg in &prog[final_idx].sends {
                if layout.same_node(p, msg.peer) {
                    local += 1;
                } else {
                    remote += 1;
                }
            }
        }
        assert!(
            local * 2 > local + remote,
            "final phase should be mostly node-local: {local} local vs {remote} remote"
        );
    }
}
