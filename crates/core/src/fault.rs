//! Deterministic fault injection for executors and the distributed
//! pattern builder.
//!
//! A [`FaultPlan`] is a *seeded, stateless* description of adverse
//! network and process behaviour: message drops, delays, duplication,
//! reordering, per-rank stragglers and outright rank crashes. Every
//! decision is a pure function of `(seed, src, dst, tag, attempt)`, so a
//! fault schedule is exactly reproducible across runs and across threads
//! regardless of scheduling — the property the chaos test-suite builds
//! on: for any seed, a run must either produce buffers identical to the
//! reference allgather or surface a *typed* error/fallback, never silent
//! corruption and never a hang.
//!
//! Consumers:
//!
//! * [`crate::exec::threaded`] consults the plan at every send (and
//!   retries dropped messages with bounded exponential backoff — the
//!   "reliable transport over a lossy link" emulation);
//! * [`crate::distributed_builder`] perturbs the REQ/ACCEPT/DROP/EXIT
//!   negotiation signals of Algorithms 2–3;
//! * `nhood_simnet` consumes the same plan as a
//!   [`Perturbation`](nhood_simnet::Perturbation) so simulated latencies
//!   reflect the stragglers the real executors would see.
//!
//! [`FaultStats`] aggregates what was actually injected during one run,
//! using atomics so rank threads can tally without locking.

use nhood_topology::rng::{hash_mix, unit_f64};
use nhood_topology::Rank;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Domain-separation tags so the per-fault-kind hash streams are
/// independent (a message dropped at attempt 0 is not automatically
/// delayed at attempt 1).
mod domain {
    pub const DROP: u64 = 0x01;
    pub const DELAY: u64 = 0x02;
    pub const DUP: u64 = 0x03;
    pub const REORDER: u64 = 0x04;
    pub const JITTER: u64 = 0x05;
}

/// Cap on any single backoff sleep, so a large attempt count (or a
/// pathological base) cannot stall a rank for minutes: `base * 2^16`
/// un-jittered used to reach ~6.5 s at the 100 µs default base.
pub const BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Jittered exponential backoff for retry loops: `base * 2^attempt`,
/// capped at [`BACKOFF_CAP`], then scaled by a deterministic jitter
/// factor in `[0.5, 1.0)` derived from `(seed, attempt)`.
///
/// Both retry sites (the threaded transport and the distributed
/// builder's control signals) previously used the same un-jittered
/// formula, so ranks that dropped messages in the same attempt woke in
/// lockstep and re-collided. The jitter decorrelates wake-ups while
/// staying a pure function of its inputs — chaos tests remain exactly
/// reproducible per seed.
pub fn backoff(base: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16)).min(BACKOFF_CAP);
    let f = 0.5 + 0.5 * unit_f64(hash_mix(&[seed, attempt as u64]));
    exp.mul_f64(f)
}

/// The canonical per-message jitter seed both retry sites use: mixes the
/// fault plan's seed with the message identity, so two runs with the
/// same fault schedule sleep the same jittered schedule.
pub fn backoff_seed(plan_seed: u64, src: u64, dst: u64, tag: u64) -> u64 {
    hash_mix(&[plan_seed, src, dst, tag])
}

/// What the fault layer decides for one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard this attempt (the transport may retry).
    Drop,
    /// Deliver after stalling the sender for the given duration.
    Delay(Duration),
    /// Deliver twice (the receive path must be duplicate-tolerant).
    Duplicate,
    /// The link is dead: no attempt on this edge can ever succeed.
    /// Unlike [`FaultAction::Drop`] this is not retryable — the
    /// transport must surface a typed link failure immediately so the
    /// caller can repair the plan around the edge.
    LinkDown,
}

/// A deterministic, seeded fault schedule.
///
/// Build one with [`FaultPlan::seeded`] and the `with_*` methods; all
/// probabilities are independent per message and clamped to `[0, 1]`.
/// The plan itself is immutable during a run — per-run tallies live in
/// [`FaultStats`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    delay_p: f64,
    max_delay: Duration,
    dup_p: f64,
    reorder_p: f64,
    /// Per-phase stall injected at phase entry of a straggler rank.
    slow: HashMap<Rank, Duration>,
    /// Rank -> phase index at which the rank stops participating.
    crashed: HashMap<Rank, usize>,
    /// Directed edge -> phase index from which the link is dead.
    link_down: HashMap<(Rank, Rank), usize>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed; compose with `with_*`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            max_delay: Duration::ZERO,
            dup_p: 0.0,
            reorder_p: 0.0,
            slow: HashMap::new(),
            crashed: HashMap::new(),
            link_down: HashMap::new(),
        }
    }

    /// Drops each transmission attempt independently with probability `p`.
    pub fn with_message_drop(mut self, p: f64) -> Self {
        self.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Delays a message (stalling its sender) with probability `p`, for a
    /// deterministic duration in `[0, max_delay)`.
    pub fn with_message_delay(mut self, p: f64, max_delay: Duration) -> Self {
        self.delay_p = p.clamp(0.0, 1.0);
        self.max_delay = max_delay;
        self
    }

    /// Duplicates a message with probability `p`.
    pub fn with_message_duplication(mut self, p: f64) -> Self {
        self.dup_p = p.clamp(0.0, 1.0);
        self
    }

    /// Holds a message back so it overtakes its successor within the
    /// sender's phase, with probability `p`.
    pub fn with_message_reorder(mut self, p: f64) -> Self {
        self.reorder_p = p.clamp(0.0, 1.0);
        self
    }

    /// Makes `rank` a straggler: it stalls `stall` at every phase entry.
    pub fn with_slow_rank(mut self, rank: Rank, stall: Duration) -> Self {
        self.slow.insert(rank, stall);
        self
    }

    /// Crashes `rank` at entry to `phase`: from that phase on it sends
    /// and receives nothing.
    pub fn with_crashed_rank(mut self, rank: Rank, phase: usize) -> Self {
        self.crashed.insert(rank, phase);
        self
    }

    /// Kills the physical link between `a` and `b` from `phase` on: every
    /// transmission attempt in either direction fails immediately and
    /// unretryably with [`FaultAction::LinkDown`]. Link failures are
    /// bidirectional (both directed edges die together), matching a cable
    /// or port failure rather than a lossy path.
    pub fn with_link_down(mut self, a: Rank, b: Rank, phase: usize) -> Self {
        self.link_down.insert((a, b), phase);
        self.link_down.insert((b, a), phase);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if any fault kind is configured (lets hot paths skip the
    /// per-message hashing entirely on a default plan).
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.delay_p > 0.0
            || self.dup_p > 0.0
            || self.reorder_p > 0.0
            || !self.slow.is_empty()
            || !self.crashed.is_empty()
            || !self.link_down.is_empty()
    }

    #[inline]
    fn roll(&self, domain: u64, src: Rank, dst: Rank, tag: u64, attempt: u32) -> f64 {
        unit_f64(hash_mix(&[self.seed, domain, src as u64, dst as u64, tag, attempt as u64]))
    }

    /// The verdict for transmission `attempt` of message `(src, dst,
    /// tag)`. Drop takes precedence over delay over duplication, so a
    /// single attempt suffers at most one fault.
    pub fn send_action(&self, src: Rank, dst: Rank, tag: u64, attempt: u32) -> FaultAction {
        if self.roll(domain::DROP, src, dst, tag, attempt) < self.drop_p {
            return FaultAction::Drop;
        }
        if self.roll(domain::DELAY, src, dst, tag, attempt) < self.delay_p {
            let f = self.roll(domain::JITTER, src, dst, tag, attempt);
            return FaultAction::Delay(self.max_delay.mul_f64(f));
        }
        if self.roll(domain::DUP, src, dst, tag, attempt) < self.dup_p {
            return FaultAction::Duplicate;
        }
        FaultAction::Deliver
    }

    /// Whether message `(src, dst, tag)` should be held back and sent
    /// after its phase-successor.
    pub fn reorders(&self, src: Rank, dst: Rank, tag: u64) -> bool {
        self.roll(domain::REORDER, src, dst, tag, 0) < self.reorder_p
    }

    /// Extra per-message latency for the simulator: the expected delay
    /// contribution of the delay fault, deterministically spread over
    /// messages (same hash stream as [`Self::send_action`]).
    pub fn sim_jitter(&self, src: Rank, dst: Rank, tag: u64) -> Duration {
        if self.delay_p == 0.0 {
            return Duration::ZERO;
        }
        if self.roll(domain::DELAY, src, dst, tag, 0) < self.delay_p {
            self.max_delay.mul_f64(self.roll(domain::JITTER, src, dst, tag, 0))
        } else {
            Duration::ZERO
        }
    }

    /// The stall a straggler suffers at each phase entry (zero for
    /// healthy ranks).
    pub fn stall(&self, rank: Rank) -> Duration {
        self.slow.get(&rank).copied().unwrap_or(Duration::ZERO)
    }

    /// True if `rank` has crashed by `phase`.
    pub fn is_crashed(&self, rank: Rank, phase: usize) -> bool {
        self.crashed.get(&rank).is_some_and(|&at| phase >= at)
    }

    /// The phase at which `rank` crashes, if scheduled.
    pub fn crash_phase(&self, rank: Rank) -> Option<usize> {
        self.crashed.get(&rank).copied()
    }

    /// True if the directed edge `src -> dst` is dead at `phase`.
    pub fn link_is_down(&self, src: Rank, dst: Rank, phase: usize) -> bool {
        self.link_down.get(&(src, dst)).is_some_and(|&at| phase >= at)
    }

    /// The scheduled link failures as `(src, dst, phase)` triples (both
    /// directions of each failed link appear).
    pub fn link_failures(&self) -> impl Iterator<Item = (Rank, Rank, usize)> + '_ {
        self.link_down.iter().map(|(&(s, d), &at)| (s, d, at))
    }

    /// The verdict for transmission `attempt` of message `(src, dst,
    /// tag)` sent during `phase`. A dead link preempts every
    /// probabilistic fault; otherwise defers to [`Self::send_action`].
    pub fn send_action_at(
        &self,
        src: Rank,
        dst: Rank,
        tag: u64,
        attempt: u32,
        phase: usize,
    ) -> FaultAction {
        if self.link_is_down(src, dst, phase) {
            return FaultAction::LinkDown;
        }
        self.send_action(src, dst, tag, attempt)
    }

    /// Lowers this plan onto the simulator's perturbation model:
    /// straggler stalls become per-phase local work, the delay fault
    /// becomes per-message jitter, and dead links fail the simulated run
    /// with a typed error. (Drops/dups/crashes have no timing analogue
    /// in a lossless discrete-event model and are ignored.)
    pub fn to_perturbation(&self, n: usize) -> nhood_simnet::Perturbation {
        let mut stall = vec![0.0f64; n];
        for (&r, &d) in &self.slow {
            if r < n {
                stall[r] = d.as_secs_f64();
            }
        }
        let mut dead_links: Vec<(usize, usize)> =
            self.link_down.keys().filter(|&&(s, d)| s < n && d < n).copied().collect();
        dead_links.sort_unstable();
        nhood_simnet::Perturbation {
            seed: self.seed,
            rank_stall: stall,
            jitter_p: self.delay_p,
            max_jitter: self.max_delay.as_secs_f64(),
            dead_links,
        }
    }
}

/// Per-run fault/retry tallies, thread-safe by atomics.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Transmission attempts discarded by the drop fault.
    pub drops: AtomicU64,
    /// Messages delivered late.
    pub delays: AtomicU64,
    /// Messages delivered twice.
    pub duplicates: AtomicU64,
    /// Messages held back past a successor.
    pub reorders: AtomicU64,
    /// Retransmission attempts made by the transport.
    pub retries: AtomicU64,
    /// Messages abandoned after the retry budget was exhausted.
    pub lost: AtomicU64,
    /// Sends refused because the link was dead (unretryable).
    pub link_downs: AtomicU64,
}

impl FaultStats {
    /// Relaxed increment helper.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data snapshot of the counters.
    pub fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            reorders: self.reorders.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
            link_downs: self.link_downs.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transmission attempts discarded by the drop fault.
    pub drops: u64,
    /// Messages delivered late.
    pub delays: u64,
    /// Messages delivered twice.
    pub duplicates: u64,
    /// Messages held back past a successor.
    pub reorders: u64,
    /// Retransmission attempts made by the transport.
    pub retries: u64,
    /// Messages abandoned after the retry budget was exhausted.
    pub lost: u64,
    /// Sends refused because the link was dead (unretryable).
    pub link_downs: u64,
}

impl FaultCounts {
    /// Total faults injected (excluding retries, which are reactions).
    pub fn total_injected(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.reorders + self.link_downs
    }

    /// Field-wise sum — aggregates the tallies of a fallback re-run onto
    /// the original run's.
    pub fn merged(&self, other: &FaultCounts) -> FaultCounts {
        FaultCounts {
            drops: self.drops + other.drops,
            delays: self.delays + other.delays,
            duplicates: self.duplicates + other.duplicates,
            reorders: self.reorders + other.reorders,
            retries: self.retries + other.retries,
            lost: self.lost + other.lost,
            link_downs: self.link_downs + other.link_downs,
        }
    }
}

impl std::fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drops={} delays={} dups={} reorders={} retries={} lost={} link_downs={}",
            self.drops,
            self.delays,
            self.duplicates,
            self.reorders,
            self.retries,
            self.lost,
            self.link_downs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let fp = FaultPlan::seeded(7).with_message_drop(0.5);
        for src in 0..8 {
            for tag in 0..8 {
                assert_eq!(fp.send_action(src, 1, tag, 0), fp.send_action(src, 1, tag, 0));
            }
        }
        // with p=0.5 some (message, attempt) pairs must differ across
        // attempts — retries can succeed
        let differs =
            (0..64u64).any(|tag| fp.send_action(0, 1, tag, 0) != fp.send_action(0, 1, tag, 1));
        assert!(differs);
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let fp = FaultPlan::seeded(3);
        assert!(!fp.is_active());
        for tag in 0..100 {
            assert_eq!(fp.send_action(0, 1, tag, 0), FaultAction::Deliver);
            assert!(!fp.reorders(0, 1, tag));
            assert_eq!(fp.sim_jitter(0, 1, tag), Duration::ZERO);
        }
        assert!(!fp.is_crashed(0, 0));
        assert_eq!(fp.stall(0), Duration::ZERO);
    }

    #[test]
    fn drop_rate_concentrates_near_p() {
        let fp = FaultPlan::seeded(11).with_message_drop(0.05);
        let n = 20_000;
        let drops = (0..n).filter(|&tag| fp.send_action(2, 3, tag, 0) == FaultAction::Drop).count();
        let expect = 0.05 * n as f64;
        assert!((drops as f64 - expect).abs() < 5.0 * expect.sqrt(), "{drops}");
    }

    #[test]
    fn crash_and_slow_schedules() {
        let fp = FaultPlan::seeded(0)
            .with_crashed_rank(3, 2)
            .with_slow_rank(1, Duration::from_millis(5));
        assert!(!fp.is_crashed(3, 0));
        assert!(!fp.is_crashed(3, 1));
        assert!(fp.is_crashed(3, 2));
        assert!(fp.is_crashed(3, 9));
        assert_eq!(fp.crash_phase(3), Some(2));
        assert_eq!(fp.crash_phase(4), None);
        assert_eq!(fp.stall(1), Duration::from_millis(5));
        assert!(fp.is_active());
    }

    #[test]
    fn delay_durations_bounded() {
        let fp = FaultPlan::seeded(5).with_message_delay(1.0, Duration::from_millis(10));
        for tag in 0..200 {
            match fp.send_action(0, 1, tag, 0) {
                FaultAction::Delay(d) => assert!(d < Duration::from_millis(10)),
                other => panic!("p=1 must delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn perturbation_lowering_carries_stalls_and_jitter() {
        let fp = FaultPlan::seeded(9)
            .with_slow_rank(2, Duration::from_micros(100))
            .with_message_delay(0.5, Duration::from_micros(50));
        let p = fp.to_perturbation(4);
        assert_eq!(p.rank_stall.len(), 4);
        assert!((p.rank_stall[2] - 100e-6).abs() < 1e-12);
        assert_eq!(p.rank_stall[0], 0.0);
        assert_eq!(p.jitter_p, 0.5);
        assert!((p.max_jitter - 50e-6).abs() < 1e-12);
    }

    #[test]
    fn backoff_is_jittered_deterministic_and_capped() {
        let base = Duration::from_micros(100);
        // deterministic per (seed, attempt)
        assert_eq!(backoff(base, 2, 7), backoff(base, 2, 7));
        // jittered: two colliding senders with different message seeds
        // must not sleep the same duration (the pre-fix formula gave
        // every sender exactly base * 2^attempt)
        let distinct =
            (0..8u64).map(|s| backoff(base, 3, s)).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "all seeds slept identically");
        // jitter stays within [0.5, 1.0) of the exponential value
        for attempt in 0..6 {
            let exp = base * (1 << attempt);
            for seed in 0..16 {
                let d = backoff(base, attempt, seed);
                assert!(d >= exp / 2 && d < exp, "attempt {attempt} seed {seed}: {d:?}");
            }
        }
        // capped: the pre-fix formula reached base * 2^16 = 6.5536 s
        assert!(backoff(base, 16, 1) <= BACKOFF_CAP);
        assert!(backoff(base, 40, 1) <= BACKOFF_CAP, "attempt clamp + cap must both hold");
        assert!(backoff(Duration::from_secs(5), 0, 1) <= BACKOFF_CAP, "pathological base capped");
    }

    #[test]
    fn link_down_is_bidirectional_phased_and_unretryable() {
        let fp = FaultPlan::seeded(1).with_link_down(2, 5, 1);
        assert!(fp.is_active());
        // before the failure phase the link behaves normally
        assert!(!fp.link_is_down(2, 5, 0));
        assert_eq!(fp.send_action_at(2, 5, 9, 0, 0), FaultAction::Deliver);
        // from the failure phase on, both directions die, every attempt
        for phase in 1..4 {
            for attempt in 0..3 {
                assert_eq!(fp.send_action_at(2, 5, 9, attempt, phase), FaultAction::LinkDown);
                assert_eq!(fp.send_action_at(5, 2, 9, attempt, phase), FaultAction::LinkDown);
            }
        }
        // unrelated edges are untouched
        assert_eq!(fp.send_action_at(2, 4, 9, 0, 3), FaultAction::Deliver);
        let mut failures: Vec<_> = fp.link_failures().collect();
        failures.sort_unstable();
        assert_eq!(failures, vec![(2, 5, 1), (5, 2, 1)]);
    }

    #[test]
    fn perturbation_lowering_carries_dead_links() {
        let fp = FaultPlan::seeded(4).with_link_down(1, 3, 0).with_link_down(7, 9, 2);
        let p = fp.to_perturbation(8); // rank 9 out of range -> filtered
        assert_eq!(p.dead_links, vec![(1, 3), (3, 1)]);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let stats = FaultStats::default();
        FaultStats::bump(&stats.drops);
        FaultStats::bump(&stats.drops);
        FaultStats::bump(&stats.retries);
        let c = stats.snapshot();
        assert_eq!(c.drops, 2);
        assert_eq!(c.retries, 1);
        assert_eq!(c.total_injected(), 2);
        assert!(c.to_string().contains("drops=2"));
    }
}
