//! Persistent neighborhood collectives — the MPI-4
//! `MPI_Neighbor_allgather_init` workflow: plan once, execute many times
//! against preallocated buffers.
//!
//! [`PersistentAllgather`] owns a validated plan and the reusable
//! per-rank buffer storage; every [`execute`](PersistentAllgather::execute)
//! reuses the allocation from the previous call (the receive buffers are
//! handed out as slices into an arena that persists across calls). This
//! is how an application amortizes the one-time pattern-creation cost —
//! the whole point of the Fig. 8 trade-off.

use crate::comm::{CommError, DistGraphComm};
use crate::exec::virtual_exec::run_virtual;
use crate::exec::ExecError;
use crate::plan::{Algorithm, CollectivePlan};
use nhood_topology::Topology;

/// A planned, reusable neighborhood allgather.
#[derive(Debug)]
pub struct PersistentAllgather {
    graph: Topology,
    plan: CollectivePlan,
    /// arena reused across executions: per-rank receive buffers
    rbufs: Vec<Vec<u8>>,
    executions: usize,
}

impl PersistentAllgather {
    /// Plans the collective once (the expensive step).
    pub fn init(comm: &DistGraphComm, algo: Algorithm) -> Result<Self, CommError> {
        let plan = comm.plan(algo)?;
        Ok(Self { graph: comm.graph().clone(), plan, rbufs: Vec::new(), executions: 0 })
    }

    /// The underlying plan (inspection only).
    pub fn plan(&self) -> &CollectivePlan {
        &self.plan
    }

    /// How many times this collective has executed.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Executes the planned collective on fresh payloads, reusing the
    /// internal receive-buffer arena. Returns per-rank receive buffers
    /// (borrowed until the next execution).
    pub fn execute(&mut self, payloads: &[Vec<u8>]) -> Result<&[Vec<u8>], ExecError> {
        // The virtual executor allocates; move its output into the arena
        // so repeated calls recycle capacity (Vec assignment reuses the
        // arena's allocations when capacities suffice).
        let out = run_virtual(&self.plan, &self.graph, payloads)?;
        if self.rbufs.len() != out.len() {
            self.rbufs = out;
        } else {
            for (slot, buf) in self.rbufs.iter_mut().zip(out) {
                slot.clear();
                slot.extend_from_slice(&buf);
            }
        }
        self.executions += 1;
        Ok(&self.rbufs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn comm() -> DistGraphComm {
        let g = erdos_renyi(32, 0.3, 5);
        DistGraphComm::create_adjacent(g, ClusterLayout::new(4, 2, 4)).unwrap()
    }

    #[test]
    fn repeated_executions_are_correct() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        for round in 0..5u64 {
            let payloads = test_payloads(32, 16, round);
            let want = reference_allgather(c.graph(), &payloads);
            let got = p.execute(&payloads).unwrap();
            assert_eq!(got, &want[..], "round {round}");
        }
        assert_eq!(p.executions(), 5);
    }

    #[test]
    fn payload_size_may_change_between_executions() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        for m in [4usize, 64, 8, 0] {
            let payloads = test_payloads(32, m, 9);
            let want = reference_allgather(c.graph(), &payloads);
            assert_eq!(p.execute(&payloads).unwrap(), &want[..], "m={m}");
        }
    }

    #[test]
    fn plan_is_inspectable_and_errors_propagate() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::Naive).unwrap();
        assert_eq!(p.plan().algorithm, Algorithm::Naive);
        // wrong payload count is an error, not a panic, and leaves the
        // collective reusable
        assert!(p.execute(&[vec![0u8; 4]]).is_err());
        let payloads = test_payloads(32, 4, 1);
        assert!(p.execute(&payloads).is_ok());
        assert_eq!(p.executions(), 1, "failed executions are not counted");
    }
}
