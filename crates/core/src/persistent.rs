//! Persistent neighborhood collectives — the MPI-4
//! `MPI_Neighbor_allgather_init` workflow: plan once, execute many times
//! against preallocated buffers.
//!
//! [`PersistentAllgather`] owns a validated plan and a reusable
//! [`BlockArena`]: `init` pre-computes the zero-copy arena layout, and
//! every [`execute`](PersistentAllgather::execute) runs over the same
//! flat buffers, recycling the previous call's receive buffers. After
//! the first execution at a given message size, steady-state executions
//! perform **no allocations at all** (asserted via
//! [`BlockArena::reallocations`]). This is how an application amortizes
//! the one-time pattern-creation cost — the whole point of the Fig. 8
//! trade-off.

use crate::arena::BlockArena;
use crate::comm::{CommError, DistGraphComm};
use crate::exec::{ExecError, ExecOptions, Executor, Virtual};
use crate::plan::{Algorithm, CollectivePlan};
use nhood_topology::Topology;
use std::sync::Arc;

/// A planned, reusable neighborhood allgather.
#[derive(Debug)]
pub struct PersistentAllgather {
    graph: Topology,
    plan: Arc<CollectivePlan>,
    /// Reusable zero-copy workspace: cached layout + flat buffers.
    arena: BlockArena,
    /// Receive buffers of the latest execution; recycled into the arena
    /// at the start of the next one.
    rbufs: Vec<Vec<u8>>,
    executions: usize,
}

impl PersistentAllgather {
    /// Plans the collective once (the expensive step) and pre-computes
    /// the arena layout, so the first `execute` only pays buffer
    /// allocation.
    pub fn init(comm: &DistGraphComm, algo: Algorithm) -> Result<Self, CommError> {
        Self::init_with(comm, algo, &ExecOptions::new())
    }

    /// [`Self::init`] with explicit [`ExecOptions`]: planning goes
    /// through the communicator's plan cache when one is attached
    /// (repeated `init_with` on one cached (topology, algorithm) pair is
    /// O(1) after the first), `opts.build_threads` overrides the
    /// communicator's build pool for a cold build (`0` inherits it), and
    /// cache lookups / build spans report to `opts.recorder`.
    pub fn init_with(
        comm: &DistGraphComm,
        algo: Algorithm,
        opts: &ExecOptions<'_>,
    ) -> Result<Self, CommError> {
        let plan = if opts.build_threads == 0 {
            comm.plan_shared_recorded(algo, opts.recorder)?
        } else {
            comm.clone()
                .with_build_threads(opts.build_threads)
                .plan_shared_recorded(algo, opts.recorder)?
        };
        let mut arena = BlockArena::new();
        arena.prepare(&plan, comm.graph())?;
        Ok(Self { graph: comm.graph().clone(), plan, arena, rbufs: Vec::new(), executions: 0 })
    }

    /// The underlying plan (inspection only).
    pub fn plan(&self) -> &CollectivePlan {
        &self.plan
    }

    /// How many times this collective has executed.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// How many buffer growths all executions have paid so far. Constant
    /// across steady-state executions at a fixed message size.
    pub fn reallocations(&self) -> u64 {
        self.arena.reallocations()
    }

    /// Executes the planned collective on fresh payloads, reusing the
    /// internal arena. Returns per-rank receive buffers (borrowed until
    /// the next execution).
    pub fn execute(&mut self, payloads: &[Vec<u8>]) -> Result<&[Vec<u8>], ExecError> {
        self.run(payloads, &ExecOptions::new())
    }

    /// The `allgatherv` variant of [`execute`](Self::execute): per-rank
    /// payloads may differ in length (including zero-length blocks). The
    /// same plan and arena serve both — block extents are resolved from
    /// the payload lengths at execution time, so a persistent collective
    /// may alternate freely between uniform and ragged rounds.
    pub fn execute_v(&mut self, payloads: &[Vec<u8>]) -> Result<&[Vec<u8>], ExecError> {
        self.run(payloads, &ExecOptions::new().ragged(true))
    }

    fn run(
        &mut self,
        payloads: &[Vec<u8>],
        opts: &ExecOptions<'_>,
    ) -> Result<&[Vec<u8>], ExecError> {
        // recycle the previous output's capacity before running
        self.arena.adopt_rbufs(std::mem::take(&mut self.rbufs));
        let out = Virtual.run(&self.plan, &self.graph, payloads, &mut self.arena, opts)?;
        self.rbufs = out.rbufs;
        self.executions += 1;
        Ok(&self.rbufs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    fn comm() -> DistGraphComm {
        let g = erdos_renyi(32, 0.3, 5);
        DistGraphComm::create_adjacent(g, ClusterLayout::new(4, 2, 4)).unwrap()
    }

    #[test]
    fn repeated_executions_are_correct() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        for round in 0..5u64 {
            let payloads = test_payloads(32, 16, round);
            let want = reference_allgather(c.graph(), &payloads);
            let got = p.execute(&payloads).unwrap();
            assert_eq!(got, &want[..], "round {round}");
        }
        assert_eq!(p.executions(), 5);
    }

    #[test]
    fn ragged_executions_are_correct_and_mix_with_uniform() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        for round in 0..4u64 {
            // per-rank lengths cycle through 0..=4, shifted per round
            let payloads: Vec<Vec<u8>> = (0..32)
                .map(|r| vec![(r as u8) ^ (round as u8); (r + round as usize) % 5])
                .collect();
            let want = reference_allgather(c.graph(), &payloads);
            assert_eq!(p.execute_v(&payloads).unwrap(), &want[..], "round {round}");
            // alternate with a uniform round on the same arena
            let uniform = test_payloads(32, 16, round);
            let want = reference_allgather(c.graph(), &uniform);
            assert_eq!(p.execute(&uniform).unwrap(), &want[..], "uniform round {round}");
        }
        assert_eq!(p.executions(), 8);
    }

    #[test]
    fn payload_size_may_change_between_executions() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        for m in [4usize, 64, 8, 0] {
            let payloads = test_payloads(32, m, 9);
            let want = reference_allgather(c.graph(), &payloads);
            assert_eq!(p.execute(&payloads).unwrap(), &want[..], "m={m}");
        }
    }

    #[test]
    fn steady_state_executions_do_not_reallocate() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::DistanceHalving).unwrap();
        let payloads = test_payloads(32, 64, 3);
        let want = reference_allgather(c.graph(), &payloads);
        // first execution sizes the arena and receive buffers
        assert_eq!(p.execute(&payloads).unwrap(), &want[..]);
        let after_warmup = p.reallocations();
        for round in 0..100 {
            p.execute(&payloads).unwrap();
            assert_eq!(p.reallocations(), after_warmup, "round {round} reallocated");
        }
        assert_eq!(p.executions(), 101);
    }

    #[test]
    fn init_with_reuses_cached_plans() {
        use crate::plan_cache::PlanCache;
        let cache = std::sync::Arc::new(PlanCache::new(4));
        let g = erdos_renyi(32, 0.3, 5);
        let c = DistGraphComm::create_adjacent(g, ClusterLayout::new(4, 2, 4))
            .unwrap()
            .with_plan_cache(std::sync::Arc::clone(&cache));
        let opts = ExecOptions::new();
        let mut a = PersistentAllgather::init_with(&c, Algorithm::DistanceHalving, &opts).unwrap();
        let mut b = PersistentAllgather::init_with(&c, Algorithm::DistanceHalving, &opts).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1, "first init builds");
        assert_eq!(s.hits, 1, "second init reuses");
        // both instances execute correctly off the shared plan
        let payloads = test_payloads(32, 8, 4);
        let want = reference_allgather(c.graph(), &payloads);
        assert_eq!(a.execute(&payloads).unwrap(), &want[..]);
        assert_eq!(b.execute(&payloads).unwrap(), &want[..]);
    }

    #[test]
    fn plan_is_inspectable_and_errors_propagate() {
        let c = comm();
        let mut p = PersistentAllgather::init(&c, Algorithm::Naive).unwrap();
        assert_eq!(p.plan().algorithm, Algorithm::Naive);
        // wrong payload count is an error, not a panic, and leaves the
        // collective reusable
        assert!(p.execute(&[vec![0u8; 4]]).is_err());
        let payloads = test_payloads(32, 4, 1);
        assert!(p.execute(&payloads).is_ok());
        assert_eq!(p.executions(), 1, "failed executions are not counted");
    }
}
