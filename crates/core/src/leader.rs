//! A hierarchical leader-based neighborhood allgather — the large-message
//! baseline of the literature (Ghazimirsaeed et al., SC'20, the paper's
//! reference \[9\]), implemented for comparison in the regime where
//! Distance Halving's buffer doubling hurts.
//!
//! Three phases under block placement:
//!
//! 1. **gather** — every rank with at least one off-node outgoing
//!    neighbor sends its block to one of its node's leaders (blocks are
//!    assigned to leaders round-robin, so `leaders_per_node > 1` spreads
//!    the relay load — the SC'20 design's key load-awareness knob);
//! 2. **exchange** — leader `i` of node `A` sends **one combined
//!    message per destination node** carrying every `A`-block (assigned
//!    to leader slot `i`) that some rank of that node needs; intra-node
//!    edges bypass the hierarchy as direct sends in the same phase;
//! 3. **scatter** — receiving leaders deliver each remote block to the
//!    local ranks that need it, one combined message per local rank.
//!
//! Compared to the naïve algorithm this trades `O(edges)` inter-node
//! messages for `O(node²·leaders)`; compared to Distance Halving it has
//! constant depth (3 phases) and never inflates payloads beyond what some
//! receiver actually needs — at the price of leader hot-spots.

use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use nhood_cluster::ClusterLayout;
use nhood_topology::{Rank, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the hierarchical leader plan.
///
/// # Panics
/// Panics if `leaders_per_node == 0`, the layout is not block-placed, or
/// the topology exceeds the layout.
pub fn plan_hierarchical_leader(
    graph: &Topology,
    layout: &ClusterLayout,
    leaders_per_node: usize,
) -> CollectivePlan {
    assert!(leaders_per_node > 0, "need at least one leader per node");
    assert_eq!(
        layout.placement(),
        nhood_cluster::Placement::Block,
        "leader hierarchy needs block placement (see remap for alternatives)"
    );
    let n = graph.n();
    assert!(n <= layout.capacity(), "{n} ranks exceed layout capacity");
    let per_node = layout.ranks_per_node();
    let node_of = |r: Rank| r / per_node;
    let node_base = |node: usize| node * per_node;
    let ranks_on = |node: usize| {
        let lo = node_base(node);
        lo..(lo + per_node).min(n)
    };
    // leader slot for a block, and the hosting rank on a given node
    let slot_of = |b: Rank| b % leaders_per_node;
    let leader_rank = |node: usize, slot: usize| {
        let lo = node_base(node);
        let count = ranks_on(node).len().min(leaders_per_node);
        lo + slot % count.max(1)
    };

    let mut phase0: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut phase1: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut phase2: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut epilogue: Vec<PlanPhase> = vec![PlanPhase::default(); n];

    // Which blocks of node A does node B need, per leader slot?
    // needs[(A, B, slot)] -> set of blocks
    let mut needs: BTreeMap<(usize, usize, usize), BTreeSet<Rank>> = BTreeMap::new();
    // gathered: blocks that travel to their local leader in phase 0
    let mut gathered: BTreeSet<Rank> = BTreeSet::new();
    for b in 0..n {
        let a = node_of(b);
        let mut remote = false;
        for &t in graph.out_neighbors(b) {
            let bn = node_of(t);
            if bn != a {
                remote = true;
                needs.entry((a, bn, slot_of(b))).or_default().insert(b);
            }
        }
        if remote {
            gathered.insert(b);
        }
    }

    // Phase 0: gather to the local leader of the block's slot.
    for &b in &gathered {
        let l = leader_rank(node_of(b), slot_of(b));
        if l == b {
            continue; // leader already holds its own block
        }
        phase0[b].sends.push(PlannedMsg { peer: l, blocks: vec![b], tag: 0 });
        phase0[l].recvs.push(PlannedMsg { peer: b, blocks: vec![b], tag: 0 });
    }

    // Phase 1a: inter-node combined exchange, one message per
    // (source node, dest node, leader slot). The tag encodes the full
    // triple: two slots can share a leader rank on small nodes, so the
    // (src, dst) pair alone is not unique.
    let n_nodes = layout.nodes();
    for ((a, bnode, slot), blocks) in &needs {
        let src = leader_rank(*a, *slot);
        let dst = leader_rank(*bnode, *slot);
        let tag = 1 + ((*a * n_nodes + *bnode) * leaders_per_node + *slot) as u64;
        let blocks: Vec<Rank> = blocks.iter().copied().collect();
        phase1[src].copy_blocks += blocks.len(); // pack
        phase1[src].sends.push(PlannedMsg { peer: dst, blocks: blocks.clone(), tag });
        phase1[dst].recvs.push(PlannedMsg { peer: src, blocks, tag });
    }
    // Phase 1b: intra-node edges as direct sends — except where the
    // phase-0 gather already delivered the block to its leader.
    for b in 0..n {
        let a = node_of(b);
        let l = leader_rank(a, slot_of(b));
        for &t in graph.out_neighbors(b) {
            if node_of(t) != a {
                continue;
            }
            if t == l && gathered.contains(&b) && l != b {
                continue; // delivered by the gather
            }
            let tag = 1_000_000 + t as u64;
            phase1[b].sends.push(PlannedMsg { peer: t, blocks: vec![b], tag });
            phase1[t].recvs.push(PlannedMsg { peer: b, blocks: vec![b], tag });
        }
    }

    // Phase 2: scatter remote blocks to the local ranks that need them —
    // aggregated per (receiving node, slot) across all source nodes, so
    // each (leader, target) pair sends at most one message per slot.
    let mut arrived: BTreeMap<(usize, usize), BTreeSet<Rank>> = BTreeMap::new();
    for ((_, bnode, slot), blocks) in &needs {
        arrived.entry((*bnode, *slot)).or_default().extend(blocks.iter().copied());
    }
    for ((bnode, slot), blocks) in arrived {
        let l = leader_rank(bnode, slot);
        // target rank -> blocks it needs from this slot's arrivals
        let mut per_target: BTreeMap<Rank, Vec<Rank>> = BTreeMap::new();
        for &b in &blocks {
            for r in ranks_on(bnode) {
                if r != l && graph.has_edge(b, r) {
                    per_target.entry(r).or_default().push(b);
                }
            }
        }
        for (r, blocks) in per_target {
            phase2[l].copy_blocks += blocks.len();
            epilogue[r].copy_blocks += blocks.len();
            let tag = 2_000_000 + slot as u64;
            phase2[l].sends.push(PlannedMsg { peer: r, blocks: blocks.clone(), tag });
            phase2[r].recvs.push(PlannedMsg { peer: l, blocks, tag });
        }
    }

    let per_rank = (0..n)
        .map(|r| {
            vec![
                std::mem::take(&mut phase0[r]),
                std::mem::take(&mut phase1[r]),
                std::mem::take(&mut phase2[r]),
                std::mem::take(&mut epilogue[r]),
            ]
        })
        .collect();
    CollectivePlan {
        algorithm: Algorithm::HierarchicalLeader { leaders_per_node },
        per_rank,
        selection: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads};
    use crate::exec::{Executor, Virtual};
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn validates_and_matches_reference() {
        for (n, delta, leaders) in
            [(32usize, 0.3, 1usize), (32, 0.3, 4), (24, 0.7, 2), (36, 0.1, 3), (17, 0.4, 2)]
        {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let plan = plan_hierarchical_leader(&g, &layout, leaders);
            plan.validate(&g)
                .unwrap_or_else(|e| panic!("n={n} delta={delta} leaders={leaders}: {e}"));
            let payloads = test_payloads(n, 8, 1);
            let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads), "n={n} leaders={leaders}");
        }
    }

    #[test]
    fn internode_messages_bounded_by_node_pairs() {
        let g = erdos_renyi(64, 0.8, 3);
        let layout = ClusterLayout::new(4, 2, 8); // 4 nodes
        let leaders = 2;
        let plan = plan_hierarchical_leader(&g, &layout, leaders);
        let mut internode = 0usize;
        for (r, prog) in plan.per_rank.iter().enumerate() {
            for phase in prog {
                for m in &phase.sends {
                    if !layout.same_node(r, m.peer) {
                        internode += 1;
                    }
                }
            }
        }
        // at most node-pairs × leaders combined messages cross nodes
        assert!(internode <= 4 * 3 * leaders, "{internode} inter-node messages");
        assert!(internode > 0);
    }

    #[test]
    fn multiple_leaders_spread_the_relay_load() {
        let g = erdos_renyi(64, 0.6, 9);
        let layout = ClusterLayout::new(4, 2, 8);
        let one = plan_hierarchical_leader(&g, &layout, 1);
        let four = plan_hierarchical_leader(&g, &layout, 4);
        let max_load = |p: &CollectivePlan| {
            p.per_rank
                .iter()
                .map(|prog| {
                    prog.iter()
                        .flat_map(|ph| ph.sends.iter())
                        .map(|m| m.blocks.len())
                        .sum::<usize>()
                })
                .max()
                .unwrap()
        };
        assert!(
            max_load(&four) < max_load(&one),
            "4 leaders {} should beat 1 leader {}",
            max_load(&four),
            max_load(&one)
        );
    }

    #[test]
    fn single_node_degenerates_to_direct_sends() {
        let g = erdos_renyi(16, 0.5, 2);
        let layout = ClusterLayout::new(1, 2, 8);
        let plan = plan_hierarchical_leader(&g, &layout, 2);
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), g.edge_count());
        // no gather traffic at all
        let phase0: usize = plan.per_rank.iter().map(|p| p[0].sends.len()).sum();
        assert_eq!(phase0, 0);
    }

    #[test]
    fn leader_edge_cases_covered() {
        // edges into leaders, from leaders, leader-to-leader
        let layout = ClusterLayout::new(2, 2, 2); // nodes of 4: leaders 0 and 4
        let g = Topology::from_edges(
            8,
            [(1, 0), (0, 5), (4, 1), (1, 4), (0, 4), (4, 0), (2, 6), (6, 2)],
        );
        for leaders in [1usize, 2, 4] {
            let plan = plan_hierarchical_leader(&g, &layout, leaders);
            plan.validate(&g).unwrap_or_else(|e| panic!("leaders={leaders}: {e}"));
            let payloads = test_payloads(8, 4, 7);
            let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads));
        }
    }

    #[test]
    #[should_panic(expected = "at least one leader")]
    fn zero_leaders_rejected() {
        let g = erdos_renyi(8, 0.5, 1);
        plan_hierarchical_leader(&g, &ClusterLayout::new(2, 1, 4), 0);
    }
}
