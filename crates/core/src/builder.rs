//! The Distance Halving pattern builder (Algorithm 1 of the paper).
//!
//! Runs once per communicator (the `MPI_Dist_graph_create_adjacent`
//! hook). Every rank recursively halves the communicator; in each step
//! the two halves of every segment run the joint agent/origin selection
//! of [`crate::selection`] (lower half proposes first, then the upper
//! half — Algorithm 1 lines 14–24), responsibilities move from each rank
//! to its agent (the descriptor `D`), and each rank's buffer grows by its
//! origin's buffer. Halving stops for a segment once it fits on one
//! socket (`≤ L` ranks).
//!
//! Two builders produce identical [`DhPattern`] structures:
//!
//! * this module's **sequential global emulation** (deterministic,
//!   scales to thousands of ranks, counts every protocol message for the
//!   Fig. 8 overhead analysis);
//! * [`crate::distributed_builder`], which actually runs the negotiation
//!   with one thread per rank over real channels — the closest analogue
//!   of the paper's MPI-side code.
//!
//! Both share `assemble_pattern`: given each step's (agent, origin)
//! decisions, the responsibility bookkeeping (descriptor `D`, `O_org`,
//! buffer growth) is identical.
//!
//! # Interpretation notes (where the paper's pseudocode is ambiguous)
//!
//! * Candidate scoring uses the *static* outgoing-neighbor sets (the
//!   paper's matrix `A` is computed once in `calculate_A`), so a rank may
//!   select an agent even after all of its own h2 targets are already
//!   offloaded — exactly as the published pseudocode behaves.
//! * A failed agent search leaves the rank's remaining h2
//!   responsibilities with the rank itself; they are delivered as direct
//!   sends in the final phase ("directly after the halving phase",
//!   Fig. 1's caption).
//! * Self-targets are satisfied by the receive-buffer copy when a block
//!   arrives (Algorithm 4 lines 15–17) and therefore never appear in the
//!   responsibility map.

use crate::csr::RespBuilder;
use crate::pattern::{
    in_range, range_len, split_half, DhPattern, DhStep, RankPattern, SelectionStats,
};
use crate::pool::WorkerPool;
use crate::selection::{run_matching, RoundCandidates, RoundResult, ScoreRow};
use crate::sizes::{BlockSizes, LoadMetric};
use nhood_cluster::ClusterLayout;
use nhood_telemetry::{labels, Recorder, NULL};
use nhood_topology::{Rank, Topology};

/// Errors from pattern building.
#[derive(Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The layout holds fewer cores than the graph has ranks.
    LayoutTooSmall {
        /// Ranks in the topology.
        ranks: usize,
        /// Cores in the layout.
        capacity: usize,
    },
    /// Distance Halving needs contiguous socket ranges, i.e. block
    /// placement.
    NonBlockPlacement,
    /// A rank of the distributed builder timed out mid-negotiation
    /// (lost signals or a crashed peer) — see
    /// [`crate::distributed_builder::build_pattern_distributed_faulty`].
    NegotiationTimeout {
        /// The rank that gave up waiting.
        rank: Rank,
        /// Halving step it was negotiating.
        step: usize,
        /// Protocol round within the step (0 or 1).
        round: u8,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::LayoutTooSmall { ranks, capacity } => {
                write!(f, "{ranks} ranks exceed layout capacity {capacity}")
            }
            BuildError::NonBlockPlacement => {
                write!(f, "Distance Halving requires block rank placement")
            }
            BuildError::NegotiationTimeout { rank, step, round } => {
                write!(f, "rank {rank} timed out negotiating step {step} round {round}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// How agents are paired with origins in each halving step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PairingStrategy {
    /// The paper's load-aware joint negotiation (Algorithms 2–3): agents
    /// are chosen by maximum shared outgoing neighbors.
    #[default]
    LoadAware,
    /// Topology-oblivious mirror pairing (Sack–Gropp-style): rank `i` of
    /// one half always pairs with rank `i` of the other, regardless of
    /// the communication graph. Used to ablate the "load-aware" part of
    /// the contribution.
    Mirror,
}

/// One rank's outcome in one halving step:
/// `(rank, agent, origin, h1, h2)`.
pub type Decision = (Rank, Option<Rank>, Option<Rank>, (Rank, Rank), (Rank, Rank));

/// Checks the builder preconditions shared by every strategy.
pub(crate) fn check_inputs(graph: &Topology, layout: &ClusterLayout) -> Result<(), BuildError> {
    if graph.n() > layout.capacity() {
        return Err(BuildError::LayoutTooSmall { ranks: graph.n(), capacity: layout.capacity() });
    }
    if layout.placement() != nhood_cluster::Placement::Block {
        return Err(BuildError::NonBlockPlacement);
    }
    Ok(())
}

/// The segment list at each halving step: `segments_per_step(n, l)[t]` is
/// the set of ranges still being halved at step `t` (ranges of length
/// `≤ l` have stopped). Empty when `n ≤ l`.
pub fn segments_per_step(n: usize, l: usize) -> Vec<Vec<(Rank, Rank)>> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let mut segments = vec![(0, n - 1)];
    while segments.iter().any(|&s| range_len(s) > l) {
        let active: Vec<(Rank, Rank)> =
            segments.iter().copied().filter(|&s| range_len(s) > l).collect();
        out.push(active.clone());
        let mut next = Vec::with_capacity(segments.len() * 2);
        for seg in segments {
            if range_len(seg) <= l {
                next.push(seg);
            } else {
                let (_, lo, hi) = split_half(seg.0, seg.1);
                next.push(lo);
                next.push(hi);
            }
        }
        segments = next;
    }
    out
}

/// Builds the Distance Halving pattern with the paper's load-aware
/// selection.
pub fn build_pattern(graph: &Topology, layout: &ClusterLayout) -> Result<DhPattern, BuildError> {
    build_pattern_with(graph, layout, PairingStrategy::LoadAware)
}

/// Builds a Distance Halving pattern with an explicit pairing strategy.
pub fn build_pattern_with(
    graph: &Topology,
    layout: &ClusterLayout,
    strategy: PairingStrategy,
) -> Result<DhPattern, BuildError> {
    build_pattern_pooled(graph, layout, strategy, &WorkerPool::serial())
}

/// [`build_pattern_with`] running its per-half scoring and protocol
/// rounds on `pool`. Scoring jobs are chunked proposer ranges and the
/// drives of independent rounds run concurrently; results are merged in
/// a fixed (segment, round, rank) order, so the pattern — and any plan
/// lowered from it — is **byte-identical** to a serial build.
pub fn build_pattern_pooled(
    graph: &Topology,
    layout: &ClusterLayout,
    strategy: PairingStrategy,
    pool: &WorkerPool,
) -> Result<DhPattern, BuildError> {
    build_pattern_recorded(graph, layout, strategy, pool, &NULL)
}

/// Proposer ranks scored per [`WorkerPool::map`] job; one halving round
/// of an n=1024 step yields 16 such chunks, enough slack for any sane
/// pool without drowning small rounds in scheduling overhead.
const SCORE_CHUNK: usize = 32;

/// [`build_pattern_pooled`] that additionally emits build-phase spans
/// ([`labels::PLAN_BUILD`] wrapping [`labels::BUILD_SCORE`] and
/// [`labels::BUILD_MATCH`] per step) against rank 0 of `rec`.
pub fn build_pattern_recorded(
    graph: &Topology,
    layout: &ClusterLayout,
    strategy: PairingStrategy,
    pool: &WorkerPool,
    rec: &dyn Recorder,
) -> Result<DhPattern, BuildError> {
    build_pattern_recorded_v(
        graph,
        layout,
        strategy,
        &BlockSizes::default(),
        LoadMetric::Neighbors,
        pool,
        rec,
    )
}

/// The size-aware entry point behind every builder variant:
/// [`LoadMetric::Neighbors`] reproduces the paper's count-based matching
/// exactly, and [`LoadMetric::Bytes`] keeps the shared-neighbor count
/// primary but breaks score ties toward the proposer with fewer block
/// bytes in `sizes` — the cheapest block for the agent to take on
/// (candidacy and ordering are unchanged on uniform sizes).
pub fn build_pattern_recorded_v(
    graph: &Topology,
    layout: &ClusterLayout,
    strategy: PairingStrategy,
    sizes: &BlockSizes,
    metric: LoadMetric,
    pool: &WorkerPool,
    rec: &dyn Recorder,
) -> Result<DhPattern, BuildError> {
    check_inputs(graph, layout)?;
    let l = layout.ranks_per_socket();
    let mut stats = SelectionStats::default();
    let mut asm = PatternAssembler::new(graph, l);

    rec.span_begin(0, labels::PLAN_BUILD);
    for active in segments_per_step(graph.n(), l) {
        // Two protocol rounds per segment, in segment order: round A
        // (lower half proposes, upper accepts — `(proposers, acceptors)`
        // below), then round B mirrored. The acceptor range doubles as
        // the score half (shared outgoing neighbors inside the
        // proposer's h2).
        let mut rounds: Vec<((Rank, Rank), (Rank, Rank))> = Vec::with_capacity(active.len() * 2);
        for &seg in &active {
            let (_, lower, upper) = split_half(seg.0, seg.1);
            rounds.push((lower, upper));
            rounds.push((upper, lower));
        }

        let results: Vec<RoundResult> = match strategy {
            PairingStrategy::LoadAware => {
                // Stage 1 (parallel): score proposer chunks.
                let mut jobs: Vec<(usize, Rank, Rank)> = Vec::new();
                for (ri, &(props, _)) in rounds.iter().enumerate() {
                    let mut s = props.0;
                    while s <= props.1 {
                        let e = (s + SCORE_CHUNK - 1).min(props.1);
                        jobs.push((ri, s, e));
                        s = e + 1;
                    }
                }
                rec.span_begin(0, labels::BUILD_SCORE);
                let scale = metric.scale(sizes);
                let chunks: Vec<Vec<ScoreRow>> = pool.map(jobs.len(), |j| {
                    let (ri, s, e) = jobs[j];
                    let acc = rounds[ri].1;
                    // Streaming sparse scoring: `score(p, a)` counts the
                    // targets `t ∈ out(p) ∩ out(a)` inside the acceptor
                    // range, so gather per proposer via `in(t)` — every
                    // `a ∈ in(t)` inside the range shares `t` with `p`.
                    // Only O(candidate-edge) cells are ever touched (the
                    // dense scratch resets through the touched list), so
                    // peak build memory follows the graph's edge count
                    // instead of the former n²-bit out-neighbor bitsets.
                    let mut counts: Vec<u32> = vec![0; range_len(acc)];
                    let mut touched: Vec<u32> = Vec::new();
                    (s..=e)
                        .map(|p| {
                            for &t in graph.out_neighbors(p) {
                                if !in_range(t, acc) {
                                    continue;
                                }
                                for &a in graph.in_neighbors(t) {
                                    if in_range(a, acc) {
                                        let ai = (a - acc.0) as u32;
                                        if counts[ai as usize] == 0 {
                                            touched.push(ai);
                                        }
                                        counts[ai as usize] += 1;
                                    }
                                }
                            }
                            // Emit in acceptor order, exactly as a dense
                            // scan over the acceptor slice would.
                            touched.sort_unstable();
                            let row: ScoreRow = touched
                                .iter()
                                .map(|&ai| {
                                    let shared = counts[ai as usize] as usize;
                                    (metric.score(shared, p, sizes, scale), ai)
                                })
                                .collect();
                            for &ai in &touched {
                                counts[ai as usize] = 0;
                            }
                            touched.clear();
                            row
                        })
                        .collect()
                });
                rec.span_end(0, labels::BUILD_SCORE);
                // Jobs were emitted round-major, proposer-ascending, and
                // `map` returns them in that order — concatenating per
                // round reassembles each round's rows exactly as a
                // serial scan would produce them.
                let mut rows: Vec<Vec<ScoreRow>> =
                    rounds.iter().map(|&(p, _)| Vec::with_capacity(range_len(p))).collect();
                for (j, chunk) in chunks.into_iter().enumerate() {
                    rows[jobs[j].0].extend(chunk);
                }
                let cands: Vec<RoundCandidates> = rounds
                    .iter()
                    .zip(rows)
                    .map(|(&(props, acc), r)| {
                        RoundCandidates::from_rows(
                            (props.0..=props.1).collect(),
                            (acc.0..=acc.1).collect(),
                            r,
                        )
                    })
                    .collect();
                // Stage 2 (parallel): drive each round's protocol. The
                // drive is deterministic per round and rounds are
                // independent, so any schedule gives the same results.
                rec.span_begin(0, labels::BUILD_MATCH);
                let results = pool.map(cands.len(), |i| run_matching(&cands[i]));
                rec.span_end(0, labels::BUILD_MATCH);
                results
            }
            PairingStrategy::Mirror => {
                // i-th lower rank pairs with i-th upper rank, both
                // directions, no negotiation. The (possibly) unpaired
                // extra rank of the bigger half finds no agent.
                rounds
                    .iter()
                    .map(|&(props, acc)| {
                        let mut r = RoundResult::default();
                        r.stats.agent_searches = range_len(props);
                        for (p, a) in (props.0..=props.1).zip(acc.0..=acc.1) {
                            r.matched.insert(p, a);
                            r.stats.agents_found += 1;
                        }
                        r
                    })
                    .collect()
            }
        };

        // Stage 3 (serial): merge in segment order, lower ranks then
        // upper ranks, ascending — the exact decision order of the
        // original serial builder.
        let mut decisions: Vec<Decision> = Vec::new();
        for (si, &seg) in active.iter().enumerate() {
            let (_, lower, upper) = split_half(seg.0, seg.1);
            let round_a = &results[2 * si];
            let round_b = &results[2 * si + 1];
            stats.merge(&round_a.stats);
            stats.merge(&round_b.stats);

            // Dense agent/origin tables over the segment span (round A
            // writes agents of the lower half + origins of the upper
            // half; round B the mirror — no overlap).
            let span = seg.0;
            let mut agent_of: Vec<Option<Rank>> = vec![None; range_len(seg)];
            let mut origin_of: Vec<Option<Rank>> = vec![None; range_len(seg)];
            for round in [round_a, round_b] {
                for (&p, &a) in &round.matched {
                    agent_of[p - span] = Some(a);
                    origin_of[a - span] = Some(p);
                }
            }

            for p in lower.0..=lower.1 {
                decisions.push((p, agent_of[p - span], origin_of[p - span], lower, upper));
            }
            for p in upper.0..=upper.1 {
                decisions.push((p, agent_of[p - span], origin_of[p - span], upper, lower));
            }
        }
        // Fold this step into the pattern immediately and drop its
        // decision list — peak memory tracks the evolving pattern, not
        // an all-steps decision table.
        asm.step(&decisions);
    }

    let pat = asm.finish(&stats);
    rec.span_end(0, labels::PLAN_BUILD);
    Ok(pat)
}

/// Streaming pattern assembly: folds one step's (agent, origin)
/// decisions at a time into the evolving per-rank state — records every
/// rank's steps, moves responsibilities to agents (the descriptor `D`
/// of Algorithm 1 lines 31–49), grows buffers, and tallies notification
/// and descriptor messages. Shared by the sequential and the threaded
/// (distributed) builders.
///
/// Each step's decision list can be dropped as soon as [`Self::step`]
/// returns, so a builder that feeds decisions as rounds complete keeps
/// peak memory at the evolving pattern itself — it never materializes
/// the O(n log n) all-steps decision table.
pub(crate) struct PatternAssembler<'g> {
    graph: &'g Topology,
    l: usize,
    // Responsibilities stay in mutable RespBuilder form while the steps
    // replay; they freeze into the pattern's CSR maps at the end.
    resp: Vec<RespBuilder>,
    step_rows: Vec<Vec<DhStep>>,
    held: Vec<Vec<Rank>>,
    stats: SelectionStats,
}

impl<'g> PatternAssembler<'g> {
    pub(crate) fn new(graph: &'g Topology, l: usize) -> Self {
        let n = graph.n();
        Self {
            graph,
            l,
            resp: (0..n).map(|p| RespBuilder::seeded(p, graph.out_neighbors(p))).collect(),
            step_rows: vec![Vec::new(); n],
            held: (0..n).map(|p| vec![p]).collect(),
            stats: SelectionStats::default(),
        }
    }

    /// Folds one halving step's decisions into the pattern state.
    ///
    /// # Panics
    /// Panics if a decision references an origin that did not
    /// participate in the same step — both builders construct matchings
    /// per segment, which makes that unreachable.
    pub(crate) fn step(&mut self, decisions: &[Decision]) {
        let (resp, step_rows, held) = (&mut self.resp, &mut self.step_rows, &mut self.held);
        // Record the step for every participating rank. Buffers only
        // grow by appending (below, after every step is recorded), so
        // pre-step contents are fully described by their current
        // lengths — no per-step snapshot clones.
        for &(p, agent, origin, h1, h2) in decisions.iter() {
            let arr_len = origin.map(|o| held[o].len()).unwrap_or(0);
            step_rows[p].push(DhStep { h1, h2, agent, origin, held_len: held[p].len(), arr_len });
            // Notifications: agent announcements to outgoing neighbors in
            // h2 (Algorithm 1 line 30), sent whether or not one was found.
            self.stats.notifications +=
                self.graph.out_neighbors(p).iter().filter(|&&o| in_range(o, h2)).count();
            if agent.is_some() {
                self.stats.descriptors += 1;
            }
        }

        // Apply responsibility transfers (descriptor D), all against the
        // pre-step responsibility maps: p's outgoing D never contains
        // targets that arrive at p in this same step.
        // (agent, [(block, targets)]) descriptor batches per step
        type Transfers = Vec<(Rank, Vec<(Rank, Vec<Rank>)>)>;
        let mut transfers: Transfers = Vec::new();
        for &(p, agent, _, _, h2) in decisions {
            let Some(a) = agent else { continue };
            let mut d: Vec<(Rank, Vec<Rank>)> = Vec::new();
            for (block, targets) in resp[p].iter() {
                let moved: Vec<Rank> =
                    targets.iter().copied().filter(|&t| in_range(t, h2)).collect();
                if !moved.is_empty() {
                    d.push((block, moved));
                }
            }
            transfers.push((a, d));
            // drop the moved targets from the sender
            resp[p].retain_targets(|t| !in_range(t, h2));
        }
        for (a, d) in transfers {
            for (block, mut moved) in d {
                // self-targets are satisfied by the rbuf copy on arrival
                moved.retain(|&t| t != a);
                if moved.is_empty() {
                    continue;
                }
                resp[a].merge(block, &moved);
            }
        }

        // Apply buffer growth: origin's pre-step buffer appends to
        // ours. The pre-step length was captured as `arr_len` above,
        // before any of this step's appends mutated `held`.
        let appends: Vec<(Rank, Rank, usize)> = decisions
            .iter()
            .filter_map(|&(p, _, origin, _, _)| {
                origin.map(|o| (p, o, step_rows[p].last().expect("just pushed").arr_len))
            })
            .collect();
        for (p, o, len) in appends {
            let blocks: Vec<Rank> = held[o][..len].to_vec();
            held[p].extend(blocks);
        }
    }

    /// Freezes the evolved state into the final pattern, merging
    /// `stats` accumulated by the matching rounds on top of the
    /// assembler's own notification/descriptor tallies.
    pub(crate) fn finish(self, round_stats: &SelectionStats) -> DhPattern {
        let mut stats = self.stats;
        stats.merge(round_stats);
        let ranks: Vec<RankPattern> = self
            .resp
            .into_iter()
            .zip(self.step_rows)
            .zip(self.held)
            .map(|((rb, mut steps), mut held_final)| {
                steps.shrink_to_fit();
                held_final.shrink_to_fit();
                RankPattern { steps, responsibilities: rb.freeze(), held_final }
            })
            .collect();
        DhPattern { ranks, stats, ranks_per_socket: self.l }
    }
}

/// One-shot assembly over a fully materialized decision table — the
/// streaming [`PatternAssembler`] fed step by step. Kept for builders
/// that already hold every step (the distributed builder's per-thread
/// negotiation records them as they complete).
pub(crate) fn assemble_pattern(
    graph: &Topology,
    l: usize,
    steps: &[Vec<Decision>],
    stats: SelectionStats,
) -> DhPattern {
    let mut asm = PatternAssembler::new(graph, l);
    for decisions in steps {
        asm.step(decisions);
    }
    asm.finish(&stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nhood_topology::random::erdos_renyi;

    fn full_graph(n: usize) -> Topology {
        Topology::from_edges(
            n,
            (0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j))),
        )
    }

    /// Checks the central invariant: every edge (b → t) of the graph is
    /// covered exactly once — either `t` receives `b`'s block during the
    /// halving phase (it arrives at `t` and `b ∈ I(t)`), or exactly one
    /// rank holds (b → t) in its final responsibilities.
    pub(super) fn assert_exactly_once(graph: &Topology, pat: &DhPattern) {
        use std::collections::HashMap;
        let mut covered: HashMap<(Rank, Rank), usize> = HashMap::new();
        for t in 0..graph.n() {
            for s in 0..pat.ranks[t].steps.len() {
                for &b in pat.arriving(t, s) {
                    if graph.has_edge(b, t) {
                        *covered.entry((b, t)).or_default() += 1;
                    }
                }
            }
        }
        for q in 0..graph.n() {
            for (b, targets) in pat.ranks[q].responsibilities.iter() {
                assert!(
                    pat.ranks[q].held_final.contains(&b),
                    "rank {q} responsible for block {b} it does not hold"
                );
                for &t in targets {
                    assert!(graph.has_edge(b, t), "spurious responsibility ({b} -> {t})");
                    *covered.entry((b, t)).or_default() += 1;
                }
            }
        }
        for (s, d) in graph.edges() {
            assert_eq!(
                covered.get(&(s, d)).copied().unwrap_or(0),
                1,
                "edge ({s} -> {d}) covered wrong number of times"
            );
        }
        let total: usize = covered.values().sum();
        assert_eq!(total, graph.edge_count());
    }

    /// A rank that found an agent in a step must end with no remaining
    /// responsibilities inside that step's h2 (later h2s are disjoint).
    fn assert_no_stale_h2(pat: &DhPattern) {
        for rp in &pat.ranks {
            for step in &rp.steps {
                if step.agent.is_none() {
                    continue;
                }
                for targets in rp.responsibilities.values() {
                    for &t in targets {
                        assert!(
                            !in_range(t, step.h2),
                            "rank kept target {t} inside offloaded half {:?}",
                            step.h2
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn segments_per_step_shapes() {
        // 32 ranks, L = 4: 32 → 16 → 8 → (4,4): three active steps
        let s = segments_per_step(32, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec![(0, 31)]);
        assert_eq!(s[1], vec![(0, 15), (16, 31)]);
        assert_eq!(s[2].len(), 4);
        // n ≤ L: no halving at all
        assert!(segments_per_step(8, 8).is_empty());
        assert!(segments_per_step(0, 4).is_empty());
        // odd sizes: 17 with L=4: [0,16] → [0,8],[9,16] → 5,4,4,4 → 3,2
        let s = segments_per_step(17, 4);
        assert_eq!(s[0], vec![(0, 16)]);
        assert_eq!(s[1], vec![(0, 8), (9, 16)]);
        // step 2 only halves the length-5 segment
        assert_eq!(s[2], vec![(0, 4)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_graph_trivial_pattern() {
        let g = Topology::from_edges(8, []);
        let layout = ClusterLayout::new(2, 2, 2); // L = 2
        let pat = build_pattern(&g, &layout).unwrap();
        assert_eq!(pat.n(), 8);
        assert_eq!(pat.stats.total_signals(), 0);
        assert_eq!(pat.stats.agents_found, 0);
        for rp in &pat.ranks {
            assert!(rp.responsibilities.is_empty());
            assert_eq!(rp.held_final.len(), 1);
        }
        assert_exactly_once(&g, &pat);
    }

    #[test]
    fn single_socket_no_halving() {
        let g = erdos_renyi(8, 0.5, 1);
        let layout = ClusterLayout::new(1, 1, 8);
        let pat = build_pattern(&g, &layout).unwrap();
        assert_eq!(pat.max_steps(), 0);
        assert_exactly_once(&g, &pat);
    }

    #[test]
    fn two_socket_full_graph() {
        let g = full_graph(8);
        let layout = ClusterLayout::new(1, 2, 4); // L = 4, one halving step
        let pat = build_pattern(&g, &layout).unwrap();
        assert_eq!(pat.max_steps(), 1);
        assert_eq!(pat.stats.agent_searches, 8);
        assert_eq!(pat.stats.agents_found, 8);
        assert_exactly_once(&g, &pat);
        assert_no_stale_h2(&pat);
        for rp in &pat.ranks {
            assert_eq!(rp.held_final.len(), 2);
        }
    }

    #[test]
    fn correct_over_random_graphs_and_layouts() {
        for (n, delta, nodes, sockets, cores) in [
            (16, 0.3, 2, 2, 4),
            (16, 0.05, 4, 2, 2),
            (24, 0.5, 3, 2, 4),
            (36, 0.2, 3, 2, 6),
            (30, 0.7, 5, 2, 3),
            (17, 0.4, 3, 2, 3),
        ] {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(nodes, sockets, cores);
            let pat = build_pattern(&g, &layout)
                .unwrap_or_else(|e| panic!("build failed for n={n}: {e}"));
            assert_exactly_once(&g, &pat);
            assert_no_stale_h2(&pat);
        }
    }

    #[test]
    fn agents_and_origins_are_mutual() {
        let g = erdos_renyi(32, 0.4, 7);
        let layout = ClusterLayout::new(4, 2, 4);
        let pat = build_pattern(&g, &layout).unwrap();
        for (p, rp) in pat.ranks.iter().enumerate() {
            for (t, step) in rp.steps.iter().enumerate() {
                if let Some(a) = step.agent {
                    assert!(in_range(a, step.h2), "agent outside h2");
                    assert_eq!(
                        pat.ranks[a].steps[t].origin,
                        Some(p),
                        "agent {a} of {p} does not list {p} as origin at step {t}"
                    );
                    assert_eq!(pat.arriving(a, t), pat.held_before(p, t));
                }
                if let Some(o) = step.origin {
                    assert!(in_range(o, step.h2), "origin outside h2");
                    assert_eq!(pat.ranks[o].steps[t].agent, Some(p));
                }
            }
        }
    }

    #[test]
    fn buffer_growth_matches_origins() {
        let g = erdos_renyi(32, 0.5, 3);
        let layout = ClusterLayout::new(4, 2, 4); // L = 4 → 3 halving steps
        let pat = build_pattern(&g, &layout).unwrap();
        for rp in &pat.ranks {
            let mut expect = 1usize;
            for step in &rp.steps {
                assert_eq!(step.held_len, expect);
                expect += step.arr_len;
            }
            assert_eq!(rp.held_final.len(), expect);
            assert!(expect <= 1 << rp.steps.len());
        }
    }

    #[test]
    fn halving_step_count() {
        let g = full_graph(32);
        let layout = ClusterLayout::new(4, 2, 4);
        let pat = build_pattern(&g, &layout).unwrap();
        assert_eq!(pat.max_steps(), 3);
        for rp in &pat.ranks {
            assert_eq!(rp.steps.len(), 3);
        }
    }

    #[test]
    fn dense_graph_offloads_everything_far() {
        let g = full_graph(16);
        let layout = ClusterLayout::new(2, 2, 4); // L = 4
        let pat = build_pattern(&g, &layout).unwrap();
        for (q, rp) in pat.ranks.iter().enumerate() {
            let (lo, hi) = layout.socket_range(q);
            for targets in rp.responsibilities.values() {
                for &t in targets {
                    assert!(t >= lo && t <= hi, "rank {q} still owes a delivery to off-socket {t}");
                }
            }
        }
        assert_exactly_once(&g, &pat);
    }

    #[test]
    fn rejects_oversized_graph_and_bad_placement() {
        let g = full_graph(8);
        let small = ClusterLayout::new(1, 1, 4);
        assert_eq!(
            build_pattern(&g, &small).err(),
            Some(BuildError::LayoutTooSmall { ranks: 8, capacity: 4 })
        );
        let rr =
            ClusterLayout::new(2, 2, 2).with_placement(nhood_cluster::Placement::RoundRobinNodes);
        assert_eq!(build_pattern(&g, &rr).err(), Some(BuildError::NonBlockPlacement));
    }

    #[test]
    fn stats_notifications_counted() {
        let g = full_graph(8);
        let layout = ClusterLayout::new(1, 2, 4);
        let pat = build_pattern(&g, &layout).unwrap();
        assert_eq!(pat.stats.notifications, 8 * 4);
        assert_eq!(pat.stats.descriptors, 8);
    }

    #[test]
    fn mirror_strategy_is_correct_too() {
        for (n, delta) in [(16usize, 0.3), (24, 0.5), (17, 0.4)] {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let pat = build_pattern_with(&g, &layout, PairingStrategy::Mirror).unwrap();
            assert_exactly_once(&g, &pat);
            assert_eq!(pat.stats.total_signals(), 0);
            assert!(pat.stats.success_rate() > 0.9);
        }
    }

    #[test]
    fn mirror_agents_are_reflections() {
        let g = full_graph(16);
        let layout = ClusterLayout::new(2, 2, 4);
        let pat = build_pattern_with(&g, &layout, PairingStrategy::Mirror).unwrap();
        for p in 0..16usize {
            let expect = if p < 8 { p + 8 } else { p - 8 };
            assert_eq!(pat.ranks[p].steps[0].agent, Some(expect));
            assert_eq!(pat.ranks[p].steps[0].origin, Some(expect));
        }
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(40, 0.3, 11);
        let layout = ClusterLayout::new(5, 2, 4);
        let a = build_pattern(&g, &layout).unwrap();
        let b = build_pattern(&g, &layout).unwrap();
        assert_eq!(a.stats, b.stats);
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn pooled_build_is_identical_to_serial() {
        for (n, delta) in [(17usize, 0.4), (32, 0.1), (40, 0.6)] {
            let g = erdos_renyi(n, delta, 23);
            let layout = ClusterLayout::new(n.div_ceil(8), 2, 4);
            let serial = build_pattern(&g, &layout).unwrap();
            for threads in [2usize, 3, 8] {
                let pool = WorkerPool::new(threads);
                let pooled =
                    build_pattern_pooled(&g, &layout, PairingStrategy::LoadAware, &pool).unwrap();
                assert_eq!(serial.stats, pooled.stats, "n={n} threads={threads}");
                assert_eq!(serial.ranks, pooled.ranks, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_mirror_matches_serial_mirror() {
        let g = erdos_renyi(24, 0.5, 8);
        let layout = ClusterLayout::new(3, 2, 4);
        let serial = build_pattern_with(&g, &layout, PairingStrategy::Mirror).unwrap();
        let pooled =
            build_pattern_pooled(&g, &layout, PairingStrategy::Mirror, &WorkerPool::new(4))
                .unwrap();
        assert_eq!(serial.stats, pooled.stats);
        assert_eq!(serial.ranks, pooled.ranks);
    }
}
