//! Executable data-movement plans.
//!
//! A [`CollectivePlan`] is the common output of all three algorithms
//! (naïve, Common Neighbor, Distance Halving): for every rank, an ordered
//! list of [`PlanPhase`]s, each posting receives and sends and ending in
//! an implicit wait-all — the exact structure of the paper's Algorithm 4.
//! Message payloads are described as ordered lists of **blocks** (rank
//! ids whose allgather contribution is concatenated into the message), so
//! the same plan can be executed with real bytes (the virtual and
//! threaded executors) or costed symbolically (the simulator, at any
//! message size).
//!
//! # The exactly-once property
//!
//! [`CollectivePlan::validate`] checks, among structural sanity, the
//! central correctness invariant: **every edge `(b → t)` of the virtual
//! topology is delivered exactly once** — `t` receives a message
//! containing block `b` at exactly one point of the plan. For Distance
//! Halving this is a theorem (proved by two lemmas: (1) replication only
//! happens across the current segment split, so at most one rank of any
//! segment holds a given block; (2) the responsibility for `(b, t)`
//! always travels in the same message as `b`'s data, so it can only sit
//! with a data holder on `t`'s side of every successful split). A failed
//! agent search strands both the data and the responsibility on the same
//! rank, which later direct-sends — never duplicating a delivery.

use crate::pattern::SelectionStats;
use nhood_topology::{Rank, Topology};

/// Which direction of a [`PlannedMsg`] a validation error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgDir {
    /// The message appears in a phase's `sends`.
    Send,
    /// The message appears in a phase's `recvs`.
    Recv,
}

impl std::fmt::Display for MsgDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgDir::Send => write!(f, "send"),
            MsgDir::Recv => write!(f, "recv"),
        }
    }
}

/// Why [`CollectivePlan::validate`] rejected a plan.
///
/// Mirrors the style of [`crate::exec::ExecError`]: every failure is a
/// typed variant carrying the offending ranks/phases, so the CLI and
/// tests can match on causes instead of substring-grepping a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanValidationError {
    /// The plan and the topology disagree on the number of ranks.
    RankCountMismatch {
        /// Ranks in the plan.
        plan: usize,
        /// Ranks in the topology.
        topology: usize,
    },
    /// A rank's program is not lock-step with rank 0's.
    NotLockStep {
        /// The offending rank.
        rank: Rank,
        /// Its phase count.
        got: usize,
        /// The expected (rank 0's) phase count.
        want: usize,
    },
    /// A message names an out-of-range or self peer.
    BadPeer {
        /// The rank whose program holds the message.
        rank: Rank,
        /// Phase index.
        phase: usize,
        /// The bad peer.
        peer: Rank,
        /// Whether the message is a send or a recv.
        dir: MsgDir,
    },
    /// A send carries no blocks.
    EmptySend {
        /// Sending rank.
        rank: Rank,
        /// Phase index.
        phase: usize,
        /// Destination.
        peer: Rank,
    },
    /// Two messages share a `(src, dst, tag)` key.
    DuplicateKey {
        /// Source rank.
        src: Rank,
        /// Destination rank.
        dst: Rank,
        /// The shared tag.
        tag: u64,
        /// Whether the duplicates are sends or recvs.
        dir: MsgDir,
    },
    /// The total number of sends and recvs differ.
    SendRecvCountMismatch {
        /// Total sends.
        sends: usize,
        /// Total recvs.
        recvs: usize,
    },
    /// A send has no mirroring recv.
    UnmatchedSend {
        /// Source rank.
        src: Rank,
        /// Destination rank.
        dst: Rank,
        /// Tag.
        tag: u64,
    },
    /// A send and its mirroring recv sit in different phases.
    PhaseSkew {
        /// Source rank.
        src: Rank,
        /// Destination rank.
        dst: Rank,
        /// Tag.
        tag: u64,
        /// Phase the send is posted in.
        send_phase: usize,
        /// Phase the recv is posted in.
        recv_phase: usize,
    },
    /// A send and its mirroring recv disagree on the block list.
    BlockListMismatch {
        /// Source rank.
        src: Rank,
        /// Destination rank.
        dst: Rank,
        /// Tag.
        tag: u64,
    },
    /// A rank sends a block it does not hold at that phase.
    UnheldBlock {
        /// Sending rank.
        rank: Rank,
        /// Phase index.
        phase: usize,
        /// The block it never held.
        block: Rank,
    },
    /// A topology edge's block is never delivered.
    NeverDelivered {
        /// Block owner (edge source).
        src: Rank,
        /// Edge destination.
        dst: Rank,
    },
    /// A topology edge's block is delivered more than once.
    DuplicateDelivery {
        /// Block owner (edge source).
        src: Rank,
        /// Edge destination.
        dst: Rank,
        /// How many times it arrived.
        count: usize,
    },
}

impl std::fmt::Display for PlanValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use PlanValidationError::*;
        match self {
            RankCountMismatch { plan, topology } => {
                write!(f, "plan has {plan} ranks, topology has {topology}")
            }
            NotLockStep { rank, got, want } => {
                write!(f, "rank {rank} has {got} phases, expected lock-step {want}")
            }
            BadPeer { rank, phase, peer, dir } => {
                write!(f, "rank {rank} phase {phase}: bad {dir} peer {peer}")
            }
            EmptySend { rank, phase, peer } => {
                write!(f, "rank {rank} phase {phase}: empty send to {peer}")
            }
            DuplicateKey { src, dst, tag, dir } => {
                write!(f, "duplicate {dir} key ({src},{dst},{tag})")
            }
            SendRecvCountMismatch { sends, recvs } => write!(f, "{sends} sends vs {recvs} recvs"),
            UnmatchedSend { src, dst, tag } => {
                write!(f, "send ({src},{dst},{tag}) has no matching recv")
            }
            PhaseSkew { src, dst, tag, send_phase, recv_phase } => {
                write!(f, "send ({src},{dst},{tag}) in phase {send_phase} but recv in {recv_phase}")
            }
            BlockListMismatch { src, dst, tag } => {
                write!(f, "send ({src},{dst},{tag}) blocks differ from recv")
            }
            UnheldBlock { rank, phase, block } => {
                write!(f, "rank {rank} phase {phase} sends block {block} it does not hold")
            }
            NeverDelivered { src, dst } => write!(f, "edge ({src} -> {dst}) never delivered"),
            DuplicateDelivery { src, dst, count } => {
                write!(f, "edge ({src} -> {dst}) delivered {count} times")
            }
        }
    }
}

impl std::error::Error for PlanValidationError {}

/// Which neighborhood-allgather algorithm produced a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Direct point-to-point sends to every outgoing neighbor — the
    /// default Open MPI behaviour the paper benchmarks against.
    Naive,
    /// The Common Neighbor message-combining algorithm (Ghazimirsaeed et
    /// al., IPDPS'19) with groups of `k` ranks.
    CommonNeighbor {
        /// Group size.
        k: usize,
    },
    /// The paper's topology- and load-aware Distance Halving algorithm.
    DistanceHalving,
    /// Hierarchical leader-based allgather (Ghazimirsaeed et al.,
    /// SC'20 — the paper's reference \[9\]): node leaders aggregate,
    /// exchange one combined message per node pair, then scatter.
    HierarchicalLeader {
        /// Leaders per node (blocks assigned round-robin).
        leaders_per_node: usize,
    },
    /// Locality-aware Bruck neighborhood allgather (Bienz et al.):
    /// blocks funnel to a per-node router, hop between routers in
    /// log-stride rounds over node offsets, then scatter locally.
    Bruck,
    /// PAT-style aggregated trees (Jeaugey): each destination's
    /// in-neighborhood aggregates along a radix-`radix` binomial tree
    /// before one combined delivery.
    Pat {
        /// Aggregation-tree radix (>= 2).
        radix: usize,
    },
    /// Simulation-driven auto-selection: every portfolio candidate is
    /// scored through the §V cost model for the request's (topology,
    /// layout, block sizes) and the winner's plan is used and cached.
    Auto,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Naive => write!(f, "naive"),
            Algorithm::CommonNeighbor { k } => write!(f, "common-neighbor(k={k})"),
            Algorithm::DistanceHalving => write!(f, "distance-halving"),
            Algorithm::HierarchicalLeader { leaders_per_node } => {
                write!(f, "hierarchical-leader(l={leaders_per_node})")
            }
            Algorithm::Bruck => write!(f, "bruck"),
            Algorithm::Pat { radix } => write!(f, "pat(r={radix})"),
            Algorithm::Auto => write!(f, "auto"),
        }
    }
}

/// One planned message: `blocks` (payload contributions of those ranks,
/// concatenated in order) moving between this rank and `peer`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedMsg {
    /// The other endpoint.
    pub peer: Rank,
    /// Whose payload blocks the message carries, in payload order.
    pub blocks: Vec<Rank>,
    /// Matching tag; unique per (src, dst) pair within the plan.
    pub tag: u64,
}

/// One post-recvs/post-sends/wait-all block of a rank's program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanPhase {
    /// Number of block-sized memcpys this rank performs at phase entry
    /// (buffer packing / receive-buffer copies); the simulator charges
    /// `copy_blocks · m / memcpy_bandwidth`.
    pub copy_blocks: usize,
    /// Messages sent in this phase.
    pub sends: Vec<PlannedMsg>,
    /// Messages received in this phase.
    pub recvs: Vec<PlannedMsg>,
}

impl PlanPhase {
    /// `true` if the phase neither communicates nor copies.
    pub fn is_empty(&self) -> bool {
        self.copy_blocks == 0 && self.sends.is_empty() && self.recvs.is_empty()
    }
}

/// A complete, executable plan for one neighborhood allgather.
#[derive(Clone, Debug)]
pub struct CollectivePlan {
    /// The algorithm that produced this plan.
    pub algorithm: Algorithm,
    /// `per_rank[r]` is rank `r`'s phase program. All programs have equal
    /// length (padded with empty phases) so executors can run them in
    /// lock-step.
    pub per_rank: Vec<Vec<PlanPhase>>,
    /// Selection statistics (Distance Halving only).
    pub selection: Option<SelectionStats>,
}

impl CollectivePlan {
    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.per_rank.len()
    }

    /// Number of (lock-step) phases.
    pub fn phase_count(&self) -> usize {
        self.per_rank.first().map_or(0, Vec::len)
    }

    /// Total messages, counted on the send side.
    pub fn message_count(&self) -> usize {
        self.per_rank.iter().flat_map(|p| p.iter()).map(|ph| ph.sends.len()).sum()
    }

    /// Total payload volume in block units (multiply by the per-rank
    /// message size `m` for bytes).
    pub fn total_blocks_sent(&self) -> usize {
        self.per_rank
            .iter()
            .flat_map(|p| p.iter())
            .flat_map(|ph| ph.sends.iter())
            .map(|m| m.blocks.len())
            .sum()
    }

    /// Peak per-phase fan-out: the largest number of sends any rank
    /// posts in a single phase. Under fault injection this bounds how
    /// many messages a phase deadline must leave room to retry, so the
    /// chaos tooling uses it to budget per-phase timeouts.
    pub fn max_sends_in_phase(&self) -> usize {
        self.per_rank.iter().flat_map(|p| p.iter()).map(|ph| ph.sends.len()).max().unwrap_or(0)
    }

    /// Largest single message, in blocks.
    pub fn max_message_blocks(&self) -> usize {
        self.per_rank
            .iter()
            .flat_map(|p| p.iter())
            .flat_map(|ph| ph.sends.iter())
            .map(|m| m.blocks.len())
            .max()
            .unwrap_or(0)
    }

    /// Per-rank total messages sent — the load-balance view.
    pub fn sends_per_rank(&self) -> Vec<usize> {
        self.per_rank.iter().map(|phases| phases.iter().map(|ph| ph.sends.len()).sum()).collect()
    }

    /// Checks structural sanity and the exactly-once delivery property
    /// against the virtual topology that produced the plan:
    ///
    /// 1. programs are lock-step (equal length);
    /// 2. sends and recvs mirror each other exactly (peer, blocks, tag);
    /// 3. a rank only sends blocks it holds (its own, or ones received in
    ///    *earlier* phases);
    /// 4. every topology edge `(b → t)` is delivered to `t` exactly once;
    /// 5. nothing is delivered that the topology does not require —
    ///    except transit data (blocks a rank relays but does not consume),
    ///    which is allowed and is exactly what distinguishes DH traffic.
    pub fn validate(&self, graph: &Topology) -> Result<(), PlanValidationError> {
        use std::collections::HashMap;
        let n = self.n();
        if graph.n() != n {
            return Err(PlanValidationError::RankCountMismatch { plan: n, topology: graph.n() });
        }
        let phases = self.phase_count();
        for (r, prog) in self.per_rank.iter().enumerate() {
            if prog.len() != phases {
                return Err(PlanValidationError::NotLockStep {
                    rank: r,
                    got: prog.len(),
                    want: phases,
                });
            }
        }

        // 2: mirror check via keyed maps
        let mut sends: HashMap<(Rank, Rank, u64), (usize, &[Rank])> = HashMap::new();
        let mut recvs: HashMap<(Rank, Rank, u64), (usize, &[Rank])> = HashMap::new();
        for (r, prog) in self.per_rank.iter().enumerate() {
            for (k, ph) in prog.iter().enumerate() {
                for m in &ph.sends {
                    if m.peer >= n || m.peer == r {
                        return Err(PlanValidationError::BadPeer {
                            rank: r,
                            phase: k,
                            peer: m.peer,
                            dir: MsgDir::Send,
                        });
                    }
                    if m.blocks.is_empty() {
                        return Err(PlanValidationError::EmptySend {
                            rank: r,
                            phase: k,
                            peer: m.peer,
                        });
                    }
                    if sends.insert((r, m.peer, m.tag), (k, &m.blocks)).is_some() {
                        return Err(PlanValidationError::DuplicateKey {
                            src: r,
                            dst: m.peer,
                            tag: m.tag,
                            dir: MsgDir::Send,
                        });
                    }
                }
                for m in &ph.recvs {
                    if m.peer >= n || m.peer == r {
                        return Err(PlanValidationError::BadPeer {
                            rank: r,
                            phase: k,
                            peer: m.peer,
                            dir: MsgDir::Recv,
                        });
                    }
                    if recvs.insert((m.peer, r, m.tag), (k, &m.blocks)).is_some() {
                        return Err(PlanValidationError::DuplicateKey {
                            src: m.peer,
                            dst: r,
                            tag: m.tag,
                            dir: MsgDir::Recv,
                        });
                    }
                }
            }
        }
        if sends.len() != recvs.len() {
            return Err(PlanValidationError::SendRecvCountMismatch {
                sends: sends.len(),
                recvs: recvs.len(),
            });
        }
        for (&(src, dst, tag), (sk, sblocks)) in &sends {
            match recvs.get(&(src, dst, tag)) {
                None => return Err(PlanValidationError::UnmatchedSend { src, dst, tag }),
                Some((rk, rblocks)) => {
                    if sk != rk {
                        return Err(PlanValidationError::PhaseSkew {
                            src,
                            dst,
                            tag,
                            send_phase: *sk,
                            recv_phase: *rk,
                        });
                    }
                    if sblocks != rblocks {
                        return Err(PlanValidationError::BlockListMismatch { src, dst, tag });
                    }
                }
            }
        }

        // 3 + 4: lock-step possession/delivery simulation
        let mut holds: Vec<std::collections::HashSet<Rank>> =
            (0..n).map(|r| std::collections::HashSet::from([r])).collect();
        let mut delivered: HashMap<(Rank, Rank), usize> = HashMap::new();
        for k in 0..phases {
            // sends read pre-phase possession
            for (r, prog) in self.per_rank.iter().enumerate() {
                for m in &prog[k].sends {
                    for &b in &m.blocks {
                        if !holds[r].contains(&b) {
                            return Err(PlanValidationError::UnheldBlock {
                                rank: r,
                                phase: k,
                                block: b,
                            });
                        }
                    }
                }
            }
            for (r, prog) in self.per_rank.iter().enumerate() {
                for m in &prog[k].recvs {
                    for &b in &m.blocks {
                        holds[r].insert(b);
                        if graph.has_edge(b, r) {
                            *delivered.entry((b, r)).or_default() += 1;
                        }
                    }
                }
            }
        }
        for (s, d) in graph.edges() {
            match delivered.get(&(s, d)).copied().unwrap_or(0) {
                0 => return Err(PlanValidationError::NeverDelivered { src: s, dst: d }),
                1 => {}
                c => {
                    return Err(PlanValidationError::DuplicateDelivery { src: s, dst: d, count: c })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(peer: Rank, blocks: Vec<Rank>, tag: u64) -> PlannedMsg {
        PlannedMsg { peer, blocks, tag }
    }

    /// hand-built two-rank exchange plan
    fn pair_plan() -> (Topology, CollectivePlan) {
        let g = Topology::from_edges(2, [(0, 1), (1, 0)]);
        let plan = CollectivePlan {
            algorithm: Algorithm::Naive,
            per_rank: vec![
                vec![PlanPhase {
                    copy_blocks: 0,
                    sends: vec![msg(1, vec![0], 0)],
                    recvs: vec![msg(1, vec![1], 0)],
                }],
                vec![PlanPhase {
                    copy_blocks: 0,
                    sends: vec![msg(0, vec![1], 0)],
                    recvs: vec![msg(0, vec![0], 0)],
                }],
            ],
            selection: None,
        };
        (g, plan)
    }

    #[test]
    fn valid_pair_plan_passes() {
        let (g, plan) = pair_plan();
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), 2);
        assert_eq!(plan.total_blocks_sent(), 2);
        assert_eq!(plan.max_message_blocks(), 1);
        assert_eq!(plan.max_sends_in_phase(), 1);
        assert_eq!(plan.sends_per_rank(), vec![1, 1]);
        assert_eq!(plan.phase_count(), 1);
    }

    #[test]
    fn detects_missing_delivery() {
        let (g, mut plan) = pair_plan();
        plan.per_rank[0][0].sends.clear();
        plan.per_rank[1][0].recvs.clear();
        let e = plan.validate(&g).unwrap_err();
        assert_eq!(e, PlanValidationError::NeverDelivered { src: 0, dst: 1 });
    }

    #[test]
    fn detects_double_delivery() {
        let (g, mut plan) = pair_plan();
        plan.per_rank[0][0].sends.push(msg(1, vec![0], 9));
        plan.per_rank[1][0].recvs.push(msg(0, vec![0], 9));
        let e = plan.validate(&g).unwrap_err();
        assert_eq!(e, PlanValidationError::DuplicateDelivery { src: 0, dst: 1, count: 2 });
    }

    #[test]
    fn detects_unheld_block() {
        let (g, mut plan) = pair_plan();
        plan.per_rank[0][0].sends[0].blocks = vec![0, 1]; // rank 0 never holds 1 pre-phase
        plan.per_rank[1][0].recvs[0].blocks = vec![0, 1];
        let e = plan.validate(&g).unwrap_err();
        assert_eq!(e, PlanValidationError::UnheldBlock { rank: 0, phase: 0, block: 1 });
    }

    #[test]
    fn detects_mirror_mismatch() {
        let (g, mut plan) = pair_plan();
        plan.per_rank[1][0].recvs[0].tag = 7;
        assert!(plan.validate(&g).is_err());
        let (g, mut plan) = pair_plan();
        plan.per_rank[1][0].recvs[0].blocks = vec![1];
        let e = plan.validate(&g).unwrap_err();
        assert_eq!(e, PlanValidationError::BlockListMismatch { src: 0, dst: 1, tag: 0 });
    }

    #[test]
    fn detects_phase_mismatch() {
        let (g, mut plan) = pair_plan();
        plan.per_rank[0].push(PlanPhase::default());
        let e = plan.validate(&g).unwrap_err();
        assert_eq!(e, PlanValidationError::NotLockStep { rank: 1, got: 1, want: 2 });
        assert!(e.to_string().contains("lock-step"), "{e}");
    }

    #[test]
    fn detects_cross_phase_match() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let plan = CollectivePlan {
            algorithm: Algorithm::Naive,
            per_rank: vec![
                vec![
                    PlanPhase { copy_blocks: 0, sends: vec![msg(1, vec![0], 0)], recvs: vec![] },
                    PlanPhase::default(),
                ],
                vec![
                    PlanPhase::default(),
                    PlanPhase { copy_blocks: 0, sends: vec![], recvs: vec![msg(0, vec![0], 0)] },
                ],
            ],
            selection: None,
        };
        let e = plan.validate(&g).unwrap_err();
        assert!(matches!(e, PlanValidationError::PhaseSkew { src: 0, dst: 1, tag: 0, .. }), "{e}");
    }

    #[test]
    fn transit_blocks_are_allowed() {
        // 0 -> 1 -> 2 relay of block 0 where only edge (0,2) exists:
        // rank 1 holds block 0 in transit without consuming it
        let g = Topology::from_edges(3, [(0, 2)]);
        let plan = CollectivePlan {
            algorithm: Algorithm::DistanceHalving,
            per_rank: vec![
                vec![
                    PlanPhase { copy_blocks: 1, sends: vec![msg(1, vec![0], 0)], recvs: vec![] },
                    PlanPhase::default(),
                ],
                vec![
                    PlanPhase { copy_blocks: 0, sends: vec![], recvs: vec![msg(0, vec![0], 0)] },
                    PlanPhase { copy_blocks: 0, sends: vec![msg(2, vec![0], 1)], recvs: vec![] },
                ],
                vec![
                    PlanPhase::default(),
                    PlanPhase { copy_blocks: 0, sends: vec![], recvs: vec![msg(1, vec![0], 1)] },
                ],
            ],
            selection: None,
        };
        plan.validate(&g).unwrap();
    }

    #[test]
    fn algorithm_display() {
        assert_eq!(Algorithm::Naive.to_string(), "naive");
        assert_eq!(Algorithm::CommonNeighbor { k: 4 }.to_string(), "common-neighbor(k=4)");
        assert_eq!(Algorithm::DistanceHalving.to_string(), "distance-halving");
    }
}
