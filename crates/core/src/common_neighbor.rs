//! The Common Neighbor message-combining baseline
//! (Ghazimirsaeed, Mirsadeghi & Afsahi, IPDPS 2019).
//!
//! Ranks are partitioned into groups of `K` consecutive ranks (which,
//! under block placement, co-locates a group on one socket for `K ≤ L`).
//! For every *common outgoing neighbor* of a group — a target that two or
//! more group members send to — one member is designated the **leader**
//! for that target and delivers a single combined message on everyone's
//! behalf. Targets with a single source in the group keep their direct
//! send.
//!
//! The plan has two communication phases plus a copy epilogue:
//!
//! 1. **intra-group distribution** — each member sends its block to every
//!    group mate that leads at least one combined message containing it;
//! 2. **delivery** — leaders send combined messages, everyone sends their
//!    remaining direct messages;
//! 3. epilogue — scatter of combined payloads into the receive buffer.
//!
//! Leaders are assigned round-robin over a target's sharers (by target
//! index) so the relay load spreads across the group — the paper sweeps
//! `K` and reports the best, which `crate::comm` mirrors.

use crate::plan::{Algorithm, CollectivePlan, PlanPhase, PlannedMsg};
use nhood_topology::{Rank, Topology};

/// Builds a Common Neighbor plan with groups of `k`.
///
/// # Panics
/// Panics if `k == 0`.
pub fn plan_common_neighbor(graph: &Topology, k: usize) -> CollectivePlan {
    assert!(k > 0, "group size must be positive");
    let n = graph.n();
    let group_of = |r: Rank| r / k;
    let n_groups = n.div_ceil(k);

    // For every (group, target): the sharers (group members with an edge
    // to target).
    // sharers[g] : target -> Vec<member>
    let mut sharers: Vec<std::collections::BTreeMap<Rank, Vec<Rank>>> =
        vec![std::collections::BTreeMap::new(); n_groups];
    for r in 0..n {
        let g = group_of(r);
        for &t in graph.out_neighbors(r) {
            sharers[g].entry(t).or_default().push(r);
        }
    }

    // Phase-0 needs: member -> set of leaders that relay its block.
    let mut needs: Vec<std::collections::BTreeSet<Rank>> = vec![Default::default(); n];
    // Phase-1 messages: sender -> (target -> blocks)
    let mut deliveries: Vec<std::collections::BTreeMap<Rank, Vec<Rank>>> =
        vec![Default::default(); n];

    // Pass 1: pick leaders for common neighbors and record which leaders
    // need which members' blocks.
    for (g, shared) in sharers.iter().enumerate() {
        for (&target, members) in shared {
            if members.len() >= 2 && group_of(target) != g {
                // common neighbor: combine under a round-robin leader
                let leader = members[target % members.len()];
                for &m in members {
                    if m != leader {
                        needs[m].insert(leader);
                    }
                }
                deliveries[leader].entry(target).or_default().extend(members.iter().copied());
            }
        }
    }
    // Pass 2: direct sends for everything not combined — unless the
    // target is a leader that already receives the block in phase 0 (the
    // intra-group copy doubles as the delivery).
    for (g, shared) in sharers.iter().enumerate() {
        for (&target, members) in shared {
            if members.len() >= 2 && group_of(target) != g {
                continue; // combined above
            }
            for &m in members {
                if needs[m].contains(&target) {
                    continue; // delivered by the phase-0 distribution
                }
                deliveries[m].entry(target).or_default().push(m);
            }
        }
    }

    let mut per_rank: Vec<Vec<PlanPhase>> = vec![Vec::with_capacity(3); n];
    // Phase 0: intra-group distribution (tag 0).
    let mut phase0: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    for (m, leaders) in needs.iter().enumerate() {
        for &l in leaders {
            phase0[m].sends.push(PlannedMsg { peer: l, blocks: vec![m], tag: 0 });
            phase0[l].recvs.push(PlannedMsg { peer: m, blocks: vec![m], tag: 0 });
        }
    }
    for (r, ph) in phase0.into_iter().enumerate() {
        per_rank[r].push(ph);
    }

    // Phase 1: delivery (tag 1) + pack copies for combined messages.
    let mut phase1: Vec<PlanPhase> = vec![PlanPhase::default(); n];
    let mut scatter: Vec<usize> = vec![0; n];
    for (s, dels) in deliveries.iter().enumerate() {
        for (&target, blocks) in dels {
            let mut blocks = blocks.clone();
            blocks.sort_unstable();
            blocks.dedup();
            if blocks.len() > 1 {
                phase1[s].copy_blocks += blocks.len(); // pack into temp buffer
                scatter[target] += blocks.len(); // unpack at the receiver
            }
            phase1[target].recvs.push(PlannedMsg { peer: s, blocks: blocks.clone(), tag: 1 });
            phase1[s].sends.push(PlannedMsg { peer: target, blocks, tag: 1 });
        }
    }
    for (r, mut ph) in phase1.into_iter().enumerate() {
        ph.recvs.sort_by_key(|m| m.peer);
        per_rank[r].push(ph);
    }
    // Epilogue: scatter combined payloads into rbuf.
    for (r, &s) in scatter.iter().enumerate() {
        per_rank[r].push(PlanPhase { copy_blocks: s, sends: vec![], recvs: vec![] });
    }

    CollectivePlan { algorithm: Algorithm::CommonNeighbor { k }, per_rank, selection: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn validates_on_random_graphs() {
        for delta in [0.0, 0.05, 0.3, 0.7, 1.0] {
            for k in [1usize, 2, 4, 8] {
                let g = erdos_renyi(24, delta, 11);
                let plan = plan_common_neighbor(&g, k);
                plan.validate(&g).unwrap_or_else(|e| panic!("delta={delta} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn k1_degenerates_to_naive_message_count() {
        // groups of one: no common neighbors, all sends direct
        let g = erdos_renyi(20, 0.4, 2);
        let plan = plan_common_neighbor(&g, 1);
        plan.validate(&g).unwrap();
        assert_eq!(plan.message_count(), g.edge_count());
        assert_eq!(plan.max_message_blocks(), 1.min(g.edge_count()));
    }

    #[test]
    fn combining_reduces_messages_on_dense_graphs() {
        let g = erdos_renyi(32, 0.8, 5);
        let naive_msgs = g.edge_count();
        let plan = plan_common_neighbor(&g, 8);
        plan.validate(&g).unwrap();
        assert!(
            plan.message_count() < naive_msgs / 2,
            "{} vs naive {naive_msgs}",
            plan.message_count()
        );
        // but the same total payload still flows to targets, plus
        // intra-group redistribution
        assert!(plan.total_blocks_sent() >= naive_msgs);
    }

    #[test]
    fn shared_target_handled_by_one_leader() {
        // ranks 0..3 (one group, k=4) all send to rank 5
        let g = Topology::from_edges(8, [(0, 5), (1, 5), (2, 5), (3, 5)]);
        let plan = plan_common_neighbor(&g, 4);
        plan.validate(&g).unwrap();
        // rank 5 receives exactly one (combined) message
        let recvs: usize = plan.per_rank[5].iter().map(|p| p.recvs.len()).sum();
        assert_eq!(recvs, 1);
        let msg = plan.per_rank[5].iter().flat_map(|p| p.recvs.iter()).next().unwrap();
        assert_eq!(msg.blocks, vec![0, 1, 2, 3]);
        // leader is round-robin: target 5 % 4 sharers = index 1 → rank 1
        assert_eq!(msg.peer, 1);
    }

    #[test]
    fn targets_inside_group_stay_direct() {
        // 0 and 1 both send to 2; all in one group of 4
        let g = Topology::from_edges(4, [(0, 2), (1, 2)]);
        let plan = plan_common_neighbor(&g, 4);
        plan.validate(&g).unwrap();
        // no phase-0 traffic: nothing to combine across groups
        let phase0_msgs: usize = plan.per_rank.iter().map(|p| p[0].sends.len()).sum();
        assert_eq!(phase0_msgs, 0);
        assert_eq!(plan.message_count(), 2);
    }

    #[test]
    fn leader_load_spreads_round_robin() {
        // group {0,1}: both send to 10, 11, 12, 13 (distinct groups)
        let edges: Vec<(Rank, Rank)> = (10..14).flat_map(|t| [(0, t), (1, t)]).collect();
        let g = Topology::from_edges(14, edges);
        let plan = plan_common_neighbor(&g, 2);
        plan.validate(&g).unwrap();
        let loads = plan.sends_per_rank();
        // 4 combined deliveries split 2/2 between members (plus the
        // intra-group block exchanges)
        let deliveries0 = plan.per_rank[0][1].sends.len();
        let deliveries1 = plan.per_rank[1][1].sends.len();
        assert_eq!(deliveries0, 2);
        assert_eq!(deliveries1, 2);
        assert!(loads[0] > 0 && loads[1] > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn k_zero_rejected() {
        plan_common_neighbor(&Topology::from_edges(2, []), 0);
    }
}
