//! The simulated-time executor: lowers a plan onto `nhood-simnet`.
//!
//! Turns every planned message into a simulator message of
//! `blocks.len() × m` bytes and every `copy_blocks` tally into local
//! pack/copy time at a configurable memcpy bandwidth, then runs the
//! discrete-event engine to obtain the collective's latency on a modelled
//! cluster — the stand-in for the paper's wall-clock measurements
//! (Figs. 4–7).

use crate::arena::BlockArena;
use crate::exec::{check_payloads, ExecError, ExecOptions, ExecOutcome, Executor};
use crate::plan::CollectivePlan;
use nhood_cluster::{ClusterLayout, WorkerPool};
use nhood_simnet::{Engine, Msg, Phase, Schedule, SimConfig, SimError, SimReport};
use nhood_topology::Topology;

/// Cost knobs of the simulated execution.
#[derive(Clone, Copy, Debug)]
pub struct SimCost {
    /// Network configuration (Hockney levels + NIC mode).
    pub net: SimConfig,
    /// Local memcpy bandwidth (bytes/s) charged for `copy_blocks`.
    pub memcpy_bytes_per_sec: f64,
}

impl SimCost {
    /// Niagara-like defaults: the paper's testbed network plus a
    /// single-core ~5 GB/s packing bandwidth.
    pub fn niagara() -> Self {
        Self { net: SimConfig::niagara(), memcpy_bytes_per_sec: 5.0e9 }
    }
}

/// The discrete-event simulated-time backend.
///
/// Unlike [`crate::exec::Virtual`] and [`crate::exec::Threaded`], the
/// simulator moves no real bytes: [`Executor::run`] returns empty
/// receive buffers and puts the engine's [`SimReport`] (latency =
/// `report.makespan`) in [`ExecOutcome::sim`]. The message size comes
/// from [`Sim::m`] when set — so cluster-scale sizes need no real
/// payload allocation — and from the payloads otherwise. The
/// [`ExecOptions`] recorder receives every simulated message, making
/// sim telemetry directly comparable with the real executors'
/// (formerly the `simulate` vs `simulate_recorded` split).
#[derive(Clone, Debug)]
pub struct Sim {
    /// The modelled cluster.
    pub layout: ClusterLayout,
    /// Network + memcpy cost knobs.
    pub cost: SimCost,
    /// Simulated per-rank payload size in bytes; `None` derives it from
    /// the payloads passed to [`Executor::run`].
    pub m: Option<usize>,
    /// Worker threads for schedule validation, send/recv matching and
    /// cost precomputation ([`Engine::run_sharded_recorded`]). `1` (the
    /// default) runs the classic serial engine; the sharded path is
    /// bit-identical for every width, so this is purely a wall-clock
    /// knob for cluster-scale schedules.
    pub threads: usize,
}

impl Sim {
    /// A simulator for `layout` with Niagara-like costs, message size
    /// taken from the payloads.
    pub fn new(layout: ClusterLayout) -> Self {
        Self { layout, cost: SimCost::niagara(), m: None, threads: 1 }
    }

    /// Overrides the simulated message size (payload bytes are then
    /// ignored, only their count is checked if non-empty).
    pub fn message_size(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Overrides the cost model.
    pub fn cost(mut self, cost: SimCost) -> Self {
        self.cost = cost;
        self
    }

    /// Runs the engine's prepare passes on `threads` workers (`0` = one
    /// per host core). The report stays bit-identical to the serial
    /// engine's.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { WorkerPool::auto().threads() } else { threads };
        self
    }
}

impl Executor for Sim {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(
        &self,
        plan: &CollectivePlan,
        _graph: &Topology,
        payloads: &[Vec<u8>],
        _arena: &mut BlockArena,
        opts: &ExecOptions<'_>,
    ) -> Result<ExecOutcome, ExecError> {
        let schedule = if opts.ragged {
            if payloads.len() != plan.n() {
                return Err(ExecError::PayloadCountMismatch {
                    got: payloads.len(),
                    want: plan.n(),
                });
            }
            let sizes: Vec<usize> = payloads.iter().map(Vec::len).collect();
            to_schedule_v(plan, &sizes, &self.cost)
        } else {
            let m = match self.m {
                Some(m) => m,
                None => check_payloads(payloads, plan.n())?,
            };
            to_schedule(plan, m, &self.cost)
        };
        let engine = Engine::new(&self.layout, self.cost.net);
        let report = if self.threads > 1 {
            let pool = WorkerPool::new(self.threads);
            engine.run_sharded_recorded(&schedule, &pool, opts.recorder)
        } else {
            engine.run_recorded(&schedule, opts.recorder)
        }
        .map_err(|e| ExecError::SimFailed { msg: e.to_string() })?;
        Ok(ExecOutcome { sim: Some(report), ..ExecOutcome::default() })
    }
}

/// Lowers `plan` to a simulator [`Schedule`] for per-rank payload size
/// `m` bytes.
pub fn to_schedule(plan: &CollectivePlan, m: usize, cost: &SimCost) -> Schedule {
    let n = plan.n();
    let mut s = Schedule::new(n);
    for (r, prog) in plan.per_rank.iter().enumerate() {
        for phase in prog {
            let sends = phase
                .sends
                .iter()
                .map(|msg| Msg { src: r, dst: msg.peer, bytes: msg.blocks.len() * m, tag: msg.tag })
                .collect();
            let recvs = phase
                .recvs
                .iter()
                .map(|msg| Msg { src: msg.peer, dst: r, bytes: msg.blocks.len() * m, tag: msg.tag })
                .collect();
            s.push_phase(
                r,
                Phase {
                    local_seconds: phase.copy_blocks as f64 * m as f64 / cost.memcpy_bytes_per_sec,
                    sends,
                    recvs,
                },
            );
        }
    }
    s
}

/// Simulates `plan` at message size `m` on `layout` and returns the
/// engine's report (latency = `report.makespan`).
pub fn simulate(
    plan: &CollectivePlan,
    layout: &ClusterLayout,
    m: usize,
    cost: &SimCost,
) -> Result<SimReport, SimError> {
    let schedule = to_schedule(plan, m, cost);
    Engine::new(layout, cost.net).run(&schedule)
}

/// Like [`simulate`], but also replays every simulated message into
/// `rec` (see [`Engine::run_recorded`]): counters tally one
/// message/byte pair per planned transfer and span recorders get a
/// simulated-time track per rank, making the sim backend's telemetry
/// directly comparable with the virtual and threaded executors'.
#[deprecated(note = "use `Sim { .. }.run(...)` with `ExecOptions::new().recorder(...)`")]
pub fn simulate_recorded(
    plan: &CollectivePlan,
    layout: &ClusterLayout,
    m: usize,
    cost: &SimCost,
    rec: &dyn nhood_telemetry::Recorder,
) -> Result<SimReport, SimError> {
    let schedule = to_schedule(plan, m, cost);
    Engine::new(layout, cost.net).run_recorded(&schedule, rec)
}

/// Lowers `plan` to a schedule with *per-rank* payload sizes — the
/// `neighbor_allgatherv` variant. A message's bytes are the sum of its
/// blocks' sizes; copy charges use the mean block size (the plan records
/// copy *counts*, not which blocks — an approximation that matters only
/// for highly skewed payloads).
pub fn to_schedule_v(plan: &CollectivePlan, sizes: &[usize], cost: &SimCost) -> Schedule {
    let n = plan.n();
    assert_eq!(sizes.len(), n, "need one payload size per rank");
    let mean = if n == 0 { 0.0 } else { sizes.iter().sum::<usize>() as f64 / n as f64 };
    let mut s = Schedule::new(n);
    for (r, prog) in plan.per_rank.iter().enumerate() {
        for phase in prog {
            let bytes_of = |blocks: &[nhood_topology::Rank]| -> usize {
                blocks.iter().map(|&b| sizes[b]).sum()
            };
            let sends = phase
                .sends
                .iter()
                .map(|msg| Msg {
                    src: r,
                    dst: msg.peer,
                    bytes: bytes_of(&msg.blocks),
                    tag: msg.tag,
                })
                .collect();
            let recvs = phase
                .recvs
                .iter()
                .map(|msg| Msg {
                    src: msg.peer,
                    dst: r,
                    bytes: bytes_of(&msg.blocks),
                    tag: msg.tag,
                })
                .collect();
            s.push_phase(
                r,
                Phase {
                    local_seconds: phase.copy_blocks as f64 * mean / cost.memcpy_bytes_per_sec,
                    sends,
                    recvs,
                },
            );
        }
    }
    s
}

/// Simulates `plan` with per-rank payload sizes (`neighbor_allgatherv`).
pub fn simulate_v(
    plan: &CollectivePlan,
    layout: &ClusterLayout,
    sizes: &[usize],
    cost: &SimCost,
) -> Result<SimReport, SimError> {
    let schedule = to_schedule_v(plan, sizes, cost);
    Engine::new(layout, cost.net).run(&schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::common_neighbor::plan_common_neighbor;
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::HockneyParams;
    use nhood_simnet::NicMode;
    use nhood_topology::random::erdos_renyi;

    fn flat_cost(alpha: f64, bw: f64) -> SimCost {
        SimCost {
            net: SimConfig::classic(HockneyParams::flat(alpha, bw), NicMode::Off),
            memcpy_bytes_per_sec: f64::INFINITY,
        }
    }

    #[test]
    fn schedule_mirrors_plan() {
        let g = erdos_renyi(16, 0.4, 3);
        let layout = ClusterLayout::new(2, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let s = to_schedule(&plan, 64, &SimCost::niagara());
        s.validate().unwrap();
        assert_eq!(s.message_count(), plan.message_count());
        assert_eq!(s.total_bytes(), plan.total_blocks_sent() * 64);
    }

    #[test]
    fn all_three_algorithms_simulate() {
        let g = erdos_renyi(36, 0.3, 5);
        let layout = ClusterLayout::new(3, 2, 6);
        let cost = SimCost::niagara();
        for plan in [
            plan_naive(&g),
            plan_common_neighbor(&g, 4),
            lower(&build_pattern(&g, &layout).unwrap(), &g),
        ] {
            let rep = simulate(&plan, &layout, 1024, &cost).unwrap();
            assert!(rep.makespan > 0.0);
            assert_eq!(rep.per_rank_finish.len(), 36);
        }
    }

    #[test]
    fn naive_latency_tracks_closed_form_on_flat_network() {
        // On a flat no-NIC network, naive latency for the busiest rank is
        // ≈ (outdeg + indeg) (α + m/β); the makespan is the max over
        // ranks up to scheduling interleave.
        let g = erdos_renyi(24, 0.5, 7);
        let layout = ClusterLayout::new(1, 1, 24);
        let cost = flat_cost(1e-6, 1e9);
        let m = 4096;
        let rep = simulate(&plan_naive(&g), &layout, m, &cost).unwrap();
        let t = 1e-6 + m as f64 / 1e9;
        let busiest = (0..24).map(|r| g.outdegree(r) + g.indegree(r)).max().unwrap() as f64;
        assert!(rep.makespan >= busiest * t * 0.9, "{} vs {}", rep.makespan, busiest * t);
        // all traffic is serialized somewhere, so it cannot beat the
        // total-edge bound either
        let total = 2.0 * g.edge_count() as f64 * t;
        assert!(rep.makespan <= total, "{} vs bound {total}", rep.makespan);
    }

    #[test]
    fn dh_beats_naive_on_dense_small_messages() {
        // The paper's headline regime: dense graph, small messages,
        // multi-node cluster → DH wins by cutting message count.
        let g = erdos_renyi(64, 0.5, 11);
        let layout = ClusterLayout::new(4, 2, 8); // L=8
        let cost = SimCost::niagara();
        let m = 64;
        let naive = simulate(&plan_naive(&g), &layout, m, &cost).unwrap();
        let dh_plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let dh = simulate(&dh_plan, &layout, m, &cost).unwrap();
        assert!(
            dh.makespan < naive.makespan,
            "DH {} should beat naive {}",
            dh.makespan,
            naive.makespan
        );
        // and it does so with far fewer inter-node messages
        assert!(dh.stats.internode_msgs() < naive.stats.internode_msgs() / 2);
    }

    #[test]
    fn recorded_sim_matches_plan_statics() {
        let g = erdos_renyi(16, 0.4, 3);
        let layout = ClusterLayout::new(2, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let m = 64;
        let rec = nhood_telemetry::CountingRecorder::new(plan.n());
        let sim = Sim::new(layout).message_size(m);
        let out = sim
            .run(&plan, &g, &[], &mut BlockArena::new(), &ExecOptions::new().recorder(&rec))
            .unwrap();
        let rep = out.sim.expect("sim backend must return a report");
        assert!(out.rbufs.is_empty(), "sim moves no real bytes");
        assert!(rep.makespan > 0.0);
        let totals = rec.totals();
        assert_eq!(totals.msgs_sent as usize, plan.message_count());
        assert_eq!(totals.msgs_recvd as usize, plan.message_count());
        assert_eq!(totals.bytes_sent as usize, plan.total_blocks_sent() * m);
        assert_eq!(totals.bytes_recvd as usize, plan.total_blocks_sent() * m);
    }

    #[test]
    fn trait_run_agrees_with_free_functions() {
        let g = erdos_renyi(24, 0.4, 6);
        let layout = ClusterLayout::new(2, 2, 6);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let cost = SimCost::niagara();
        let m = 4096;
        let direct = simulate(&plan, &layout, m, &cost).unwrap();
        let sim = Sim::new(layout.clone()).message_size(m).cost(cost);
        let via_trait = sim
            .run(&plan, &g, &[], &mut BlockArena::new(), &ExecOptions::default())
            .unwrap()
            .sim
            .unwrap();
        assert_eq!(via_trait.makespan, direct.makespan);

        // ragged: sizes derived from real payloads
        let payloads: Vec<Vec<u8>> = (0..24).map(|r| vec![0u8; 16 + r]).collect();
        let sizes: Vec<usize> = payloads.iter().map(Vec::len).collect();
        let direct_v = simulate_v(&plan, &layout, &sizes, &cost).unwrap();
        let via_trait_v = sim
            .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::new().ragged(true))
            .unwrap()
            .sim
            .unwrap();
        assert_eq!(via_trait_v.makespan, direct_v.makespan);
    }

    #[test]
    fn derives_message_size_from_payloads_when_unset() {
        let g = erdos_renyi(12, 0.5, 4);
        let layout = ClusterLayout::new(2, 2, 3);
        let plan = plan_naive(&g);
        let payloads: Vec<Vec<u8>> = vec![vec![0u8; 256]; 12];
        let sim = Sim::new(layout.clone());
        let got = sim
            .run(&plan, &g, &payloads, &mut BlockArena::new(), &ExecOptions::default())
            .unwrap()
            .sim
            .unwrap();
        let want = simulate(&plan, &layout, 256, &SimCost::niagara()).unwrap();
        assert_eq!(got.makespan, want.makespan);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_simulate_recorded_still_works() {
        let g = erdos_renyi(12, 0.4, 1);
        let layout = ClusterLayout::new(2, 2, 3);
        let plan = plan_naive(&g);
        let rec = nhood_telemetry::CountingRecorder::new(12);
        let rep = simulate_recorded(&plan, &layout, 64, &SimCost::niagara(), &rec).unwrap();
        assert!(rep.makespan > 0.0);
        assert_eq!(rec.totals().msgs_sent as usize, plan.message_count());
    }

    #[test]
    fn threaded_sim_is_bit_identical_to_serial() {
        let g = erdos_renyi(48, 0.3, 9);
        let layout = ClusterLayout::new(4, 2, 6);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let serial = Sim::new(layout.clone()).message_size(512);
        let sharded = Sim::new(layout).message_size(512).threads(4);
        let a = serial
            .run(&plan, &g, &[], &mut BlockArena::new(), &ExecOptions::default())
            .unwrap()
            .sim
            .unwrap();
        let b = sharded
            .run(&plan, &g, &[], &mut BlockArena::new(), &ExecOptions::default())
            .unwrap()
            .sim
            .unwrap();
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        for (x, y) in a.per_rank_finish.iter().zip(&b.per_rank_finish) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn memcpy_cost_is_charged() {
        let g = erdos_renyi(16, 0.5, 2);
        let layout = ClusterLayout::new(2, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let fast = SimCost { memcpy_bytes_per_sec: f64::INFINITY, ..SimCost::niagara() };
        let slow = SimCost { memcpy_bytes_per_sec: 1e8, ..SimCost::niagara() };
        let m = 1 << 20;
        let t_fast = simulate(&plan, &layout, m, &fast).unwrap().makespan;
        let t_slow = simulate(&plan, &layout, m, &slow).unwrap().makespan;
        assert!(t_slow > t_fast, "copies must cost time: {t_slow} vs {t_fast}");
    }

    #[test]
    fn zero_size_messages_cost_only_latency() {
        let g = erdos_renyi(8, 0.5, 1);
        let layout = ClusterLayout::new(1, 1, 8);
        let cost = flat_cost(1e-6, 1e9);
        let rep = simulate(&plan_naive(&g), &layout, 0, &cost).unwrap();
        assert!(rep.makespan > 0.0);
        assert!(rep.makespan < 2.0 * g.edge_count() as f64 * 1.1e-6);
    }
}
