//! Plan executors.
//!
//! Three backends run a [`crate::plan::CollectivePlan`]:
//!
//! * [`virtual_exec`] — deterministic sequential execution with real byte
//!   buffers; scales to thousands of ranks and is the correctness oracle;
//! * [`threaded`] — one OS thread per rank with real channels and real
//!   copies, exercising the plan under true concurrency (bounded rank
//!   counts);
//! * [`sim_exec`] — lowers the plan onto the `nhood-simnet` discrete-event
//!   engine to obtain cluster-scale latencies at any message size.
//!
//! All backends consume the same plan, so agreement between them is a
//! meaningful cross-check (and is property-tested in the workspace
//! integration suite).

pub mod sim_exec;
pub mod threaded;
pub mod virtual_exec;

use crate::plan::{Algorithm, CollectivePlan};
use nhood_topology::Rank;

/// The telemetry label for phase `k` of `plan` (see
/// `nhood_telemetry::labels`). Distance Halving plans are lock-step:
/// phases `0..max_steps` are halving steps, then one mostly-intra-socket
/// final exchange and a copy-only epilogue; other algorithms have no
/// halving structure and get the generic label.
pub fn phase_label(plan: &CollectivePlan, k: usize) -> &'static str {
    match plan.algorithm {
        Algorithm::DistanceHalving if k + 2 < plan.phase_count() => {
            nhood_telemetry::labels::HALVING_STEP
        }
        Algorithm::DistanceHalving => nhood_telemetry::labels::INTRA_SOCKET,
        _ => nhood_telemetry::labels::PHASE,
    }
}

/// Execution failure, shared by the virtual and threaded backends.
#[derive(Debug, PartialEq, Eq)]
pub enum ExecError {
    /// `payloads.len()` does not match the plan's rank count.
    PayloadCountMismatch {
        /// Payload vectors supplied.
        got: usize,
        /// Ranks in the plan.
        want: usize,
    },
    /// Payload blocks must all have the same byte length.
    PayloadSizeMismatch {
        /// Offending rank.
        rank: Rank,
        /// Its payload length.
        got: usize,
        /// Expected length (rank 0's).
        want: usize,
    },
    /// A rank tried to send a block it never received.
    MissingBlock {
        /// Sending rank.
        rank: Rank,
        /// Missing block.
        block: Rank,
        /// Phase index.
        phase: usize,
    },
    /// After the plan ran, a rank was missing an in-neighbor's block.
    Undelivered {
        /// Receiving rank.
        rank: Rank,
        /// The in-neighbor whose block never arrived.
        block: Rank,
    },
    /// A threaded rank timed out waiting for a message (deadlocked or
    /// lost message).
    Timeout {
        /// The stuck rank.
        rank: Rank,
        /// Phase it was stuck in.
        phase: usize,
    },
    /// A rank thread panicked.
    WorkerPanic {
        /// The rank whose thread died.
        rank: Rank,
    },
    /// A rank exceeded its per-phase wall-clock deadline (see
    /// [`threaded::ThreadedConfig::phase_deadline`]).
    PhaseDeadline {
        /// The rank that blew its budget.
        rank: Rank,
        /// Phase it was in.
        phase: usize,
    },
    /// The fault plan crashed this rank before the given phase (see
    /// [`crate::fault::FaultPlan::with_crashed_rank`]).
    RankCrashed {
        /// The crashed rank.
        rank: Rank,
        /// The phase at whose entry it died.
        phase: usize,
    },
}

impl ExecError {
    /// `true` for the liveness-failure family — errors that mean "a rank
    /// stopped making progress" (timeout, blown deadline, injected
    /// crash) rather than a malformed plan or payload. Chaos tests
    /// accept any of these as the correct outcome of an unsurvivable
    /// fault schedule; what they must never observe is a hang or a
    /// silently-corrupted buffer.
    pub fn is_timeout_class(&self) -> bool {
        matches!(
            self,
            ExecError::Timeout { .. }
                | ExecError::PhaseDeadline { .. }
                | ExecError::RankCrashed { .. }
        )
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PayloadCountMismatch { got, want } => {
                write!(f, "got {got} payloads for {want} ranks")
            }
            ExecError::PayloadSizeMismatch { rank, got, want } => {
                write!(f, "rank {rank} payload is {got} bytes, expected {want}")
            }
            ExecError::MissingBlock { rank, block, phase } => {
                write!(f, "rank {rank} does not hold block {block} at phase {phase}")
            }
            ExecError::Undelivered { rank, block } => {
                write!(f, "rank {rank} never received in-neighbor {block}'s block")
            }
            ExecError::Timeout { rank, phase } => {
                write!(f, "rank {rank} timed out in phase {phase}")
            }
            ExecError::WorkerPanic { rank } => write!(f, "rank {rank} worker panicked"),
            ExecError::PhaseDeadline { rank, phase } => {
                write!(f, "rank {rank} exceeded the phase deadline in phase {phase}")
            }
            ExecError::RankCrashed { rank, phase } => {
                write!(f, "rank {rank} crashed at entry to phase {phase}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Validates the payload array shape shared by both real executors.
/// Returns the uniform block size `m` (0 for an empty communicator).
pub(crate) fn check_payloads(payloads: &[Vec<u8>], n: usize) -> Result<usize, ExecError> {
    if payloads.len() != n {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: n });
    }
    let m = payloads.first().map_or(0, Vec::len);
    for (rank, p) in payloads.iter().enumerate() {
        if p.len() != m {
            return Err(ExecError::PayloadSizeMismatch { rank, got: p.len(), want: m });
        }
    }
    Ok(m)
}
