//! Plan executors.
//!
//! Three backends run a [`crate::plan::CollectivePlan`]:
//!
//! * [`virtual_exec`] — deterministic sequential execution with real byte
//!   buffers; scales to thousands of ranks and is the correctness oracle;
//! * [`threaded`] — one OS thread per rank with real channels and real
//!   copies, exercising the plan under true concurrency (bounded rank
//!   counts);
//! * [`sim_exec`] — lowers the plan onto the `nhood-simnet` discrete-event
//!   engine to obtain cluster-scale latencies at any message size.
//!
//! All backends consume the same plan, so agreement between them is a
//! meaningful cross-check (and is property-tested in the workspace
//! integration suite).

pub mod sim_exec;
pub mod threaded;
pub mod virtual_exec;

use crate::arena::BlockArena;
use crate::fault::{FaultCounts, FaultPlan, FaultStats};
use crate::plan::{Algorithm, CollectivePlan};
use nhood_simnet::SimReport;
use nhood_telemetry::{Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::time::Duration;

pub use sim_exec::Sim;
pub use threaded::Threaded;
pub use virtual_exec::Virtual;

/// The telemetry label for phase `k` of `plan` (see
/// `nhood_telemetry::labels`). Distance Halving plans are lock-step:
/// phases `0..max_steps` are halving steps, then one mostly-intra-socket
/// final exchange and a copy-only epilogue; other algorithms have no
/// halving structure and get the generic label.
pub fn phase_label(plan: &CollectivePlan, k: usize) -> &'static str {
    match plan.algorithm {
        Algorithm::DistanceHalving if k + 2 < plan.phase_count() => {
            nhood_telemetry::labels::HALVING_STEP
        }
        Algorithm::DistanceHalving => nhood_telemetry::labels::INTRA_SOCKET,
        _ => nhood_telemetry::labels::PHASE,
    }
}

/// How payload bytes are stored and moved during execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecEngine {
    /// Zero-copy path: one flat buffer per rank with a precomputed
    /// offset table (see [`crate::arena`]). Serves uniform and ragged
    /// (`allgatherv`) payloads alike — ragged runs resolve slot runs
    /// through per-rank byte-extent tables.
    #[default]
    Arena,
    /// Legacy path: every block is an `Arc`-shared `Vec<u8>` in a
    /// per-rank hash map. Kept as the comparison baseline.
    PerBlock,
}

/// Execution parameters shared by every [`Executor`] backend, built
/// fluently:
///
/// ```
/// use nhood_core::exec::{ExecEngine, ExecOptions};
/// use std::time::Duration;
///
/// let opts = ExecOptions::new()
///     .recv_timeout(Duration::from_secs(2))
///     .engine(ExecEngine::Arena);
/// assert_eq!(opts.recv_timeout, Duration::from_secs(2));
/// ```
///
/// `Default` matches the historical behaviour of the old free functions:
/// 10 s receive timeout, no phase deadline, no faults, a null recorder,
/// uniform payloads, arena engine.
#[derive(Clone, Copy)]
pub struct ExecOptions<'a> {
    /// How long one blocked receive may wait before erroring (threaded
    /// backend only).
    pub recv_timeout: Duration,
    /// Wall-clock budget for one whole phase; `None` disables the
    /// deadline (threaded backend only).
    pub phase_deadline: Option<Duration>,
    /// Retransmission attempts per message when the fault plan drops it.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Fault schedule consulted at every send; `None` injects nothing.
    pub fault: Option<&'a FaultPlan>,
    /// Telemetry sink; defaults to the no-op [`nhood_telemetry::NULL`].
    pub recorder: &'a dyn Recorder,
    /// `true` accepts per-rank payloads of different lengths (the
    /// `neighbor_allgatherv` semantics). Served by either engine.
    pub ragged: bool,
    /// Which data-movement engine to run.
    pub engine: ExecEngine,
    /// Worker threads for plan construction when a caller on this
    /// options struct has to (re)build a plan — the persistent
    /// collective's `init_with` path. `0` inherits the communicator's
    /// build pool; executors themselves never build plans.
    pub build_threads: usize,
    /// External fault-tally sink. When set, the threaded backend counts
    /// into this shared [`FaultStats`] instead of a run-local one, so
    /// the faults a *failed* run injected survive the `Err` (an
    /// [`ExecError`] carries no counters) and can be merged into the
    /// caller's report — the robust fallback path relies on this.
    pub fault_sink: Option<&'a FaultStats>,
    /// The collective this execution serves. Executors of a
    /// [`CollectivePlan`] run the allgather family regardless, but the
    /// tag travels with the options so recorders and diagnostics can
    /// attribute a run to the request that triggered it.
    pub op: crate::collective::CollectiveOp,
}

impl std::fmt::Debug for ExecOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("recv_timeout", &self.recv_timeout)
            .field("phase_deadline", &self.phase_deadline)
            .field("max_retries", &self.max_retries)
            .field("backoff_base", &self.backoff_base)
            .field("fault", &self.fault)
            .field("ragged", &self.ragged)
            .field("engine", &self.engine)
            .field("build_threads", &self.build_threads)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

impl Default for ExecOptions<'_> {
    fn default() -> Self {
        Self {
            recv_timeout: threaded::DEFAULT_TIMEOUT,
            phase_deadline: None,
            max_retries: 4,
            backoff_base: Duration::from_micros(200),
            fault: None,
            recorder: &NULL,
            ragged: false,
            engine: ExecEngine::Arena,
            build_threads: 0,
            fault_sink: None,
            op: crate::collective::CollectiveOp::Allgather,
        }
    }
}

impl<'a> ExecOptions<'a> {
    /// The defaults (see type-level docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-receive timeout.
    pub fn recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Sets (or clears) the per-phase wall-clock deadline.
    pub fn phase_deadline(mut self, d: Option<Duration>) -> Self {
        self.phase_deadline = d;
        self
    }

    /// Sets the retry budget and first backoff.
    pub fn retries(mut self, max: u32, backoff_base: Duration) -> Self {
        self.max_retries = max;
        self.backoff_base = backoff_base;
        self
    }

    /// Attaches a fault schedule.
    pub fn fault(mut self, fp: &'a FaultPlan) -> Self {
        self.fault = Some(fp);
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, rec: &'a dyn Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Accepts ragged (`allgatherv`) payloads.
    pub fn ragged(mut self, ragged: bool) -> Self {
        self.ragged = ragged;
        self
    }

    /// Selects the data-movement engine.
    pub fn engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the plan-construction worker count (`0` = inherit the
    /// communicator's build pool).
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// Routes fault tallies into an external [`FaultStats`], preserving
    /// them across a failed run.
    pub fn fault_sink(mut self, sink: &'a FaultStats) -> Self {
        self.fault_sink = Some(sink);
        self
    }

    /// Tags the options with the collective op this execution serves.
    pub fn op(mut self, op: crate::collective::CollectiveOp) -> Self {
        self.op = op;
        self
    }

    /// The engine that will actually run. (Historically ragged payloads
    /// forced [`ExecEngine::PerBlock`]; the arena engine now serves them
    /// through byte-extent tables, so this is simply the configured
    /// engine.)
    pub fn effective_engine(&self) -> ExecEngine {
        self.engine
    }
}

/// What an [`Executor::run`] produced.
#[derive(Clone, Debug, Default)]
pub struct ExecOutcome {
    /// Per-rank receive buffers: each rank's in-neighbor payloads
    /// concatenated in `in_neighbors` order. Empty for the simulated
    /// backend (which moves no real bytes).
    pub rbufs: Vec<Vec<u8>>,
    /// Faults injected and retries spent (all zero without a fault
    /// plan; always zero on the virtual and simulated backends).
    pub faults: FaultCounts,
    /// The simulator's report (`Some` only for [`Sim`]).
    pub sim: Option<SimReport>,
}

/// A plan-execution backend behind one uniform call.
///
/// The three implementations — [`Virtual`] (sequential oracle),
/// [`Threaded`] (one OS thread per rank) and [`Sim`] (discrete-event
/// simulated time) — replace the nine historical free functions
/// (`run_virtual{,_rec,_v,_v_rec}`, `run_threaded{,_v,_with_timeout,
/// _cfg,_cfg_v}`), which survive as thin deprecated wrappers. See
/// `docs/EXECUTION_API.md` for the migration table.
pub trait Executor {
    /// A short backend name for logs and bench labels.
    fn name(&self) -> &'static str;

    /// Executes `plan` over `payloads`, using `arena` as the reusable
    /// zero-copy workspace (layout cache + flat buffers; ignored by the
    /// per-block engine and the simulated backend).
    fn run(
        &self,
        plan: &CollectivePlan,
        graph: &Topology,
        payloads: &[Vec<u8>],
        arena: &mut BlockArena,
        opts: &ExecOptions<'_>,
    ) -> Result<ExecOutcome, ExecError>;

    /// Convenience wrapper: default options, throwaway arena, receive
    /// buffers only.
    fn run_simple(
        &self,
        plan: &CollectivePlan,
        graph: &Topology,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        self.run(plan, graph, payloads, &mut BlockArena::new(), &ExecOptions::default())
            .map(|o| o.rbufs)
    }
}

/// Execution failure, shared by the virtual and threaded backends.
#[derive(Debug, PartialEq, Eq)]
pub enum ExecError {
    /// `payloads.len()` does not match the plan's rank count.
    PayloadCountMismatch {
        /// Payload vectors supplied.
        got: usize,
        /// Ranks in the plan.
        want: usize,
    },
    /// Payload blocks must all have the same byte length.
    PayloadSizeMismatch {
        /// Offending rank.
        rank: Rank,
        /// Its payload length.
        got: usize,
        /// Expected length (rank 0's).
        want: usize,
    },
    /// A rank tried to send a block it never received.
    MissingBlock {
        /// Sending rank.
        rank: Rank,
        /// Missing block.
        block: Rank,
        /// Phase index.
        phase: usize,
    },
    /// After the plan ran, a rank was missing an in-neighbor's block.
    Undelivered {
        /// Receiving rank.
        rank: Rank,
        /// The in-neighbor whose block never arrived.
        block: Rank,
    },
    /// A threaded rank timed out waiting for a message (deadlocked or
    /// lost message).
    Timeout {
        /// The stuck rank.
        rank: Rank,
        /// Phase it was stuck in.
        phase: usize,
    },
    /// A rank thread panicked.
    WorkerPanic {
        /// The rank whose thread died.
        rank: Rank,
    },
    /// A rank exceeded its per-phase wall-clock deadline (see
    /// [`threaded::ThreadedConfig::phase_deadline`]).
    PhaseDeadline {
        /// The rank that blew its budget.
        rank: Rank,
        /// Phase it was in.
        phase: usize,
    },
    /// The fault plan crashed this rank before the given phase (see
    /// [`crate::fault::FaultPlan::with_crashed_rank`]).
    RankCrashed {
        /// The crashed rank.
        rank: Rank,
        /// The phase at whose entry it died.
        phase: usize,
    },
    /// The simulated backend failed (schedule validation or engine
    /// error), carried as a message because `nhood-simnet` errors live
    /// in another crate.
    SimFailed {
        /// The simulator's error text.
        msg: String,
    },
    /// A send hit a dead link (see
    /// [`crate::fault::FaultPlan::with_link_down`]). Unretryable at the
    /// transport level: the caller must repair the plan around the edge
    /// (or fall back) and re-execute.
    LinkDown {
        /// Sending rank of the refused message.
        src: Rank,
        /// Receiving rank of the refused message.
        dst: Rank,
        /// Phase in which the send was attempted.
        phase: usize,
    },
}

impl ExecError {
    /// `true` for the liveness-failure family — errors that mean "a rank
    /// stopped making progress" (timeout, blown deadline, injected
    /// crash) rather than a malformed plan or payload. Chaos tests
    /// accept any of these as the correct outcome of an unsurvivable
    /// fault schedule; what they must never observe is a hang or a
    /// silently-corrupted buffer.
    pub fn is_timeout_class(&self) -> bool {
        matches!(
            self,
            ExecError::Timeout { .. }
                | ExecError::PhaseDeadline { .. }
                | ExecError::RankCrashed { .. }
        )
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PayloadCountMismatch { got, want } => {
                write!(f, "got {got} payloads for {want} ranks")
            }
            ExecError::PayloadSizeMismatch { rank, got, want } => {
                write!(f, "rank {rank} payload is {got} bytes, expected {want}")
            }
            ExecError::MissingBlock { rank, block, phase } => {
                write!(f, "rank {rank} does not hold block {block} at phase {phase}")
            }
            ExecError::Undelivered { rank, block } => {
                write!(f, "rank {rank} never received in-neighbor {block}'s block")
            }
            ExecError::Timeout { rank, phase } => {
                write!(f, "rank {rank} timed out in phase {phase}")
            }
            ExecError::WorkerPanic { rank } => write!(f, "rank {rank} worker panicked"),
            ExecError::PhaseDeadline { rank, phase } => {
                write!(f, "rank {rank} exceeded the phase deadline in phase {phase}")
            }
            ExecError::RankCrashed { rank, phase } => {
                write!(f, "rank {rank} crashed at entry to phase {phase}")
            }
            ExecError::SimFailed { msg } => write!(f, "simulation failed: {msg}"),
            ExecError::LinkDown { src, dst, phase } => {
                write!(f, "link {src} -> {dst} is down (send refused in phase {phase})")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Validates the payload array shape shared by both real executors.
/// Returns the uniform block size `m` (0 for an empty communicator).
pub(crate) fn check_payloads(payloads: &[Vec<u8>], n: usize) -> Result<usize, ExecError> {
    if payloads.len() != n {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: n });
    }
    let m = payloads.first().map_or(0, Vec::len);
    for (rank, p) in payloads.iter().enumerate() {
        if p.len() != m {
            return Err(ExecError::PayloadSizeMismatch { rank, got: p.len(), want: m });
        }
    }
    Ok(m)
}
