//! The threaded executor: one OS thread per rank, real channels, real
//! copies.
//!
//! Each rank runs its plan program concurrently: per phase it packs and
//! sends its messages over `std::sync::mpsc` channels, then blocks until
//! every expected message of the phase has arrived (out-of-order
//! arrivals are parked, mirroring MPI's unexpected-message queue). This
//! exercises the plan under genuine concurrency and shared-nothing
//! message passing — the closest this library gets to running the
//! collective "for real".
//!
//! # Robustness
//!
//! The executor is the primary consumer of the fault-injection layer
//! ([`crate::fault`]). [`ThreadedConfig`] carries a receive timeout, an
//! optional per-phase deadline, a retry budget with bounded exponential
//! backoff, and an optional [`FaultPlan`]. Sends traverse a small
//! reliable-transport emulation: an attempt the fault plan drops is
//! retried (with backoff) until the budget is exhausted, at which point
//! the message is lost for good and the receiver's timeout converts the
//! loss into [`ExecError::Timeout`] / [`ExecError::PhaseDeadline`]
//! instead of a hang. Crashed ranks return
//! [`ExecError::RankCrashed`]; duplicated and reordered deliveries are
//! absorbed by the tag-matched, idempotent receive path. The guarantee
//! chased by the chaos suite: **identical-to-reference buffers or a
//! typed error — never silent corruption, never a hang.**

use crate::exec::{check_payloads, phase_label, ExecError};
use crate::fault::{FaultAction, FaultCounts, FaultPlan, FaultStats};
use crate::plan::CollectivePlan;
use nhood_telemetry::{Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A packed wire message between rank threads.
struct Wire {
    src: Rank,
    tag: u64,
    /// (block id, payload bytes) pairs, in message order.
    blocks: Vec<(Rank, Arc<Vec<u8>>)>,
}

impl Wire {
    /// Cheap structural copy (payloads are shared via `Arc`) for the
    /// duplication fault.
    fn duplicate(&self) -> Self {
        Self { src: self.src, tag: self.tag, blocks: self.blocks.clone() }
    }
}

/// Default per-receive timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Execution parameters of the threaded backend. `Default` matches the
/// historical behaviour: 10 s receive timeout, no phase deadline, no
/// faults, no retries needed.
#[derive(Clone, Copy)]
pub struct ThreadedConfig<'a> {
    /// How long one blocked receive may wait before erroring.
    pub recv_timeout: Duration,
    /// Wall-clock budget for one whole phase (sends + receives). `None`
    /// disables the deadline and leaves only the per-receive timeout.
    pub phase_deadline: Option<Duration>,
    /// Retransmission attempts per message when the fault plan drops it.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt (bounded by the retry
    /// budget, so the worst-case stall is `backoff_base * (2^retries - 1)`).
    pub backoff_base: Duration,
    /// Fault schedule to consult at every send; `None` injects nothing.
    pub fault: Option<&'a FaultPlan>,
    /// Telemetry sink; the default [`nhood_telemetry::NULL`] makes every
    /// hook a no-op.
    pub recorder: &'a dyn Recorder,
}

impl std::fmt::Debug for ThreadedConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedConfig")
            .field("recv_timeout", &self.recv_timeout)
            .field("phase_deadline", &self.phase_deadline)
            .field("max_retries", &self.max_retries)
            .field("backoff_base", &self.backoff_base)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

impl Default for ThreadedConfig<'_> {
    fn default() -> Self {
        Self {
            recv_timeout: DEFAULT_TIMEOUT,
            phase_deadline: None,
            max_retries: 4,
            backoff_base: Duration::from_micros(200),
            fault: None,
            recorder: &NULL,
        }
    }
}

/// Successful threaded run: receive buffers plus the fault/retry tally.
#[derive(Clone, Debug)]
pub struct ThreadedReport {
    /// Per-rank receive buffers (in-neighbor payloads concatenated in
    /// `in_neighbors` order).
    pub rbufs: Vec<Vec<u8>>,
    /// Faults injected and retries spent during the run.
    pub faults: FaultCounts,
}

/// Executes `plan` with one thread per rank and returns each rank's
/// receive buffer (in-neighbor payloads concatenated in `in_neighbors`
/// order). Semantically identical to
/// [`run_virtual`](crate::exec::virtual_exec::run_virtual).
pub fn run_threaded(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    run_threaded_with_timeout(plan, graph, payloads, DEFAULT_TIMEOUT)
}

/// The `neighbor_allgatherv` variant of [`run_threaded`]: per-rank
/// payloads may differ in length.
pub fn run_threaded_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    run_inner(plan, graph, payloads, &ThreadedConfig::default()).map(|r| r.rbufs)
}

/// [`run_threaded`] with an explicit receive timeout (tests use short
/// ones to probe failure handling).
pub fn run_threaded_with_timeout(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    timeout: Duration,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let cfg = ThreadedConfig { recv_timeout: timeout, ..ThreadedConfig::default() };
    run_threaded_cfg(plan, graph, payloads, &cfg).map(|r| r.rbufs)
}

/// The fully-configurable entry point: explicit timeouts, retry policy
/// and optional fault injection. Uniform payload sizes are enforced (use
/// [`run_threaded_cfg_v`] for ragged payloads).
pub fn run_threaded_cfg(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    cfg: &ThreadedConfig<'_>,
) -> Result<ThreadedReport, ExecError> {
    check_payloads(payloads, plan.n())?;
    run_inner(plan, graph, payloads, cfg)
}

/// Ragged-payload variant of [`run_threaded_cfg`].
pub fn run_threaded_cfg_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    cfg: &ThreadedConfig<'_>,
) -> Result<ThreadedReport, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    run_inner(plan, graph, payloads, cfg)
}

/// Sends `wire` to `dst`, consulting the fault plan per attempt. A
/// dropped attempt is retried after bounded exponential backoff until
/// the budget runs out; then the message is abandoned (the receiver's
/// timeout surfaces the loss as a typed error).
fn transport_send(
    senders: &[Sender<Wire>],
    dst: Rank,
    wire: Wire,
    cfg: &ThreadedConfig<'_>,
    stats: &FaultStats,
) {
    // one logical message per call, however many attempts it takes
    cfg.recorder.msg_sent(wire.src, dst, wire.blocks.iter().map(|(_, d)| d.len()).sum());
    let Some(fp) = cfg.fault else {
        // a send can only fail if the peer already exited on error; the
        // peer's error is the root cause
        let _ = senders[dst].send(wire);
        return;
    };
    let mut attempt: u32 = 0;
    loop {
        match fp.send_action(wire.src, dst, wire.tag, attempt) {
            FaultAction::Deliver => {
                let _ = senders[dst].send(wire);
                return;
            }
            FaultAction::Duplicate => {
                FaultStats::bump(&stats.duplicates);
                let _ = senders[dst].send(wire.duplicate());
                let _ = senders[dst].send(wire);
                return;
            }
            FaultAction::Delay(d) => {
                FaultStats::bump(&stats.delays);
                std::thread::sleep(d);
                let _ = senders[dst].send(wire);
                return;
            }
            FaultAction::Drop => {
                FaultStats::bump(&stats.drops);
                if attempt >= cfg.max_retries {
                    FaultStats::bump(&stats.lost);
                    return;
                }
                FaultStats::bump(&stats.retries);
                cfg.recorder.retry(wire.src);
                // bounded exponential backoff: base * 2^attempt
                std::thread::sleep(cfg.backoff_base.saturating_mul(1 << attempt.min(16)));
                attempt += 1;
            }
        }
    }
}

fn run_inner(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    cfg: &ThreadedConfig<'_>,
) -> Result<ThreadedReport, ExecError> {
    let n = plan.n();
    let stats = FaultStats::default();
    if n == 0 {
        return Ok(ThreadedReport { rbufs: Vec::new(), faults: stats.snapshot() });
    }

    let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Wire>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);
    let labels: Vec<&'static str> = (0..plan.phase_count()).map(|k| phase_label(plan, k)).collect();

    let results: Vec<Result<Vec<u8>, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for r in 0..n {
            let rx = receivers[r].take().expect("receiver taken once");
            let senders = Arc::clone(&senders);
            let program = &plan.per_rank[r];
            let my_payload = &payloads[r];
            let stats = &stats;
            let labels = &labels;
            handles.push(scope.spawn(move || -> Result<Vec<u8>, ExecError> {
                rank_main(r, program, labels, my_payload, payloads, graph, &senders, rx, cfg, stats)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| h.join().unwrap_or(Err(ExecError::WorkerPanic { rank: r })))
            .collect()
    });

    let rbufs = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(ThreadedReport { rbufs, faults: stats.snapshot() })
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    r: Rank,
    program: &[crate::plan::PlanPhase],
    labels: &[&'static str],
    my_payload: &[u8],
    payloads: &[Vec<u8>],
    graph: &Topology,
    senders: &[Sender<Wire>],
    rx: Receiver<Wire>,
    cfg: &ThreadedConfig<'_>,
    stats: &FaultStats,
) -> Result<Vec<u8>, ExecError> {
    let mut store: HashMap<Rank, Arc<Vec<u8>>> =
        HashMap::from([(r, Arc::new(my_payload.to_vec()))]);
    // messages that arrived before their phase
    let mut parked: HashMap<(Rank, u64), Wire> = HashMap::new();
    for (k, phase) in program.iter().enumerate() {
        cfg.recorder.span_begin(r, labels[k]);
        if phase.copy_blocks > 0 {
            cfg.recorder.copies(r, phase.copy_blocks);
        }
        if let Some(fp) = cfg.fault {
            if fp.is_crashed(r, k) {
                return Err(ExecError::RankCrashed { rank: r, phase: k });
            }
            let stall = fp.stall(r);
            if stall > Duration::ZERO {
                std::thread::sleep(stall);
            }
        }
        let deadline = cfg.phase_deadline.map(|d| Instant::now() + d);

        // at most one message is held back at a time; it is re-posted
        // after its successor, so reordering stays within the phase
        let mut held: Option<(Rank, Wire)> = None;
        for msg in &phase.sends {
            let mut blocks = Vec::with_capacity(msg.blocks.len());
            for &b in &msg.blocks {
                let data =
                    store.get(&b).ok_or(ExecError::MissingBlock { rank: r, block: b, phase: k })?;
                blocks.push((b, Arc::clone(data)));
            }
            let wire = Wire { src: r, tag: msg.tag, blocks };
            let reorder =
                cfg.fault.is_some_and(|fp| fp.reorders(r, msg.peer, msg.tag) && held.is_none());
            if reorder {
                FaultStats::bump(&stats.reorders);
                held = Some((msg.peer, wire));
                continue;
            }
            transport_send(senders, msg.peer, wire, cfg, stats);
            if let Some((dst, w)) = held.take() {
                transport_send(senders, dst, w, cfg, stats);
            }
        }
        if let Some((dst, w)) = held.take() {
            transport_send(senders, dst, w, cfg, stats);
        }

        let mut outstanding: std::collections::HashSet<(Rank, u64)> =
            phase.recvs.iter().map(|m| (m.peer, m.tag)).collect();
        // consume parked arrivals first
        outstanding.retain(|key| {
            if let Some(w) = parked.remove(key) {
                cfg.recorder.msg_recvd(r, w.src, w.blocks.iter().map(|(_, d)| d.len()).sum());
                for (b, data) in w.blocks {
                    store.entry(b).or_insert(data);
                }
                false
            } else {
                true
            }
        });
        while !outstanding.is_empty() {
            let mut wait = cfg.recv_timeout;
            if let Some(dl) = deadline {
                let now = Instant::now();
                if now >= dl {
                    return Err(ExecError::PhaseDeadline { rank: r, phase: k });
                }
                wait = wait.min(dl - now);
            }
            let w = rx.recv_timeout(wait).map_err(|_| {
                if deadline.is_some_and(|dl| Instant::now() >= dl) {
                    ExecError::PhaseDeadline { rank: r, phase: k }
                } else {
                    ExecError::Timeout { rank: r, phase: k }
                }
            })?;
            let key = (w.src, w.tag);
            if outstanding.remove(&key) {
                cfg.recorder.msg_recvd(r, w.src, w.blocks.iter().map(|(_, d)| d.len()).sum());
                for (b, data) in w.blocks {
                    store.entry(b).or_insert(data);
                }
            } else {
                // stray: either early (parked for its phase) or a
                // duplicate of something already consumed (idempotent —
                // `or_insert` above never overwrites)
                parked.insert(key, w);
            }
        }
        cfg.recorder.span_end(r, labels[k]);
    }
    // assemble the receive buffer
    let ins = graph.in_neighbors(r);
    let mut rbuf = Vec::with_capacity(ins.iter().map(|&b| payloads[b].len()).sum());
    for &b in ins {
        let data = store.get(&b).ok_or(ExecError::Undelivered { rank: r, block: b })?;
        rbuf.extend_from_slice(data);
    }
    Ok(rbuf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::common_neighbor::plan_common_neighbor;
    use crate::exec::virtual_exec::{reference_allgather, run_virtual, test_payloads};
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn naive_threaded_matches_reference() {
        let g = erdos_renyi(16, 0.4, 1);
        let plan = plan_naive(&g);
        let payloads = test_payloads(16, 32, 2);
        let got = run_threaded(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn distance_halving_threaded_matches_virtual() {
        let g = erdos_renyi(24, 0.4, 8);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(24, 16, 9);
        let threaded = run_threaded(&plan, &g, &payloads).unwrap();
        let virt = run_virtual(&plan, &g, &payloads).unwrap();
        assert_eq!(threaded, virt);
        assert_eq!(threaded, reference_allgather(&g, &payloads));
    }

    #[test]
    fn common_neighbor_threaded_matches_reference() {
        let g = erdos_renyi(20, 0.5, 4);
        let plan = plan_common_neighbor(&g, 4);
        let payloads = test_payloads(20, 8, 1);
        let got = run_threaded(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn lost_message_times_out_cleanly() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let mut plan = plan_naive(&g);
        plan.per_rank[0][0].sends.clear(); // rank 1 will wait forever
        let payloads = test_payloads(2, 4, 0);
        let err =
            run_threaded_with_timeout(&plan, &g, &payloads, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, ExecError::Timeout { rank: 1, phase: 0 });
    }

    #[test]
    fn out_of_order_arrivals_are_parked() {
        // rank 0 sends two messages in phases 0 and 1; rank 1 receives
        // them in opposite phases — the phase-1 message must be parked if
        // it overtakes. (With unbounded channels ordering is FIFO per
        // pair, so construct cross-pair overtaking instead.)
        let g = Topology::from_edges(3, [(0, 2), (1, 2)]);
        // rank 2 expects 0's block in phase 0 and 1's in phase 1; but rank
        // 1 sends immediately. Its message arrives "early".
        let plan = crate::plan::CollectivePlan {
            algorithm: crate::plan::Algorithm::Naive,
            per_rank: vec![
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![0], tag: 0 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![1], tag: 1 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 0, blocks: vec![0], tag: 0 }],
                    },
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 1, blocks: vec![1], tag: 1 }],
                    },
                ],
            ],
            selection: None,
        };
        let payloads = test_payloads(3, 4, 3);
        for _ in 0..20 {
            let got = run_threaded(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads));
        }
    }

    #[test]
    fn empty_communicator() {
        let g = Topology::from_edges(0, []);
        let plan = plan_naive(&g);
        assert!(run_threaded(&plan, &g, &[]).unwrap().is_empty());
    }

    #[test]
    fn repeated_runs_are_stable_under_scheduling() {
        // concurrency stress: many small ranks, many repetitions
        let g = erdos_renyi(48, 0.3, 13);
        let layout = ClusterLayout::new(4, 2, 6);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(48, 8, 4);
        let want = reference_allgather(&g, &payloads);
        for _ in 0..5 {
            assert_eq!(run_threaded(&plan, &g, &payloads).unwrap(), want);
        }
    }

    #[test]
    fn retries_recover_from_dropped_messages() {
        let g = erdos_renyi(16, 0.4, 3);
        let plan = plan_naive(&g);
        let payloads = test_payloads(16, 8, 6);
        let fp = FaultPlan::seeded(77).with_message_drop(0.2);
        let rec = nhood_telemetry::CountingRecorder::new(16);
        let cfg = ThreadedConfig {
            recv_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_micros(50),
            fault: Some(&fp),
            recorder: &rec,
            ..ThreadedConfig::default()
        };
        let rep = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap();
        assert_eq!(rep.rbufs, reference_allgather(&g, &payloads));
        assert!(rep.faults.drops > 0, "20% drop on a dense 16-rank naive plan must fire");
        assert!(rep.faults.retries >= rep.faults.drops - rep.faults.lost);
        assert_eq!(rep.faults.lost, 0, "retry budget should recover every drop here");
        // the telemetry recorder sees the same retry tally as FaultStats
        assert_eq!(rec.totals().retries, rep.faults.retries);
    }

    #[test]
    fn recorder_counts_agree_with_virtual_executor() {
        let g = erdos_renyi(20, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(20, 16, 9);
        let vrec = nhood_telemetry::CountingRecorder::new(20);
        crate::exec::virtual_exec::run_virtual_rec(&plan, &g, &payloads, &vrec).unwrap();
        let trec = nhood_telemetry::CountingRecorder::new(20);
        let cfg = ThreadedConfig { recorder: &trec, ..ThreadedConfig::default() };
        let rep = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap();
        assert_eq!(rep.rbufs, reference_allgather(&g, &payloads));
        for r in 0..20 {
            assert_eq!(vrec.per_rank(r), trec.per_rank(r), "rank {r}");
        }
    }

    #[test]
    fn span_recorder_sees_balanced_phase_spans() {
        let g = erdos_renyi(12, 0.4, 2);
        let layout = ClusterLayout::new(2, 2, 3);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(12, 8, 0);
        let rec = nhood_telemetry::SpanRecorder::new();
        let cfg = ThreadedConfig { recorder: &rec, ..ThreadedConfig::default() };
        run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap();
        let events = rec.events();
        // every rank opens and closes one span per phase
        let begins = events.iter().filter(|e| e.kind == nhood_telemetry::EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == nhood_telemetry::EventKind::End).count();
        assert_eq!(begins, 12 * plan.phase_count());
        assert_eq!(begins, ends);
        assert!(events.iter().any(|e| e.label == nhood_telemetry::labels::HALVING_STEP));
        assert!(events.iter().any(|e| e.label == nhood_telemetry::labels::INTRA_SOCKET));
    }

    #[test]
    fn duplicates_and_reorders_are_harmless() {
        let g = erdos_renyi(20, 0.4, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(20, 8, 11);
        let fp = FaultPlan::seeded(5).with_message_duplication(0.3).with_message_reorder(0.3);
        let cfg = ThreadedConfig { fault: Some(&fp), ..ThreadedConfig::default() };
        let rep = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap();
        assert_eq!(rep.rbufs, reference_allgather(&g, &payloads));
        assert!(rep.faults.duplicates + rep.faults.reorders > 0);
    }

    #[test]
    fn crashed_rank_is_a_typed_error_not_a_hang() {
        let g = erdos_renyi(12, 0.5, 9);
        let plan = plan_naive(&g);
        let payloads = test_payloads(12, 4, 2);
        let fp = FaultPlan::seeded(0).with_crashed_rank(3, 0);
        let cfg = ThreadedConfig {
            recv_timeout: Duration::from_millis(100),
            fault: Some(&fp),
            ..ThreadedConfig::default()
        };
        let t0 = Instant::now();
        let err = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap_err();
        assert!(err.is_timeout_class(), "{err:?}");
        assert!(t0.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn phase_deadline_fires_when_messages_are_lost_for_good() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let plan = plan_naive(&g);
        let payloads = test_payloads(2, 4, 0);
        // p=1 drop: every attempt (and every retry) is discarded
        let fp = FaultPlan::seeded(1).with_message_drop(1.0);
        let cfg = ThreadedConfig {
            recv_timeout: Duration::from_secs(30),
            phase_deadline: Some(Duration::from_millis(80)),
            max_retries: 2,
            backoff_base: Duration::from_micros(10),
            fault: Some(&fp),
            ..ThreadedConfig::default()
        };
        let t0 = Instant::now();
        let err = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap_err();
        assert_eq!(err, ExecError::PhaseDeadline { rank: 1, phase: 0 });
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn slow_rank_stalls_but_completes() {
        let g = erdos_renyi(8, 0.5, 4);
        let plan = plan_naive(&g);
        let payloads = test_payloads(8, 4, 1);
        let fp = FaultPlan::seeded(2).with_slow_rank(1, Duration::from_millis(20));
        let cfg = ThreadedConfig { fault: Some(&fp), ..ThreadedConfig::default() };
        let t0 = Instant::now();
        let rep = run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap();
        assert_eq!(rep.rbufs, reference_allgather(&g, &payloads));
        assert!(t0.elapsed() >= Duration::from_millis(20), "straggler must stall the run");
    }
}
