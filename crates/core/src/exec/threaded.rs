//! The threaded executor: one OS thread per rank, real channels, real
//! copies.
//!
//! Each rank runs its plan program concurrently: per phase it packs and
//! sends its messages over `std::sync::mpsc` channels, then blocks until
//! every expected message of the phase has arrived (out-of-order
//! arrivals are parked, mirroring MPI's unexpected-message queue). This
//! exercises the plan under genuine concurrency and shared-nothing
//! message passing — the closest this library gets to running the
//! collective "for real".
//!
//! Two data-movement engines share the transport:
//!
//! * [`ExecEngine::Arena`] (default) — true zero-copy: wire messages are
//!   scatter-gather descriptor lists of borrowed slices into the
//!   original payload buffers (the shared-memory analog of an RDMA
//!   iovec send from registered memory). A send resolves precomputed
//!   slot runs to slice views (one descriptor for Distance Halving
//!   halving steps), a receive appends the descriptors to the rank's
//!   logical arena, and payload bytes are copied exactly **once** per
//!   rank — into the final receive buffer;
//! * [`ExecEngine::PerBlock`] — the legacy `Arc`-shared block store,
//!   kept as the bench baseline.
//!
//! Both engines serve ragged (`allgatherv`) payloads; the arena engine
//! resolves slot runs through per-rank [`SlotExtents`] byte tables.
//!
//! # Robustness
//!
//! The executor is the primary consumer of the fault-injection layer
//! ([`crate::fault`]). [`ExecOptions`] carries a receive timeout, an
//! optional per-phase deadline, a retry budget with bounded exponential
//! backoff, and an optional [`FaultPlan`]. Sends traverse a small
//! reliable-transport emulation: an attempt the fault plan drops is
//! retried (with backoff) until the budget is exhausted, at which point
//! the message is lost for good and the receiver's timeout converts the
//! loss into [`ExecError::Timeout`] / [`ExecError::PhaseDeadline`]
//! instead of a hang. Crashed ranks return
//! [`ExecError::RankCrashed`]; duplicated and reordered deliveries are
//! absorbed by the tag-matched, idempotent receive path. The guarantee
//! chased by the chaos suite: **identical-to-reference buffers or a
//! typed error — never silent corruption, never a hang.**

use crate::arena::{BlockArena, RankLayout, SlotExtents, SlotRun};
use crate::exec::{
    check_payloads, phase_label, ExecEngine, ExecError, ExecOptions, ExecOutcome, Executor,
};
use crate::fault::{backoff, backoff_seed, FaultAction, FaultCounts, FaultPlan, FaultStats};
use crate::plan::{CollectivePlan, PlanPhase};
use crate::sizes::BlockSizes;
use nhood_telemetry::{Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the fault-injected transport needs to know about a message.
trait WireMsg: Send {
    fn src(&self) -> Rank;
    fn tag(&self) -> u64;
    fn byte_len(&self) -> usize;
    /// Structural copy for the duplication fault.
    fn duplicate(&self) -> Self;
}

/// A packed per-block wire message between rank threads (legacy engine).
struct Wire {
    src: Rank,
    tag: u64,
    /// (block id, payload bytes) pairs, in message order.
    blocks: Vec<(Rank, Arc<Vec<u8>>)>,
}

impl WireMsg for Wire {
    fn src(&self) -> Rank {
        self.src
    }
    fn tag(&self) -> u64 {
        self.tag
    }
    fn byte_len(&self) -> usize {
        self.blocks.iter().map(|(_, d)| d.len()).sum()
    }
    fn duplicate(&self) -> Self {
        Self { src: self.src, tag: self.tag, blocks: self.blocks.clone() }
    }
}

/// A zero-copy scatter-gather wire message (arena engine): one planned
/// message as a descriptor list of borrowed slices into the original
/// payload buffers, in message byte order. Because every block in the
/// system originates in some rank's payload and arena slots are
/// write-once, forwarding re-shares the same slices hop after hop; no
/// payload byte is copied in transit.
struct SegWire<'a> {
    src: Rank,
    tag: u64,
    segs: Vec<&'a [u8]>,
}

impl WireMsg for SegWire<'_> {
    fn src(&self) -> Rank {
        self.src
    }
    fn tag(&self) -> u64 {
        self.tag
    }
    fn byte_len(&self) -> usize {
        self.segs.iter().map(|s| s.len()).sum()
    }
    fn duplicate(&self) -> Self {
        Self { src: self.src, tag: self.tag, segs: self.segs.clone() }
    }
}

/// One rank's arena in the threaded engine: an append-only sequence of
/// borrowed segments whose logical concatenation is the rank's flat
/// arena (slot `i` covers logical bytes `[ext.offset(i),
/// ext.offset(i+1))` for the rank's [`SlotExtents`]). Sends and
/// receives move only descriptors; the single per-byte copy happens in
/// [`SegBuf::copy_out`] when the receive buffer is assembled.
struct SegBuf<'a> {
    segs: Vec<&'a [u8]>,
    /// Starting logical byte offset of each segment (strictly increasing
    /// — empty segments are never stored).
    starts: Vec<usize>,
    /// Total logical bytes held.
    len: usize,
    /// Slots filled so far (tracked separately from `len` so that
    /// zero-byte messages still advance the slot tail).
    tail_slots: u32,
}

impl<'a> SegBuf<'a> {
    fn new(own: &'a [u8]) -> Self {
        let mut b = Self { segs: Vec::new(), starts: Vec::new(), len: 0, tail_slots: 1 };
        b.push(own);
        b
    }

    fn push(&mut self, seg: &'a [u8]) {
        if !seg.is_empty() {
            self.starts.push(self.len);
            self.len += seg.len();
            self.segs.push(seg);
        }
    }

    /// Collects the logical byte range `[start, start+len)` as slice
    /// descriptors (no byte copies).
    fn view_into(&self, start: usize, len: usize, out: &mut Vec<&'a [u8]>) {
        if len == 0 {
            return;
        }
        let mut i = self.starts.partition_point(|&s| s <= start) - 1;
        let mut off = start - self.starts[i];
        let mut rem = len;
        while rem > 0 {
            let seg = self.segs[i];
            let take = rem.min(seg.len() - off);
            out.push(&seg[off..off + take]);
            rem -= take;
            off = 0;
            i += 1;
        }
    }

    /// Copies the logical byte range `[start, start+len)` into `dst` —
    /// the one place payload bytes are copied on this engine.
    fn copy_out(&self, start: usize, len: usize, dst: &mut Vec<u8>) {
        if len == 0 {
            return;
        }
        let mut i = self.starts.partition_point(|&s| s <= start) - 1;
        let mut off = start - self.starts[i];
        let mut rem = len;
        while rem > 0 {
            let seg = self.segs[i];
            let take = rem.min(seg.len() - off);
            dst.extend_from_slice(&seg[off..off + take]);
            rem -= take;
            off = 0;
            i += 1;
        }
    }
}

/// Default per-receive timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Execution parameters of the threaded backend. `Default` matches the
/// historical behaviour: 10 s receive timeout, no phase deadline, no
/// faults, no retries needed.
#[deprecated(note = "use `nhood_core::exec::ExecOptions` with any `Executor` backend")]
#[derive(Clone, Copy)]
pub struct ThreadedConfig<'a> {
    /// How long one blocked receive may wait before erroring.
    pub recv_timeout: Duration,
    /// Wall-clock budget for one whole phase (sends + receives). `None`
    /// disables the deadline and leaves only the per-receive timeout.
    pub phase_deadline: Option<Duration>,
    /// Retransmission attempts per message when the fault plan drops it.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt (bounded by the retry
    /// budget, so the worst-case stall is `backoff_base * (2^retries - 1)`).
    pub backoff_base: Duration,
    /// Fault schedule to consult at every send; `None` injects nothing.
    pub fault: Option<&'a FaultPlan>,
    /// Telemetry sink; the default [`nhood_telemetry::NULL`] makes every
    /// hook a no-op.
    pub recorder: &'a dyn Recorder,
}

#[allow(deprecated)]
impl std::fmt::Debug for ThreadedConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedConfig")
            .field("recv_timeout", &self.recv_timeout)
            .field("phase_deadline", &self.phase_deadline)
            .field("max_retries", &self.max_retries)
            .field("backoff_base", &self.backoff_base)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

#[allow(deprecated)]
impl Default for ThreadedConfig<'_> {
    fn default() -> Self {
        Self {
            recv_timeout: DEFAULT_TIMEOUT,
            phase_deadline: None,
            max_retries: 4,
            backoff_base: Duration::from_micros(200),
            fault: None,
            recorder: &NULL,
        }
    }
}

#[allow(deprecated)]
impl<'a> ThreadedConfig<'a> {
    /// The equivalent [`ExecOptions`] (legacy per-block engine).
    fn to_opts(self) -> ExecOptions<'a> {
        ExecOptions {
            recv_timeout: self.recv_timeout,
            phase_deadline: self.phase_deadline,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
            fault: self.fault,
            recorder: self.recorder,
            ragged: false,
            engine: ExecEngine::PerBlock,
            build_threads: 0,
            fault_sink: None,
            op: crate::collective::CollectiveOp::Allgather,
        }
    }
}

/// Successful threaded run: receive buffers plus the fault/retry tally.
#[deprecated(note = "use `nhood_core::exec::ExecOutcome` (returned by `Executor::run`)")]
#[derive(Clone, Debug)]
pub struct ThreadedReport {
    /// Per-rank receive buffers (in-neighbor payloads concatenated in
    /// `in_neighbors` order).
    pub rbufs: Vec<Vec<u8>>,
    /// Faults injected and retries spent during the run.
    pub faults: FaultCounts,
}

/// The one-OS-thread-per-rank backend (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Threaded;

impl Executor for Threaded {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(
        &self,
        plan: &CollectivePlan,
        graph: &Topology,
        payloads: &[Vec<u8>],
        arena: &mut BlockArena,
        opts: &ExecOptions<'_>,
    ) -> Result<ExecOutcome, ExecError> {
        if payloads.len() != plan.n() {
            return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
        }
        match opts.effective_engine() {
            ExecEngine::Arena => {
                let sizes = if opts.ragged {
                    BlockSizes::from_payloads(payloads)
                } else {
                    BlockSizes::Uniform(check_payloads(payloads, plan.n())?)
                };
                run_arena(plan, graph, payloads, &sizes, arena, opts)
            }
            ExecEngine::PerBlock => {
                if !opts.ragged {
                    check_payloads(payloads, plan.n())?;
                }
                let (rbufs, faults) = run_inner(plan, graph, payloads, opts)?;
                Ok(ExecOutcome { rbufs, faults, sim: None })
            }
        }
    }
}

/// Executes `plan` with one thread per rank and returns each rank's
/// receive buffer (in-neighbor payloads concatenated in `in_neighbors`
/// order). Semantically identical to the virtual backend.
#[deprecated(
    note = "use `Threaded.run(...)` or `Threaded.run_simple(...)` (see docs/EXECUTION_API.md)"
)]
pub fn run_threaded(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    check_payloads(payloads, plan.n())?;
    let opts = ExecOptions { engine: ExecEngine::PerBlock, ..ExecOptions::default() };
    run_inner(plan, graph, payloads, &opts).map(|(rbufs, _)| rbufs)
}

/// The `neighbor_allgatherv` variant of [`run_threaded`]: per-rank
/// payloads may differ in length.
#[deprecated(note = "use `Threaded.run(...)` with `ExecOptions::new().ragged(true)`")]
pub fn run_threaded_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    let opts = ExecOptions { engine: ExecEngine::PerBlock, ragged: true, ..ExecOptions::default() };
    run_inner(plan, graph, payloads, &opts).map(|(rbufs, _)| rbufs)
}

/// [`run_threaded`] with an explicit receive timeout (tests use short
/// ones to probe failure handling).
#[deprecated(note = "use `Threaded.run(...)` with `ExecOptions::new().recv_timeout(...)`")]
pub fn run_threaded_with_timeout(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    timeout: Duration,
) -> Result<Vec<Vec<u8>>, ExecError> {
    check_payloads(payloads, plan.n())?;
    let opts = ExecOptions {
        recv_timeout: timeout,
        engine: ExecEngine::PerBlock,
        ..ExecOptions::default()
    };
    run_inner(plan, graph, payloads, &opts).map(|(rbufs, _)| rbufs)
}

/// The fully-configurable entry point: explicit timeouts, retry policy
/// and optional fault injection. Uniform payload sizes are enforced (use
/// [`run_threaded_cfg_v`] for ragged payloads).
#[allow(deprecated)]
#[deprecated(note = "use `Threaded.run(...)` with `ExecOptions` (see docs/EXECUTION_API.md)")]
pub fn run_threaded_cfg(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    cfg: &ThreadedConfig<'_>,
) -> Result<ThreadedReport, ExecError> {
    check_payloads(payloads, plan.n())?;
    let (rbufs, faults) = run_inner(plan, graph, payloads, &cfg.to_opts())?;
    Ok(ThreadedReport { rbufs, faults })
}

/// Ragged-payload variant of [`run_threaded_cfg`].
#[allow(deprecated)]
#[deprecated(note = "use `Threaded.run(...)` with `ExecOptions::new().ragged(true)`")]
pub fn run_threaded_cfg_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    cfg: &ThreadedConfig<'_>,
) -> Result<ThreadedReport, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    let (rbufs, faults) = run_inner(plan, graph, payloads, &cfg.to_opts())?;
    Ok(ThreadedReport { rbufs, faults })
}

/// Sends `wire` to `dst` during `phase`, consulting the fault plan per
/// attempt. A dropped attempt is retried after bounded exponential
/// backoff until the budget runs out; then the message is abandoned (the
/// receiver's timeout surfaces the loss as a typed error). A dead link
/// is not retryable: the send fails immediately with
/// [`ExecError::LinkDown`] so the caller can repair around the edge.
fn transport_send<W: WireMsg>(
    senders: &[Sender<W>],
    dst: Rank,
    wire: W,
    phase: usize,
    opts: &ExecOptions<'_>,
    stats: &FaultStats,
) -> Result<(), ExecError> {
    // one logical message per call, however many attempts it takes
    opts.recorder.msg_sent(wire.src(), dst, wire.byte_len());
    let Some(fp) = opts.fault else {
        // a send can only fail if the peer already exited on error; the
        // peer's error is the root cause
        let _ = senders[dst].send(wire);
        return Ok(());
    };
    let mut attempt: u32 = 0;
    loop {
        match fp.send_action_at(wire.src(), dst, wire.tag(), attempt, phase) {
            FaultAction::Deliver => {
                let _ = senders[dst].send(wire);
                return Ok(());
            }
            FaultAction::Duplicate => {
                FaultStats::bump(&stats.duplicates);
                let _ = senders[dst].send(wire.duplicate());
                let _ = senders[dst].send(wire);
                return Ok(());
            }
            FaultAction::Delay(d) => {
                FaultStats::bump(&stats.delays);
                std::thread::sleep(d);
                let _ = senders[dst].send(wire);
                return Ok(());
            }
            FaultAction::Drop => {
                FaultStats::bump(&stats.drops);
                if attempt >= opts.max_retries {
                    FaultStats::bump(&stats.lost);
                    return Ok(());
                }
                FaultStats::bump(&stats.retries);
                opts.recorder.retry(wire.src());
                // jittered exponential backoff, seeded per message so
                // chaos runs stay deterministic but retrying ranks
                // don't wake in lockstep
                let seed = backoff_seed(fp.seed(), wire.src() as u64, dst as u64, wire.tag());
                std::thread::sleep(backoff(opts.backoff_base, attempt, seed));
                attempt += 1;
            }
            FaultAction::LinkDown => {
                FaultStats::bump(&stats.link_downs);
                return Err(ExecError::LinkDown { src: wire.src(), dst, phase });
            }
        }
    }
}

/// Phase-entry fault hooks shared by both engines: injected crash, then
/// injected stall.
fn phase_entry_faults(r: Rank, k: usize, opts: &ExecOptions<'_>) -> Result<(), ExecError> {
    if let Some(fp) = opts.fault {
        if fp.is_crashed(r, k) {
            return Err(ExecError::RankCrashed { rank: r, phase: k });
        }
        let stall = fp.stall(r);
        if stall > Duration::ZERO {
            std::thread::sleep(stall);
        }
    }
    Ok(())
}

/// Computes the receive wait budget, converting an elapsed deadline into
/// the right typed error.
fn recv_wait(
    r: Rank,
    k: usize,
    deadline: Option<Instant>,
    recv_timeout: Duration,
) -> Result<Duration, ExecError> {
    let mut wait = recv_timeout;
    if let Some(dl) = deadline {
        let now = Instant::now();
        if now >= dl {
            return Err(ExecError::PhaseDeadline { rank: r, phase: k });
        }
        wait = wait.min(dl - now);
    }
    Ok(wait)
}

/// Folds per-rank results into receive buffers, choosing the most
/// actionable error when several ranks failed: a [`ExecError::LinkDown`]
/// beats the timeouts it cascades into on peer ranks (they were waiting
/// for data that could never cross the dead link), so the caller sees
/// the root cause rather than a symptom.
fn collect_rank_results(
    results: Vec<Result<Vec<u8>, ExecError>>,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let mut rbufs = Vec::with_capacity(results.len());
    let mut first_err: Option<ExecError> = None;
    for res in results {
        match res {
            Ok(b) => rbufs.push(b),
            Err(e) => {
                let have_link_down = matches!(first_err, Some(ExecError::LinkDown { .. }));
                if first_err.is_none()
                    || (matches!(e, ExecError::LinkDown { .. }) && !have_link_down)
                {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(rbufs),
    }
}

/// The legacy per-block engine.
fn run_inner(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    opts: &ExecOptions<'_>,
) -> Result<(Vec<Vec<u8>>, FaultCounts), ExecError> {
    let n = plan.n();
    let local_stats = FaultStats::default();
    let stats = opts.fault_sink.unwrap_or(&local_stats);
    if n == 0 {
        return Ok((Vec::new(), stats.snapshot()));
    }

    let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Wire>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);
    let labels: Vec<&'static str> = (0..plan.phase_count()).map(|k| phase_label(plan, k)).collect();

    let results: Vec<Result<Vec<u8>, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for r in 0..n {
            let rx = receivers[r].take().expect("receiver taken once");
            let senders = Arc::clone(&senders);
            let program = &plan.per_rank[r];
            let my_payload = &payloads[r];
            let labels = &labels;
            handles.push(scope.spawn(move || -> Result<Vec<u8>, ExecError> {
                rank_main(
                    r, program, labels, my_payload, payloads, graph, &senders, rx, opts, stats,
                )
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| h.join().unwrap_or(Err(ExecError::WorkerPanic { rank: r })))
            .collect()
    });

    let rbufs = collect_rank_results(results)?;
    Ok((rbufs, stats.snapshot()))
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    r: Rank,
    program: &[PlanPhase],
    labels: &[&'static str],
    my_payload: &[u8],
    payloads: &[Vec<u8>],
    graph: &Topology,
    senders: &[Sender<Wire>],
    rx: Receiver<Wire>,
    opts: &ExecOptions<'_>,
    stats: &FaultStats,
) -> Result<Vec<u8>, ExecError> {
    let mut store: HashMap<Rank, Arc<Vec<u8>>> =
        HashMap::from([(r, Arc::new(my_payload.to_vec()))]);
    // messages that arrived before their phase
    let mut parked: HashMap<(Rank, u64), Wire> = HashMap::new();
    for (k, phase) in program.iter().enumerate() {
        opts.recorder.span_begin(r, labels[k]);
        if phase.copy_blocks > 0 {
            opts.recorder.copies(r, phase.copy_blocks);
        }
        phase_entry_faults(r, k, opts)?;
        let deadline = opts.phase_deadline.map(|d| Instant::now() + d);

        // at most one message is held back at a time; it is re-posted
        // after its successor, so reordering stays within the phase
        let mut held: Option<(Rank, Wire)> = None;
        for msg in &phase.sends {
            let mut blocks = Vec::with_capacity(msg.blocks.len());
            for &b in &msg.blocks {
                let data =
                    store.get(&b).ok_or(ExecError::MissingBlock { rank: r, block: b, phase: k })?;
                blocks.push((b, Arc::clone(data)));
            }
            let wire = Wire { src: r, tag: msg.tag, blocks };
            let reorder =
                opts.fault.is_some_and(|fp| fp.reorders(r, msg.peer, msg.tag) && held.is_none());
            if reorder {
                FaultStats::bump(&stats.reorders);
                held = Some((msg.peer, wire));
                continue;
            }
            transport_send(senders, msg.peer, wire, k, opts, stats)?;
            if let Some((dst, w)) = held.take() {
                transport_send(senders, dst, w, k, opts, stats)?;
            }
        }
        if let Some((dst, w)) = held.take() {
            transport_send(senders, dst, w, k, opts, stats)?;
        }

        let mut outstanding: std::collections::HashSet<(Rank, u64)> =
            phase.recvs.iter().map(|m| (m.peer, m.tag)).collect();
        // consume parked arrivals first
        outstanding.retain(|key| {
            if let Some(w) = parked.remove(key) {
                opts.recorder.msg_recvd(r, w.src, w.byte_len());
                for (b, data) in w.blocks {
                    store.entry(b).or_insert(data);
                }
                false
            } else {
                true
            }
        });
        while !outstanding.is_empty() {
            let wait = recv_wait(r, k, deadline, opts.recv_timeout)?;
            let w = rx.recv_timeout(wait).map_err(|_| {
                if deadline.is_some_and(|dl| Instant::now() >= dl) {
                    ExecError::PhaseDeadline { rank: r, phase: k }
                } else {
                    ExecError::Timeout { rank: r, phase: k }
                }
            })?;
            let key = (w.src, w.tag);
            if outstanding.remove(&key) {
                opts.recorder.msg_recvd(r, w.src, w.byte_len());
                for (b, data) in w.blocks {
                    store.entry(b).or_insert(data);
                }
            } else {
                // stray: either early (parked for its phase) or a
                // duplicate of something already consumed (idempotent —
                // `or_insert` above never overwrites)
                parked.insert(key, w);
            }
        }
        opts.recorder.span_end(r, labels[k]);
    }
    // assemble the receive buffer
    let ins = graph.in_neighbors(r);
    let mut rbuf = Vec::with_capacity(ins.iter().map(|&b| payloads[b].len()).sum());
    for &b in ins {
        let data = store.get(&b).ok_or(ExecError::Undelivered { rank: r, block: b })?;
        rbuf.extend_from_slice(data);
    }
    Ok(rbuf)
}

/// The zero-copy arena engine: each rank thread owns its flat buffer.
fn run_arena(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    sizes: &BlockSizes,
    arena: &mut BlockArena,
    opts: &ExecOptions<'_>,
) -> Result<ExecOutcome, ExecError> {
    let n = plan.n();
    let local_stats = FaultStats::default();
    let stats = opts.fault_sink.unwrap_or(&local_stats);
    if n == 0 {
        return Ok(ExecOutcome::default());
    }
    let layout = arena.prepare(plan, graph)?;
    let exts = layout.extents(sizes);
    let rbuf_seed = arena.take_rbufs(n);
    let rbuf_caps: Vec<usize> = rbuf_seed.iter().map(Vec::capacity).collect();

    let mut senders: Vec<Sender<SegWire<'_>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<SegWire<'_>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);
    let labels: Vec<&'static str> = (0..plan.phase_count()).map(|k| phase_label(plan, k)).collect();

    type RankOut = Result<Vec<u8>, ExecError>;
    let results: Vec<RankOut> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (r, rbuf) in rbuf_seed.into_iter().enumerate() {
            let rx = receivers[r].take().expect("receiver taken once");
            let senders = Arc::clone(&senders);
            let rl = &layout.ranks[r];
            let program = &plan.per_rank[r];
            let labels = &labels;
            let own = payloads[r].as_slice();
            let ext = &exts[r];
            handles.push(scope.spawn(move || -> RankOut {
                rank_main_arena(r, rl, program, labels, &senders, rx, opts, stats, own, rbuf, ext)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| h.join().unwrap_or(Err(ExecError::WorkerPanic { rank: r })))
            .collect()
    });

    let rbufs = collect_rank_results(results)?;
    for (r, rb) in rbufs.iter().enumerate() {
        arena.note_realloc(rb.capacity() != rbuf_caps[r]);
    }
    Ok(ExecOutcome { rbufs, faults: stats.snapshot(), sim: None })
}

/// Appends the freshly arrived portion of a wire message to the rank's
/// logical arena (descriptors only, no byte copies).
///
/// Slots are write-once and assigned consecutively at the arena tail on
/// first arrival, so for a validated (exactly-once) plan every landing
/// is a pure tail append. Runs that revisit already-held slots (possible
/// only for duplicate-delivery plans) carry identical bytes and are
/// skipped.
fn land_segs<'a>(buf: &mut SegBuf<'a>, runs: &[SlotRun], segs: &[&'a [u8]], ext: &SlotExtents) {
    let mut acc = 0usize; // logical byte offset within the wire message
    for &(s, l) in runs {
        let tail = buf.tail_slots;
        debug_assert!(s <= tail, "arena landing ahead of the tail");
        let fresh_from = tail.max(s);
        let fresh = (s + l).saturating_sub(fresh_from);
        if fresh > 0 {
            // sender and receiver extents agree per block (same blocks,
            // same order), so receiver-side offsets slice the wire bytes
            let mut skip = acc + (ext.offset(fresh_from as usize) - ext.offset(s as usize));
            let mut rem = ext.offset((s + l) as usize) - ext.offset(fresh_from as usize);
            for seg in segs {
                if rem == 0 {
                    break;
                }
                if skip >= seg.len() {
                    skip -= seg.len();
                    continue;
                }
                let take = rem.min(seg.len() - skip);
                buf.push(&seg[skip..skip + take]);
                skip = 0;
                rem -= take;
            }
            buf.tail_slots += fresh;
        }
        acc += ext.run_bytes((s, l));
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_main_arena<'a>(
    r: Rank,
    rl: &RankLayout,
    program: &[PlanPhase],
    labels: &[&'static str],
    senders: &[Sender<SegWire<'a>>],
    rx: Receiver<SegWire<'a>>,
    opts: &ExecOptions<'_>,
    stats: &FaultStats,
    own: &'a [u8],
    mut rbuf: Vec<u8>,
    ext: &SlotExtents,
) -> Result<Vec<u8>, ExecError> {
    let mut buf = SegBuf::new(own);
    // messages that arrived before their phase
    let mut parked: HashMap<(Rank, u64), SegWire<'a>> = HashMap::new();
    // keys already landed — a late duplicate is dropped, not re-landed
    let mut seen: std::collections::HashSet<(Rank, u64)> = std::collections::HashSet::new();
    for (k, ops) in rl.phases.iter().enumerate() {
        opts.recorder.span_begin(r, labels[k]);
        if program[k].copy_blocks > 0 {
            opts.recorder.copies(r, program[k].copy_blocks);
        }
        phase_entry_faults(r, k, opts)?;
        let deadline = opts.phase_deadline.map(|d| Instant::now() + d);

        let mut held: Option<(Rank, SegWire<'a>)> = None;
        for op in &ops.sends {
            // resolve precomputed slot runs to slice descriptors — one
            // descriptor per contiguous span, no bytes moved
            let mut segs = Vec::new();
            for &run in &op.runs {
                buf.view_into(ext.offset(run.0 as usize), ext.run_bytes(run), &mut segs);
            }
            let wire = SegWire { src: r, tag: op.tag, segs };
            let reorder =
                opts.fault.is_some_and(|fp| fp.reorders(r, op.peer, op.tag) && held.is_none());
            if reorder {
                FaultStats::bump(&stats.reorders);
                held = Some((op.peer, wire));
                continue;
            }
            transport_send(senders, op.peer, wire, k, opts, stats)?;
            if let Some((dst, w)) = held.take() {
                transport_send(senders, dst, w, k, opts, stats)?;
            }
        }
        if let Some((dst, w)) = held.take() {
            transport_send(senders, dst, w, k, opts, stats)?;
        }

        // land the phase's arrivals in layout (slot-assignment) order —
        // each landing appends at the arena tail
        for op in &ops.recvs {
            let key = (op.peer, op.tag);
            let w = loop {
                if let Some(w) = parked.remove(&key) {
                    break w;
                }
                let wait = recv_wait(r, k, deadline, opts.recv_timeout)?;
                let w = rx.recv_timeout(wait).map_err(|_| {
                    if deadline.is_some_and(|dl| Instant::now() >= dl) {
                        ExecError::PhaseDeadline { rank: r, phase: k }
                    } else {
                        ExecError::Timeout { rank: r, phase: k }
                    }
                })?;
                let wkey = (w.src, w.tag);
                if wkey == key {
                    break w;
                }
                // stray: park if early, drop if a duplicate of a landed key
                if !seen.contains(&wkey) {
                    parked.insert(wkey, w);
                }
            };
            seen.insert(key);
            opts.recorder.msg_recvd(r, w.src, w.byte_len());
            land_segs(&mut buf, &op.runs, &w.segs, ext);
        }
        opts.recorder.span_end(r, labels[k]);
    }
    // assemble the receive buffer from precomputed arena runs — the one
    // per-byte copy on this engine
    rbuf.clear();
    rbuf.reserve(rl.out_runs.iter().map(|&run| ext.run_bytes(run)).sum());
    for &run in &rl.out_runs {
        buf.copy_out(ext.offset(run.0 as usize), ext.run_bytes(run), &mut rbuf);
    }
    Ok(rbuf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::common_neighbor::plan_common_neighbor;
    use crate::exec::virtual_exec::{reference_allgather, test_payloads, Virtual};
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    /// Runs both engines through the trait and checks they agree.
    fn run_both(
        plan: &CollectivePlan,
        g: &Topology,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        let arena_out = Threaded.run_simple(plan, g, payloads)?;
        let legacy = Threaded.run(
            plan,
            g,
            payloads,
            &mut BlockArena::new(),
            &ExecOptions::new().engine(ExecEngine::PerBlock),
        )?;
        assert_eq!(arena_out, legacy.rbufs, "engines disagree");
        Ok(arena_out)
    }

    #[test]
    fn naive_threaded_matches_reference() {
        let g = erdos_renyi(16, 0.4, 1);
        let plan = plan_naive(&g);
        let payloads = test_payloads(16, 32, 2);
        let got = run_both(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn distance_halving_threaded_matches_virtual() {
        let g = erdos_renyi(24, 0.4, 8);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(24, 16, 9);
        let threaded = run_both(&plan, &g, &payloads).unwrap();
        let virt = Virtual.run_simple(&plan, &g, &payloads).unwrap();
        assert_eq!(threaded, virt);
        assert_eq!(threaded, reference_allgather(&g, &payloads));
    }

    #[test]
    fn common_neighbor_threaded_matches_reference() {
        let g = erdos_renyi(20, 0.5, 4);
        let plan = plan_common_neighbor(&g, 4);
        let payloads = test_payloads(20, 8, 1);
        let got = run_both(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn lost_message_times_out_cleanly() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let mut plan = plan_naive(&g);
        plan.per_rank[0][0].sends.clear(); // rank 1 will wait forever
        let payloads = test_payloads(2, 4, 0);
        let opts = ExecOptions::new().recv_timeout(Duration::from_millis(50));
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        assert_eq!(err, ExecError::Timeout { rank: 1, phase: 0 });
    }

    #[test]
    fn link_down_fails_typed_and_is_counted_in_sink() {
        let g = erdos_renyi(16, 0.5, 7);
        let plan = plan_naive(&g);
        // Pick a directed edge the naive plan actually sends over.
        let (src, dst) = {
            let msg = plan.per_rank.iter().enumerate().find_map(|(r, prog)| {
                prog.iter().flat_map(|p| p.sends.iter()).next().map(|m| (r, m.peer))
            });
            msg.expect("naive plan on a connected-ish graph has sends")
        };
        let fp = FaultPlan::seeded(1).with_link_down(src, dst, 0);
        let payloads = test_payloads(16, 8, 5);
        let sink = FaultStats::default();
        let opts = ExecOptions::new()
            .fault(&fp)
            .fault_sink(&sink)
            .recv_timeout(Duration::from_millis(200));
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        // LinkDown must win over the timeouts it cascades into on peers.
        assert!(matches!(err, ExecError::LinkDown { .. }), "{err:?}");
        let counts = sink.snapshot();
        assert!(counts.link_downs >= 1, "{counts}");
    }

    #[test]
    fn fault_sink_survives_failed_runs() {
        // Same scenario via the per-block engine: even though run() errors,
        // the caller-provided sink keeps the injected-fault tally.
        let g = Topology::from_edges(2, [(0, 1), (1, 0)]);
        let plan = plan_naive(&g);
        let fp = FaultPlan::seeded(2).with_link_down(0, 1, 0);
        let payloads = test_payloads(2, 4, 1);
        let sink = FaultStats::default();
        let opts = ExecOptions::new()
            .engine(ExecEngine::PerBlock)
            .fault(&fp)
            .fault_sink(&sink)
            .recv_timeout(Duration::from_millis(200));
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        assert!(matches!(err, ExecError::LinkDown { .. }), "{err:?}");
        assert!(sink.snapshot().link_downs >= 1);
    }

    #[test]
    fn out_of_order_arrivals_are_parked() {
        // rank 0 sends two messages in phases 0 and 1; rank 1 receives
        // them in opposite phases — the phase-1 message must be parked if
        // it overtakes. (With unbounded channels ordering is FIFO per
        // pair, so construct cross-pair overtaking instead.)
        let g = Topology::from_edges(3, [(0, 2), (1, 2)]);
        // rank 2 expects 0's block in phase 0 and 1's in phase 1; but rank
        // 1 sends immediately. Its message arrives "early".
        let plan = crate::plan::CollectivePlan {
            algorithm: crate::plan::Algorithm::Naive,
            per_rank: vec![
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![0], tag: 0 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![1], tag: 1 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 0, blocks: vec![0], tag: 0 }],
                    },
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 1, blocks: vec![1], tag: 1 }],
                    },
                ],
            ],
            selection: None,
        };
        let payloads = test_payloads(3, 4, 3);
        for _ in 0..20 {
            let got = run_both(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads));
        }
    }

    #[test]
    fn empty_communicator() {
        let g = Topology::from_edges(0, []);
        let plan = plan_naive(&g);
        assert!(Threaded.run_simple(&plan, &g, &[]).unwrap().is_empty());
    }

    #[test]
    fn repeated_runs_are_stable_under_scheduling() {
        // concurrency stress: many small ranks, many repetitions, one
        // shared arena (checks cross-run state is reset correctly)
        let g = erdos_renyi(48, 0.3, 13);
        let layout = ClusterLayout::new(4, 2, 6);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(48, 8, 4);
        let want = reference_allgather(&g, &payloads);
        let mut arena = BlockArena::new();
        let opts = ExecOptions::default();
        for _ in 0..5 {
            let out = Threaded.run(&plan, &g, &payloads, &mut arena, &opts).unwrap();
            assert_eq!(out.rbufs, want);
            arena.adopt_rbufs(out.rbufs);
        }
    }

    #[test]
    fn retries_recover_from_dropped_messages() {
        let g = erdos_renyi(16, 0.4, 3);
        let plan = plan_naive(&g);
        let payloads = test_payloads(16, 8, 6);
        let fp = FaultPlan::seeded(77).with_message_drop(0.2);
        let rec = nhood_telemetry::CountingRecorder::new(16);
        let opts = ExecOptions::new()
            .recv_timeout(Duration::from_secs(5))
            .retries(4, Duration::from_micros(50))
            .fault(&fp)
            .recorder(&rec);
        let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
        assert_eq!(out.rbufs, reference_allgather(&g, &payloads));
        assert!(out.faults.drops > 0, "20% drop on a dense 16-rank naive plan must fire");
        assert!(out.faults.retries >= out.faults.drops - out.faults.lost);
        assert_eq!(out.faults.lost, 0, "retry budget should recover every drop here");
        // the telemetry recorder sees the same retry tally as FaultStats
        assert_eq!(rec.totals().retries, out.faults.retries);
    }

    #[test]
    fn recorder_counts_agree_with_virtual_executor() {
        let g = erdos_renyi(20, 0.4, 7);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(20, 16, 9);
        for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
            let vrec = nhood_telemetry::CountingRecorder::new(20);
            let vopts = ExecOptions::new().engine(engine).recorder(&vrec);
            Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &vopts).unwrap();
            let trec = nhood_telemetry::CountingRecorder::new(20);
            let topts = ExecOptions::new().engine(engine).recorder(&trec);
            let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &topts).unwrap();
            assert_eq!(out.rbufs, reference_allgather(&g, &payloads));
            for r in 0..20 {
                assert_eq!(vrec.per_rank(r), trec.per_rank(r), "rank {r} ({engine:?})");
            }
        }
    }

    #[test]
    fn span_recorder_sees_balanced_phase_spans() {
        let g = erdos_renyi(12, 0.4, 2);
        let layout = ClusterLayout::new(2, 2, 3);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(12, 8, 0);
        let rec = nhood_telemetry::SpanRecorder::new();
        let opts = ExecOptions::new().recorder(&rec);
        Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
        let events = rec.events();
        // every rank opens and closes one span per phase
        let begins = events.iter().filter(|e| e.kind == nhood_telemetry::EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == nhood_telemetry::EventKind::End).count();
        assert_eq!(begins, 12 * plan.phase_count());
        assert_eq!(begins, ends);
        assert!(events.iter().any(|e| e.label == nhood_telemetry::labels::HALVING_STEP));
        assert!(events.iter().any(|e| e.label == nhood_telemetry::labels::INTRA_SOCKET));
    }

    #[test]
    fn duplicates_and_reorders_are_harmless() {
        let g = erdos_renyi(20, 0.4, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(20, 8, 11);
        let fp = FaultPlan::seeded(5).with_message_duplication(0.3).with_message_reorder(0.3);
        for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
            let opts = ExecOptions::new().engine(engine).fault(&fp);
            let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
            assert_eq!(out.rbufs, reference_allgather(&g, &payloads), "{engine:?}");
            assert!(out.faults.duplicates + out.faults.reorders > 0);
        }
    }

    #[test]
    fn crashed_rank_is_a_typed_error_not_a_hang() {
        let g = erdos_renyi(12, 0.5, 9);
        let plan = plan_naive(&g);
        let payloads = test_payloads(12, 4, 2);
        let fp = FaultPlan::seeded(0).with_crashed_rank(3, 0);
        let opts = ExecOptions::new().recv_timeout(Duration::from_millis(100)).fault(&fp);
        let t0 = Instant::now();
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        assert!(err.is_timeout_class(), "{err:?}");
        assert!(t0.elapsed() < Duration::from_secs(5), "must not hang");
    }

    #[test]
    fn phase_deadline_fires_when_messages_are_lost_for_good() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let plan = plan_naive(&g);
        let payloads = test_payloads(2, 4, 0);
        // p=1 drop: every attempt (and every retry) is discarded
        let fp = FaultPlan::seeded(1).with_message_drop(1.0);
        let opts = ExecOptions::new()
            .recv_timeout(Duration::from_secs(30))
            .phase_deadline(Some(Duration::from_millis(80)))
            .retries(2, Duration::from_micros(10))
            .fault(&fp);
        let t0 = Instant::now();
        let err = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap_err();
        assert_eq!(err, ExecError::PhaseDeadline { rank: 1, phase: 0 });
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn slow_rank_stalls_but_completes() {
        let g = erdos_renyi(8, 0.5, 4);
        let plan = plan_naive(&g);
        let payloads = test_payloads(8, 4, 1);
        let fp = FaultPlan::seeded(2).with_slow_rank(1, Duration::from_millis(20));
        let opts = ExecOptions::new().fault(&fp);
        let t0 = Instant::now();
        let out = Threaded.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap();
        assert_eq!(out.rbufs, reference_allgather(&g, &payloads));
        assert!(t0.elapsed() >= Duration::from_millis(20), "straggler must stall the run");
    }

    #[test]
    fn allgatherv_ragged_payloads_both_engines() {
        let g = erdos_renyi(20, 0.4, 6);
        let layout = ClusterLayout::new(3, 2, 4);
        // lengths 0..=4, including zero-length blocks
        let payloads: Vec<Vec<u8>> = (0..20).map(|r| vec![r as u8; r % 5]).collect();
        let want = reference_allgather(&g, &payloads);
        for plan in [
            plan_naive(&g),
            plan_common_neighbor(&g, 4),
            lower(&build_pattern(&g, &layout).unwrap(), &g),
        ] {
            for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
                let opts = ExecOptions::new().ragged(true).engine(engine);
                let got = Threaded
                    .run(&plan, &g, &payloads, &mut BlockArena::new(), &opts)
                    .unwrap()
                    .rbufs;
                assert_eq!(got, want, "{engine:?}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let g = erdos_renyi(12, 0.4, 3);
        let plan = plan_naive(&g);
        let payloads = test_payloads(12, 8, 2);
        let want = reference_allgather(&g, &payloads);
        assert_eq!(run_threaded(&plan, &g, &payloads).unwrap(), want);
        assert_eq!(run_threaded_v(&plan, &g, &payloads).unwrap(), want);
        assert_eq!(
            run_threaded_with_timeout(&plan, &g, &payloads, Duration::from_secs(5)).unwrap(),
            want
        );
        let cfg = ThreadedConfig::default();
        assert_eq!(run_threaded_cfg(&plan, &g, &payloads, &cfg).unwrap().rbufs, want);
        assert_eq!(run_threaded_cfg_v(&plan, &g, &payloads, &cfg).unwrap().rbufs, want);
    }
}
