//! The threaded executor: one OS thread per rank, real channels, real
//! copies.
//!
//! Each rank runs its plan program concurrently: per phase it packs and
//! sends its messages over crossbeam channels, then blocks until every
//! expected message of the phase has arrived (out-of-order arrivals are
//! parked, mirroring MPI's unexpected-message queue). This exercises the
//! plan under genuine concurrency and shared-nothing message passing —
//! the closest this library gets to running the collective "for real".
//!
//! A receive timeout converts lost-message/deadlock bugs into
//! [`ExecError::Timeout`] instead of hanging the test suite; panicking
//! workers surface as [`ExecError::WorkerPanic`].

use crate::exec::{check_payloads, ExecError};
use crate::plan::CollectivePlan;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A packed wire message between rank threads.
struct Wire {
    src: Rank,
    tag: u64,
    /// (block id, payload bytes) pairs, in message order.
    blocks: Vec<(Rank, Arc<Vec<u8>>)>,
}

/// Default per-receive timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Executes `plan` with one thread per rank and returns each rank's
/// receive buffer (in-neighbor payloads concatenated in `in_neighbors`
/// order). Semantically identical to
/// [`run_virtual`](crate::exec::virtual_exec::run_virtual).
pub fn run_threaded(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    run_threaded_with_timeout(plan, graph, payloads, DEFAULT_TIMEOUT)
}

/// The `neighbor_allgatherv` variant of [`run_threaded`]: per-rank
/// payloads may differ in length.
pub fn run_threaded_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    run_inner(plan, graph, payloads, DEFAULT_TIMEOUT)
}

/// [`run_threaded`] with an explicit receive timeout (tests use short
/// ones to probe failure handling).
pub fn run_threaded_with_timeout(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    timeout: Duration,
) -> Result<Vec<Vec<u8>>, ExecError> {
    check_payloads(payloads, plan.n())?;
    run_inner(plan, graph, payloads, timeout)
}

fn run_inner(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    timeout: Duration,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let n = plan.n();
    if n == 0 {
        return Ok(Vec::new());
    }

    let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Wire>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);

    let results: Vec<Result<Vec<u8>, ExecError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for r in 0..n {
            let rx = receivers[r].take().expect("receiver taken once");
            let senders = Arc::clone(&senders);
            let program = &plan.per_rank[r];
            let my_payload = &payloads[r];
            handles.push(scope.spawn(move || -> Result<Vec<u8>, ExecError> {
                let mut store: HashMap<Rank, Arc<Vec<u8>>> =
                    HashMap::from([(r, Arc::new(my_payload.clone()))]);
                // messages that arrived before their phase
                let mut parked: HashMap<(Rank, u64), Wire> = HashMap::new();
                for (k, phase) in program.iter().enumerate() {
                    for msg in &phase.sends {
                        let mut blocks = Vec::with_capacity(msg.blocks.len());
                        for &b in &msg.blocks {
                            let data = store
                                .get(&b)
                                .ok_or(ExecError::MissingBlock { rank: r, block: b, phase: k })?;
                            blocks.push((b, Arc::clone(data)));
                        }
                        // a send can only fail if the peer already exited
                        // on error; the peer's error is the root cause
                        let _ = senders[msg.peer].send(Wire { src: r, tag: msg.tag, blocks });
                    }
                    let mut outstanding: std::collections::HashSet<(Rank, u64)> =
                        phase.recvs.iter().map(|m| (m.peer, m.tag)).collect();
                    // consume parked arrivals first
                    outstanding.retain(|key| {
                        if let Some(w) = parked.remove(key) {
                            for (b, data) in w.blocks {
                                store.entry(b).or_insert(data);
                            }
                            false
                        } else {
                            true
                        }
                    });
                    while !outstanding.is_empty() {
                        let w = rx
                            .recv_timeout(timeout)
                            .map_err(|_| ExecError::Timeout { rank: r, phase: k })?;
                        let key = (w.src, w.tag);
                        if outstanding.remove(&key) {
                            for (b, data) in w.blocks {
                                store.entry(b).or_insert(data);
                            }
                        } else {
                            parked.insert(key, w);
                        }
                    }
                }
                // assemble the receive buffer
                let ins = graph.in_neighbors(r);
                let mut rbuf = Vec::with_capacity(ins.iter().map(|&b| payloads[b].len()).sum());
                for &b in ins {
                    let data =
                        store.get(&b).ok_or(ExecError::Undelivered { rank: r, block: b })?;
                    rbuf.extend_from_slice(data);
                }
                Ok(rbuf)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| h.join().unwrap_or(Err(ExecError::WorkerPanic { rank: r })))
            .collect()
    });

    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::common_neighbor::plan_common_neighbor;
    use crate::exec::virtual_exec::{reference_allgather, run_virtual, test_payloads};
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn naive_threaded_matches_reference() {
        let g = erdos_renyi(16, 0.4, 1);
        let plan = plan_naive(&g);
        let payloads = test_payloads(16, 32, 2);
        let got = run_threaded(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn distance_halving_threaded_matches_virtual() {
        let g = erdos_renyi(24, 0.4, 8);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(24, 16, 9);
        let threaded = run_threaded(&plan, &g, &payloads).unwrap();
        let virt = run_virtual(&plan, &g, &payloads).unwrap();
        assert_eq!(threaded, virt);
        assert_eq!(threaded, reference_allgather(&g, &payloads));
    }

    #[test]
    fn common_neighbor_threaded_matches_reference() {
        let g = erdos_renyi(20, 0.5, 4);
        let plan = plan_common_neighbor(&g, 4);
        let payloads = test_payloads(20, 8, 1);
        let got = run_threaded(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn lost_message_times_out_cleanly() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let mut plan = plan_naive(&g);
        plan.per_rank[0][0].sends.clear(); // rank 1 will wait forever
        let payloads = test_payloads(2, 4, 0);
        let err =
            run_threaded_with_timeout(&plan, &g, &payloads, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, ExecError::Timeout { rank: 1, phase: 0 });
    }

    #[test]
    fn out_of_order_arrivals_are_parked() {
        // rank 0 sends two messages in phases 0 and 1; rank 1 receives
        // them in opposite phases — the phase-1 message must be parked if
        // it overtakes. (With unbounded channels ordering is FIFO per
        // pair, so construct cross-pair overtaking instead.)
        let g = Topology::from_edges(3, [(0, 2), (1, 2)]);
        // rank 2 expects 0's block in phase 0 and 1's in phase 1; but rank
        // 1 sends immediately. Its message arrives "early".
        let plan = crate::plan::CollectivePlan {
            algorithm: crate::plan::Algorithm::Naive,
            per_rank: vec![
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![0], tag: 0 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![crate::plan::PlannedMsg { peer: 2, blocks: vec![1], tag: 1 }],
                        recvs: vec![],
                    },
                    crate::plan::PlanPhase::default(),
                ],
                vec![
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 0, blocks: vec![0], tag: 0 }],
                    },
                    crate::plan::PlanPhase {
                        copy_blocks: 0,
                        sends: vec![],
                        recvs: vec![crate::plan::PlannedMsg { peer: 1, blocks: vec![1], tag: 1 }],
                    },
                ],
            ],
            selection: None,
        };
        let payloads = test_payloads(3, 4, 3);
        for _ in 0..20 {
            let got = run_threaded(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads));
        }
    }

    #[test]
    fn empty_communicator() {
        let g = Topology::from_edges(0, []);
        let plan = plan_naive(&g);
        assert!(run_threaded(&plan, &g, &[]).unwrap().is_empty());
    }

    #[test]
    fn repeated_runs_are_stable_under_scheduling() {
        // concurrency stress: many small ranks, many repetitions
        let g = erdos_renyi(48, 0.3, 13);
        let layout = ClusterLayout::new(4, 2, 6);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(48, 8, 4);
        let want = reference_allgather(&g, &payloads);
        for _ in 0..5 {
            assert_eq!(run_threaded(&plan, &g, &payloads).unwrap(), want);
        }
    }
}
