//! The virtual executor: deterministic, sequential, real bytes.
//!
//! Runs all ranks in lock-step, one plan phase at a time, moving actual
//! payload bytes between per-rank stores. It is the correctness oracle
//! for every algorithm and topology in the test suite and scales to
//! thousands of ranks.
//!
//! Two data-movement engines implement the same semantics:
//!
//! * [`ExecEngine::Arena`] (default) — each rank holds one flat buffer
//!   laid out by a precomputed [`crate::arena::ArenaLayout`]; a planned
//!   message is a handful of `copy_from_slice` calls between arenas
//!   (one, for Distance Halving halving steps) and receive buffers are
//!   assembled from precomputed runs;
//! * [`ExecEngine::PerBlock`] — the legacy store: blocks shared via
//!   `Arc` in per-rank hash maps. Kept as the baseline the bench
//!   harness compares against.
//!
//! Both engines accept ragged (`allgatherv`) payloads: the arena engine
//! resolves slot runs through per-rank [`SlotExtents`] byte tables, so
//! variable-size blocks keep the same handful-of-copies execution.

use crate::arena::{two_bufs, BlockArena, SlotExtents, SlotRun};
use crate::exec::{check_payloads, ExecEngine, ExecError, ExecOptions, ExecOutcome, Executor};
use crate::plan::CollectivePlan;
use crate::sizes::BlockSizes;
use nhood_telemetry::{Recorder, NULL};
use nhood_topology::{Rank, Topology};
use std::collections::HashMap;
use std::sync::Arc;

/// The sequential real-bytes backend (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Virtual;

impl Executor for Virtual {
    fn name(&self) -> &'static str {
        "virtual"
    }

    fn run(
        &self,
        plan: &CollectivePlan,
        graph: &Topology,
        payloads: &[Vec<u8>],
        arena: &mut BlockArena,
        opts: &ExecOptions<'_>,
    ) -> Result<ExecOutcome, ExecError> {
        if payloads.len() != plan.n() {
            return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
        }
        let rbufs = match opts.effective_engine() {
            ExecEngine::Arena => {
                let sizes = if opts.ragged {
                    BlockSizes::from_payloads(payloads)
                } else {
                    BlockSizes::Uniform(check_payloads(payloads, plan.n())?)
                };
                run_arena(plan, graph, payloads, &sizes, arena, opts)?
            }
            ExecEngine::PerBlock => {
                if !opts.ragged {
                    check_payloads(payloads, plan.n())?;
                }
                run_any(plan, graph, payloads, opts.recorder)?
            }
        };
        Ok(ExecOutcome { rbufs, ..ExecOutcome::default() })
    }
}

/// Zero-copy engine: direct arena-to-arena span copies.
fn run_arena(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    sizes: &BlockSizes,
    arena: &mut BlockArena,
    opts: &ExecOptions<'_>,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let rec = opts.recorder;
    let n = plan.n();
    let layout = arena.prepare(plan, graph)?;
    let exts = layout.extents(sizes);
    arena.fill(&layout, payloads, &exts);
    let mut bufs = arena.take_bufs();

    for k in 0..layout.phase_count {
        for (r, prog) in plan.per_rank.iter().enumerate() {
            if prog[k].copy_blocks > 0 {
                rec.copies(r, prog[k].copy_blocks);
            }
        }
        for r in 0..n {
            for op in &layout.ranks[r].phases[k].sends {
                let ext = &exts[r];
                let bytes: usize = op.runs.iter().map(|&run| ext.run_bytes(run)).sum();
                rec.msg_sent(r, op.peer, bytes);
                rec.msg_recvd(op.peer, r, bytes);
                let dst_runs = &layout.ranks[op.peer].recv_runs[&(r, op.tag)];
                let (src, dst) = two_bufs(&mut bufs, r, op.peer);
                copy_runs(src, &op.runs, ext, dst, dst_runs, &exts[op.peer]);
            }
        }
    }

    let mut rbufs = arena.take_rbufs(n);
    for (r, rb) in rbufs.iter_mut().enumerate() {
        let ext = &exts[r];
        let cap = rb.capacity();
        rb.clear();
        rb.reserve(layout.ranks[r].out_runs.iter().map(|&run| ext.run_bytes(run)).sum());
        for &(s, l) in &layout.ranks[r].out_runs {
            rb.extend_from_slice(&bufs[r][ext.offset(s as usize)..ext.offset((s + l) as usize)]);
        }
        arena.note_realloc(rb.capacity() != cap);
    }
    arena.restore_bufs(bufs);
    Ok(rbufs)
}

/// Copies blocks from `src` spans to `dst` spans. Both run lists carry
/// the same blocks in the same order (plan mirror-validation), so each
/// chunk's byte count agrees on the two sides even under ragged extents.
pub(crate) fn copy_runs(
    src: &[u8],
    src_runs: &[SlotRun],
    sext: &SlotExtents,
    dst: &mut [u8],
    dst_runs: &[SlotRun],
    dext: &SlotExtents,
) {
    let mut si = 0usize;
    let mut soff = 0u32;
    // Byte-coalesced pending chunk `(spos, dpos, len)`: slot runs that
    // are disjoint in slot space can still be byte-adjacent on both
    // sides (zero-size blocks under ragged extents, fragmented run
    // lists), so chunks are merged before the copy is issued — one
    // `copy_from_slice` per maximal byte-contiguous segment.
    let mut pend: Option<(usize, usize, usize)> = None;
    for &(dslot, dlen) in dst_runs {
        let mut need = dlen;
        let mut done = 0u32;
        while need > 0 {
            let (sslot, slen) = src_runs[si];
            let take = (slen - soff).min(need);
            let spos = sext.offset((sslot + soff) as usize);
            let nbytes = sext.offset((sslot + soff + take) as usize) - spos;
            let dpos = dext.offset((dslot + done) as usize);
            match &mut pend {
                Some((ps, pd, pl)) if *ps + *pl == spos && *pd + *pl == dpos => *pl += nbytes,
                _ => {
                    if let Some((ps, pd, pl)) = pend.replace((spos, dpos, nbytes)) {
                        dst[pd..pd + pl].copy_from_slice(&src[ps..ps + pl]);
                    }
                }
            }
            soff += take;
            need -= take;
            done += take;
            if soff == slen {
                si += 1;
                soff = 0;
            }
        }
    }
    if let Some((ps, pd, pl)) = pend {
        dst[pd..pd + pl].copy_from_slice(&src[ps..ps + pl]);
    }
}

/// Executes `plan` with the given per-rank payloads and returns each
/// rank's receive buffer: the payloads of its incoming neighbors,
/// concatenated in `in_neighbors` order (MPI neighborhood-allgather
/// semantics).
#[deprecated(
    note = "use `Virtual.run(...)` or `Virtual.run_simple(...)` (see docs/EXECUTION_API.md)"
)]
pub fn run_virtual(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    check_payloads(payloads, plan.n())?;
    run_any(plan, graph, payloads, &NULL)
}

/// [`run_virtual`] with a telemetry [`Recorder`].
#[deprecated(note = "use `Virtual.run(...)` with `ExecOptions::new().recorder(...)`")]
pub fn run_virtual_rec(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    rec: &dyn Recorder,
) -> Result<Vec<Vec<u8>>, ExecError> {
    check_payloads(payloads, plan.n())?;
    run_any(plan, graph, payloads, rec)
}

/// The `neighbor_allgatherv` variant of [`run_virtual`]: per-rank
/// payloads may have different lengths.
#[deprecated(note = "use `Virtual.run(...)` with `ExecOptions::new().ragged(true)`")]
pub fn run_virtual_v(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    run_any(plan, graph, payloads, &NULL)
}

/// [`run_virtual_v`] with a telemetry [`Recorder`].
#[deprecated(note = "use `Virtual.run(...)` with `ExecOptions::new().ragged(true).recorder(...)`")]
pub fn run_virtual_v_rec(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    rec: &dyn Recorder,
) -> Result<Vec<Vec<u8>>, ExecError> {
    if payloads.len() != plan.n() {
        return Err(ExecError::PayloadCountMismatch { got: payloads.len(), want: plan.n() });
    }
    run_any(plan, graph, payloads, rec)
}

/// The legacy per-block engine (also serves ragged payloads).
pub(crate) fn run_any(
    plan: &CollectivePlan,
    graph: &Topology,
    payloads: &[Vec<u8>],
    rec: &dyn Recorder,
) -> Result<Vec<Vec<u8>>, ExecError> {
    let n = plan.n();

    let mut store: Vec<HashMap<Rank, Arc<Vec<u8>>>> = payloads
        .iter()
        .enumerate()
        .map(|(r, p)| HashMap::from([(r, Arc::new(p.clone()))]))
        .collect();

    for k in 0..plan.phase_count() {
        // Assemble all sends against pre-phase stores.
        // (dst, packed blocks) pairs staged against pre-phase stores
        type InFlight = Vec<(Rank, Rank, Vec<(Rank, Arc<Vec<u8>>)>)>;
        let mut in_flight: InFlight = Vec::new();
        for (r, prog) in plan.per_rank.iter().enumerate() {
            if prog[k].copy_blocks > 0 {
                rec.copies(r, prog[k].copy_blocks);
            }
            for msg in &prog[k].sends {
                let mut packed = Vec::with_capacity(msg.blocks.len());
                let mut bytes = 0usize;
                for &b in &msg.blocks {
                    let data = store[r].get(&b).ok_or(ExecError::MissingBlock {
                        rank: r,
                        block: b,
                        phase: k,
                    })?;
                    bytes += data.len();
                    packed.push((b, Arc::clone(data)));
                }
                rec.msg_sent(r, msg.peer, bytes);
                in_flight.push((r, msg.peer, packed));
            }
        }
        // Deliver.
        for (src, dst, packed) in in_flight {
            let bytes = packed.iter().map(|(_, d)| d.len()).sum();
            rec.msg_recvd(dst, src, bytes);
            for (b, data) in packed {
                store[dst].entry(b).or_insert(data);
            }
        }
    }

    // Build receive buffers.
    let mut out = Vec::with_capacity(n);
    for (r, held) in store.iter().enumerate() {
        let ins = graph.in_neighbors(r);
        let mut rbuf = Vec::with_capacity(ins.iter().map(|&b| payloads[b].len()).sum());
        for &b in ins {
            let data = held.get(&b).ok_or(ExecError::Undelivered { rank: r, block: b })?;
            rbuf.extend_from_slice(data);
        }
        out.push(rbuf);
    }
    Ok(out)
}

/// Reference receive buffers straight from the definition — what any
/// correct neighborhood allgather must produce.
pub fn reference_allgather(graph: &Topology, payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
    (0..graph.n())
        .map(|r| {
            let mut rbuf = Vec::new();
            for &b in graph.in_neighbors(r) {
                rbuf.extend_from_slice(&payloads[b]);
            }
            rbuf
        })
        .collect()
}

/// Convenience payload generator for tests: rank `r`'s block is `m` bytes
/// derived from `r` and a seed, so misplaced blocks are detected.
pub fn test_payloads(n: usize, m: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|r| {
            (0..m)
                .map(|i| {
                    let x = (r as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed)
                        .wrapping_add(i as u64);
                    (x ^ (x >> 32)) as u8
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_pattern;
    use crate::common_neighbor::plan_common_neighbor;
    use crate::lower::lower;
    use crate::naive::plan_naive;
    use nhood_cluster::ClusterLayout;
    use nhood_topology::random::erdos_renyi;

    /// Runs both engines and checks they agree before returning the
    /// arena result.
    fn run_both(
        plan: &CollectivePlan,
        g: &Topology,
        payloads: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        let arena_out = Virtual.run_simple(plan, g, payloads)?;
        let legacy = Virtual.run(
            plan,
            g,
            payloads,
            &mut BlockArena::new(),
            &ExecOptions::new().engine(ExecEngine::PerBlock),
        )?;
        assert_eq!(arena_out, legacy.rbufs, "engines disagree");
        Ok(arena_out)
    }

    #[test]
    fn naive_matches_reference() {
        let g = erdos_renyi(24, 0.3, 1);
        let plan = plan_naive(&g);
        let payloads = test_payloads(24, 16, 7);
        let got = run_both(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }

    #[test]
    fn distance_halving_matches_reference() {
        for (n, delta, nodes, cores) in
            [(16, 0.3, 2, 4), (24, 0.5, 3, 4), (36, 0.1, 3, 6), (30, 0.7, 5, 3)]
        {
            let g = erdos_renyi(n, delta, 42);
            let layout = ClusterLayout::new(nodes, 2, cores);
            let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
            let payloads = test_payloads(n, 8, 3);
            let got = run_both(&plan, &g, &payloads)
                .unwrap_or_else(|e| panic!("n={n} delta={delta}: {e}"));
            assert_eq!(got, reference_allgather(&g, &payloads), "n={n} delta={delta}");
        }
    }

    #[test]
    fn common_neighbor_matches_reference() {
        for k in [2usize, 4, 8] {
            let g = erdos_renyi(32, 0.4, 9);
            let plan = plan_common_neighbor(&g, k);
            let payloads = test_payloads(32, 12, 1);
            let got = run_both(&plan, &g, &payloads).unwrap();
            assert_eq!(got, reference_allgather(&g, &payloads), "k={k}");
        }
    }

    #[test]
    fn zero_byte_payloads_work() {
        let g = erdos_renyi(12, 0.5, 2);
        let plan = plan_naive(&g);
        let payloads = vec![vec![]; 12];
        let got = run_both(&plan, &g, &payloads).unwrap();
        for (r, rbuf) in got.iter().enumerate() {
            assert!(rbuf.is_empty(), "rank {r}");
        }
    }

    #[test]
    fn payload_shape_errors() {
        let g = erdos_renyi(4, 0.5, 2);
        let plan = plan_naive(&g);
        assert_eq!(
            Virtual.run_simple(&plan, &g, &[vec![0u8; 4]]).unwrap_err(),
            ExecError::PayloadCountMismatch { got: 1, want: 4 }
        );
        let bad = vec![vec![0u8; 4], vec![0u8; 4], vec![0u8; 5], vec![0u8; 4]];
        assert_eq!(
            Virtual.run_simple(&plan, &g, &bad).unwrap_err(),
            ExecError::PayloadSizeMismatch { rank: 2, got: 5, want: 4 }
        );
    }

    #[test]
    fn corrupt_plan_caught_as_missing_block() {
        let g = Topology::from_edges(3, [(0, 2)]);
        let mut plan = plan_naive(&g);
        // rank 1 claims to send block 0 which it never received
        plan.per_rank[1][0].sends.push(crate::plan::PlannedMsg {
            peer: 2,
            blocks: vec![0],
            tag: 5,
        });
        let payloads = test_payloads(3, 4, 0);
        assert_eq!(
            run_both(&plan, &g, &payloads).unwrap_err(),
            ExecError::MissingBlock { rank: 1, block: 0, phase: 0 }
        );
    }

    #[test]
    fn dropped_message_caught_as_undelivered() {
        let g = Topology::from_edges(2, [(0, 1)]);
        let mut plan = plan_naive(&g);
        plan.per_rank[0][0].sends.clear();
        let payloads = test_payloads(2, 4, 0);
        assert_eq!(
            run_both(&plan, &g, &payloads).unwrap_err(),
            ExecError::Undelivered { rank: 1, block: 0 }
        );
    }

    #[test]
    fn payload_bytes_land_in_correct_slots() {
        // directed asymmetric graph: rbuf layout must follow in-neighbor
        // order, not arrival order
        let g = Topology::from_edges(4, [(2, 0), (1, 0), (3, 0)]);
        let plan = plan_naive(&g);
        let payloads = test_payloads(4, 4, 11);
        let got = run_both(&plan, &g, &payloads).unwrap();
        // in_neighbors(0) = [1, 2, 3]
        assert_eq!(&got[0][0..4], &payloads[1][..]);
        assert_eq!(&got[0][4..8], &payloads[2][..]);
        assert_eq!(&got[0][8..12], &payloads[3][..]);
    }

    #[test]
    fn allgatherv_ragged_payloads() {
        let g = erdos_renyi(20, 0.4, 6);
        let layout = ClusterLayout::new(3, 2, 4);
        let payloads: Vec<Vec<u8>> = (0..20).map(|r| vec![r as u8; r % 5]).collect(); // lengths 0..=4
        let want = reference_allgather(&g, &payloads);
        for plan in [
            plan_naive(&g),
            plan_common_neighbor(&g, 4),
            lower(&build_pattern(&g, &layout).unwrap(), &g),
        ] {
            // both engines serve ragged payloads and must agree
            for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
                let opts = ExecOptions::new().ragged(true).engine(engine);
                let got =
                    Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap().rbufs;
                assert_eq!(got, want, "{engine:?}");
            }
        }
        // the strict (uniform) call rejects ragged payloads
        assert!(matches!(
            Virtual.run_simple(&plan_naive(&g), &g, &payloads),
            Err(ExecError::PayloadSizeMismatch { .. })
        ));
    }

    #[test]
    fn recorder_counts_match_plan_statics_on_both_engines() {
        let g = erdos_renyi(24, 0.3, 5);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let payloads = test_payloads(24, 8, 1);
        for engine in [ExecEngine::Arena, ExecEngine::PerBlock] {
            let rec = nhood_telemetry::CountingRecorder::new(24);
            let opts = ExecOptions::new().engine(engine).recorder(&rec);
            let got =
                Virtual.run(&plan, &g, &payloads, &mut BlockArena::new(), &opts).unwrap().rbufs;
            assert_eq!(got, reference_allgather(&g, &payloads));
            let t = rec.totals();
            assert_eq!(t.msgs_sent as usize, plan.message_count(), "{engine:?}");
            assert_eq!(t.msgs_sent, t.msgs_recvd);
            assert_eq!(t.bytes_sent, t.bytes_recvd);
            assert_eq!(t.bytes_sent as usize, plan.total_blocks_sent() * 8);
        }
    }

    #[test]
    fn arena_is_reused_across_runs() {
        let g = erdos_renyi(24, 0.4, 8);
        let layout = ClusterLayout::new(3, 2, 4);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        let mut arena = BlockArena::new();
        let opts = ExecOptions::default();
        let mut prev = None;
        for round in 0..10u64 {
            let payloads = test_payloads(24, 32, round);
            let out = Virtual.run(&plan, &g, &payloads, &mut arena, &opts).unwrap();
            assert_eq!(out.rbufs, reference_allgather(&g, &payloads), "round {round}");
            // give the output buffers back so the next run reuses them
            arena.adopt_rbufs(out.rbufs);
            if let Some(p) = prev {
                assert_eq!(arena.reallocations(), p, "round {round} reallocated");
            }
            prev = Some(arena.reallocations());
        }
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let g = erdos_renyi(12, 0.4, 3);
        let plan = plan_naive(&g);
        let payloads = test_payloads(12, 8, 2);
        let want = reference_allgather(&g, &payloads);
        assert_eq!(run_virtual(&plan, &g, &payloads).unwrap(), want);
        assert_eq!(run_virtual_rec(&plan, &g, &payloads, &NULL).unwrap(), want);
        assert_eq!(run_virtual_v(&plan, &g, &payloads).unwrap(), want);
        assert_eq!(run_virtual_v_rec(&plan, &g, &payloads, &NULL).unwrap(), want);
    }

    #[test]
    fn large_scale_smoke() {
        // 540 ranks like the paper's smallest run, tiny payloads
        let g = erdos_renyi(540, 0.05, 4);
        let layout = ClusterLayout::niagara(15, 36);
        let plan = lower(&build_pattern(&g, &layout).unwrap(), &g);
        plan.validate(&g).unwrap();
        let payloads = test_payloads(540, 8, 5);
        let got = Virtual.run_simple(&plan, &g, &payloads).unwrap();
        assert_eq!(got, reference_allgather(&g, &payloads));
    }
}
