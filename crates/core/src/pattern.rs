//! Communication-pattern data structures for Distance Halving.
//!
//! A [`DhPattern`] is the per-communicator artifact that Algorithm 1 of
//! the paper builds once at `MPI_Dist_graph_create_adjacent` time and
//! that Algorithm 4 replays on every `MPI_Neighbor_allgather` call. For
//! each rank it records, per halving step: the selected **agent** (the
//! rank in the opposite half that takes over this rank's deliveries
//! there), the selected **origin** (the rank whose deliveries this rank
//! takes over), the blocks that arrive with the origin's buffer, and the
//! evolving responsibility map `O_org`/`O_on` that drives the final
//! (intra-socket + leftover) phase.
//!
//! Terminology follows Table I of the paper; "block `b`" always means
//! "the allgather payload contributed by rank `b`".

use crate::csr::RespMap;
use nhood_topology::Rank;

/// One halving step of one rank.
///
/// Block lists are **not** stored per step: a rank's buffer only ever
/// grows by appending arrivals, so the blocks held before any step are
/// a prefix of [`RankPattern::held_final`], and the blocks arriving
/// from the origin are a prefix of the *origin's* `held_final`. Each
/// step therefore records only the two prefix lengths — 80 flat bytes
/// instead of two heap vectors — which keeps the Θ(n log n) step table
/// from dominating peak RSS at 100k ranks. Resolve the actual slices
/// with [`DhPattern::held_before`] / [`DhPattern::arriving`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DhStep {
    /// The inclusive rank range of this rank's half (`h1`) *after* the
    /// split of this step.
    pub h1: (Rank, Rank),
    /// The inclusive rank range of the opposite half (`h2`).
    pub h2: (Rank, Rank),
    /// Agent selected in this step, if the search succeeded.
    pub agent: Option<Rank>,
    /// Origin selected in this step, if any.
    pub origin: Option<Rank>,
    /// Number of blocks this rank holds *before* this step (and
    /// therefore ships to the agent, wholesale, per Algorithm 4
    /// line 12): the first `held_len` entries of this rank's
    /// `held_final`, in buffer order.
    pub held_len: usize,
    /// Number of blocks that arrive from the origin during this step
    /// (the origin's pre-step buffer): the first `arr_len` entries of
    /// the **origin's** `held_final`. Zero when `origin == None`.
    pub arr_len: usize,
}

/// The full pattern of one rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankPattern {
    /// Halving steps, in order.
    pub steps: Vec<DhStep>,
    /// Final responsibility map after the last halving step: for each
    /// held block `b`, the targets this rank must still deliver `b` to
    /// (the union of the paper's `O_on` for `b == self` and
    /// `O_org[b]` for origin blocks). Self-targets never appear — they
    /// are satisfied by the receive-buffer copy on arrival. Stored as a
    /// flat CSR ([`RespMap`]) so the lowering hot path reads contiguous
    /// slices instead of chasing tree nodes.
    pub responsibilities: RespMap,
    /// All blocks held at the end of the halving phase, in buffer order
    /// (starts with this rank's own block).
    pub held_final: Vec<Rank>,
}

impl RankPattern {
    /// Number of steps in which an agent was found.
    pub fn agents_found(&self) -> usize {
        self.steps.iter().filter(|s| s.agent.is_some()).count()
    }

    /// Total final-phase messages this rank sends (one per distinct
    /// target).
    pub fn final_targets(&self) -> Vec<Rank> {
        let mut t: Vec<Rank> =
            self.responsibilities.values().flat_map(|v| v.iter().copied()).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// Aggregate statistics of a built pattern — the numbers behind the
/// paper's Fig. 8 discussion and the "80% agent-success at δ=0.05" claim.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SelectionStats {
    /// REQ signals exchanged during agent/origin selection.
    pub req: usize,
    /// ACCEPT signals.
    pub accept: usize,
    /// DROP signals.
    pub drop: usize,
    /// EXIT signals.
    pub exit: usize,
    /// Notification messages (agent announcements to out-neighbors,
    /// Algorithm 1 line 30).
    pub notifications: usize,
    /// Descriptor (`D`) messages sent to agents (Algorithm 1 line 47).
    pub descriptors: usize,
    /// Number of (rank, step) pairs in which an agent search ran.
    pub agent_searches: usize,
    /// Number of those searches that found an agent.
    pub agents_found: usize,
}

impl SelectionStats {
    /// All protocol signals (excluding notifications/descriptors).
    pub fn total_signals(&self) -> usize {
        self.req + self.accept + self.drop + self.exit
    }

    /// Fraction of agent searches that succeeded (the paper reports ~0.8
    /// for δ = 0.05 at 2160 ranks).
    pub fn success_rate(&self) -> f64 {
        if self.agent_searches == 0 {
            return 0.0;
        }
        self.agents_found as f64 / self.agent_searches as f64
    }

    /// Merges tallies from another round.
    pub fn merge(&mut self, other: &SelectionStats) {
        self.req += other.req;
        self.accept += other.accept;
        self.drop += other.drop;
        self.exit += other.exit;
        self.notifications += other.notifications;
        self.descriptors += other.descriptors;
        self.agent_searches += other.agent_searches;
        self.agents_found += other.agents_found;
    }
}

/// The complete Distance Halving communication pattern of a communicator.
#[derive(Clone, Debug, Default)]
pub struct DhPattern {
    /// Per-rank patterns, indexed by rank.
    pub ranks: Vec<RankPattern>,
    /// Selection-protocol statistics accumulated over all steps.
    pub stats: SelectionStats,
    /// `L`: ranks per socket used for the stop condition.
    pub ranks_per_socket: usize,
}

impl DhPattern {
    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.ranks.len()
    }

    /// Maximum number of halving steps over all ranks.
    pub fn max_steps(&self) -> usize {
        self.ranks.iter().map(|r| r.steps.len()).max().unwrap_or(0)
    }

    /// The blocks rank `r` holds before its step `t`, in buffer order —
    /// the prefix of `r`'s `held_final` that [`DhStep::held_len`]
    /// denotes.
    pub fn held_before(&self, r: Rank, t: usize) -> &[Rank] {
        let rp = &self.ranks[r];
        &rp.held_final[..rp.steps[t].held_len]
    }

    /// The blocks arriving at rank `r` during its step `t` (the
    /// origin's pre-step buffer, in the origin's buffer order), or the
    /// empty slice when the step has no origin.
    pub fn arriving(&self, r: Rank, t: usize) -> &[Rank] {
        let step = &self.ranks[r].steps[t];
        match step.origin {
            Some(o) => &self.ranks[o].held_final[..step.arr_len],
            None => &[],
        }
    }

    /// Mean number of blocks held at the end of the halving phase — the
    /// buffer-growth indicator of §V-B.
    pub fn mean_final_blocks(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: usize = self.ranks.iter().map(|r| r.held_final.len()).sum();
        total as f64 / self.ranks.len() as f64
    }
}

/// Splits an inclusive range `[start, end]` at its midpoint exactly like
/// Algorithm 1 lines 13–21: `mid = ⌊(start+end)/2⌋`, lower half
/// `[start, mid]`, upper half `[mid+1, end]`.
#[inline]
pub fn split_half(start: Rank, end: Rank) -> (Rank, (Rank, Rank), (Rank, Rank)) {
    debug_assert!(start < end, "cannot split a single-rank range");
    let mid = (start + end) / 2;
    (mid, (start, mid), (mid + 1, end))
}

/// `true` if `r` lies in the inclusive range.
#[inline]
pub fn in_range(r: Rank, range: (Rank, Rank)) -> bool {
    r >= range.0 && r <= range.1
}

/// Length of an inclusive range.
#[inline]
pub fn range_len(range: (Rank, Rank)) -> usize {
    range.1 - range.0 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_matches_algorithm1() {
        // even range
        let (mid, lo, hi) = split_half(0, 7);
        assert_eq!(mid, 3);
        assert_eq!(lo, (0, 3));
        assert_eq!(hi, (4, 7));
        // odd range: lower half gets the extra rank
        let (mid, lo, hi) = split_half(0, 8);
        assert_eq!(mid, 4);
        assert_eq!(lo, (0, 4));
        assert_eq!(hi, (5, 8));
        // offset range
        let (_, lo, hi) = split_half(10, 13);
        assert_eq!(lo, (10, 11));
        assert_eq!(hi, (12, 13));
    }

    #[test]
    fn range_helpers() {
        assert!(in_range(5, (5, 9)));
        assert!(in_range(9, (5, 9)));
        assert!(!in_range(4, (5, 9)));
        assert_eq!(range_len((3, 3)), 1);
        assert_eq!(range_len((0, 7)), 8);
    }

    #[test]
    fn repeated_halving_reaches_singletons() {
        // halving [0, n-1] repeatedly always terminates with ranges of 1
        for n in [2usize, 3, 5, 8, 36, 100] {
            let mut range = (0, n - 1);
            let mut steps = 0u32;
            while range_len(range) > 1 {
                let (_, lo, hi) = split_half(range.0, range.1);
                assert_eq!(range_len(lo) + range_len(hi), range_len(range));
                // follow the lower half (arbitrary)
                range = if steps.is_multiple_of(2) { lo } else { hi };
                steps += 1;
                assert!(steps < 64, "runaway halving for n={n}");
            }
        }
    }

    #[test]
    fn selection_stats_accounting() {
        let mut a = SelectionStats {
            req: 5,
            accept: 2,
            drop: 3,
            exit: 1,
            notifications: 4,
            descriptors: 2,
            agent_searches: 4,
            agents_found: 2,
        };
        assert_eq!(a.total_signals(), 11);
        assert!((a.success_rate() - 0.5).abs() < 1e-12);
        let b = a;
        a.merge(&b);
        assert_eq!(a.req, 10);
        assert_eq!(a.agent_searches, 8);
        assert!((a.success_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SelectionStats::default().success_rate(), 0.0);
    }

    #[test]
    fn rank_pattern_final_targets_dedup() {
        let mut rp = RankPattern::default();
        rp.responsibilities.insert(0, vec![3, 5]);
        rp.responsibilities.insert(2, vec![5, 4]);
        assert_eq!(rp.final_targets(), vec![3, 4, 5]);
    }

    #[test]
    fn pattern_aggregates() {
        let mut p = DhPattern { ranks_per_socket: 2, ..Default::default() };
        let mut r0 = RankPattern { held_final: vec![0, 7], ..Default::default() };
        r0.steps.push(DhStep { agent: Some(1), ..Default::default() });
        r0.steps.push(DhStep::default());
        let r1 = RankPattern { held_final: vec![1], ..Default::default() };
        p.ranks = vec![r0, r1];
        assert_eq!(p.n(), 2);
        assert_eq!(p.max_steps(), 2);
        assert!((p.mean_final_blocks() - 1.5).abs() < 1e-12);
        assert_eq!(p.ranks[0].agents_found(), 1);
    }
}
