//! Fingerprint-keyed plan cache: repeated communicator setups on the
//! same (topology, layout, algorithm) triple reuse the built
//! [`CollectivePlan`] instead of re-running pattern construction.
//!
//! Two tiers:
//!
//! * an in-memory LRU of `Arc<CollectivePlan>` (always on), and
//! * an optional disk tier ([`PlanCache::with_disk_dir`]) that persists
//!   every inserted plan via [`crate::plan_io`] and reloads it in a
//!   later process — the "persistent collective" workflow of Fig. 8.
//!
//! The key is a [`PlanFingerprint`]: a 128-bit hash of everything the
//! build consumes (adjacency, rank placement, algorithm parameters), so
//! two setups share a cache slot only when the builder would provably
//! emit the same plan. Disk loads are re-validated against the topology
//! before use; a stale or corrupt file is treated as a miss and removed.
//!
//! Fingerprints are computed with `std`'s `DefaultHasher` (SipHash with
//! fixed keys). That is stable within one build of the library but not
//! guaranteed across Rust releases — a toolchain upgrade may orphan disk
//! entries, which then simply miss and get rebuilt. See
//! `docs/PLAN_CACHE.md`.

use crate::collective::CollectiveOp;
use crate::plan::{Algorithm, CollectivePlan};
use crate::plan_io;
use crate::sizes::{BlockSizes, LoadMetric};
use nhood_cluster::ClusterLayout;
use nhood_topology::Topology;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A 128-bit content fingerprint of the inputs a plan was built from
/// (or of a finished plan itself — see [`PlanFingerprint::of_plan`],
/// which the zero-copy arena uses to key cached layouts).
///
/// Two independently seeded 64-bit SipHash passes; a collision requires
/// both halves to collide at once.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanFingerprint {
    hi: u64,
    lo: u64,
}

impl PlanFingerprint {
    /// The fingerprint as one `u128` (hi half in the top bits).
    pub fn as_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Runs `feed` twice into differently seeded hashers and combines
    /// the two 64-bit digests.
    fn digest(feed: impl Fn(&mut DefaultHasher)) -> Self {
        let pass = |seed: u64| {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            feed(&mut h);
            h.finish()
        };
        Self { hi: pass(0x6e68_6f6f_645f_6869), lo: pass(0x6e68_6f6f_645f_6c6f) }
    }

    /// Fingerprint of a *build request*: everything pattern construction
    /// consumes. Covers the adjacency lists, the layout's shape **and**
    /// rank placement (two layouts that map ranks to sockets differently
    /// fingerprint differently, even with equal shape), and the
    /// algorithm with its parameters. Rank labels matter: an isomorphic
    /// but relabeled graph is a different build request and gets a
    /// different fingerprint.
    pub fn of_build(graph: &Topology, layout: &ClusterLayout, algo: Algorithm) -> Self {
        Self::of_build_v(graph, layout, algo, &BlockSizes::default(), LoadMetric::default())
    }

    /// [`of_build`](Self::of_build) for size-aware builds: additionally
    /// covers the [`LoadMetric`] and — under [`LoadMetric::Bytes`], the
    /// one metric whose matching consumes the size table — the
    /// [`BlockSizes`] themselves. Under [`LoadMetric::Neighbors`] the
    /// builder provably ignores sizes, so uniform and ragged requests
    /// deliberately share a slot; under `Bytes` a uniform and a ragged
    /// build can never collide.
    pub fn of_build_v(
        graph: &Topology,
        layout: &ClusterLayout,
        algo: Algorithm,
        sizes: &BlockSizes,
        metric: LoadMetric,
    ) -> Self {
        Self::of_collective(graph, layout, algo, sizes, metric, &CollectiveOp::Allgather)
    }

    /// [`of_build_v`](Self::of_build_v) with the collective op's
    /// *plan-family tag* ([`CollectiveOp::plan_tag`]) hashed into the
    /// key. Ops that provably build the identical plan share a slot
    /// (allgather/allgatherv; the whole alltoallv/reduce family), while
    /// the two plan families can never collide — an allgather
    /// `CollectivePlan` is never served where an item-routed
    /// `AlltoallPlan` was asked for, even on identical topology, layout
    /// and algorithm.
    pub fn of_collective(
        graph: &Topology,
        layout: &ClusterLayout,
        algo: Algorithm,
        sizes: &BlockSizes,
        metric: LoadMetric,
        op: &CollectiveOp,
    ) -> Self {
        let tag = op.plan_tag();
        Self::digest(|h| {
            tag.hash(h);
            let n = graph.n();
            n.hash(h);
            for p in 0..n {
                let out = graph.out_neighbors(p);
                out.len().hash(h);
                out.hash(h);
            }
            layout.nodes().hash(h);
            layout.sockets_per_node().hash(h);
            layout.ranks_per_socket().hash(h);
            (layout.placement() == nhood_cluster::Placement::Block).hash(h);
            if layout.placement() == nhood_cluster::Placement::Block {
                // socket ranges are only defined (contiguous) under block
                // placement — the one placement the DH builder accepts
                for r in 0..n {
                    layout.socket_range(r).hash(h);
                }
            }
            let (id, param) = match algo {
                Algorithm::Naive => (0u64, 0u64),
                Algorithm::CommonNeighbor { k } => (1, k as u64),
                Algorithm::DistanceHalving => (2, 0),
                Algorithm::HierarchicalLeader { leaders_per_node } => (3, leaders_per_node as u64),
                Algorithm::Bruck => (4, 0),
                Algorithm::Pat { radix } => (5, radix as u64),
                Algorithm::Auto => (6, 0),
            };
            id.hash(h);
            param.hash(h);
            metric.id().hash(h);
            if metric == LoadMetric::Bytes {
                sizes.hash_into(h);
            }
        })
    }

    /// Fingerprint of an *auto-tuning request* — the key under which
    /// [`Algorithm::Auto`] caches its winning plan. Built on
    /// [`of_collective`](Self::of_collective) with the `Auto` algorithm
    /// id, so the keyspace is disjoint from every concrete algorithm's
    /// build keys; additionally XORs in a digest of the **full size
    /// table** (the tuner scores candidates byte-accurately even under
    /// [`LoadMetric::Neighbors`], where plain build keys skip sizes) and
    /// of `cost_tag`, a stable rendering of the §V cost model — two
    /// tuners with different link speeds must not share winners.
    ///
    /// The entry is retired on `mutate` alongside the plan keys it
    /// shadows: a churned adjacency hashes differently, so stale winners
    /// can never be served, but the communicator still explicitly
    /// retires the old key to free its LRU slot.
    pub fn of_tuner(
        graph: &Topology,
        layout: &ClusterLayout,
        sizes: &BlockSizes,
        metric: LoadMetric,
        cost_tag: &str,
    ) -> Self {
        let base = Self::of_collective(
            graph,
            layout,
            Algorithm::Auto,
            sizes,
            metric,
            &CollectiveOp::Allgather,
        );
        let extra = Self::digest(|h| {
            sizes.hash_into(h);
            cost_tag.hash(h);
        });
        Self { hi: base.hi ^ extra.hi, lo: base.lo ^ extra.lo }
    }

    /// Derives the fingerprint of a *mutated* build request from this
    /// one without rehashing the whole world: each churned edge `(u, v)`
    /// is hashed through the same dual-seed digest and XOR-folded into
    /// both halves. XOR makes the operation self-inverting — adding an
    /// edge and then removing it (or vice versa) restores the original
    /// fingerprint, so an add/remove round trip re-hits the original
    /// cache slot. Toggling the same edge set in any order commutes.
    ///
    /// The mutated keyspace is deliberately distinct from
    /// [`of_build_v`](Self::of_build_v) on the churned graph: a mutated
    /// key names "this base build plus this churn", not "a cold build of
    /// the new graph" (which could legitimately pick different agents).
    /// Disk lookups still re-validate against the actual topology, so a
    /// stale file under a mutated key is detected and removed.
    pub fn mutated(&self, edges: &[(nhood_topology::Rank, nhood_topology::Rank)]) -> Self {
        let mut out = *self;
        for &(u, v) in edges {
            let delta = Self::digest(|h| {
                u.hash(h);
                v.hash(h);
            });
            out.hi ^= delta.hi;
            out.lo ^= delta.lo;
        }
        out
    }

    /// Fingerprint of a *finished plan* on a topology — the key the
    /// [`crate::arena::BlockArena`] uses to decide whether its cached
    /// slot layout still applies to the plan it is handed.
    pub fn of_plan(plan: &CollectivePlan, graph: &Topology) -> Self {
        Self::digest(|h| {
            plan.n().hash(h);
            for prog in &plan.per_rank {
                prog.len().hash(h);
                for ph in prog {
                    ph.copy_blocks.hash(h);
                    for m in &ph.sends {
                        (0u8, m.peer, m.tag).hash(h);
                        m.blocks.hash(h);
                    }
                    for m in &ph.recvs {
                        (1u8, m.peer, m.tag).hash(h);
                        m.blocks.hash(h);
                    }
                }
            }
            graph.n().hash(h);
            for r in 0..graph.n() {
                graph.in_neighbors(r).hash(h);
            }
        })
    }
}

impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing and fell through to a build.
    pub misses: u64,
    /// The subset of `hits` that came off the disk tier.
    pub disk_hits: u64,
    /// The subset of `disk_hits` served through the memory-mapped fast
    /// path: integrity checksum good and topology digest matched, so
    /// the full `validate` pass was skipped.
    pub disk_fast_hits: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// In-memory entries displaced by LRU eviction (disk copies, when a
    /// disk tier is configured, survive eviction).
    pub evictions: u64,
}

struct Inner {
    map: HashMap<PlanFingerprint, Arc<CollectivePlan>>,
    /// Recency order: front = least recently used.
    order: VecDeque<PlanFingerprint>,
    stats: PlanCacheStats,
}

impl Inner {
    /// Moves `fp` to the most-recently-used position.
    fn touch(&mut self, fp: PlanFingerprint) {
        if let Some(i) = self.order.iter().position(|&k| k == fp) {
            self.order.remove(i);
        }
        self.order.push_back(fp);
    }
}

/// A thread-safe, fingerprint-keyed LRU of built plans with an optional
/// disk tier. Shared across communicators as an `Arc<PlanCache>` (see
/// `DistGraphComm::with_plan_cache`).
pub struct PlanCache {
    inner: Mutex<Inner>,
    disk_dir: Option<PathBuf>,
    capacity: usize,
}

// The service layer hands one `Arc<PlanCache>` to every tenant and the
// threaded executor's rank threads hit it concurrently — losing `Send`
// or `Sync` (e.g. by caching an `Rc` or a raw pointer in `Inner`) must
// be a compile error here, not a runtime surprise at the call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlanCache>();
    assert_send_sync::<PlanFingerprint>();
};

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("disk_dir", &self.disk_dir)
            .finish()
    }
}

impl PlanCache {
    /// An in-memory cache holding at most `capacity` plans (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                stats: PlanCacheStats::default(),
            }),
            disk_dir: None,
            capacity: capacity.max(1),
        }
    }

    /// Adds a disk tier under `dir` (created if absent): every insert is
    /// also persisted as `<fingerprint>.nhplan`, and lookups that miss in
    /// memory probe the directory before reporting a miss.
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.disk_dir = Some(dir);
        Ok(self)
    }

    /// The configured disk tier directory, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Maximum number of in-memory entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of in-memory entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// `true` when no plan is cached in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().expect("plan cache poisoned").stats
    }

    fn disk_path(&self, fp: PlanFingerprint) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{fp}.nhplan")))
    }

    /// Digest of the topology facts the disk tier's staleness check
    /// cares about: rank count and every in-neighbor list. Saved into
    /// the plan file's integrity footer by [`insert_validated`] and
    /// compared on lookup — a match (under a good checksum) proves the
    /// file holds exactly the plan that was validated against this
    /// topology at insert time, so re-validation can be skipped.
    fn graph_digest(graph: &Topology) -> (u64, u64) {
        let pass = |seed: u64| {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            graph.n().hash(&mut h);
            for r in 0..graph.n() {
                graph.in_neighbors(r).hash(&mut h);
            }
            h.finish()
        };
        (pass(0x6e68_6764_5f68_6921), pass(0x6e68_6764_5f6c_6f21))
    }

    /// Looks `fp` up: memory first, then the disk tier. The disk probe
    /// goes through the memory-mapped checked reader: a file whose
    /// integrity checksum and topology digest both hold is promoted
    /// without the expensive `validate` pass (the warm-start fast path);
    /// anything else is re-validated against `graph` before promotion. A
    /// file that fails to parse, checksum or validate is deleted and
    /// counted as a miss (the caller rebuilds and the insert overwrites
    /// it).
    pub fn lookup(&self, fp: PlanFingerprint, graph: &Topology) -> Option<Arc<CollectivePlan>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if let Some(plan) = inner.map.get(&fp).cloned() {
            inner.touch(fp);
            inner.stats.hits += 1;
            return Some(plan);
        }
        if let Some(path) = self.disk_path(fp) {
            if let Ok(checked) = plan_io::load_plan_checked(&path) {
                let fast =
                    checked.verified && checked.graph_digest == Some(Self::graph_digest(graph));
                if fast || checked.plan.validate(graph).is_ok() {
                    let plan = Arc::new(checked.plan);
                    Self::insert_locked(&mut inner, self.capacity, fp, Arc::clone(&plan));
                    // the disk promotion is a reuse, not a fresh build
                    inner.stats.insertions -= 1;
                    inner.stats.hits += 1;
                    inner.stats.disk_hits += 1;
                    inner.stats.disk_fast_hits += u64::from(fast);
                    return Some(plan);
                }
            }
            // unreadable, corrupt, or stale for this topology: drop it
            let _ = std::fs::remove_file(&path);
        }
        inner.stats.misses += 1;
        None
    }

    /// Memory-mapped warm start: serves the disk tier's copy of `fp` as
    /// a [`plan_io::MappedPlan`], whose per-rank programs decode lazily
    /// out of the mapping — "time to first rank ready" costs one
    /// checksum pass over the file instead of a full decode-copy plus
    /// validation. Only fast-path-eligible files are served: the v2
    /// footer must verify **and** the recorded topology digest must
    /// match `graph` (the same rule [`lookup`](Self::lookup) uses to
    /// skip re-validation, counted in `disk_fast_hits`). Everything
    /// else is a miss: legacy or digest-mismatched files are left on
    /// disk for `lookup`'s validated path, corrupt files are deleted.
    /// The memory tier is neither consulted nor populated — it holds
    /// materialized plans, and callers wanting one should use `lookup`.
    pub fn lookup_mapped(
        &self,
        fp: PlanFingerprint,
        graph: &Topology,
    ) -> Option<plan_io::MappedPlan> {
        let path = self.disk_path(fp)?;
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        match plan_io::load_plan_mapped(&path) {
            Ok(m) if m.graph_digest() == Some(Self::graph_digest(graph)) => {
                inner.stats.hits += 1;
                inner.stats.disk_hits += 1;
                inner.stats.disk_fast_hits += 1;
                Some(m)
            }
            // wrong topology, digest-less, absent, or pre-v2: not ours
            // to serve (or delete) — the validated path decides
            Ok(_) | Err(plan_io::PlanIoError::Io(_)) | Err(plan_io::PlanIoError::BadMagic) => {
                inner.stats.misses += 1;
                None
            }
            Err(plan_io::PlanIoError::Corrupt(_)) => {
                inner.stats.misses += 1;
                drop(inner);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn insert_locked(
        inner: &mut Inner,
        capacity: usize,
        fp: PlanFingerprint,
        plan: Arc<CollectivePlan>,
    ) {
        if inner.map.insert(fp, plan).is_none() && inner.map.len() > capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.touch(fp);
        inner.stats.insertions += 1;
    }

    /// Inserts (or replaces) the plan for `fp`, evicting the least
    /// recently used entry when the memory tier is full. With a disk
    /// tier, the plan is also written to `<fingerprint>.nhplan` with an
    /// integrity checksum (best-effort: an I/O failure leaves only the
    /// memory entry). No topology digest is recorded — later disk hits
    /// take the full re-validation path. Prefer
    /// [`insert_validated`](Self::insert_validated) when the plan is
    /// known-valid for its topology.
    pub fn insert(&self, fp: PlanFingerprint, plan: Arc<CollectivePlan>) {
        if let Some(path) = self.disk_path(fp) {
            let _ = plan_io::save_plan_checked(&plan, &path, None);
        }
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        Self::insert_locked(&mut inner, self.capacity, fp, plan);
    }

    /// [`insert`](Self::insert) for a plan the caller has validated (or
    /// built) against `graph`: the disk copy additionally records the
    /// topology digest, enabling the validation-free memory-mapped fast
    /// path on later lookups. The caller vouches that
    /// `plan.validate(graph)` holds — an unvalidated plan inserted here
    /// would be served without its runtime checks.
    pub fn insert_validated(
        &self,
        fp: PlanFingerprint,
        plan: Arc<CollectivePlan>,
        graph: &Topology,
    ) {
        if let Some(path) = self.disk_path(fp) {
            let _ = plan_io::save_plan_checked(&plan, &path, Some(Self::graph_digest(graph)));
        }
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        Self::insert_locked(&mut inner, self.capacity, fp, plan);
    }

    /// Drops the entry for `fp` from both tiers: the in-memory slot (and
    /// its recency record) and, when a disk tier is configured, the
    /// `<fingerprint>.nhplan` file. Used under topology churn to retire
    /// a plan the mutation invalidated. Returns `true` when either tier
    /// held the entry.
    pub fn retire(&self, fp: PlanFingerprint) -> bool {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        let had_mem = inner.map.remove(&fp).is_some();
        if had_mem {
            if let Some(i) = inner.order.iter().position(|&k| k == fp) {
                inner.order.remove(i);
            }
        }
        drop(inner);
        let had_disk = match self.disk_path(fp) {
            Some(path) => std::fs::remove_file(path).is_ok(),
            None => false,
        };
        had_mem || had_disk
    }

    /// Looks `fp` up and, on a miss, runs `build`, caches its result and
    /// returns it. The boolean is `true` on a hit (memory or disk). Build
    /// errors are returned as-is and cache nothing.
    pub fn get_or_build<E>(
        &self,
        fp: PlanFingerprint,
        graph: &Topology,
        build: impl FnOnce() -> Result<CollectivePlan, E>,
    ) -> Result<(Arc<CollectivePlan>, bool), E> {
        if let Some(plan) = self.lookup(fp, graph) {
            return Ok((plan, true));
        }
        let plan = Arc::new(build()?);
        // freshly built plans are valid for their topology by
        // construction, so the disk copy gets the fast-path digest
        self.insert_validated(fp, Arc::clone(&plan), graph);
        Ok((plan, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::plan_naive;
    use nhood_topology::random::erdos_renyi;
    use nhood_topology::Rank;

    fn layout(n: usize) -> ClusterLayout {
        ClusterLayout::new(n.div_ceil(8), 2, 4)
    }

    #[test]
    fn build_fingerprint_is_deterministic_and_input_sensitive() {
        let g = erdos_renyi(32, 0.3, 7);
        let l = layout(32);
        let a = PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving);
        let b = PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving);
        assert_eq!(a, b);
        assert_eq!(format!("{a}").len(), 32);
        // different algorithm, parameter, graph, or layout → different key
        assert_ne!(a, PlanFingerprint::of_build(&g, &l, Algorithm::Naive));
        assert_ne!(
            PlanFingerprint::of_build(&g, &l, Algorithm::CommonNeighbor { k: 2 }),
            PlanFingerprint::of_build(&g, &l, Algorithm::CommonNeighbor { k: 3 })
        );
        let g2 = erdos_renyi(32, 0.3, 8);
        assert_ne!(a, PlanFingerprint::of_build(&g2, &l, Algorithm::DistanceHalving));
        let l2 = ClusterLayout::new(8, 2, 2);
        assert_ne!(a, PlanFingerprint::of_build(&g, &l2, Algorithm::DistanceHalving));
    }

    #[test]
    fn size_table_keys_uniform_and_ragged_builds_distinctly() {
        let g = erdos_renyi(24, 0.4, 13);
        let l = layout(24);
        let algo = Algorithm::DistanceHalving;
        let uniform = BlockSizes::uniform(64);
        let ragged = BlockSizes::per_rank((0..24).map(|r| 8 + 8 * (r % 5)).collect());
        // Bytes-metric builds consume the size table: a uniform and a
        // ragged request must never share a cache slot, and two distinct
        // ragged tables must not collide either.
        let fu = PlanFingerprint::of_build_v(&g, &l, algo, &uniform, LoadMetric::Bytes);
        let fr = PlanFingerprint::of_build_v(&g, &l, algo, &ragged, LoadMetric::Bytes);
        assert_ne!(fu, fr);
        let ragged2 = BlockSizes::per_rank((0..24).map(|r| 8 + 8 * (r % 7)).collect());
        assert_ne!(fr, PlanFingerprint::of_build_v(&g, &l, algo, &ragged2, LoadMetric::Bytes));
        // The two metrics are distinct build requests even at equal sizes.
        assert_ne!(fu, PlanFingerprint::of_build_v(&g, &l, algo, &uniform, LoadMetric::Neighbors));
        // Neighbors-metric builds ignore sizes, so they share a slot —
        // and the legacy entry point is exactly that request.
        assert_eq!(
            PlanFingerprint::of_build_v(&g, &l, algo, &ragged, LoadMetric::Neighbors),
            PlanFingerprint::of_build(&g, &l, algo),
        );
    }

    #[test]
    fn isomorphic_permuted_graphs_fingerprint_differently() {
        // Relabeling ranks by a rotation keeps the graph isomorphic but
        // changes which physical rank holds which adjacency — the builder
        // would emit a different plan, so the fingerprints must differ.
        let n = 24;
        let g = erdos_renyi(n, 0.3, 11);
        let perm = |r: Rank| (r + 1) % n;
        let permuted =
            nhood_topology::Topology::from_edges(n, g.edges().map(|(u, v)| (perm(u), perm(v))));
        let l = layout(n);
        assert_ne!(
            PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving),
            PlanFingerprint::of_build(&permuted, &l, Algorithm::DistanceHalving),
        );
        // A node permutation moves nodes between groups but leaves every
        // socket range — all the builder consumes — untouched, so the
        // permuted layout builds the identical plan and SHARES the key.
        let l_perm = layout(n).with_node_permutation(vec![2, 0, 1]);
        assert_eq!(
            PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving),
            PlanFingerprint::of_build(&g, &l_perm, Algorithm::DistanceHalving),
        );
        // a different placement policy is a different build request
        let l_rr = layout(n).with_placement(nhood_cluster::Placement::RoundRobinNodes);
        assert_ne!(
            PlanFingerprint::of_build(&g, &l, Algorithm::Naive),
            PlanFingerprint::of_build(&g, &l_rr, Algorithm::Naive),
        );
    }

    #[test]
    fn plan_fingerprint_tracks_plan_content() {
        let g = erdos_renyi(16, 0.4, 3);
        let plan = plan_naive(&g);
        assert_eq!(PlanFingerprint::of_plan(&plan, &g), PlanFingerprint::of_plan(&plan, &g));
        let mut other = plan.clone();
        other.per_rank[0][0].copy_blocks += 1;
        assert_ne!(PlanFingerprint::of_plan(&plan, &g), PlanFingerprint::of_plan(&other, &g));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let g = erdos_renyi(8, 0.5, 1);
        let l = layout(8);
        let plan = Arc::new(plan_naive(&g));
        let fps: Vec<PlanFingerprint> =
            [Algorithm::Naive, Algorithm::CommonNeighbor { k: 2 }, Algorithm::DistanceHalving]
                .into_iter()
                .map(|a| PlanFingerprint::of_build(&g, &l, a))
                .collect();

        cache.insert(fps[0], Arc::clone(&plan));
        cache.insert(fps[1], Arc::clone(&plan));
        // touch fps[0] so fps[1] becomes LRU
        assert!(cache.lookup(fps[0], &g).is_some());
        cache.insert(fps[2], Arc::clone(&plan));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fps[1], &g).is_none(), "LRU entry should be gone");
        assert!(cache.lookup(fps[0], &g).is_some());
        assert!(cache.lookup(fps[2], &g).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn get_or_build_builds_once_then_hits() {
        let cache = PlanCache::new(4);
        let g = erdos_renyi(16, 0.3, 9);
        let l = layout(16);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);
        let mut builds = 0;
        let (first, hit) = cache
            .get_or_build(fp, &g, || -> Result<_, std::convert::Infallible> {
                builds += 1;
                Ok(plan_naive(&g))
            })
            .unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .get_or_build(fp, &g, || -> Result<_, std::convert::Infallible> {
                builds += 1;
                Ok(plan_naive(&g))
            })
            .unwrap();
        assert!(hit);
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn build_errors_pass_through_uncached() {
        let cache = PlanCache::new(4);
        let g = erdos_renyi(8, 0.5, 2);
        let fp = PlanFingerprint::of_build(&g, &layout(8), Algorithm::Naive);
        let r: Result<_, &str> = cache.get_or_build(fp, &g, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(cache.is_empty());
        assert!(cache.lookup(fp, &g).is_none());
    }

    #[test]
    fn mutated_fingerprint_is_self_inverting_and_order_free() {
        let g = erdos_renyi(32, 0.3, 7);
        let l = layout(32);
        let base = PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving);
        let churn = [(3usize, 17usize), (9, 2), (21, 30)];
        let fwd = base.mutated(&churn);
        assert_ne!(fwd, base, "churn must move the key");
        // self-inverting: toggling the same edges again restores the key
        assert_eq!(fwd.mutated(&churn), base);
        // order-free: any permutation lands on the same key
        let rev: Vec<_> = churn.iter().rev().copied().collect();
        assert_eq!(base.mutated(&rev), fwd);
        // each edge is its own toggle
        assert_eq!(base.mutated(&churn[..1]).mutated(&churn[1..]), fwd);
        // direction matters: (u, v) and (v, u) are different edges
        assert_ne!(base.mutated(&[(3, 17)]), base.mutated(&[(17, 3)]));
    }

    #[test]
    fn retire_drops_memory_and_disk_tiers() {
        let dir = std::env::temp_dir().join(format!("nhood_retire_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(16, 0.4, 5);
        let l = layout(16);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);
        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        cache.insert(fp, Arc::new(plan_naive(&g)));
        assert!(dir.join(format!("{fp}.nhplan")).exists());

        assert!(cache.retire(fp));
        assert!(cache.is_empty());
        assert!(!dir.join(format!("{fp}.nhplan")).exists());
        assert!(cache.lookup(fp, &g).is_none());
        assert!(!cache.retire(fp), "second retire finds nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutated_key_never_promotes_a_stale_disk_plan() {
        // The churn-stale hazard: a plan for the PRE-mutation topology
        // sits on disk under the post-mutation key (e.g. written by a
        // buggy or crashed mutator). The disk tier's revalidation must
        // refuse to promote it for the churned topology and clean it up.
        let dir = std::env::temp_dir().join(format!("nhood_churn_stale_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(16, 0.5, 31);
        let l = layout(16);
        let base = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);
        // churn: add an edge, so the pre-churn plan under-delivers on
        // the churned topology (a removed edge would merely leave the
        // old plan over-delivering, which validation tolerates)
        let grown = (0..16)
            .flat_map(|u| (0..16).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .unwrap();
        let g2 = nhood_topology::Topology::from_edges(16, g.edges().chain(std::iter::once(grown)));
        let mutated = base.mutated(&[grown]);

        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        // plant the PRE-churn plan on disk under the POST-churn key
        let stale = dir.join(format!("{mutated}.nhplan"));
        crate::plan_io::save_plan(&plan_naive(&g), &stale).unwrap();

        assert!(
            cache.lookup(mutated, &g2).is_none(),
            "stale pre-churn plan must not revalidate for the churned topology"
        );
        assert!(!stale.exists(), "stale file must be removed on detection");
        // and a correct post-churn plan inserted under the same key works
        cache.insert(mutated, Arc::new(plan_naive(&g2)));
        drop(cache);
        let fresh = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        let plan = fresh.lookup(mutated, &g2).expect("valid churned plan promotes");
        plan.validate(&g2).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contention_smoke_shared_cache_across_threads() {
        // The multi-tenant service shares ONE cache across every tenant
        // and worker thread. Hammer a small cache from several threads —
        // concurrent get_or_build / lookup / retire over more keys than
        // the capacity holds — and require: no deadlock, no panic, every
        // served plan validates for its topology, capacity respected,
        // and the counter deltas add up.
        let threads = 8usize;
        let iters = 200usize;
        let cache = PlanCache::new(4);
        let graphs: Vec<Topology> = (0..8).map(|s| erdos_renyi(16, 0.4, s as u64)).collect();
        let l = layout(16);
        let fps: Vec<PlanFingerprint> =
            graphs.iter().map(|g| PlanFingerprint::of_build(g, &l, Algorithm::Naive)).collect();

        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let graphs = &graphs;
                let fps = &fps;
                scope.spawn(move || {
                    for i in 0..iters {
                        let k = (t * 31 + i * 7) % graphs.len();
                        let (g, fp) = (&graphs[k], fps[k]);
                        let (plan, _hit) = cache
                            .get_or_build(fp, g, || -> Result<_, std::convert::Infallible> {
                                Ok(plan_naive(g))
                            })
                            .unwrap();
                        plan.validate(g).expect("served plan must fit its topology");
                        // interleave reads and occasional retirements
                        if let Some(p) = cache.lookup(fp, g) {
                            p.validate(g).unwrap();
                        }
                        if i % 17 == t % 17 {
                            cache.retire(fp);
                        }
                    }
                });
            }
        });

        assert!(cache.len() <= cache.capacity(), "LRU bound violated under contention");
        let s = cache.stats();
        let ops = (threads * iters) as u64;
        // every get_or_build is a hit or a miss, and every miss inserted
        assert!(s.hits + s.misses >= ops, "{s:?} vs {ops} get_or_build calls");
        assert!(s.insertions >= s.misses.min(1), "misses must insert: {s:?}");
        // the cache still works single-threaded afterwards
        let (plan, _) = cache
            .get_or_build(fps[0], &graphs[0], || -> Result<_, std::convert::Infallible> {
                Ok(plan_naive(&graphs[0]))
            })
            .unwrap();
        plan.validate(&graphs[0]).unwrap();
    }

    #[test]
    fn warm_start_fast_path_skips_validation_and_serves_identical_plans() {
        let dir = std::env::temp_dir().join(format!("nhood_fastpath_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(32, 0.3, 19);
        let l = layout(32);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);

        // cold process: build and insert through get_or_build (which
        // records the topology digest in the disk copy)
        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        let (built, hit) = cache
            .get_or_build(fp, &g, || -> Result<_, std::convert::Infallible> { Ok(plan_naive(&g)) })
            .unwrap();
        assert!(!hit);
        drop(cache);

        // warm process: the lookup must come off disk via the verified
        // fast path and serve a plan identical to the built one
        let warm = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        let served = warm.lookup(fp, &g).expect("warm disk hit");
        assert_eq!(served.per_rank, built.per_rank);
        assert_eq!(served.algorithm, built.algorithm);
        let s = warm.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.disk_fast_hits, 1, "verified file + matching digest must fast-path");

        // same file, DIFFERENT topology: digest mismatch forces the slow
        // validated path (which fails here — the plan under-delivers)
        let grown = (0..32)
            .flat_map(|u| (0..32).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .unwrap();
        let g2 = Topology::from_edges(32, g.edges().chain(std::iter::once(grown)));
        let other = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        assert!(other.lookup(fp, &g2).is_none(), "digest mismatch must not fast-path");
        assert_eq!(other.stats().disk_fast_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_mapped_serves_eligible_files_and_only_those() {
        let dir = std::env::temp_dir().join(format!("nhood_mapped_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(32, 0.3, 19);
        let l = layout(32);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);
        let plan = Arc::new(plan_naive(&g));

        // no disk tier: trivially a non-answer (and no counter churn)
        let memonly = PlanCache::new(4);
        assert!(memonly.lookup_mapped(fp, &g).is_none());

        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        // absent file: miss
        assert!(cache.lookup_mapped(fp, &g).is_none());
        cache.insert_validated(fp, Arc::clone(&plan), &g);

        // a fresh cache (fresh process, conceptually) maps it, counts a
        // fast hit, and serves per-rank programs identical to the plan
        let warm = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        let mapped = warm.lookup_mapped(fp, &g).expect("mapped warm hit");
        assert_eq!(mapped.n(), plan.n());
        for r in 0..plan.n() {
            assert_eq!(mapped.rank(r).unwrap(), plan.per_rank[r], "rank {r}");
        }
        assert_eq!(mapped.to_plan().unwrap().per_rank, plan.per_rank);
        let s = warm.stats();
        assert_eq!((s.hits, s.disk_hits, s.disk_fast_hits), (1, 1, 1), "{s:?}");

        // DIFFERENT topology: digest mismatch is a miss, and the file
        // survives for the validated path to judge
        let grown = (0..32)
            .flat_map(|u| (0..32).map(move |v| (u, v)))
            .find(|&(u, v)| u != v && !g.has_edge(u, v))
            .unwrap();
        let g2 = Topology::from_edges(32, g.edges().chain(std::iter::once(grown)));
        assert!(warm.lookup_mapped(fp, &g2).is_none());
        let path = dir.join(format!("{fp}.nhplan"));
        assert!(path.exists(), "digest mismatch must not delete the file");

        // digest-less (plain insert) files are not fast-path eligible
        cache.insert(fp, Arc::clone(&plan));
        assert!(PlanCache::new(4).with_disk_dir(&dir).unwrap().lookup_mapped(fp, &g).is_none());
        assert!(path.exists());

        // corrupt file: miss, deleted — the cold build takes over
        cache.insert_validated(fp, Arc::clone(&plan), &g);
        let mut evil = std::fs::read(&path).unwrap();
        let mid = evil.len() / 2;
        evil[mid] ^= 0x10;
        std::fs::write(&path, &evil).unwrap();
        assert!(PlanCache::new(4).with_disk_dir(&dir).unwrap().lookup_mapped(fp, &g).is_none());
        assert!(!path.exists(), "corrupt mapped file must be deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_files_are_deleted_and_rebuilt_cold() {
        use nhood_topology::rng::DetRng;
        let dir = std::env::temp_dir().join(format!("nhood_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(24, 0.4, 23);
        let l = layout(24);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);
        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        cache.insert_validated(fp, Arc::new(plan_naive(&g)), &g);
        let path = dir.join(format!("{fp}.nhplan"));
        let pristine = std::fs::read(&path).unwrap();

        let mut rng = DetRng::seed_from_u64(0x6d6d);
        for i in 0..40 {
            // corrupt the file: bit flips and truncations alternating
            let mut evil = pristine.clone();
            if i % 2 == 0 {
                let byte = rng.gen_below(evil.len() - 8); // under the checksum
                evil[byte] ^= 1 << rng.gen_below(8);
            } else {
                evil.truncate(rng.gen_below(evil.len()));
            }
            std::fs::write(&path, &evil).unwrap();

            // fresh cache (no memory tier): the lookup must never panic,
            // and must either serve a byte-correct plan (a flip the
            // decoder tolerates never verifies, so it gets re-validated)
            // or miss and delete the file
            let fresh = PlanCache::new(4).with_disk_dir(&dir).unwrap();
            match fresh.lookup(fp, &g) {
                Some(p) => p.validate(&g).expect("served plan must validate"),
                None => {
                    assert!(!path.exists(), "iteration {i}: corrupt file must be deleted");
                    // cold-build fallback repopulates the tier
                    let (p, hit) = fresh
                        .get_or_build(fp, &g, || -> Result<_, std::convert::Infallible> {
                            Ok(plan_naive(&g))
                        })
                        .unwrap();
                    assert!(!hit);
                    p.validate(&g).unwrap();
                    assert!(path.exists(), "iteration {i}: rebuild must repopulate disk");
                }
            }
            std::fs::write(&path, &pristine).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("nhood_plan_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = erdos_renyi(16, 0.4, 5);
        let l = layout(16);
        let fp = PlanFingerprint::of_build(&g, &l, Algorithm::Naive);

        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        cache.insert(fp, Arc::new(plan_naive(&g)));
        drop(cache);

        // a brand-new cache (fresh process, conceptually) finds it on disk
        let cache = PlanCache::new(4).with_disk_dir(&dir).unwrap();
        let plan = cache.lookup(fp, &g).expect("disk hit");
        plan.validate(&g).unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.misses, 0);
        // promoted: the second lookup is a pure memory hit
        assert!(cache.lookup(fp, &g).is_some());
        assert_eq!(cache.stats().disk_hits, 1);

        // a corrupt file is a miss and gets cleaned up
        let other = PlanFingerprint::of_build(&g, &l, Algorithm::DistanceHalving);
        let bad = dir.join(format!("{other}.nhplan"));
        std::fs::write(&bad, b"garbage").unwrap();
        assert!(cache.lookup(other, &g).is_none());
        assert!(!bad.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
