//! Automatic algorithm selection — thin shims over the
//! simulation-driven tuner in [`crate::autotune`].
//!
//! The original `recommend*` encoded static crossover thresholds
//! (density and message-size cutoffs fitted to `EXPERIMENTS.md`), and
//! `recommend_with` had a real bug: it classified **ragged** workloads
//! by whatever uniform `m` the caller happened to pass, ignoring the
//! actual byte totals. Both problems are gone the same way: selection
//! now scores every portfolio candidate through the §V cost model for
//! the exact (topology, layout, [`BlockSizes`]) request —
//! [`recommend_sized`] is the real surface, and the legacy entry points
//! delegate to it, so the thresholds can never drift from the model
//! again. Callers who know better can always pick explicitly.

use crate::comm::DistGraphComm;
use crate::plan::Algorithm;
use crate::sizes::BlockSizes;
use nhood_cluster::ClusterLayout;
use nhood_telemetry::NULL;
use nhood_topology::Topology;

/// Tuning knobs of the recommendation shims. The density / message-size
/// crossover thresholds of the pre-tuner implementation are retained
/// for API compatibility but **no longer consulted** — the simulated
/// sweep subsumes them.
#[derive(Clone, Copy, Debug)]
pub struct SelectionPolicy {
    /// Legacy threshold (unused): below this mean out-degree fraction
    /// of `n`, the static rules picked direct sends.
    pub min_density: f64,
    /// Legacy threshold (unused): at or above this payload size, the
    /// static rules picked the leader hierarchy.
    pub large_message_bytes: usize,
    /// Leaders per node of the hierarchical-leader candidate the tuner
    /// sweeps.
    pub leaders_per_node: usize,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        Self { min_density: 0.02, large_message_bytes: 4096, leaders_per_node: 8 }
    }
}

/// Recommends an allgather algorithm for a topology / layout / payload
/// size, using the default [`SelectionPolicy`].
pub fn recommend(graph: &Topology, layout: &ClusterLayout, m: usize) -> Algorithm {
    recommend_with(graph, layout, m, &SelectionPolicy::default())
}

/// [`recommend`] with an explicit policy. A uniform `m` is just the
/// degenerate size table — this shims to [`recommend_sized`].
pub fn recommend_with(
    graph: &Topology,
    layout: &ClusterLayout,
    m: usize,
    policy: &SelectionPolicy,
) -> Algorithm {
    recommend_sized(graph, layout, &BlockSizes::uniform(m), policy)
}

/// The size-aware selection surface: scores the full candidate
/// portfolio through the §V cost model against the **actual per-rank
/// byte totals** and returns the simulated winner. Degenerate inputs
/// (fewer than two ranks, a single node, a layout the topology does not
/// fit) short-circuit to [`Algorithm::Naive`] — with nothing to
/// combine, direct sends are optimal and a simulation sweep is waste.
pub fn recommend_sized(
    graph: &Topology,
    layout: &ClusterLayout,
    sizes: &BlockSizes,
    policy: &SelectionPolicy,
) -> Algorithm {
    let n = graph.n();
    if n < 2 || layout.nodes() == 1 || n <= layout.ranks_per_node() {
        return Algorithm::Naive;
    }
    let Ok(comm) = DistGraphComm::create_adjacent(graph.clone(), layout.clone()) else {
        return Algorithm::Naive;
    };
    let cands = crate::autotune::candidates(n, layout, policy.leaders_per_node);
    match comm.tune_candidates(&cands, sizes, &NULL) {
        Ok(outcome) => outcome.winner,
        Err(_) => Algorithm::Naive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sim_exec::{simulate, simulate_v, SimCost};
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn recommendation_is_the_simulated_argmin() {
        // the recommendation must match the best candidate under the
        // tuner's own cost model — selection IS the sweep now
        let layout = ClusterLayout::niagara(6, 36);
        let cost = SimCost::niagara();
        for (delta, m) in [(0.3f64, 64usize), (0.3, 262_144), (0.5, 64), (0.1, 65_536)] {
            let g = erdos_renyi(216, delta, 7);
            let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
            let rec = recommend(&g, &layout, m);
            let t_rec = simulate(&comm.plan(rec).unwrap(), &layout, m, &cost).unwrap().makespan;
            let cands = crate::autotune::candidates(
                216,
                &layout,
                SelectionPolicy::default().leaders_per_node,
            );
            for cand in cands {
                let t = simulate(&comm.plan(cand).unwrap(), &layout, m, &cost).unwrap().makespan;
                assert!(
                    t_rec <= t + 1e-15,
                    "delta={delta} m={m}: recommended {rec} ({t_rec:.2e}s) beaten by {cand} ({t:.2e}s)"
                );
            }
        }
    }

    #[test]
    fn single_node_is_always_direct() {
        let layout = ClusterLayout::new(1, 2, 16);
        let g = erdos_renyi(32, 0.5, 2);
        assert_eq!(recommend(&g, &layout, 64), Algorithm::Naive);
        assert_eq!(recommend(&g, &layout, 1 << 22), Algorithm::Naive);
    }

    #[test]
    fn tiny_communicators_are_direct() {
        let layout = ClusterLayout::new(2, 1, 1);
        assert_eq!(recommend(&Topology::from_edges(1, []), &layout, 64), Algorithm::Naive);
    }

    #[test]
    fn ragged_sizes_flow_into_selection() {
        // Regression: recommend_with used to classify ragged workloads
        // by the uniform m alone. recommend_sized must consume the real
        // table: its winner is the argmin under THOSE byte totals.
        let layout = ClusterLayout::niagara(4, 32);
        let g = erdos_renyi(128, 0.3, 3);
        // every 7th rank huge, the rest tiny — a mean-m classifier and
        // a table-aware one see very different workloads
        let table: Vec<usize> = (0..128).map(|r| if r % 7 == 0 { 1 << 18 } else { 16 }).collect();
        let sizes = BlockSizes::per_rank(table.clone());
        let policy = SelectionPolicy::default();
        let rec = recommend_sized(&g, &layout, &sizes, &policy);
        let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
        let cost = SimCost::niagara();
        let t_rec = simulate_v(&comm.plan(rec).unwrap(), &layout, &table, &cost).unwrap().makespan;
        for cand in crate::autotune::candidates(128, &layout, policy.leaders_per_node) {
            let t = simulate_v(&comm.plan(cand).unwrap(), &layout, &table, &cost).unwrap().makespan;
            assert!(t_rec <= t + 1e-15, "ragged winner {rec} beaten by {cand}");
        }
    }

    #[test]
    fn uniform_shim_agrees_with_the_sized_surface() {
        let layout = ClusterLayout::niagara(4, 32);
        let g = erdos_renyi(128, 0.2, 3);
        let policy = SelectionPolicy::default();
        for m in [4usize, 64, 4096, 65_536] {
            assert_eq!(
                recommend_with(&g, &layout, m, &policy),
                recommend_sized(&g, &layout, &BlockSizes::uniform(m), &policy),
                "m={m}"
            );
        }
    }
}
