//! Automatic algorithm selection — the production feature the
//! experiments point at: Distance Halving wins the latency-bound regime
//! (small messages, non-trivial density), the hierarchical leader design
//! wins the bandwidth-bound regime, and very sparse neighborhoods are
//! best left to direct sends (see `EXPERIMENTS.md`, "ext-leader" and
//! Fig. 5). [`recommend`] encodes those crossovers; callers who know
//! better can always pick explicitly.

use crate::plan::Algorithm;
use nhood_cluster::ClusterLayout;
use nhood_topology::Topology;

/// Tunable crossover thresholds (defaults fitted to the full-scale
/// sweeps in `EXPERIMENTS.md`).
#[derive(Clone, Copy, Debug)]
pub struct SelectionPolicy {
    /// Below this mean out-degree fraction of `n`, direct sends win
    /// (nothing to combine).
    pub min_density: f64,
    /// At or above this payload size (bytes), prefer the leader
    /// hierarchy over Distance Halving.
    pub large_message_bytes: usize,
    /// Leaders per node when the leader hierarchy is chosen.
    pub leaders_per_node: usize,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        Self { min_density: 0.02, large_message_bytes: 4096, leaders_per_node: 8 }
    }
}

/// Recommends an allgather algorithm for a topology / layout / payload
/// size, using the default [`SelectionPolicy`].
pub fn recommend(graph: &Topology, layout: &ClusterLayout, m: usize) -> Algorithm {
    recommend_with(graph, layout, m, &SelectionPolicy::default())
}

/// [`recommend`] with explicit thresholds.
pub fn recommend_with(
    graph: &Topology,
    layout: &ClusterLayout,
    m: usize,
    policy: &SelectionPolicy,
) -> Algorithm {
    let n = graph.n();
    if n < 2 {
        return Algorithm::Naive;
    }
    // single node: no inter-node traffic to save — relaying only adds
    // copies, so stay direct
    if layout.nodes() == 1 || n <= layout.ranks_per_node() {
        return Algorithm::Naive;
    }
    let density = graph.density();
    if density < policy.min_density {
        return Algorithm::Naive;
    }
    if m >= policy.large_message_bytes {
        return Algorithm::HierarchicalLeader { leaders_per_node: policy.leaders_per_node };
    }
    Algorithm::DistanceHalving
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sim_exec::{simulate, SimCost};
    use crate::DistGraphComm;
    use nhood_topology::random::erdos_renyi;

    #[test]
    fn crossovers_match_the_documented_regimes() {
        let layout = ClusterLayout::niagara(6, 36);
        let dense = erdos_renyi(216, 0.3, 1);
        assert_eq!(recommend(&dense, &layout, 64), Algorithm::DistanceHalving);
        assert!(matches!(
            recommend(&dense, &layout, 1 << 20),
            Algorithm::HierarchicalLeader { .. }
        ));
        let sparse = erdos_renyi(216, 0.005, 1);
        assert_eq!(recommend(&sparse, &layout, 64), Algorithm::Naive);
    }

    #[test]
    fn single_node_is_always_direct() {
        let layout = ClusterLayout::new(1, 2, 16);
        let g = erdos_renyi(32, 0.5, 2);
        assert_eq!(recommend(&g, &layout, 64), Algorithm::Naive);
        assert_eq!(recommend(&g, &layout, 1 << 22), Algorithm::Naive);
    }

    #[test]
    fn tiny_communicators_are_direct() {
        let layout = ClusterLayout::new(2, 1, 1);
        assert_eq!(recommend(&Topology::from_edges(1, []), &layout, 64), Algorithm::Naive);
    }

    #[test]
    fn recommendation_is_never_far_from_the_best_choice() {
        // the recommended algorithm must be within 2x of the best of the
        // candidate set across a small grid of scenarios
        let layout = ClusterLayout::niagara(6, 36);
        let cost = SimCost::niagara();
        for (delta, m) in [(0.3f64, 64usize), (0.3, 262_144), (0.5, 64), (0.1, 65_536)] {
            let g = erdos_renyi(216, delta, 7);
            let comm = DistGraphComm::create_adjacent(g.clone(), layout.clone()).unwrap();
            let rec = recommend(&g, &layout, m);
            let t_rec = simulate(&comm.plan(rec).unwrap(), &layout, m, &cost).unwrap().makespan;
            let best = [
                Algorithm::Naive,
                Algorithm::DistanceHalving,
                Algorithm::HierarchicalLeader { leaders_per_node: 8 },
            ]
            .into_iter()
            .map(|a| simulate(&comm.plan(a).unwrap(), &layout, m, &cost).unwrap().makespan)
            .fold(f64::MAX, f64::min);
            assert!(
                t_rec <= 2.0 * best,
                "delta={delta} m={m}: recommended {rec} is {t_rec:.2e}s vs best {best:.2e}s"
            );
        }
    }

    #[test]
    fn policy_thresholds_respected() {
        let layout = ClusterLayout::niagara(4, 32);
        let g = erdos_renyi(128, 0.2, 3);
        let policy =
            SelectionPolicy { min_density: 0.5, large_message_bytes: 8, leaders_per_node: 2 };
        // density 0.2 < 0.5 → naive regardless of size
        assert_eq!(recommend_with(&g, &layout, 4, &policy), Algorithm::Naive);
        let policy2 = SelectionPolicy { min_density: 0.01, ..policy };
        assert_eq!(
            recommend_with(&g, &layout, 64, &policy2),
            Algorithm::HierarchicalLeader { leaders_per_node: 2 }
        );
        assert_eq!(recommend_with(&g, &layout, 4, &policy2), Algorithm::DistanceHalving);
    }
}
