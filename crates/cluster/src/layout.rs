//! Cluster layout: how ranks map onto nodes, sockets and cores.
//!
//! The Distance Halving algorithm is built around physical locality:
//! halving stops once a half fits on one **socket** (`L` ranks), and the
//! simulator charges different α/β per locality level. This module models
//! the block rank placement used on the paper's Niagara runs (consecutive
//! ranks fill a socket, then the next socket, then the next node) plus a
//! round-robin alternative for placement ablations.

/// A rank identifier, `0..n`.
pub type Rank = usize;

/// Physical position of a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Node index.
    pub node: usize,
    /// Socket index within the node.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
}

/// How close two ranks are, from the network's point of view.
///
/// Ordered from cheapest to most expensive; the simulator and the Hockney
/// parameter set key off this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// Same node, same socket: shared-memory, shared L3.
    SameSocket,
    /// Same node, different socket: shared-memory across the NUMA link.
    SameNode,
    /// Different nodes within one (Dragonfly+) group: one local hop.
    SameGroup,
    /// Different groups: traverses a global link.
    RemoteGroup,
}

/// Rank-to-core placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Consecutive ranks fill a socket, then the node, then the next node
    /// (`--map-by core`, the paper's configuration).
    Block,
    /// Rank `r` goes to node `r % nodes` (`--map-by node`); used only for
    /// placement ablations.
    RoundRobinNodes,
}

/// A homogeneous cluster: `nodes × sockets_per_node × cores_per_socket`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterLayout {
    nodes: usize,
    sockets_per_node: usize,
    cores_per_socket: usize,
    nodes_per_group: usize,
    placement: Placement,
    /// Physical slot of each logical node: `node_map[i]` is where logical
    /// node `i` actually sits in the machine (group membership follows
    /// the physical slot). Identity unless a job-placement permutation
    /// was applied — models batch schedulers handing a job different
    /// nodes on every submission, the variance source §VII-B discusses.
    node_map: Option<Vec<usize>>,
}

impl ClusterLayout {
    /// Creates a block-placed layout with every node in one group.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nodes: usize, sockets_per_node: usize, cores_per_socket: usize) -> Self {
        Self::with_groups(nodes, sockets_per_node, cores_per_socket, nodes.max(1))
    }

    /// Creates a block-placed layout with `nodes_per_group` nodes per
    /// Dragonfly+-style group.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn with_groups(
        nodes: usize,
        sockets_per_node: usize,
        cores_per_socket: usize,
        nodes_per_group: usize,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(sockets_per_node > 0, "need at least one socket per node");
        assert!(cores_per_socket > 0, "need at least one core per socket");
        assert!(nodes_per_group > 0, "need at least one node per group");
        Self {
            nodes,
            sockets_per_node,
            cores_per_socket,
            nodes_per_group,
            placement: Placement::Block,
            node_map: None,
        }
    }

    /// Niagara-like preset: the paper's testbed has 40-core nodes split
    /// over two sockets; jobs in the paper use 32–36 ranks per node. This
    /// preset takes the number of nodes and the ranks actually used per
    /// node (must be even, split evenly across the two sockets).
    ///
    /// # Panics
    /// Panics if `ranks_per_node` is odd or zero.
    pub fn niagara(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(
            ranks_per_node > 0 && ranks_per_node.is_multiple_of(2),
            "ranks_per_node must be positive and even, got {ranks_per_node}"
        );
        Self::with_groups(nodes, 2, ranks_per_node / 2, 16)
    }

    /// Switches the placement policy (builder style).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Applies a job-placement permutation: logical node `i` is hosted on
    /// physical slot `perm[i]`. Group membership (and therefore
    /// same-group vs remote-group locality) follows the physical slot —
    /// rerunning an experiment under different permutations reproduces
    /// the run-to-run variance of real batch allocations.
    ///
    /// # Panics
    /// Panics unless `perm` is a permutation of `0..nodes`.
    pub fn with_node_permutation(mut self, perm: Vec<usize>) -> Self {
        assert_eq!(perm.len(), self.nodes, "permutation must cover all nodes");
        let mut seen = vec![false; self.nodes];
        for &slot in &perm {
            assert!(slot < self.nodes, "slot {slot} out of range");
            assert!(!std::mem::replace(&mut seen[slot], true), "slot {slot} repeated");
        }
        self.node_map = Some(perm);
        self
    }

    /// Total rank capacity of the cluster.
    pub fn capacity(&self) -> usize {
        self.nodes * self.sockets_per_node * self.cores_per_socket
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Sockets per node (`S` in the paper).
    pub fn sockets_per_node(&self) -> usize {
        self.sockets_per_node
    }

    /// Cores (ranks) per socket (`L` in the paper).
    pub fn ranks_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Ranks per node (`S·L`).
    pub fn ranks_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Nodes per group.
    pub fn nodes_per_group(&self) -> usize {
        self.nodes_per_group
    }

    /// Current placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Physical location of `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= capacity()`.
    pub fn location(&self, rank: Rank) -> Location {
        assert!(rank < self.capacity(), "rank {rank} exceeds capacity {}", self.capacity());
        match self.placement {
            Placement::Block => {
                let per_node = self.ranks_per_node();
                let node = rank / per_node;
                let within = rank % per_node;
                Location {
                    node,
                    socket: within / self.cores_per_socket,
                    core: within % self.cores_per_socket,
                }
            }
            Placement::RoundRobinNodes => {
                let node = rank % self.nodes;
                let within = rank / self.nodes;
                Location {
                    node,
                    socket: within / self.cores_per_socket,
                    core: within % self.cores_per_socket,
                }
            }
        }
    }

    /// Group index of a (logical) node, after any placement permutation.
    pub fn group_of_node(&self, node: usize) -> usize {
        let slot = match &self.node_map {
            Some(map) => map[node],
            None => node,
        };
        slot / self.nodes_per_group
    }

    /// Locality relation between two ranks. Two equal ranks are
    /// [`Locality::SameSocket`].
    pub fn locality(&self, a: Rank, b: Rank) -> Locality {
        let la = self.location(a);
        let lb = self.location(b);
        if la.node == lb.node {
            if la.socket == lb.socket {
                Locality::SameSocket
            } else {
                Locality::SameNode
            }
        } else if self.group_of_node(la.node) == self.group_of_node(lb.node) {
            Locality::SameGroup
        } else {
            Locality::RemoteGroup
        }
    }

    /// `true` if the two ranks share a node.
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.location(a).node == self.location(b).node
    }

    /// `true` if the two ranks share a socket.
    pub fn same_socket(&self, a: Rank, b: Rank) -> bool {
        let la = self.location(a);
        let lb = self.location(b);
        la.node == lb.node && la.socket == lb.socket
    }

    /// With block placement, ranks on one socket form a contiguous range;
    /// returns that inclusive range for the socket containing `rank`.
    ///
    /// # Panics
    /// Panics under [`Placement::RoundRobinNodes`], where socket mates are
    /// not contiguous.
    pub fn socket_range(&self, rank: Rank) -> (Rank, Rank) {
        assert_eq!(
            self.placement,
            Placement::Block,
            "socket ranges are contiguous only under block placement"
        );
        let l = self.ranks_per_socket();
        let base = (rank / l) * l;
        (base, base + l - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_sockets_first() {
        let c = ClusterLayout::new(2, 2, 3); // 12 ranks
        assert_eq!(c.capacity(), 12);
        assert_eq!(c.location(0), Location { node: 0, socket: 0, core: 0 });
        assert_eq!(c.location(2), Location { node: 0, socket: 0, core: 2 });
        assert_eq!(c.location(3), Location { node: 0, socket: 1, core: 0 });
        assert_eq!(c.location(6), Location { node: 1, socket: 0, core: 0 });
        assert_eq!(c.location(11), Location { node: 1, socket: 1, core: 2 });
    }

    #[test]
    fn round_robin_placement_spreads_nodes() {
        let c = ClusterLayout::new(3, 1, 4).with_placement(Placement::RoundRobinNodes);
        assert_eq!(c.location(0).node, 0);
        assert_eq!(c.location(1).node, 1);
        assert_eq!(c.location(2).node, 2);
        assert_eq!(c.location(3).node, 0);
        assert_eq!(c.location(3).core, 1);
    }

    #[test]
    fn locality_levels() {
        let c = ClusterLayout::with_groups(4, 2, 2, 2); // groups {0,1}, {2,3}
        assert_eq!(c.locality(0, 1), Locality::SameSocket);
        assert_eq!(c.locality(0, 2), Locality::SameNode);
        assert_eq!(c.locality(0, 4), Locality::SameGroup); // node 1
        assert_eq!(c.locality(0, 8), Locality::RemoteGroup); // node 2
        assert_eq!(c.locality(5, 5), Locality::SameSocket);
        // symmetry
        assert_eq!(c.locality(8, 0), Locality::RemoteGroup);
    }

    #[test]
    fn locality_ordering_is_cost_ordering() {
        assert!(Locality::SameSocket < Locality::SameNode);
        assert!(Locality::SameNode < Locality::SameGroup);
        assert!(Locality::SameGroup < Locality::RemoteGroup);
    }

    #[test]
    fn niagara_preset_shape() {
        let c = ClusterLayout::niagara(60, 36);
        assert_eq!(c.capacity(), 2160);
        assert_eq!(c.sockets_per_node(), 2);
        assert_eq!(c.ranks_per_socket(), 18);
        assert_eq!(c.ranks_per_node(), 36);
        assert_eq!(c.nodes_per_group(), 16);
        // nodes 0..15 in group 0, 16.. in group 1
        assert_eq!(c.group_of_node(15), 0);
        assert_eq!(c.group_of_node(16), 1);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn niagara_rejects_odd_ranks_per_node() {
        ClusterLayout::niagara(4, 35);
    }

    #[test]
    fn socket_ranges_contiguous_under_block() {
        let c = ClusterLayout::new(2, 2, 4);
        assert_eq!(c.socket_range(0), (0, 3));
        assert_eq!(c.socket_range(3), (0, 3));
        assert_eq!(c.socket_range(4), (4, 7));
        assert_eq!(c.socket_range(15), (12, 15));
        // every rank in the range really shares the socket
        for r in 0..16 {
            let (lo, hi) = c.socket_range(r);
            for q in lo..=hi {
                assert!(c.same_socket(r, q));
            }
            if hi + 1 < 16 {
                assert!(!c.same_socket(r, hi + 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "block placement")]
    fn socket_range_requires_block() {
        ClusterLayout::new(2, 1, 2).with_placement(Placement::RoundRobinNodes).socket_range(0);
    }

    #[test]
    fn node_permutation_changes_groups_only() {
        let base = ClusterLayout::with_groups(4, 1, 2, 2); // groups {0,1},{2,3}
                                                           // swap nodes 1 and 2 across the group boundary
        let permuted = base.clone().with_node_permutation(vec![0, 2, 1, 3]);
        // same-node/socket locality is untouched
        assert_eq!(permuted.locality(0, 1), base.locality(0, 1));
        // node 1 now lives in group 1: ranks on nodes 0 and 1 are remote
        assert_eq!(base.locality(0, 2), Locality::SameGroup);
        assert_eq!(permuted.locality(0, 2), Locality::RemoteGroup);
        // and nodes 0, 2 now share a group
        assert_eq!(base.locality(0, 4), Locality::RemoteGroup);
        assert_eq!(permuted.locality(0, 4), Locality::SameGroup);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn bad_permutation_rejected() {
        ClusterLayout::new(3, 1, 1).with_node_permutation(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn location_out_of_range() {
        ClusterLayout::new(1, 1, 2).location(2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterLayout::new(0, 1, 1);
    }
}
