//! Peak-RSS probe: dependency-free high-water-mark memory readings.
//!
//! The 100k-rank scale benchmarks gate *peak* resident set size, not the
//! instantaneous one — a streaming plan build is allowed to allocate and
//! drop per-step tables, but its high-water mark must stay O(edges). On
//! Linux the kernel already tracks exactly this: `VmHWM` in
//! `/proc/self/status`, resettable between measurements by writing `5`
//! to `/proc/self/clear_refs`. Both are plain file operations, so the
//! probe needs no libc bindings.
//!
//! Portability caveats (see `docs/SCALE.md`):
//!
//! * Off Linux both calls report failure (`None` / `false`); benchmarks
//!   must record that honestly and self-disable their RSS gates rather
//!   than gate on garbage.
//! * `VmHWM` is per-process: readings include the allocator's retained
//!   free lists and every other live allocation in the process, so
//!   ratios between two measurements in one process are meaningful,
//!   absolute values are an upper bound.
//! * Writing `clear_refs` requires a writable procfs; sandboxes that
//!   mount it read-only make [`reset_peak_rss`] return `false`, in which
//!   case the high-water mark is cumulative over the process lifetime.

/// Reads the process's peak resident set size (`VmHWM`) in bytes.
///
/// Returns `None` where the probe is unsupported (non-Linux, procfs
/// unavailable) — callers gating on RSS must treat that as "gate
/// disabled", not as zero bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Resets the kernel's peak-RSS watermark so the next
/// [`peak_rss_bytes`] reading reflects only allocations made after this
/// call. Returns `true` when the reset was accepted.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", b"5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_plausible_when_supported() {
        match peak_rss_bytes() {
            // A Rust test binary resident set is comfortably above 1 MiB
            // and below 1 TiB; anything else means the parse went wrong.
            Some(b) => assert!((1 << 20..1 << 40).contains(&b), "VmHWM {b} bytes"),
            None => {
                // unsupported host: the reset must also report failure
                // or at least not panic
                let _ = reset_peak_rss();
            }
        }
    }

    #[test]
    fn reset_lowers_or_keeps_watermark() {
        if !reset_peak_rss() {
            return; // probe unsupported here; nothing to assert
        }
        let after_reset = peak_rss_bytes().expect("probe supported if reset worked");
        // Touch a fresh 32 MiB allocation; the watermark must now sit at
        // least that far above zero and must have registered the growth.
        let big = vec![1u8; 32 << 20];
        std::hint::black_box(&big);
        let grown = peak_rss_bytes().expect("probe still supported");
        assert!(grown >= after_reset, "watermark cannot shrink without a reset");
        assert!(grown >= 32 << 20, "watermark {grown} must cover the live 32 MiB");
    }
}
