//! # nhood-cluster
//!
//! Cluster layout, rank placement and hierarchical Hockney network
//! parameters for the Distance Halving neighborhood allgather study.
//!
//! [`ClusterLayout`] answers "where does rank *r* live, and how close are
//! ranks *a* and *b*?"; [`HockneyParams`] answers "what does an *m*-byte
//! message between them cost?". Together they stand in for the paper's
//! Niagara testbed (see `DESIGN.md` §2 for the substitution argument).
//!
//! ```
//! use nhood_cluster::{ClusterLayout, HockneyParams, Locality};
//!
//! let cluster = ClusterLayout::niagara(60, 36); // 2160 ranks
//! assert_eq!(cluster.ranks_per_socket(), 18);
//! assert_eq!(cluster.locality(0, 17), Locality::SameSocket);
//! assert_eq!(cluster.locality(0, 18), Locality::SameNode);
//! let net = HockneyParams::niagara();
//! assert!(net.time(cluster.locality(0, 17), 1024) < net.time(cluster.locality(0, 999), 1024));
//! ```

#![warn(missing_docs)]

pub mod hockney;
pub mod layout;
pub mod pool;
pub mod rss;

pub use hockney::{Hockney, HockneyParams, Seconds};
pub use layout::{ClusterLayout, Locality, Location, Placement, Rank};
pub use pool::WorkerPool;
pub use rss::{peak_rss_bytes, reset_peak_rss};
