//! Hierarchical Hockney (α–β) communication cost parameters.
//!
//! The paper's performance model (§V) charges `α + m/β` per message. Real
//! clusters have different α/β at each locality level; the simulator uses
//! one [`Hockney`] pair per [`Locality`] level. The
//! [`HockneyParams::niagara`]
//! preset approximates the paper's testbed (EDR InfiniBand, Dragonfly+,
//! dual-socket Skylake/Cascade Lake) from published ping-pong figures —
//! absolute values are not the point, the level *ordering* and rough
//! magnitudes are (see `DESIGN.md` §2).

use crate::layout::Locality;

/// Seconds; all simulator times are `f64` seconds.
pub type Seconds = f64;

/// One α–β pair: `time(m) = alpha + m / bytes_per_sec`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hockney {
    /// Per-message latency, seconds.
    pub alpha: Seconds,
    /// Sustained bandwidth, bytes per second.
    pub bytes_per_sec: f64,
}

impl Hockney {
    /// Transfer time of an `m`-byte message.
    #[inline]
    pub fn time(&self, m: usize) -> Seconds {
        self.alpha + m as f64 / self.bytes_per_sec
    }
}

/// A full parameter set: one [`Hockney`] per locality level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HockneyParams {
    /// Intra-socket (shared memory, same L3).
    pub same_socket: Hockney,
    /// Intra-node, across the NUMA interconnect.
    pub same_node: Hockney,
    /// Inter-node within a Dragonfly+ group.
    pub same_group: Hockney,
    /// Inter-node across groups (global links).
    pub remote_group: Hockney,
}

impl HockneyParams {
    /// Parameters for a given locality level.
    #[inline]
    pub fn level(&self, l: Locality) -> Hockney {
        match l {
            Locality::SameSocket => self.same_socket,
            Locality::SameNode => self.same_node,
            Locality::SameGroup => self.same_group,
            Locality::RemoteGroup => self.remote_group,
        }
    }

    /// Transfer time of an `m`-byte message at locality `l`.
    #[inline]
    pub fn time(&self, l: Locality, m: usize) -> Seconds {
        self.level(l).time(m)
    }

    /// Niagara-like preset (see module docs). Values are derived from
    /// typical EDR InfiniBand and shared-memory ping-pong measurements:
    ///
    /// | level | α | bandwidth |
    /// |---|---|---|
    /// | same socket | 0.25 µs | 9 GB/s |
    /// | same node | 0.45 µs | 6.5 GB/s |
    /// | same group | 1.3 µs | 10.5 GB/s |
    /// | remote group | 2.1 µs | 9 GB/s |
    pub fn niagara() -> Self {
        Self {
            same_socket: Hockney { alpha: 0.25e-6, bytes_per_sec: 9.0e9 },
            same_node: Hockney { alpha: 0.45e-6, bytes_per_sec: 6.5e9 },
            same_group: Hockney { alpha: 1.3e-6, bytes_per_sec: 10.5e9 },
            remote_group: Hockney { alpha: 2.1e-6, bytes_per_sec: 9.0e9 },
        }
    }

    /// A flat (level-independent) parameter set — the §V model's
    /// simplification ("we do not distinguish the inter-node, intra-node,
    /// and intra-socket bandwidth"). Used for model-vs-simulation checks
    /// and the network-hierarchy ablation.
    pub fn flat(alpha: Seconds, bytes_per_sec: f64) -> Self {
        let h = Hockney { alpha, bytes_per_sec };
        Self { same_socket: h, same_node: h, same_group: h, remote_group: h }
    }

    /// `true` if every level is at least as fast (both α and β) as the
    /// next-farther level — the sanity property every realistic parameter
    /// set must have.
    pub fn is_monotone(&self) -> bool {
        let a = [self.same_socket, self.same_node, self.same_group, self.remote_group];
        a.windows(2).all(|w| w[0].alpha <= w[1].alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formula() {
        let h = Hockney { alpha: 1e-6, bytes_per_sec: 1e9 };
        assert!((h.time(0) - 1e-6).abs() < 1e-18);
        assert!((h.time(1000) - 2e-6).abs() < 1e-18);
        // doubling the message adds exactly m/β
        assert!((h.time(2000) - h.time(1000) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn niagara_is_monotone_in_alpha() {
        let p = HockneyParams::niagara();
        assert!(p.is_monotone());
        assert!(p.same_socket.alpha < p.remote_group.alpha);
    }

    #[test]
    fn level_dispatch() {
        let p = HockneyParams::niagara();
        assert_eq!(p.level(Locality::SameSocket), p.same_socket);
        assert_eq!(p.level(Locality::RemoteGroup), p.remote_group);
        assert!(p.time(Locality::SameSocket, 4096) < p.time(Locality::RemoteGroup, 4096));
    }

    #[test]
    fn flat_preset_is_level_independent() {
        let p = HockneyParams::flat(2e-6, 5e9);
        for l in
            [Locality::SameSocket, Locality::SameNode, Locality::SameGroup, Locality::RemoteGroup]
        {
            assert!((p.time(l, 1 << 20) - (2e-6 + (1 << 20) as f64 / 5e9)).abs() < 1e-15);
        }
        assert!(p.is_monotone());
    }
}
