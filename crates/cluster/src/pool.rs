//! A fixed-size, dependency-free worker pool.
//!
//! The registry is unreachable in this workspace, so there is no rayon;
//! this module provides the two parallel shapes the plan builder and the
//! sharded simulator need on top of `std::thread::scope` alone:
//!
//! * [`WorkerPool::map`] — bounded data parallelism: `items` independent
//!   jobs pulled off an atomic index by at most
//!   [`threads`](WorkerPool::threads) scoped workers, results returned
//!   **in index order** regardless of completion order. This is what the
//!   per-half matchmaking scoring and the per-rank descriptor lowering
//!   run on, and the index-ordered merge is what keeps parallel-built
//!   plans byte-identical to serial ones.
//! * [`WorkerPool::run_all`] — one scoped thread per job, regardless of
//!   the pool size. Negotiation jobs (e.g. a distributed builder's rank threads)
//!   block on each other's messages, so running them on a bounded pool
//!   would deadlock; this entry point deliberately oversubscribes while
//!   keeping spawn/join/panic handling in one place.
//!
//! A pool of one thread ([`WorkerPool::serial`]) runs every job inline
//! on the caller's thread — the degenerate case the byte-identity
//! property tests compare against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A fixed-size worker pool (see module docs). Cheap to copy: the pool
/// holds no threads between calls — workers are scoped to each `map` /
/// `run_all` invocation, so borrowed job data needs no `'static` bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::serial()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers; 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The single-threaded pool: every job runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized to the host's available parallelism (1 if the host
    /// does not report it).
    pub fn auto() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..items)` with bounded parallelism and returns the
    /// results in index order. With one thread (or at most one item) the
    /// jobs run inline, in order, on the caller's thread.
    ///
    /// # Panics
    /// Propagates a panic from any job.
    pub fn map<T: Send>(&self, items: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        if self.threads == 1 || items <= 1 {
            return (0..items).map(f).collect();
        }
        let workers = self.threads.min(items);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items || tx.send((i, f(i))).is_err() {
                            break;
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items).collect();
            for (i, v) in rx {
                out[i] = Some(v);
            }
            // Re-raise a worker's own panic payload (a bare scope exit
            // would replace it with "a scoped thread panicked").
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            out.into_iter().map(|v| v.expect("every index produced")).collect()
        })
    }

    /// Runs every job on its own scoped thread and returns the results
    /// in job order. Use for jobs that *block on each other* (the rank
    /// negotiation threads): a bounded pool would deadlock them, so this
    /// entry point intentionally ignores the pool size.
    ///
    /// # Panics
    /// Panics with "pool job panicked" if any job panics.
    pub fn run_all<T: Send, F: FnOnce() -> T + Send>(&self, jobs: Vec<F>) -> Vec<T> {
        if jobs.len() <= 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs.into_iter().map(|j| scope.spawn(j)).collect();
            handles.into_iter().map(|h| h.join().expect("pool job panicked")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_index_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
        // fewer items than workers
        assert_eq!(pool.map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_jobs_can_borrow_caller_data() {
        let data: Vec<usize> = (0..64).collect();
        let pool = WorkerPool::new(4);
        let out = pool.map(data.len(), |i| data[i] * 2);
        assert_eq!(out[63], 126);
    }

    #[test]
    fn run_all_executes_mutually_blocking_jobs() {
        use std::sync::mpsc::channel;
        // two jobs that must run concurrently: each blocks on the other's
        // message — a bounded executor would deadlock
        let (tx_a, rx_a) = channel::<u32>();
        let (tx_b, rx_b) = channel::<u32>();
        let pool = WorkerPool::new(1); // run_all ignores the bound
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(move || {
                tx_b.send(1).unwrap();
                rx_a.recv().unwrap() + 10
            }),
            Box::new(move || {
                tx_a.send(2).unwrap();
                rx_b.recv().unwrap() + 20
            }),
        ];
        assert_eq!(pool.run_all(jobs), vec![12, 21]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_propagates_worker_panics() {
        let pool = WorkerPool::new(2);
        let _ = pool.map(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn auto_pool_has_at_least_one_thread() {
        assert!(WorkerPool::auto().threads() >= 1);
        assert_eq!(WorkerPool::default(), WorkerPool::serial());
    }
}
