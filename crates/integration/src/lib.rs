//! Workspace integration-test host. The tests live in the repository's
//! top-level `tests/` directory and the examples in `examples/`; this
//! crate exists to give Cargo a package to attach them to.
